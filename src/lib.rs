//! # MarkoViews — probabilistic databases with weighted views
//!
//! This is the umbrella crate of the MarkoViews workspace, a from-scratch Rust
//! reproduction of *Probabilistic Databases with MarkoViews* (Jha & Suciu,
//! PVLDB 5(11), 2012). It re-exports the public API of every member crate so
//! downstream users can depend on a single crate:
//!
//! * [`pdb`] — relational substrate and tuple-independent probabilistic
//!   databases (INDBs), including support for negative probabilities.
//! * [`query`] — unions of conjunctive queries (UCQs): AST, datalog parser,
//!   lineage computation, safety analysis and the safe-plan (lifted) evaluator.
//! * [`obdd`] — an Ordered Binary Decision Diagram engine built around a
//!   shared, hash-consed `ObddManager` arena (diagrams are cheap
//!   `{manager, root}` handles), with the paper's concatenation-based
//!   `ConOBDD` construction and a synthesis-only baseline.
//! * [`mvindex`] — the MV-index: augmented OBDDs plus the `MVIntersect` and
//!   cache-conscious `CC-MVIntersect` algorithms.
//! * [`mln`] — a Markov Logic Network engine with exact enumeration inference
//!   and an MC-SAT sampler (the Alchemy stand-in used by the benchmarks).
//! * [`core`] — MarkoViews, MVDBs, the translation to tuple-independent
//!   databases (Theorem 1), the pluggable [`core::Backend`] evaluation
//!   layer, and the end-to-end [`core::MvdbEngine`].
//! * [`dblp`] — a synthetic DBLP-like dataset generator reproducing the
//!   schema, probabilistic tables and MarkoViews of Figure 1.
//!
//! ## Quickstart
//!
//! ```
//! use markoviews::prelude::*;
//!
//! // Two possible tuples R(a), S(a) with weights 3 and 4, and a MarkoView
//! // asserting a negative correlation between them (Example 1 of the paper).
//! let mut mvdb = MvdbBuilder::new();
//! mvdb.relation("R", &["x"]).unwrap();
//! mvdb.relation("S", &["x"]).unwrap();
//! mvdb.weighted_tuple("R", &["a"], 3.0).unwrap();
//! mvdb.weighted_tuple("S", &["a"], 4.0).unwrap();
//! mvdb.marko_view("V(x)[0.5] :- R(x), S(x)").unwrap();
//! let mvdb = mvdb.build().unwrap();
//!
//! let engine = MvdbEngine::compile(&mvdb).unwrap();
//! let q = parse_ucq("Q() :- R(x), S(x)").unwrap();
//! let p = engine.probability(&q).unwrap();
//! assert!((p - 0.5 * 12.0 / (1.0 + 3.0 + 4.0 + 0.5 * 12.0)).abs() < 1e-9);
//! ```

pub use mv_core as core;
pub use mv_dblp as dblp;
pub use mv_index as mvindex;
pub use mv_mln as mln;
pub use mv_obdd as obdd;
pub use mv_pdb as pdb;
pub use mv_query as query;

/// Convenience re-exports of the most frequently used types.
pub mod prelude {
    pub use mv_core::backend::{
        ApproxAnswer, ApproxConfig, Backend, BruteForce, EvalContext, IntervalMethod, MonteCarlo,
        MonteCarloParams, MvIndexBackend, ObddPerQuery, SafePlan, Shannon,
    };
    pub use mv_core::{
        EngineBackend, MarkoView, Mvdb, MvdbBuilder, MvdbEngine, MvdbSession, ShardedEngine,
        ShardedSession, TranslatedIndb,
    };
    pub use mv_dblp::{DblpConfig, DblpDataset};
    pub use mv_index::{IntersectAlgorithm, MvIndex};
    pub use mv_mln::{GroundMln, McSatConfig, McSatSampler, Mln};
    pub use mv_obdd::{ConObddBuilder, ManagerStats, Obdd, ObddManager, PiOrder, SynthesisBuilder};
    pub use mv_pdb::{
        Database, InDb, PossibleTuple, Relation, Row, Schema, TupleId, Value, Weight,
    };
    pub use mv_query::{parse_query, parse_ucq, ConjunctiveQuery, Lineage, Ucq};
}
