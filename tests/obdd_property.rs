//! Property-based tests of the OBDD layer: probabilities computed by Shannon
//! expansion on the diagram agree with brute-force enumeration and with the
//! Shannon-expansion evaluator on the raw lineage; the ConOBDD construction
//! and the synthesis-only construction produce the same reduced diagram; and
//! Boolean operations respect their truth tables.

use std::sync::Arc;

use markoviews::obdd::{ConObddBuilder, Obdd, ObddManager, PiOrder, SynthesisBuilder, VarOrder};
use markoviews::pdb::{value::row, InDb, InDbBuilder, TupleId, Weight};
use markoviews::query::brute::brute_force_probability_with;
use markoviews::query::lineage::{lineage, Lineage};
use markoviews::query::shannon::probability_with;
use markoviews::query::{brute::brute_force_query_probability, parse_ucq};
use proptest::prelude::*;

/// A random DNF over `num_vars` variables.
fn dnf_strategy(num_vars: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0..num_vars as u32, 1..=3), 1..=6)
}

/// Random probabilities, including negative ones (the translated databases of
/// Section 3.3).
fn prob_strategy(num_vars: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(prop_oneof![3 => 0.0f64..1.0, 1 => -3.0f64..0.0], num_vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn obdd_probability_matches_brute_force_and_shannon(
        clauses in dnf_strategy(7),
        probs in prob_strategy(7),
    ) {
        let lineage = Lineage::from_clauses(
            clauses.iter().map(|c| c.iter().map(|&i| TupleId(i)).collect()).collect::<Vec<_>>(),
        );
        let order = Arc::new(VarOrder::from_tuples((0..7).map(TupleId)));
        let obdd = SynthesisBuilder::new(order).from_lineage(&lineage).unwrap();
        let prob_of = |t: TupleId| probs[t.index()];
        let via_obdd = obdd.probability(prob_of);
        let via_brute = brute_force_probability_with(&lineage, &prob_of);
        let via_shannon = probability_with(&lineage, &prob_of);
        prop_assert!((via_obdd - via_brute).abs() < 1e-8, "obdd {via_obdd} vs brute {via_brute}");
        prop_assert!((via_shannon - via_brute).abs() < 1e-8);
    }

    #[test]
    fn obdd_semantics_match_the_lineage_on_all_assignments(
        clauses in dnf_strategy(6),
    ) {
        let lineage = Lineage::from_clauses(
            clauses.iter().map(|c| c.iter().map(|&i| TupleId(i)).collect()).collect::<Vec<_>>(),
        );
        let order = Arc::new(VarOrder::from_tuples((0..6).map(TupleId)));
        let obdd = SynthesisBuilder::new(order).from_lineage(&lineage).unwrap();
        for mask in 0u64..(1 << 6) {
            prop_assert_eq!(obdd.eval(|t| mask & (1 << t.0) != 0), lineage.eval(mask));
        }
    }

    #[test]
    fn shared_manager_store_stays_canonical(
        clauses_a in dnf_strategy(6),
        clauses_b in dnf_strategy(6),
        probs in prob_strategy(6),
    ) {
        // Build two random DNFs plus derived diagrams (apply, negate,
        // concat attempts) in ONE shared manager, then check the arena
        // invariants: no duplicate (level, lo, hi) triple, no redundant
        // node with lo == hi, children strictly below parents, unique
        // table in sync. Probabilities must still match brute force.
        let to_lineage = |cs: &Vec<Vec<u32>>| Lineage::from_clauses(
            cs.iter().map(|c| c.iter().map(|&i| TupleId(i)).collect()).collect::<Vec<_>>(),
        );
        let la = to_lineage(&clauses_a);
        let lb = to_lineage(&clauses_b);
        let manager = ObddManager::new(Arc::new(VarOrder::from_tuples((0..6).map(TupleId))));
        let builder = SynthesisBuilder::with_manager(manager.clone());
        let ga = builder.from_lineage(&la).unwrap();
        let gb = builder.from_lineage(&lb).unwrap();
        let g_or = ga.apply_or(&gb).unwrap();
        let g_and = ga.apply_and(&gb).unwrap();
        let g_not = g_or.negate();
        // Exercise the concat path too when the level ranges allow it.
        let _ = ga.concat_or(&gb);
        prop_assert_eq!(manager.canonicity_violation(), None);
        // Same function ⇒ same root (canonicity of reduced OBDDs): rebuild
        // one of the diagrams and compare handles.
        let ga_again = builder.from_lineage(&la).unwrap();
        prop_assert_eq!(ga.root(), ga_again.root());
        // Cross-check probabilities against brute force on the shared arena.
        let prob_of = |t: TupleId| probs[t.index()];
        let via_obdd = g_or.probability(prob_of);
        let via_brute = brute_force_probability_with(&la.or(&lb), &prob_of);
        prop_assert!((via_obdd - via_brute).abs() < 1e-8);
        for mask in 0u64..(1 << 6) {
            let assign = |t: TupleId| mask & (1 << t.0) != 0;
            prop_assert_eq!(g_and.eval(assign), la.eval(mask) && lb.eval(mask));
            prop_assert_eq!(g_not.eval(assign), !(la.eval(mask) || lb.eval(mask)));
        }
    }

    #[test]
    fn negation_and_disjunction_respect_truth_tables(
        clauses_a in dnf_strategy(5),
        clauses_b in dnf_strategy(5),
    ) {
        let to_lineage = |cs: &Vec<Vec<u32>>| Lineage::from_clauses(
            cs.iter().map(|c| c.iter().map(|&i| TupleId(i)).collect()).collect::<Vec<_>>(),
        );
        let la = to_lineage(&clauses_a);
        let lb = to_lineage(&clauses_b);
        let order = Arc::new(VarOrder::from_tuples((0..5).map(TupleId)));
        let builder = SynthesisBuilder::new(Arc::clone(&order));
        let ga = builder.from_lineage(&la).unwrap();
        let gb = builder.from_lineage(&lb).unwrap();
        let g_or = ga.apply_or(&gb).unwrap();
        let g_and = ga.apply_and(&gb).unwrap();
        let g_not_a = ga.negate();
        for mask in 0u64..(1 << 5) {
            let assign = |t: TupleId| mask & (1 << t.0) != 0;
            prop_assert_eq!(g_or.eval(assign), la.eval(mask) || lb.eval(mask));
            prop_assert_eq!(g_and.eval(assign), la.eval(mask) && lb.eval(mask));
            prop_assert_eq!(g_not_a.eval(assign), !la.eval(mask));
        }
    }
}

/// A small random tuple-independent database over R(x), S(x, y), T(y).
fn small_indb_strategy() -> impl Strategy<Value = Vec<(u8, u8, f64)>> {
    proptest::collection::vec((0u8..3, 0u8..3, 0.2f64..4.0), 1..=6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conobdd_and_synthesis_agree_on_random_databases(rows in small_indb_strategy()) {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["x"]).unwrap();
        let s = b.probabilistic_relation("S", &["x", "y"]).unwrap();
        let t = b.probabilistic_relation("T", &["y"]).unwrap();
        for (x, y, w) in &rows {
            b.insert_weighted(r, row([i64::from(*x)]), Weight::new(*w)).unwrap();
            b.insert_weighted(s, row([i64::from(*x), i64::from(*y)]), Weight::new(w + 0.1)).unwrap();
            b.insert_weighted(t, row([i64::from(*y)]), Weight::new(1.0)).unwrap();
        }
        let indb: InDb = b.build();
        for q_text in [
            "Q() :- R(x), S(x, y)",
            "Q() :- S(x, y), T(y)",
            "Q() :- R(x), S(x, y) ; Q() :- T(z)",
            "Q() :- R(x), S(x, y), T(y)",
        ] {
            let q = parse_ucq(q_text).unwrap();
            let mut con = ConObddBuilder::for_query(&indb, &q);
            let fast = con.build(&q).unwrap();
            let slow = SynthesisBuilder::new(con.order()).from_query(&q, &indb).unwrap();
            let pf = fast.probability(|t| indb.probability(t));
            let ps = slow.probability(|t| indb.probability(t));
            let brute = brute_force_query_probability(&q, &indb).unwrap();
            prop_assert!((pf - brute).abs() < 1e-8, "{q_text}: conobdd {pf} vs brute {brute}");
            prop_assert!((ps - brute).abs() < 1e-8, "{q_text}: synthesis {ps} vs brute {brute}");
            // Canonicity: both constructions produce the same reduced size.
            prop_assert_eq!(fast.size(), slow.size(), "sizes differ for {}", q_text);
        }
    }

    #[test]
    fn pi_order_covers_every_probabilistic_tuple(rows in small_indb_strategy()) {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["x"]).unwrap();
        let s = b.probabilistic_relation("S", &["x", "y"]).unwrap();
        for (x, y, w) in &rows {
            b.insert_weighted(r, row([i64::from(*x)]), Weight::new(*w)).unwrap();
            b.insert_weighted(s, row([i64::from(*x), i64::from(*y)]), Weight::new(*w)).unwrap();
        }
        let indb = b.build();
        let order = PiOrder::identity().tuple_order(&indb);
        prop_assert_eq!(order.len(), indb.num_tuples());
        for i in 0..indb.num_tuples() as u32 {
            let level = order.level_of(TupleId(i)).expect("every tuple has a level");
            prop_assert_eq!(order.tuple_at(level), TupleId(i));
        }
    }

    #[test]
    fn lineage_or_is_union_and_query_union_is_lineage_or(rows in small_indb_strategy()) {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["x"]).unwrap();
        let s = b.probabilistic_relation("S", &["x", "y"]).unwrap();
        for (x, y, w) in &rows {
            b.insert_weighted(r, row([i64::from(*x)]), Weight::new(*w)).unwrap();
            b.insert_weighted(s, row([i64::from(*x), i64::from(*y)]), Weight::new(*w)).unwrap();
        }
        let indb = b.build();
        let q1 = parse_ucq("Q() :- R(x)").unwrap();
        let q2 = parse_ucq("Q() :- S(x, y)").unwrap();
        let l1 = lineage(&q1, &indb).unwrap();
        let l2 = lineage(&q2, &indb).unwrap();
        let l_union = lineage(&q1.union(&q2), &indb).unwrap();
        prop_assert_eq!(l_union, l1.or(&l2));
    }
}

/// The constant-width guarantee of Proposition 2: inversion-free queries have
/// OBDDs whose width does not grow with the database.
#[test]
fn inversion_free_queries_have_constant_width_obdds() {
    for n in [4usize, 16, 64] {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["x"]).unwrap();
        let s = b.probabilistic_relation("S", &["x", "y"]).unwrap();
        for i in 0..n {
            b.insert_weighted(r, row([i as i64]), Weight::new(1.0))
                .unwrap();
            for j in 0..3 {
                b.insert_weighted(s, row([i as i64, j as i64]), Weight::new(2.0))
                    .unwrap();
            }
        }
        let indb = b.build();
        let q = parse_ucq("Q() :- R(x), S(x, y)").unwrap();
        assert!(markoviews::query::analysis::is_inversion_free(&q));
        let mut builder = ConObddBuilder::for_query(&indb, &q);
        let obdd: Obdd = builder.build(&q).unwrap();
        assert_eq!(obdd.width(), 1, "width must stay 1 at n = {n}");
        assert_eq!(obdd.size(), indb.num_tuples());
        assert_eq!(builder.stats().syntheses, 0);
    }
}
