//! Cross-backend agreement: every evaluation backend — both MV-index
//! intersection algorithms, the per-query augmented OBDD, Shannon expansion,
//! and brute-force enumeration — computes the same probabilities, on the
//! paper's running example and on small random MVDBs, within 1e-9.
//!
//! This is the contract the [`markoviews::core::Backend`] trait layer has to
//! uphold: a strategy is a pure performance choice, never a semantics
//! choice.

use markoviews::prelude::*;
use proptest::prelude::*;

mod common;
use common::{build, mvdb_strategy};

/// The backends under test (safe plans are exercised separately: they
/// legitimately reject unsafe queries).
fn suite() -> Vec<EngineBackend> {
    EngineBackend::comparison_suite()
}

#[test]
fn running_example_agrees_across_all_backends() {
    // Example 1 of the paper: R(a) with weight 3, S(a) with weight 4, and a
    // MarkoView with weight 1/2 between them.
    let mut b = MvdbBuilder::new();
    b.relation("R", &["x"]).unwrap();
    b.relation("S", &["x"]).unwrap();
    b.weighted_tuple("R", &["a"], 3.0).unwrap();
    b.weighted_tuple("S", &["a"], 4.0).unwrap();
    b.marko_view("V(x)[0.5] :- R(x), S(x)").unwrap();
    let mvdb = b.build().unwrap();
    let engine = MvdbEngine::compile(&mvdb).unwrap();

    for q_text in [
        "Q() :- R(x), S(x)",
        "Q() :- R(x)",
        "Q() :- S(x)",
        "Q() :- R(x) ; Q() :- S(x)",
    ] {
        let q = parse_ucq(q_text).unwrap();
        let reference = mvdb.exact_probability(&q).unwrap();
        for selector in suite() {
            let p = engine.probability_with_backend(&q, selector).unwrap();
            assert!(
                (p - reference).abs() < 1e-9,
                "{q_text} via {selector:?}: {p} vs MLN reference {reference}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_backends_agree_on_random_mvdbs(desc in mvdb_strategy()) {
        let mvdb = build(&desc);
        let engine = match MvdbEngine::compile(&mvdb) {
            Ok(e) => e,
            // Denial views can make the MVDB inconsistent; nothing to
            // compare in that case.
            Err(_) => return Ok(()),
        };
        for q_text in [
            "Q() :- R(x), S(x, y)",
            "Q() :- R(x)",
            "Q() :- S(x, y)",
            "Q() :- R(x) ; Q() :- S(x, y)",
            "Q() :- R(0)",
            "Q() :- S(0, y)",
        ] {
            let q = parse_ucq(q_text).unwrap();
            // Brute force over the lineage is the reference; every other
            // backend must agree with it within 1e-9.
            let reference = engine
                .probability_with_backend(&q, EngineBackend::BruteForce)
                .unwrap();
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&reference));
            for selector in suite() {
                let p = engine.probability_with_backend(&q, selector).unwrap();
                prop_assert!(
                    (p - reference).abs() < 1e-9,
                    "{q_text} via {selector:?}: {p} vs brute {reference} on {desc:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_sessions_agree_with_sequential_evaluation(desc in mvdb_strategy()) {
        // The MvdbSession batch API must be a pure scheduling choice: for
        // every backend, evaluating the workload across worker threads
        // (per-thread OBDD-manager shards) returns the same probabilities
        // as the one-query-at-a-time engine API, within 1e-9.
        let mvdb = build(&desc);
        let engine = match MvdbEngine::compile(&mvdb) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        let queries: Vec<_> = [
            "Q() :- R(x), S(x, y)",
            "Q() :- R(x)",
            "Q() :- S(x, y)",
            "Q() :- R(x) ; Q() :- S(x, y)",
            "Q() :- R(0)",
            "Q() :- S(0, y)",
        ]
        .iter()
        .map(|q| parse_ucq(q).unwrap())
        .collect();
        let sequential: Vec<f64> = queries
            .iter()
            .map(|q| engine.probability(q).unwrap())
            .collect();
        for selector in suite() {
            let batch = engine
                .session()
                .with_threads(3)
                .probabilities_with_backend(&queries, selector)
                .unwrap();
            for ((q, s), p) in queries.iter().zip(&sequential).zip(&batch) {
                prop_assert!(
                    (s - p).abs() < 1e-9,
                    "{} via {:?} in a 3-thread session: {} vs sequential {}",
                    q, selector, p, s
                );
            }
        }
    }

    #[test]
    fn backend_answers_agree_on_random_mvdbs(desc in mvdb_strategy()) {
        let mvdb = build(&desc);
        let engine = match MvdbEngine::compile(&mvdb) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        let q = parse_ucq("Q(x) :- R(x), S(x, y)").unwrap();
        let reference = engine
            .answers_with(&q, &BruteForce)
            .unwrap();
        for selector in suite() {
            let answers = engine
                .answers_with(&q, selector.instantiate().as_ref())
                .unwrap();
            prop_assert_eq!(answers.len(), reference.len());
            for ((row_a, p_a), (row_b, p_b)) in answers.iter().zip(&reference) {
                prop_assert_eq!(row_a, row_b);
                prop_assert!(
                    (p_a - p_b).abs() < 1e-9,
                    "{:?} on {:?}: {} vs {}",
                    selector, row_a, p_a, p_b
                );
            }
        }
    }
}
