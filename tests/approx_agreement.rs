//! Statistical agreement: the Monte Carlo backend against the exact
//! oracles.
//!
//! The exact backends agree with each other to 1e-9 (see
//! `backend_agreement.rs`); the sampling backend agrees *statistically* —
//! its confidence interval must cover the exact probability. This suite
//! pins that contract on the Figure 5/6 workloads of the paper's
//! evaluation (where the translated database carries negative-probability
//! `NV` tuples), asserts bit-level determinism under a fixed seed, runs the
//! clause-scan and per-world compiled-plan evaluation modes
//! differentially, and demonstrates the acceptance scenario: a query whose
//! exact OBDD synthesis is *refused* (node budget) still gets a
//! CI-bounded estimate.
//!
//! The sample budget scales with the `APPROX_SAMPLES` environment variable
//! (default 32768); the nightly CI job runs the suite with a much larger
//! budget.

use std::sync::Arc;

use markoviews::obdd::ObddError;
use markoviews::prelude::*;
use markoviews::query::parse_ucq as parse;

/// The per-query sample budget (override with `APPROX_SAMPLES`).
fn sample_budget() -> u64 {
    std::env::var("APPROX_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32_768)
}

fn suite_config(seed: u64) -> ApproxConfig {
    ApproxConfig {
        seed,
        confidence: 0.99,
        target_half_width: 0.0, // fixed budget: the coverage check is the point
        max_samples: sample_budget(),
        ..ApproxConfig::default()
    }
}

/// The Figure 5/6 corpus at a test-sized scale, with its Boolean workload.
fn fig5_fig6_workload() -> (MvdbEngine, Vec<Ucq>) {
    let data = DblpDataset::generate(DblpConfig {
        with_affiliation_view: false,
        ..DblpConfig::with_authors(120)
    })
    .expect("corpus generates");
    let engine = MvdbEngine::compile(&data.mvdb).expect("engine compiles");
    let mut queries = data
        .advisor_of_student_workload(4)
        .expect("fig5 workload")
        .into_iter()
        .map(|q| q.boolean())
        .collect::<Vec<_>>();
    queries.extend(
        data.students_of_advisor_workload(4)
            .expect("fig6 workload")
            .into_iter()
            .map(|q| q.boolean()),
    );
    (engine, queries)
}

#[test]
fn fig5_fig6_exact_probabilities_lie_inside_the_99_percent_ci() {
    let (engine, queries) = fig5_fig6_workload();
    let config = suite_config(0xA99);
    let answers = engine
        .session()
        .approx_probabilities(&queries, &config)
        .expect("batch estimates");
    for (q, answer) in queries.iter().zip(&answers) {
        // The MV-index is the exact oracle here (itself pinned against
        // Shannon/brute force by the cross-backend suite).
        let exact = engine.probability(q).expect("exact probability");
        assert!(
            answer.contains(exact),
            "{q}: {:?} CI [{:.5}, {:.5}] misses exact {exact:.5}",
            answer.method,
            answer.lower(),
            answer.upper()
        );
        assert!(
            (answer.clamped() - exact).abs() <= 0.05,
            "{q}: estimate {:.5} far from exact {exact:.5}",
            answer.estimate
        );
        assert_eq!(answer.samples, config.max_samples);
    }
}

#[test]
fn fixed_seeds_are_bit_identical_and_workers_do_not_change_results() {
    let (engine, queries) = fig5_fig6_workload();
    let config = ApproxConfig {
        max_samples: sample_budget().min(8_192),
        ..suite_config(0xDE7)
    };
    let first = engine
        .session()
        .approx_probabilities(&queries, &config)
        .expect("estimates");
    let second = engine
        .session()
        .approx_probabilities(&queries, &config)
        .expect("estimates");
    let striped = engine
        .session()
        .with_threads(4)
        .approx_probabilities(&queries, &config)
        .expect("estimates");
    for ((a, b), c) in first.iter().zip(&second).zip(&striped) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert_eq!(a.half_width.to_bits(), b.half_width.to_bits());
        assert_eq!(a.samples, b.samples);
        // Striping whole queries over workers preserves every bit too.
        assert_eq!(a.estimate.to_bits(), c.estimate.to_bits());
        assert_eq!(a.half_width.to_bits(), c.half_width.to_bits());
    }
    // A different seed takes a different sample path.
    let other = engine
        .session()
        .approx_probabilities(
            &queries,
            &ApproxConfig {
                seed: 0xBEEF,
                ..config
            },
        )
        .expect("estimates");
    assert!(
        first
            .iter()
            .zip(&other)
            .any(|(a, b)| a.estimate.to_bits() != b.estimate.to_bits()),
        "independent seeds should not reproduce the whole batch bit-for-bit"
    );
}

#[test]
fn split_budget_parallel_estimation_covers_the_exact_value() {
    let (engine, queries) = fig5_fig6_workload();
    let config = suite_config(0x517);
    let q = &queries[0];
    let exact = engine.probability(q).expect("exact probability");
    let merged = engine
        .session()
        .with_threads(4)
        .approx_probability(q, &config)
        .expect("merged estimate");
    assert_eq!(merged.samples, config.max_samples);
    assert!(
        merged.contains(exact),
        "merged CI [{:.5}, {:.5}] misses exact {exact:.5}",
        merged.lower(),
        merged.upper()
    );
}

#[test]
fn clause_scan_and_compiled_plan_world_evaluation_agree_bit_for_bit() {
    // The two world-evaluation strategies — scanning the collected lineage
    // clauses vs. materialising each world and running the compiled
    // physical plan — are independent implementations of the same
    // indicator. Under one seed they see the same worlds, so the estimates
    // must be identical to the last bit.
    let data = DblpDataset::generate(DblpConfig {
        with_affiliation_view: false,
        ..DblpConfig::with_authors(48)
    })
    .expect("corpus generates");
    let engine = MvdbEngine::compile(&data.mvdb).expect("engine compiles");
    let queries = data
        .students_of_advisor_workload(2)
        .expect("workload")
        .into_iter()
        .map(|q| q.boolean());
    let config = ApproxConfig {
        max_samples: 256, // plan mode materialises a database per world
        min_samples: 64,
        ..suite_config(0x9A)
    };
    for q in queries {
        let ctx = engine.context();
        let by_clauses = MonteCarlo::new(config).approx(&q, &ctx).expect("clauses");
        let by_plans = MonteCarlo::new(config)
            .with_plan_evaluation()
            .approx(&q, &ctx)
            .expect("plans");
        assert_eq!(by_clauses.estimate.to_bits(), by_plans.estimate.to_bits());
        assert_eq!(
            by_clauses.half_width.to_bits(),
            by_plans.half_width.to_bits()
        );
    }
}

/// A views-free MVDB whose query lineage is the *crossed* bipartite
/// pairing `∨ᵢ xᵢ ∧ y₍ₙ₋₁₋ᵢ₎`. The value-keyed variable order interleaves
/// `x` and `y` tuples by their first attribute, so every pair spans the
/// whole order and the diagram's middle must remember ~n/2 open matches:
/// exact synthesis needs ~2^(n/2) nodes. Under tuple independence the
/// exact closed form is `1 − ∏ᵢ (1 − pₓᵢ·p_y₍ₙ₋₁₋ᵢ₎)`.
fn pairing_mvdb(n: usize) -> (Mvdb, f64) {
    let mut b = MvdbBuilder::new();
    b.relation("X", &["i", "j"]).unwrap();
    b.relation("Y", &["j"]).unwrap();
    let wx = |i: i64| 1.0 + (i % 5) as f64;
    let wy = |j: i64| 0.5 + (j % 3) as f64;
    let mut miss = 1.0;
    for i in 0..n as i64 {
        let j = n as i64 - 1 - i;
        b.weighted_tuple("X", &[Value::int(i), Value::int(j)], wx(i))
            .unwrap();
        b.weighted_tuple("Y", &[Value::int(i)], wy(i)).unwrap();
        let (px, py) = (wx(i) / (1.0 + wx(i)), wy(j) / (1.0 + wy(j)));
        miss *= 1.0 - px * py;
    }
    (b.build().unwrap(), 1.0 - miss)
}

#[test]
fn monte_carlo_answers_queries_whose_exact_synthesis_is_refused() {
    let (mvdb, exact) = pairing_mvdb(44);
    let translated = TranslatedIndb::new(&mvdb).expect("translates");
    let q = parse("Q() :- X(i, j), Y(j)").expect("parses");
    let lineage = markoviews::query::lineage::lineage(&q, translated.indb()).expect("lineage");
    assert_eq!(lineage.num_clauses(), 44);

    // Exact synthesis under the translation's value-keyed tuple order hits
    // the ~2^22-node blow-up and is refused by the node budget…
    let order = Arc::new(PiOrder::identity().tuple_order(translated.indb()));
    let refusal = SynthesisBuilder::new(order).from_lineage_bounded(&lineage, 10_000);
    match refusal {
        Err(ObddError::NodeBudgetExceeded { allocated, budget }) => {
            assert!(allocated > budget)
        }
        other => panic!("expected exact synthesis to be refused, got {other:?}"),
    }

    // …while the sampling backend returns a CI-bounded estimate that
    // covers the closed-form exact probability.
    let engine = MvdbEngine::compile(&mvdb).expect("compiles");
    let config = suite_config(0xB10);
    let answer = engine.approx_probability(&q, &config).expect("estimate");
    assert_eq!(answer.method, IntervalMethod::Wilson);
    assert!(
        answer.contains(exact),
        "CI [{:.5}, {:.5}] misses exact {exact:.5}",
        answer.lower(),
        answer.upper()
    );
    assert!(answer.half_width < 0.02);
}

#[test]
fn early_stopping_honours_the_target_half_width_on_dblp() {
    let (engine, queries) = fig5_fig6_workload();
    let config = ApproxConfig {
        target_half_width: 0.02,
        min_samples: 512,
        ..suite_config(0xEA8)
    };
    let answer = engine
        .approx_probability(&queries[0], &config)
        .expect("estimate");
    assert!(answer.half_width <= 0.02);
    assert!(
        answer.samples <= config.max_samples,
        "budget respected: {}",
        answer.samples
    );
}
