//! Property-based test of Theorem 1: for randomly generated small MVDBs, the
//! probability computed through the translation + MV-index pipeline equals
//! the probability defined by the MLN semantics (Definition 4), for every
//! query of a fixed family.

use markoviews::prelude::*;
use proptest::prelude::*;

mod common;
use common::{build, mvdb_strategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn translated_evaluation_matches_the_mln_semantics(desc in mvdb_strategy()) {
        let mvdb = build(&desc);
        let engine = match MvdbEngine::compile(&mvdb) {
            Ok(e) => e,
            // Denial views can make the MVDB inconsistent (all worlds
            // forbidden); that is a legitimate outcome, not a failure.
            Err(_) => return Ok(()),
        };
        for q_text in [
            "Q() :- R(x), S(x, y)",
            "Q() :- R(x)",
            "Q() :- S(x, y)",
            "Q() :- R(x) ; Q() :- S(x, y)",
            "Q() :- R(0)",
            "Q() :- S(0, y)",
        ] {
            let q = parse_ucq(q_text).unwrap();
            let expected = mvdb.exact_probability(&q).unwrap();
            let via_engine = engine.probability(&q).unwrap();
            prop_assert!(
                (via_engine - expected).abs() < 1e-7,
                "{q_text}: engine {via_engine} vs exact {expected} on {desc:?}"
            );
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&via_engine));
        }
    }

    #[test]
    fn per_answer_probabilities_match_bound_queries(desc in mvdb_strategy()) {
        let mvdb = build(&desc);
        let engine = match MvdbEngine::compile(&mvdb) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        let q = parse_ucq("Q(x) :- R(x), S(x, y)").unwrap();
        for (row, p) in engine.answers(&q).unwrap() {
            let bound = q.bind_head(&row);
            let expected = mvdb.exact_probability(&bound).unwrap();
            prop_assert!((p - expected).abs() < 1e-7, "answer {row:?} on {desc:?}");
        }
    }

    #[test]
    fn marginals_match_for_every_base_tuple(desc in mvdb_strategy()) {
        let mvdb = build(&desc);
        let engine = match MvdbEngine::compile(&mvdb) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        // Marginal of each R tuple: compare MLN semantics and the engine.
        for (i, _) in desc.r_weights.iter().enumerate() {
            let q = parse_ucq(&format!("Q() :- R({i})")).unwrap();
            let expected = mvdb.exact_probability(&q).unwrap();
            let via_engine = engine.probability(&q).unwrap();
            prop_assert!((via_engine - expected).abs() < 1e-7);
        }
    }
}
