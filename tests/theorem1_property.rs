//! Property-based test of Theorem 1: for randomly generated small MVDBs, the
//! probability computed through the translation + MV-index pipeline equals
//! the probability defined by the MLN semantics (Definition 4), for every
//! query of a fixed family.

use markoviews::prelude::*;
use proptest::prelude::*;

/// A randomly generated small MVDB description.
#[derive(Debug, Clone)]
struct RandomMvdb {
    /// Weights of the R tuples (unary relation over a small domain).
    r_weights: Vec<f64>,
    /// Weights of the S tuples, indexed by (x, y) over the small domain.
    s_weights: Vec<((usize, usize), f64)>,
    /// Weight of the MarkoView `V(x) :- R(x), S(x, y)`.
    view_weight: f64,
    /// Weight of the second MarkoView `V2(x, y) :- R(x), S(x, y)` (correlates
    /// individual pairs), or `None` to omit it.
    pair_view_weight: Option<f64>,
}

fn weight_strategy() -> impl Strategy<Value = f64> {
    // Odds between 0.2 and 5, i.e. probabilities between ~0.17 and ~0.83.
    (0.2f64..5.0).prop_map(|w| (w * 100.0).round() / 100.0)
}

fn view_weight_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),                       // denial constraint
        Just(1.0),                       // independence
        (0.1f64..0.9),                   // negative correlation
        (1.1f64..6.0),                   // positive correlation
    ]
    .prop_map(|w| (w * 100.0).round() / 100.0)
}

fn mvdb_strategy() -> impl Strategy<Value = RandomMvdb> {
    let domain = 3usize;
    (
        proptest::collection::vec(weight_strategy(), 1..=domain),
        proptest::collection::vec(((0..domain, 0..domain), weight_strategy()), 1..=4),
        view_weight_strategy(),
        proptest::option::of(view_weight_strategy()),
    )
        .prop_map(|(r_weights, s_weights, view_weight, pair_view_weight)| RandomMvdb {
            r_weights,
            s_weights,
            view_weight,
            pair_view_weight,
        })
}

fn build(desc: &RandomMvdb) -> Mvdb {
    let mut b = MvdbBuilder::new();
    b.relation("R", &["x"]).unwrap();
    b.relation("S", &["x", "y"]).unwrap();
    for (i, w) in desc.r_weights.iter().enumerate() {
        b.weighted_tuple("R", &[Value::int(i as i64)], *w).unwrap();
    }
    let mut seen = std::collections::HashSet::new();
    for ((x, y), w) in &desc.s_weights {
        if seen.insert((*x, *y)) {
            b.weighted_tuple("S", &[Value::int(*x as i64), Value::int(*y as i64)], *w)
                .unwrap();
        }
    }
    b.marko_view(&format!("V(x)[{}] :- R(x), S(x, y)", desc.view_weight))
        .unwrap();
    if let Some(w) = desc.pair_view_weight {
        b.marko_view(&format!("V2(x, y)[{w}] :- R(x), S(x, y)")).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn translated_evaluation_matches_the_mln_semantics(desc in mvdb_strategy()) {
        let mvdb = build(&desc);
        let engine = match MvdbEngine::compile(&mvdb) {
            Ok(e) => e,
            // Denial views can make the MVDB inconsistent (all worlds
            // forbidden); that is a legitimate outcome, not a failure.
            Err(_) => return Ok(()),
        };
        for q_text in [
            "Q() :- R(x), S(x, y)",
            "Q() :- R(x)",
            "Q() :- S(x, y)",
            "Q() :- R(x) ; Q() :- S(x, y)",
            "Q() :- R(0)",
            "Q() :- S(0, y)",
        ] {
            let q = parse_ucq(q_text).unwrap();
            let expected = mvdb.exact_probability(&q).unwrap();
            let via_engine = engine.probability(&q).unwrap();
            prop_assert!(
                (via_engine - expected).abs() < 1e-7,
                "{q_text}: engine {via_engine} vs exact {expected} on {desc:?}"
            );
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&via_engine));
        }
    }

    #[test]
    fn per_answer_probabilities_match_bound_queries(desc in mvdb_strategy()) {
        let mvdb = build(&desc);
        let engine = match MvdbEngine::compile(&mvdb) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        let q = parse_ucq("Q(x) :- R(x), S(x, y)").unwrap();
        for (row, p) in engine.answers(&q).unwrap() {
            let bound = q.bind_head(&row);
            let expected = mvdb.exact_probability(&bound).unwrap();
            prop_assert!((p - expected).abs() < 1e-7, "answer {row:?} on {desc:?}");
        }
    }

    #[test]
    fn marginals_match_for_every_base_tuple(desc in mvdb_strategy()) {
        let mvdb = build(&desc);
        let engine = match MvdbEngine::compile(&mvdb) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        // Marginal of each R tuple: compare MLN semantics and the engine.
        for (i, _) in desc.r_weights.iter().enumerate() {
            let q = parse_ucq(&format!("Q() :- R({i})")).unwrap();
            let expected = mvdb.exact_probability(&q).unwrap();
            let via_engine = engine.probability(&q).unwrap();
            prop_assert!((via_engine - expected).abs() < 1e-7);
        }
    }
}
