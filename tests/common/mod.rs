//! Shared test support: the random small-MVDB generator used by the
//! Theorem 1 property suite and the cross-backend agreement suite. One copy
//! here keeps the two suites exploring the same instance space.

use markoviews::prelude::*;
use proptest::prelude::*;

/// A randomly generated small MVDB description.
#[derive(Debug, Clone)]
pub struct RandomMvdb {
    /// Weights of the R tuples (unary relation over a small domain).
    pub r_weights: Vec<f64>,
    /// Weights of the S tuples, indexed by (x, y) over the small domain.
    pub s_weights: Vec<((usize, usize), f64)>,
    /// Weight of the MarkoView `V(x) :- R(x), S(x, y)`.
    pub view_weight: f64,
    /// Weight of the second MarkoView `V2(x, y) :- R(x), S(x, y)` (correlates
    /// individual pairs), or `None` to omit it.
    pub pair_view_weight: Option<f64>,
}

pub fn weight_strategy() -> impl Strategy<Value = f64> {
    // Odds between 0.2 and 5, i.e. probabilities between ~0.17 and ~0.83.
    (0.2f64..5.0).prop_map(|w| (w * 100.0).round() / 100.0)
}

pub fn view_weight_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),   // denial constraint
        Just(1.0),   // independence
        0.1f64..0.9, // negative correlation
        1.1f64..6.0, // positive correlation
    ]
    .prop_map(|w| (w * 100.0).round() / 100.0)
}

pub fn mvdb_strategy() -> impl Strategy<Value = RandomMvdb> {
    let domain = 3usize;
    (
        proptest::collection::vec(weight_strategy(), 1..=domain),
        proptest::collection::vec(((0..domain, 0..domain), weight_strategy()), 1..=4),
        view_weight_strategy(),
        proptest::option::of(view_weight_strategy()),
    )
        .prop_map(
            |(r_weights, s_weights, view_weight, pair_view_weight)| RandomMvdb {
                r_weights,
                s_weights,
                view_weight,
                pair_view_weight,
            },
        )
}

/// Materialises the description into an MVDB.
pub fn build(desc: &RandomMvdb) -> Mvdb {
    let mut b = MvdbBuilder::new();
    b.relation("R", &["x"]).unwrap();
    b.relation("S", &["x", "y"]).unwrap();
    for (i, w) in desc.r_weights.iter().enumerate() {
        b.weighted_tuple("R", &[Value::int(i as i64)], *w).unwrap();
    }
    let mut seen = std::collections::HashSet::new();
    for ((x, y), w) in &desc.s_weights {
        if seen.insert((*x, *y)) {
            b.weighted_tuple("S", &[Value::int(*x as i64), Value::int(*y as i64)], *w)
                .unwrap();
        }
    }
    b.marko_view(&format!("V(x)[{}] :- R(x), S(x, y)", desc.view_weight))
        .unwrap();
    if let Some(w) = desc.pair_view_weight {
        b.marko_view(&format!("V2(x, y)[{w}] :- R(x), S(x, y)"))
            .unwrap();
    }
    b.build().unwrap()
}
