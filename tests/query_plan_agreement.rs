//! Vectorized / compiled / legacy evaluator agreement on the DBLP corpus.
//!
//! The property suite in `crates/query/tests/plan_agreement.rs` covers
//! random databases; this suite pins the same contract on the *fixed* data
//! the paper's evaluation runs on — the seeded synthetic DBLP generator —
//! across every workload family (Figures 5, 6 and 11) and the translated
//! helper query `W` itself. All comparisons are exact: identical answer
//! sets, identical canonical lineages, identical per-answer lineage maps —
//! between the vectorized batch executor (production), the tuple-at-a-time
//! compiled plan loop (PR-4 oracle) and the legacy backtracking evaluator.

use markoviews::prelude::*;
use markoviews::query::eval::{
    evaluate_ucq_compiled_with, evaluate_ucq_legacy_with, evaluate_ucq_with,
    EvalContext as QueryEvalContext,
};
use markoviews::query::lineage::{
    answer_lineages_compiled_with, answer_lineages_legacy, answer_lineages_with,
    lineage_compiled_with, lineage_legacy_with, lineage_with,
};

#[test]
fn dblp_workloads_agree_between_compiled_and_legacy_evaluators() {
    let data = DblpDataset::generate(DblpConfig::with_authors(120)).unwrap();
    let translated = TranslatedIndb::new(&data.mvdb).unwrap();
    let indb = translated.indb();
    let ctx = QueryEvalContext::new(indb.database());

    let mut workload: Vec<Ucq> = Vec::new();
    workload.extend(data.advisor_of_student_workload(3).unwrap());
    workload.extend(data.students_of_advisor_workload(3).unwrap());
    workload.extend(data.affiliation_workload(2).unwrap());

    for q in &workload {
        // Non-Boolean: answers and per-answer lineages agree exactly.
        let mut vectorized: Vec<Row> = evaluate_ucq_with(q, &ctx)
            .unwrap()
            .into_iter()
            .map(|a| a.row)
            .collect();
        let mut compiled: Vec<Row> = evaluate_ucq_compiled_with(q, &ctx)
            .unwrap()
            .into_iter()
            .map(|a| a.row)
            .collect();
        let mut legacy: Vec<Row> = evaluate_ucq_legacy_with(q, &ctx)
            .unwrap()
            .into_iter()
            .map(|a| a.row)
            .collect();
        vectorized.sort();
        compiled.sort();
        legacy.sort();
        assert_eq!(vectorized, compiled, "vectorized answers diverge on {q}");
        assert_eq!(compiled, legacy, "answers diverge on {q}");

        let per_vectorized = answer_lineages_with(q, indb, &ctx).unwrap();
        let per_compiled = answer_lineages_compiled_with(q, indb, &ctx).unwrap();
        let per_legacy = answer_lineages_legacy(q, indb).unwrap();
        assert_eq!(
            per_vectorized, per_compiled,
            "vectorized answer lineages diverge on {q}"
        );
        assert_eq!(per_compiled, per_legacy, "answer lineages diverge on {q}");

        // Boolean form: canonical lineages agree exactly.
        let b = q.boolean();
        let lin = lineage_with(&b, indb, &ctx).unwrap();
        assert_eq!(
            lin,
            lineage_compiled_with(&b, indb, &ctx).unwrap(),
            "vectorized Boolean lineage diverges on {b}"
        );
        assert_eq!(
            lin,
            lineage_legacy_with(&b, indb, &ctx).unwrap(),
            "Boolean lineage diverges on {b}"
        );
    }

    // The helper query W — the self-join whose lineage dominates the
    // paper's offline phase (Figure 4) — must agree as well, and its scans
    // must actually exercise the zone-map skipping machinery.
    let w = translated.w().expect("the DBLP MVDB has views");
    let lin_w = lineage_with(w, indb, &ctx).unwrap();
    assert_eq!(
        lin_w,
        lineage_compiled_with(w, indb, &ctx).unwrap(),
        "vectorized lineage of W diverges"
    );
    assert_eq!(
        lin_w,
        lineage_legacy_with(w, indb, &ctx).unwrap(),
        "lineage of W diverges"
    );
    let exec = ctx.exec_stats();
    assert!(exec.csr_probe_steps > 0, "W join never probed a CSR index");
    assert!(exec.blocks_scanned > 0, "W join never scanned a block");
}

#[test]
fn engine_probabilities_are_unchanged_by_the_compiled_evaluator() {
    // End-to-end: the MV-index pipeline (which now collects lineage through
    // compiled plans) still matches the brute-force validator on a dataset
    // small enough to enumerate.
    let data = DblpDataset::generate(DblpConfig::with_authors(24)).unwrap();
    let engine = MvdbEngine::compile(&data.mvdb).unwrap();
    let queries = data.students_of_advisor_workload(2).unwrap();
    for q in &queries {
        let b = q.boolean();
        let via_index = engine.probability(&b).unwrap();
        let via_brute = engine
            .probability_with_backend(&b, EngineBackend::Shannon)
            .unwrap();
        assert!(
            (via_index - via_brute).abs() < 1e-9,
            "{b}: {via_index} vs {via_brute}"
        );
    }
}
