//! End-to-end integration test of the paper's running example (Figures 1–2)
//! on a small synthetic DBLP corpus.

use markoviews::dblp::queries;
use markoviews::prelude::*;

fn dataset() -> DblpDataset {
    DblpDataset::generate(DblpConfig::with_authors(64)).expect("generation succeeds")
}

#[test]
fn figure1_schema_is_present() {
    let data = dataset();
    let schema = data.mvdb.base().schema();
    for rel in [
        "Author",
        "Wrote",
        "Pub",
        "HomePage",
        "FirstPub",
        "DBLPAffiliation",
        "Student",
        "Advisor",
        "Affiliation",
    ] {
        assert!(schema.relation_id(rel).is_some(), "missing relation {rel}");
    }
    assert_eq!(data.mvdb.views().len(), 3);
    assert_eq!(data.mvdb.views()[0].name, "V1");
    assert!(data.mvdb.views()[1].is_denial());
    assert_eq!(data.mvdb.views()[2].name, "V3");
}

#[test]
fn the_translation_creates_nv_relations_and_w() {
    let data = dataset();
    let engine = MvdbEngine::compile(&data.mvdb).expect("compiles");
    let translated = engine.translated();
    // NV relations for the non-denial views exist in the translated schema.
    assert!(translated.indb().schema().relation_id("NV_V1").is_some());
    assert!(translated.indb().schema().relation_id("NV_V3").is_some());
    // The denial view contributes a disjunct without an NV atom.
    let w = translated.w().expect("W exists");
    assert!(w.disjuncts.len() >= 3);
    assert!(w
        .disjuncts
        .iter()
        .any(|d| d.atoms.iter().all(|a| !a.relation.starts_with("NV_"))));
    // The index is block-structured: many small OBDDs, not one monolith.
    assert!(engine.index().num_blocks() > 10);
}

#[test]
fn running_example_answers_are_probabilities_and_respect_the_denial_view() {
    let data = dataset();
    let engine = MvdbEngine::compile(&data.mvdb).expect("compiles");

    // Students of each sampled advisor: every probability is a genuine
    // probability even though the translated database has negative weights.
    for q in data.students_of_advisor_workload(5).unwrap() {
        for (_, p) in engine.answers(&q).unwrap() {
            assert!((-1e-9..=1.0 + 1e-9).contains(&p), "P = {p}");
        }
    }

    // The denial view V2 makes simultaneous advisors impossible and therefore
    // the advisor probabilities of one student sum to at most 1.
    for q in data.advisor_of_student_workload(5).unwrap() {
        let answers = engine.answers(&q).unwrap();
        let total: f64 = answers.iter().map(|(_, p)| *p).sum();
        assert!(total <= 1.0 + 1e-6, "advisor probabilities sum to {total}");
    }
}

#[test]
fn name_selection_matches_id_selection() {
    let data = dataset();
    let engine = MvdbEngine::compile(&data.mvdb).expect("compiles");
    let advisor = data.sample_advisors(1)[0];
    let name = data.author_name(advisor).unwrap();
    let by_name = engine
        .answers(&queries::students_of_advisor_named(&name).unwrap())
        .unwrap();
    let by_id = engine
        .answers(&queries::students_of_advisor(advisor).unwrap())
        .unwrap();
    assert_eq!(by_name, by_id);
    assert!(!by_id.is_empty());
}

#[test]
fn both_intersection_algorithms_give_identical_answers() {
    let data = dataset();
    let slow = MvdbEngine::compile_with(&data.mvdb, IntersectAlgorithm::MvIntersect).unwrap();
    let fast = MvdbEngine::compile_with(&data.mvdb, IntersectAlgorithm::CcMvIntersect).unwrap();
    for q in data.students_of_advisor_workload(4).unwrap() {
        let a = slow.answers(&q).unwrap();
        let b = fast.answers(&q).unwrap();
        assert_eq!(a.len(), b.len());
        for ((r1, p1), (r2, p2)) in a.iter().zip(b.iter()) {
            assert_eq!(r1, r2);
            assert!((p1 - p2).abs() < 1e-9);
        }
    }
}

#[test]
fn index_backend_agrees_with_per_query_obdd_and_shannon_backends() {
    // Use a small corpus so that the per-query OBDD / Shannon baselines stay
    // cheap; all three must agree exactly (they are all exact methods).
    let data = DblpDataset::generate(DblpConfig::with_authors(32)).unwrap();
    let engine = MvdbEngine::compile(&data.mvdb).unwrap();
    let student = data.sample_students(1)[0];
    let advisor = data.sample_advisors(1)[0];
    for q_text in [
        format!("Q() :- Student({student}, y), Advisor({student}, a)"),
        format!("Q() :- Advisor(s, {advisor}), Student(s, y)"),
        format!("Q() :- Student({student}, y)"),
    ] {
        let q = parse_ucq(&q_text).unwrap();
        let via_index = engine.probability(&q).unwrap();
        let via_obdd = engine
            .probability_with_backend(&q, EngineBackend::ObddPerQuery)
            .unwrap();
        let via_shannon = engine
            .probability_with_backend(&q, EngineBackend::Shannon)
            .unwrap();
        assert!(
            (via_index - via_obdd).abs() < 1e-6,
            "{q_text}: index {via_index} vs obdd {via_obdd}"
        );
        assert!(
            (via_index - via_shannon).abs() < 1e-6,
            "{q_text}: index {via_index} vs shannon {via_shannon}"
        );
        assert!((0.0..=1.0 + 1e-9).contains(&via_index));
    }
}

#[test]
fn mcsat_baseline_approximates_the_exact_engine() {
    // The Alchemy-style baseline (ground MLN + MC-SAT) should approximate the
    // exact MV-index probabilities on a small corpus.
    let data = DblpDataset::generate(DblpConfig {
        with_affiliation_view: false,
        ..DblpConfig::with_authors(24)
    })
    .unwrap();
    let engine = MvdbEngine::compile(&data.mvdb).unwrap();
    let mln = data.mvdb.to_ground_mln().unwrap();
    let sampler = McSatSampler::new(
        &mln,
        McSatConfig {
            num_samples: 3000,
            burn_in: 300,
            ..McSatConfig::default()
        },
    );
    let student = data.sample_students(1)[0];
    let q = parse_ucq(&format!(
        "Q() :- Student({student}, y), Advisor({student}, a)"
    ))
    .unwrap();
    let exact = engine.probability(&q).unwrap();
    let lineage = mv_query::lineage::lineage(&q, data.mvdb.base()).unwrap();
    let sampled = sampler.run(&[lineage]).unwrap().query_probabilities[0];
    assert!(
        (exact - sampled).abs() < 0.1,
        "MC-SAT {sampled} vs exact {exact}"
    );
}
