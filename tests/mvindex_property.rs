//! Property-based tests of the MV-index: for random translated-style
//! databases and random helper queries `W`, the index computes the same
//! `P0(W)`, `P0(Q ∧ ¬W)` and conditional probabilities as brute-force
//! enumeration, with both intersection algorithms.

use markoviews::mvindex::{IntersectAlgorithm, MvIndex};
use markoviews::pdb::{value::row, InDb, InDbBuilder, Weight};
use markoviews::query::brute::brute_force_lineage_probability;
use markoviews::query::lineage::lineage;
use markoviews::query::{parse_ucq, Ucq};
use proptest::prelude::*;

/// Description of a random translated database: base tuples plus NV tuples
/// whose weights may be negative (as produced by the view translation).
#[derive(Debug, Clone)]
struct RandomTranslated {
    r: Vec<(u8, f64)>,
    s: Vec<(u8, u8, f64)>,
    nv: Vec<(u8, f64)>,
}

fn translated_strategy() -> impl Strategy<Value = RandomTranslated> {
    (
        proptest::collection::vec((0u8..3, 0.2f64..4.0), 1..=3),
        proptest::collection::vec((0u8..3, 0u8..3, 0.2f64..4.0), 1..=5),
        proptest::collection::vec((0u8..3, prop_oneof![-0.9f64..-0.1, 0.1f64..3.0]), 1..=3),
    )
        .prop_map(|(r, s, nv)| RandomTranslated { r, s, nv })
}

fn build(desc: &RandomTranslated) -> InDb {
    let mut b = InDbBuilder::new();
    let r = b.probabilistic_relation("R", &["x"]).unwrap();
    let s = b.probabilistic_relation("S", &["x", "y"]).unwrap();
    let nv = b.probabilistic_relation("NV", &["x"]).unwrap();
    for (x, w) in &desc.r {
        b.insert_weighted(r, row([i64::from(*x)]), Weight::new(*w))
            .unwrap();
    }
    for (x, y, w) in &desc.s {
        b.insert_weighted(s, row([i64::from(*x), i64::from(*y)]), Weight::new(*w))
            .unwrap();
    }
    for (x, w) in &desc.nv {
        b.insert_translated(nv, row([i64::from(*x)]), Weight::new(*w))
            .unwrap();
    }
    b.build()
}

fn w_query() -> Ucq {
    parse_ucq("W() :- NV(x), R(x), S(x, y)").unwrap()
}

/// Reference for `P0(Q ∧ ¬W) = P0(Q ∨ W) − P0(W)` by brute force.
fn reference(q: &Ucq, w: &Ucq, indb: &InDb) -> (f64, f64) {
    let lin_q = lineage(q, indb).unwrap();
    let lin_w = lineage(w, indb).unwrap();
    let p_w = brute_force_lineage_probability(&lin_w, indb);
    let p_q_or_w = brute_force_lineage_probability(&lin_q.or(&lin_w), indb);
    (p_q_or_w - p_w, p_w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn index_probabilities_match_brute_force(desc in translated_strategy()) {
        let indb = build(&desc);
        let w = w_query();
        let index = MvIndex::compile(&indb, &w).unwrap();
        let lin_w = lineage(&w, &indb).unwrap();
        let expected_w = brute_force_lineage_probability(&lin_w, &indb);
        prop_assert!((index.prob_w() - expected_w).abs() < 1e-8,
            "P(W): index {} vs brute {expected_w}", index.prob_w());

        for q_text in [
            "Q() :- R(x), S(x, y)",
            "Q() :- S(x, y)",
            "Q() :- R(0)",
            "Q() :- S(1, y)",
            "Q() :- R(x) ; Q() :- S(x, y)",
        ] {
            let q = parse_ucq(q_text).unwrap();
            let lin_q = lineage(&q, &indb).unwrap();
            let (expected_joint, p_w) = reference(&q, &w, &indb);
            for algo in [IntersectAlgorithm::MvIntersect, IntersectAlgorithm::CcMvIntersect] {
                let joint = index.prob_q_and_not_w(&lin_q, &indb, algo).unwrap();
                prop_assert!(
                    (joint - expected_joint).abs() < 1e-8,
                    "{q_text} ({algo:?}): index {joint} vs brute {expected_joint}"
                );
                let or = index.prob_q_or_w(&lin_q, &indb, algo).unwrap();
                prop_assert!((or - (expected_joint + p_w)).abs() < 1e-8);
                if index.is_consistent() {
                    let cond = index.conditional_probability(&lin_q, &indb, algo).unwrap();
                    prop_assert!((cond - expected_joint / (1.0 - p_w)).abs() < 1e-7);
                }
            }
        }
    }

    #[test]
    fn inter_index_maps_every_constrained_tuple_to_a_block(desc in translated_strategy()) {
        let indb = build(&desc);
        let w = w_query();
        let index = MvIndex::compile(&indb, &w).unwrap();
        let lin_w = lineage(&w, &indb).unwrap();
        for t in lin_w.variables() {
            let block = index.block_of(t);
            prop_assert!(block.is_some(), "tuple {t} of the W lineage has no block");
            let b = block.unwrap();
            prop_assert!(index.block_variables(b).any(|v| v == t));
        }
        // Block sizes add up to the reported total.
        let total: usize = (0..index.num_blocks())
            .map(|_| 0usize)
            .sum::<usize>();
        let _ = total;
        prop_assert_eq!(index.stats().num_blocks, index.num_blocks());
    }
}
