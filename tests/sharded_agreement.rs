//! Sharded vs unsharded agreement: the component-partitioned scale-out
//! path ([`markoviews::core::ShardedEngine`]) must return the same
//! probabilities as the monolithic engine — within 1e-12 — for every exact
//! backend, every shard count, and every routing outcome: queries whose
//! lineage lives in one shard, spans several shards (combined by
//! independence), crosses shards inside a single clause (oracle fallback),
//! or touches zero shards (constant lineage).

use markoviews::prelude::*;
use proptest::prelude::*;

mod common;
use common::{build, mvdb_strategy};

/// Queries covering every routing outcome on the R/S + view fixtures:
/// single-component selections, multi-component disjunctions and scans
/// (per-shard independence combination), deliberate cross-component
/// conjunctions (oracle fallback), and empty-match constants (zero
/// shards).
fn workload() -> Vec<Ucq> {
    [
        "Q() :- R(x), S(x, y)",
        "Q() :- R(x)",
        "Q() :- S(x, y)",
        "Q() :- R(x) ; Q() :- S(x, y)",
        "Q() :- R(0)",
        "Q() :- S(0, y)",
        "Q() :- R(0), S(1, y)",
        "Q() :- R(x), S(y, z)",
        "Q() :- R(9)",
    ]
    .iter()
    .map(|q| parse_ucq(q).unwrap())
    .collect()
}

#[test]
fn running_example_agrees_sharded_and_unsharded() {
    let mut b = MvdbBuilder::new();
    b.relation("R", &["x"]).unwrap();
    b.relation("S", &["x"]).unwrap();
    for (x, (wr, ws)) in [("a", (3.0, 4.0)), ("b", (1.0, 0.5)), ("c", (2.0, 2.0))] {
        b.weighted_tuple("R", &[x], wr).unwrap();
        b.weighted_tuple("S", &[x], ws).unwrap();
    }
    b.marko_view("V(x)[0.5] :- R(x), S(x)").unwrap();
    let mvdb = b.build().unwrap();
    let oracle = MvdbEngine::compile(&mvdb).unwrap();
    for num_shards in [1, 2, 4] {
        let engine = ShardedEngine::compile(&mvdb, num_shards).unwrap();
        for q_text in ["Q() :- R(x), S(x)", "Q() :- R(x)", "Q() :- R('a'), S('b')"] {
            let q = parse_ucq(q_text).unwrap();
            let p = engine.probability(&q).unwrap();
            let reference = oracle.probability(&q).unwrap();
            assert!(
                (p - reference).abs() < 1e-12,
                "{q_text} at {num_shards} shards: {p} vs {reference}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_probabilities_match_the_unsharded_oracle(desc in mvdb_strategy()) {
        let mvdb = build(&desc);
        let oracle = match MvdbEngine::compile(&mvdb) {
            Ok(e) => e,
            // Denial views can make the MVDB inconsistent; nothing to
            // compare in that case.
            Err(_) => return Ok(()),
        };
        let queries = workload();
        let reference: Vec<f64> = queries
            .iter()
            .map(|q| oracle.probability(q).unwrap())
            .collect();
        for num_shards in [1, 2, 3] {
            let engine = ShardedEngine::from_engine(oracle.clone(), num_shards).unwrap();
            let session = engine.session();
            for selector in EngineBackend::comparison_suite() {
                let batch = session
                    .probabilities_with_backend(&queries, selector)
                    .unwrap();
                for ((q, r), p) in queries.iter().zip(&reference).zip(&batch) {
                    prop_assert!(
                        (r - p).abs() < 1e-12,
                        "{} via {:?} at {} shards: {} vs oracle {} on {:?}",
                        q, selector, num_shards, p, r, desc
                    );
                }
            }
            // The workload exercises the whole routing spectrum whenever
            // the database has more than one component: "Q() :- R(9)" never
            // matches (zero shards), and the multi-scan queries either
            // combine across shards or fall back.
            let _ = session.probabilities(&queries).unwrap();
            prop_assert_eq!(session.last_shard_queries().len(), num_shards);
        }
    }
}
