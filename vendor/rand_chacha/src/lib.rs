//! Offline stand-in for `rand_chacha`: exposes a [`ChaCha8Rng`] name backed
//! by the vendored deterministic generator. Callers only rely on the type
//! being a seedable, reproducible [`rand::RngCore`]; they do not depend on
//! the actual ChaCha stream, so the xoshiro-based state is a faithful
//! substitute for every use in this workspace (seeded dataset generation and
//! randomized tests).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng, Xoshiro256};

/// Deterministic seedable generator standing in for the ChaCha8 stream
/// cipher RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng(Xoshiro256);

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Domain-separate from StdRng so the two streams differ.
        ChaCha8Rng(Xoshiro256::new(seed ^ 0xc8ac_8ac8_ac8a_c8ac))
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_distinct_from_stdrng() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = ChaCha8Rng::seed_from_u64(5);
        let mut d = rand::rngs::StdRng::seed_from_u64(5);
        assert_ne!(c.next_u64(), d.next_u64());
        let _: f64 = c.gen_range(0.0..1.0);
    }
}
