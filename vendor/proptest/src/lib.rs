//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses: the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`prop_oneof!`], [`strategy::Just`], numeric range strategies, tuple
//! strategies, [`collection::vec`], [`option::of`] and a loose string
//! strategy for `&str` regex patterns.
//!
//! Semantics: each `#[test]` inside [`proptest!`] runs `cases` times (from
//! the active [`test_runner::ProptestConfig`]) with inputs drawn from the
//! strategies by a generator seeded deterministically from the test name, so
//! failures reproduce across runs. There is **no shrinking** — a failing
//! case panics with the generated inputs formatted into the message. That is
//! a deliberate simplification: the build environment cannot reach crates.io
//! and this shim only has to make the existing property suites compile and
//! run offline.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Config and error types mirroring `proptest::test_runner`.

    use rand::prelude::*;

    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        ///
        /// As in the real `proptest`, the `PROPTEST_CASES` environment
        /// variable can raise the count: the effective number of cases is
        /// `max(cases, PROPTEST_CASES)`, so nightly-style CI jobs can deepen
        /// every suite at once without touching the per-suite settings
        /// (which act as minima, not exact counts).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases: cases.max(Self::env_cases().unwrap_or(0)),
            }
        }

        /// The `PROPTEST_CASES` override, if set and parseable.
        fn env_cases() -> Option<u32> {
            std::env::var("PROPTEST_CASES").ok()?.parse().ok()
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self::with_cases(64)
        }
    }

    /// A failed property case (carries the formatted assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps an assertion failure message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator from a test name, so each property has its
        /// own reproducible stream. Uses FNV-1a rather than the standard
        /// library's `DefaultHasher`, whose algorithm may change between
        /// Rust releases — the stream must be stable across toolchains.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<T: ?Sized + Strategy> Strategy for Rc<T> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy behind a shared pointer (used by [`prop_oneof!`]).
    pub fn rc_strategy<S>(s: S) -> Rc<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Rc::new(s)
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A weighted choice between strategies of one value type (built by
    /// [`prop_oneof!`]).
    pub struct Union<T> {
        variants: Vec<(u32, Rc<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// Builds the union; weights must not all be zero.
        pub fn new(variants: Vec<(u32, Rc<dyn Strategy<Value = T>>)>) -> Self {
            assert!(
                variants.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs at least one positive weight"
            );
            Union { variants }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                variants: self.variants.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u32 = self.variants.iter().map(|(w, _)| w).sum();
            let mut pick = rng.gen_range(0..total);
            for (w, s) in &self.variants {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// String strategy from a `&str` pattern.
    ///
    /// Real proptest interprets the pattern as a regex; this stand-in only
    /// honours a trailing `{m,n}` repetition count (as in `"\\PC{0,60}"`)
    /// and otherwise generates arbitrary printable characters — sufficient
    /// for the "parser never panics" style fuzz tests that use it.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_repetition(self).unwrap_or((0, 32));
            let len = rng.gen_range(min..=max);
            (0..len).map(|_| random_char(rng)).collect()
        }
    }

    fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let open = body.rfind('{')?;
        let (min, max) = body[open + 1..].split_once(',')?;
        Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
    }

    fn random_char(rng: &mut TestRng) -> char {
        const POOL: &[char] = &[
            'a',
            'b',
            'z',
            'Q',
            'R',
            'S',
            '0',
            '1',
            '9',
            ' ',
            '\t',
            '(',
            ')',
            ',',
            ';',
            ':',
            '-',
            '<',
            '>',
            '=',
            '\'',
            '"',
            '%',
            '_',
            '.',
            '[',
            ']',
            '!',
            '|',
            '\\',
            'é',
            'λ',
            '旁',
            '\u{1F600}',
        ];
        POOL[rng.gen_range(0..POOL.len())]
    }
}

pub mod collection {
    //! `proptest::collection` — vector strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `proptest::option` — optional values.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Generates `None` or `Some` of the inner strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of`: `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything the property suites import.
pub mod prelude {
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::rc_strategy($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::rc_strategy($strategy))),+
        ])
    };
}

/// Fallible assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fallible equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)*), left, right),
            ));
        }
    }};
}

/// Declares property tests: each inner `#[test] fn name(arg in strategy, …)`
/// runs `cases` times with generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand $config; $($rest)*);
    };
    (@expand $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property {} failed at case {}/{}: {}\ninputs: {:?}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        ($(&$arg,)+)
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1usize..5, y in 0.5f64..2.0) {
            prop_assert!((1..5).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u8..3, 0.1f64..1.0), 1..=4),
            o in crate::option::of(prop_oneof![1 => Just(1i64), 2 => 5i64..9]),
            s in "\\PC{0,10}",
        ) {
            prop_assert!((1..=4).contains(&v.len()));
            if let Some(x) = o {
                prop_assert!(x == 1 || (5..9).contains(&x), "got {x}");
            }
            prop_assert!(s.chars().count() <= 10);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    fn prop_map_and_clone_work() {
        let base = prop_oneof![Just("x"), Just("y")];
        let upper = base.clone().prop_map(|s| s.to_uppercase());
        let mut rng = crate::test_runner::TestRng::deterministic("clone");
        for _ in 0..10 {
            let v = upper.generate(&mut rng);
            assert!(v == "X" || v == "Y");
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            @expand ProptestConfig::with_cases(4);
            fn inner(x in 0u8..10) {
                prop_assert!(x > 200, "x was {x}");
            }
        }
        inner();
    }
}
