//! Offline stand-in for the `fxhash` crate: the FxHash function used by the
//! Rust compiler (a multiply-and-rotate mix, not SipHash), behind the usual
//! names — [`FxHasher`], [`FxBuildHasher`], [`FxHashMap`], [`FxHashSet`].
//!
//! FxHash trades DoS resistance for raw speed: a single rotate/xor/multiply
//! per word instead of SipHash's four rounds. That is the right trade for
//! every *internal* table of this workspace — tables keyed by dense ids,
//! tuple ids or small tuples the process itself generated, where an
//! adversary controls nothing. Do **not** use it for tables keyed by
//! untrusted external input.
//!
//! The implementation follows the classic `rustc-hash`/`fxhash` scheme: the
//! state is one `u64`, and each word `w` is folded in as
//! `state = (state.rotate_left(5) ^ w) * SEED` with the pi-derived seed
//! `0x51_7c_c1_b7_27_22_0a_95`. Byte slices are consumed eight bytes at a
//! time, so hashing a `(u32, u32, u32)` key costs a handful of arithmetic
//! instructions.

#![forbid(unsafe_code)]

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative seed of the Fx mix (from `rustc-hash`; derived from
/// pi and chosen for good bit dispersion under multiplication).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher (the rustc FxHash function).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`std::collections::HashMap`] using FxHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A [`std::collections::HashSet`] using FxHash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes one value with FxHash (convenience for ad-hoc slot selection in
/// open-addressed tables).
pub fn hash64(value: impl std::hash::Hash) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_behave_like_std() {
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i.wrapping_mul(31)), i);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(map.get(&(i, i.wrapping_mul(31))), Some(&i));
        }
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(42));
        assert!(!set.insert(42));
        assert!(set.contains(&42));
    }

    #[test]
    fn hashing_is_deterministic_and_disperses() {
        assert_eq!(hash64(12345u64), hash64(12345u64));
        assert_ne!(hash64(1u64), hash64(2u64));
        // Sequential keys should not collide in the low bits (the property
        // direct-mapped tables rely on).
        let mask = (1u64 << 16) - 1;
        let slots: FxHashSet<u64> = (0..1000u64).map(|i| (hash64(i) >> 32) & mask).collect();
        assert!(slots.len() > 900, "only {} distinct slots", slots.len());
    }

    #[test]
    fn byte_slices_of_different_lengths_differ() {
        assert_ne!(hash64([0u8; 3].as_slice()), hash64([0u8; 4].as_slice()));
        assert_ne!(hash64(b"hello".as_slice()), hash64(b"hellp".as_slice()));
    }
}
