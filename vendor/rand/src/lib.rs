//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible implementation of the pieces it needs:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`), [`rngs::StdRng`] and a `prelude`. All generators
//! are deterministic (SplitMix64 seeded state driving xoshiro256**), which is
//! exactly what the callers want: every dataset, sampler and randomized test
//! in this repository runs from a fixed seed.
//!
//! This is **not** a cryptographically secure or statistically certified
//! generator; it exists so that `cargo build`/`cargo test` work offline. If
//! the real `rand` crate becomes available, deleting `vendor/` and switching
//! the path dependencies back to a version requirement is all that is needed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" (uniform) distribution via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random `u64` to `[0, bound)` without modulo bias worth worrying
/// about at the scales used here.
fn bounded(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty range");
    // Multiply-shift reduction (Lemire); bias is < 2^-64 * bound.
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // `start + u * span` can round up to `end`; clamp to keep the
        // half-open contract.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        start + u * (end - start)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// One value from the uniform/"standard" distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// One value uniform in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The xoshiro256** generator state shared by [`rngs::StdRng`] and the
/// vendored `rand_chacha` stand-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the four state words with SplitMix64, as recommended by the
    /// xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The workspace's standard deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::new(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Everything a caller typically wants in scope.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
