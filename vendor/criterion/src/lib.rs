//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses: [`Criterion`], benchmark groups with `sample_size` /
//! `measurement_time` / `bench_with_input`, [`BenchmarkId`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs each benchmark a
//! fixed number of iterations (after one warm-up), reports min / mean wall
//! time on stdout, and honours `--bench <filter>`-style substring filtering
//! of benchmark ids passed on the command line. That keeps `cargo bench`
//! useful as a smoke benchmark in an environment without crates.io access.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, as rendered by real criterion.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filters: Vec<String>,
}

impl Criterion {
    /// Reads benchmark name filters from the command line (any non-flag
    /// argument is treated as a substring filter, like real criterion).
    pub fn configure_from_args(mut self) -> Self {
        self.filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if self.enabled(id) {
            let mut b = Bencher::new(10);
            f(&mut b);
            b.report(id);
        }
    }

    fn enabled(&self, full_id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_id.contains(f.as_str()))
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in always runs exactly
    /// `sample_size` iterations regardless of the requested wall-clock
    /// budget.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.id);
        if self.criterion.enabled(&full_id) {
            let mut b = Bencher::new(self.sample_size);
            f(&mut b, input);
            b.report(&full_id);
        }
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full_id = format!("{}/{}", self.name, id.id);
        if self.criterion.enabled(&full_id) {
            let mut b = Bencher::new(self.sample_size);
            f(&mut b);
            b.report(&full_id);
        }
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the payload.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            recorded: Vec::new(),
        }
    }

    /// Times `payload` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        black_box(payload()); // warm-up, untimed
        self.recorded.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(payload());
            self.recorded.push(t.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.recorded.is_empty() {
            println!("{id:<60} (no samples)");
            return;
        }
        let min = self.recorded.iter().min().expect("non-empty");
        let total: Duration = self.recorded.iter().sum();
        let mean = total / self.recorded.len() as u32;
        println!(
            "{id:<60} min {:>12.6} ms   mean {:>12.6} ms   ({} samples)",
            min.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
            self.recorded.len()
        );
    }
}

/// Declares a group-runner function over a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(1));
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn filters_skip_non_matching_benchmarks() {
        let c = Criterion {
            filters: vec!["fig9".into()],
        };
        assert!(c.enabled("fig9_intersection/mv_intersect/1000"));
        assert!(!c.enabled("fig5_advisor/mv_index/1000"));
    }
}
