//! # `mv-dblp` — a synthetic DBLP-like dataset with MarkoViews
//!
//! The paper's evaluation (Section 5) runs on the DBLP bibliography enriched
//! with the probabilistic tables and MarkoViews of Figure 1. The DBLP dump
//! itself is not available in this environment, so this crate generates a
//! *synthetic* co-authorship corpus with the same schema, the same derived
//! views, the same probabilistic tables (with the weight formulas of
//! Figure 1) and the same three MarkoViews, scalable through the number of
//! authors (`aid` domain) — exactly the knob the paper's experiments vary.
//!
//! What is generated (all sizes reported in [`DatasetStats`]):
//!
//! | table | kind | contents |
//! |-------|------|----------|
//! | `Author(aid, name)` | deterministic | one row per author; group seniors are named `prof…`, juniors `author…` |
//! | `Wrote(aid, pid)` | deterministic | co-authorship edges |
//! | `Pub(pid, title, year)` | deterministic | publications with years |
//! | `HomePage(aid, url)` | deterministic | home pages of the seniors |
//! | `FirstPub(aid, year)` | deterministic (derived) | first publication year per author |
//! | `DBLPAffiliation(aid, inst)` | deterministic (derived) | affiliations extracted from home pages |
//! | `CoPubRecent(aid1, aid2)` | deterministic (derived) | author pairs with many recent joint papers (the materialised aggregate sub-query of V3, footnote 3) |
//! | `Student(aid, year)` | probabilistic | weight `exp(1 − 0.15·(year − year_first))` |
//! | `Advisor(aid1, aid2)` | probabilistic | weight `exp(0.25·copubs)` |
//! | `Affiliation(aid, inst)` | probabilistic | weight `exp(0.1·copubs)` |
//! | `V1(aid1, aid2)[copubs/2]` | MarkoView | student/advisor positive correlation |
//! | `V2(aid1, aid2, aid3)[0]` | MarkoView | "a person has only one advisor" (denial) |
//! | `V3(aid1, aid2, inst)[recent_copubs/2]` | MarkoView | shared affiliation of frequent co-authors |
//!
//! The generator is fully deterministic given the seed in [`DblpConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod queries;

pub use generate::{DatasetStats, DblpConfig, DblpDataset};
