//! The synthetic DBLP generator.

use std::collections::{BTreeMap, BTreeSet};

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use mv_core::{MarkoView, Mvdb, MvdbBuilder, Result};
use mv_pdb::Value;
use mv_query::parse_ucq;

/// Configuration of the synthetic DBLP corpus.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of authors (the `aid` domain of the paper's experiments).
    pub num_authors: usize,
    /// Authors per research group; co-authorship happens within groups.
    pub group_size: usize,
    /// Average number of papers written by each junior author.
    pub pubs_per_author: usize,
    /// Earliest publication year.
    pub min_year: i64,
    /// Latest publication year.
    pub max_year: i64,
    /// Publications after this year count as "recent" for V3.
    pub recent_year: i64,
    /// Minimum number of joint papers for an `Advisor` possible tuple
    /// (`count(pid) > 2` in Figure 1, scaled to the synthetic corpus).
    pub advisor_copub_threshold: usize,
    /// Minimum number of recent joint papers for a `CoPubRecent` pair
    /// (`count(pid) > 30` in Figure 1, scaled to the synthetic corpus).
    pub recent_copub_threshold: usize,
    /// Whether to include the affiliation table and the V3 MarkoView
    /// (the Alchemy comparison of Section 5.1 uses only V1 and V2).
    pub with_affiliation_view: bool,
    /// RNG seed; the generator is deterministic given the seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            num_authors: 1000,
            group_size: 8,
            pubs_per_author: 3,
            min_year: 1995,
            max_year: 2015,
            recent_year: 2004,
            advisor_copub_threshold: 2,
            recent_copub_threshold: 2,
            with_affiliation_view: true,
            seed: 0xdb1b,
        }
    }
}

impl DblpConfig {
    /// A configuration with the given `aid` domain and everything else at the
    /// defaults (the knob varied by Figures 4–9).
    pub fn with_authors(num_authors: usize) -> Self {
        DblpConfig {
            num_authors,
            ..DblpConfig::default()
        }
    }
}

/// Table sizes of a generated dataset (the contents of the Figure 1 table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatasetStats {
    /// Rows of `Author`.
    pub author: usize,
    /// Rows of `Wrote`.
    pub wrote: usize,
    /// Rows of `Pub`.
    pub publication: usize,
    /// Rows of `HomePage`.
    pub homepage: usize,
    /// Rows of `FirstPub`.
    pub first_pub: usize,
    /// Rows of `DBLPAffiliation`.
    pub dblp_affiliation: usize,
    /// Rows of `CoPubRecent`.
    pub co_pub_recent: usize,
    /// Possible tuples of `Student`.
    pub student: usize,
    /// Possible tuples of `Advisor`.
    pub advisor: usize,
    /// Possible tuples of `Affiliation`.
    pub affiliation: usize,
    /// Output tuples of MarkoView V1.
    pub v1: usize,
    /// Output tuples of MarkoView V2.
    pub v2: usize,
    /// Output tuples of MarkoView V3.
    pub v3: usize,
}

/// A generated dataset: the MVDB plus bookkeeping useful to the benchmarks.
#[derive(Debug)]
pub struct DblpDataset {
    /// The MVDB (base tables plus MarkoViews).
    pub mvdb: Mvdb,
    /// The configuration the dataset was generated from.
    pub config: DblpConfig,
    /// Table sizes.
    pub stats: DatasetStats,
    /// Authors that appear as advisors (second column of `Advisor`).
    pub advisors: Vec<i64>,
    /// Authors that appear as students (first column of `Advisor`).
    pub students: Vec<i64>,
    /// Authors with at least one possible `Affiliation` tuple.
    pub affiliated_authors: Vec<i64>,
}

impl DblpDataset {
    /// Generates a dataset.
    pub fn generate(config: DblpConfig) -> Result<DblpDataset> {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let n = config.num_authors.max(config.group_size);
        let group_size = config.group_size.max(2);
        let num_universities = (n / 50).max(2);

        // ----- authors, groups, seniors -------------------------------------
        let group_of = |aid: i64| ((aid - 1) as usize) / group_size;
        let num_seniors_per_group = 2.min(group_size - 1).max(1);
        let is_senior = |aid: i64| ((aid - 1) as usize) % group_size < num_seniors_per_group;

        // ----- publications --------------------------------------------------
        // pubs[pid] = (year, authors)
        let mut pubs: Vec<(i64, Vec<i64>)> = Vec::new();
        let mut pubs_of: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
        let add_pub = |year: i64,
                       authors: Vec<i64>,
                       pubs: &mut Vec<(i64, Vec<i64>)>,
                       pubs_of: &mut BTreeMap<i64, Vec<usize>>| {
            let pid = pubs.len();
            for &a in &authors {
                pubs_of.entry(a).or_default().push(pid);
            }
            pubs.push((year, authors));
        };

        for aid in 1..=n as i64 {
            if is_senior(aid) {
                continue;
            }
            let g = group_of(aid);
            let seniors: Vec<i64> = (1..=n as i64)
                .filter(|&a| group_of(a) == g && is_senior(a))
                .collect();
            if seniors.is_empty() {
                continue;
            }
            // A junior publishes mostly with one "main" senior.
            let main_senior = seniors[rng.gen_range(0..seniors.len())];
            let first_year = rng.gen_range(config.min_year..=config.max_year - 5);
            for k in 0..config.pubs_per_author {
                let year = (first_year + k as i64 + rng.gen_range(0..2i64)).min(config.max_year);
                let mut authors = vec![aid, main_senior];
                // Sometimes another senior or another junior joins.
                if rng.gen_bool(0.25) && seniors.len() > 1 {
                    let other = seniors[rng.gen_range(0..seniors.len())];
                    if !authors.contains(&other) {
                        authors.push(other);
                    }
                }
                if rng.gen_bool(0.4) {
                    let start = (g * group_size + 1) as i64;
                    let end = (((g + 1) * group_size).min(n)) as i64;
                    let other = rng.gen_range(start..=end);
                    if !is_senior(other) && !authors.contains(&other) {
                        authors.push(other);
                    }
                }
                add_pub(year, authors, &mut pubs, &mut pubs_of);
            }
        }
        // A couple of senior-only papers per group, to give seniors a history.
        for aid in 1..=n as i64 {
            if is_senior(aid) && rng.gen_bool(0.8) {
                let year = rng.gen_range(config.min_year..=config.max_year);
                add_pub(year, vec![aid], &mut pubs, &mut pubs_of);
            }
        }

        // ----- derived statistics -------------------------------------------
        let first_pub_year: BTreeMap<i64, i64> = pubs_of
            .iter()
            .map(|(&aid, pids)| {
                let y = pids.iter().map(|&p| pubs[p].0).min().expect("non-empty");
                (aid, y)
            })
            .collect();

        // Joint publication counts (all years, and recent only).
        let mut copubs: BTreeMap<(i64, i64), usize> = BTreeMap::new();
        let mut recent_copubs: BTreeMap<(i64, i64), usize> = BTreeMap::new();
        for (year, authors) in &pubs {
            for i in 0..authors.len() {
                for j in 0..authors.len() {
                    if i == j {
                        continue;
                    }
                    *copubs.entry((authors[i], authors[j])).or_default() += 1;
                    if *year > config.recent_year {
                        *recent_copubs.entry((authors[i], authors[j])).or_default() += 1;
                    }
                }
            }
        }

        // ----- build the MVDB -------------------------------------------------
        let mut b = MvdbBuilder::new();
        b.deterministic_relation("Author", &["aid", "name"])?;
        b.deterministic_relation("Wrote", &["aid", "pid"])?;
        b.deterministic_relation("Pub", &["pid", "title", "year"])?;
        b.deterministic_relation("HomePage", &["aid", "url"])?;
        b.deterministic_relation("FirstPub", &["aid", "year"])?;
        b.deterministic_relation("DBLPAffiliation", &["aid", "inst"])?;
        b.deterministic_relation("CoPubRecent", &["aid1", "aid2"])?;
        b.relation("Student", &["aid", "year"])?;
        b.relation("Advisor", &["aid1", "aid2"])?;
        b.relation("Affiliation", &["aid", "inst"])?;

        let mut stats = DatasetStats::default();

        for aid in 1..=n as i64 {
            let name = if is_senior(aid) {
                format!("prof{aid:06}")
            } else {
                format!("author{aid:06}")
            };
            b.fact("Author", &[Value::int(aid), Value::str(name)])?;
            stats.author += 1;
        }
        for (pid, (year, authors)) in pubs.iter().enumerate() {
            b.fact(
                "Pub",
                &[
                    Value::int(pid as i64),
                    Value::str(format!("title{pid:07}")),
                    Value::int(*year),
                ],
            )?;
            stats.publication += 1;
            for &aid in authors {
                b.fact("Wrote", &[Value::int(aid), Value::int(pid as i64)])?;
                stats.wrote += 1;
            }
        }
        for aid in 1..=n as i64 {
            if is_senior(aid) {
                let inst = format!("univ{:03}", group_of(aid) % num_universities);
                b.fact(
                    "HomePage",
                    &[
                        Value::int(aid),
                        Value::str(format!("http://{inst}.edu/~a{aid}")),
                    ],
                )?;
                stats.homepage += 1;
                b.fact("DBLPAffiliation", &[Value::int(aid), Value::str(inst)])?;
                stats.dblp_affiliation += 1;
            }
        }
        for (&aid, &year) in &first_pub_year {
            b.fact("FirstPub", &[Value::int(aid), Value::int(year)])?;
            stats.first_pub += 1;
        }

        // Student possible tuples.
        for (&aid, &fp) in &first_pub_year {
            if is_senior(aid) {
                continue;
            }
            for year in fp..=(fp + 5).min(config.max_year) {
                let w = (1.0 - 0.15 * (year - fp) as f64).exp();
                b.weighted_tuple("Student", &[Value::int(aid), Value::int(year)], w)?;
                stats.student += 1;
            }
        }

        // Advisor possible tuples and the V1 weight map.
        let mut advisors: BTreeSet<i64> = BTreeSet::new();
        let mut students: BTreeSet<i64> = BTreeSet::new();
        let mut v1_weights: BTreeMap<(i64, i64), f64> = BTreeMap::new();
        for (&(a1, a2), &c) in &copubs {
            if is_senior(a1) || !is_senior(a2) {
                continue;
            }
            if c < config.advisor_copub_threshold {
                continue;
            }
            let w = (0.25 * c as f64).exp();
            b.weighted_tuple("Advisor", &[Value::int(a1), Value::int(a2)], w)?;
            stats.advisor += 1;
            advisors.insert(a2);
            students.insert(a1);
            v1_weights.insert((a1, a2), c as f64 / 2.0);
        }

        // Affiliation possible tuples (juniors inherit candidate affiliations
        // from the seniors they publish with).
        let mut affiliated: BTreeSet<i64> = BTreeSet::new();
        let mut inst_copubs: BTreeMap<(i64, String), usize> = BTreeMap::new();
        for (&(a1, a2), &c) in &copubs {
            if is_senior(a1) || !is_senior(a2) {
                continue;
            }
            let inst = format!("univ{:03}", group_of(a2) % num_universities);
            *inst_copubs.entry((a1, inst)).or_default() += c;
        }
        if config.with_affiliation_view {
            for (&(aid, ref inst), &c) in &inst_copubs {
                let w = (0.1 * c as f64).exp();
                b.weighted_tuple(
                    "Affiliation",
                    &[Value::int(aid), Value::str(inst.clone())],
                    w,
                )?;
                stats.affiliation += 1;
                affiliated.insert(aid);
            }
        }

        // CoPubRecent derived table (the materialised aggregate of V3).
        let mut recent_pairs: BTreeSet<(i64, i64)> = BTreeSet::new();
        for (&(a1, a2), &c) in &recent_copubs {
            if is_senior(a1) || is_senior(a2) || a1 >= a2 {
                continue;
            }
            if c >= config.recent_copub_threshold {
                recent_pairs.insert((a1, a2));
            }
        }
        let mut v3_weights: BTreeMap<(i64, i64), f64> = BTreeMap::new();
        if config.with_affiliation_view {
            for &(a1, a2) in &recent_pairs {
                b.fact("CoPubRecent", &[Value::int(a1), Value::int(a2)])?;
                stats.co_pub_recent += 1;
                let c = recent_copubs.get(&(a1, a2)).copied().unwrap_or(0);
                v3_weights.insert((a1, a2), c as f64 / 2.0);
            }
        }

        // ----- MarkoViews -----------------------------------------------------
        // V1: the more papers aid1 and aid2 co-authored while aid1 was a
        // student, the more likely aid2 was aid1's advisor.
        let v1_query = parse_ucq(
            "V1(aid1, aid2) :- Advisor(aid1, aid2), Student(aid1, year), \
             Wrote(aid1, pid), Wrote(aid2, pid), Pub(pid, title, year)",
        )?;
        let v1_map = v1_weights.clone();
        b.add_view(MarkoView::with_weight_fn("V1", v1_query, move |row| {
            let a1 = row[0].as_int().unwrap_or(0);
            let a2 = row[1].as_int().unwrap_or(0);
            *v1_map.get(&(a1, a2)).unwrap_or(&1.0)
        }));

        // V2: a person has only one advisor (denial constraint).
        b.marko_view(
            "V2(aid1, aid2, aid3)[0] :- Advisor(aid1, aid2), Advisor(aid1, aid3), aid2 <> aid3",
        )?;

        // V3: frequent recent co-authors very likely share an affiliation.
        if config.with_affiliation_view {
            let v3_query = parse_ucq(
                "V3(aid1, aid2, inst) :- Affiliation(aid1, inst), Affiliation(aid2, inst), \
                 CoPubRecent(aid1, aid2)",
            )?;
            let v3_map = v3_weights.clone();
            b.add_view(MarkoView::with_weight_fn("V3", v3_query, move |row| {
                let a1 = row[0].as_int().unwrap_or(0);
                let a2 = row[1].as_int().unwrap_or(0);
                (*v3_map.get(&(a1, a2)).unwrap_or(&1.0)).max(1.0)
            }));
        }

        let mvdb = b.build()?;

        // View output sizes for the Figure 1 inventory.
        stats.v1 = mvdb.view_output(&mvdb.views()[0])?.len();
        stats.v2 = mvdb.view_output(&mvdb.views()[1])?.len();
        stats.v3 = if config.with_affiliation_view {
            mvdb.view_output(&mvdb.views()[2])?.len()
        } else {
            0
        };

        Ok(DblpDataset {
            mvdb,
            config,
            stats,
            advisors: advisors.into_iter().collect(),
            students: students.into_iter().collect(),
            affiliated_authors: affiliated.into_iter().collect(),
        })
    }

    /// A deterministic sample of advisor ids (for the query workloads).
    pub fn sample_advisors(&self, count: usize) -> Vec<i64> {
        sample_evenly(&self.advisors, count)
    }

    /// A deterministic sample of student ids.
    pub fn sample_students(&self, count: usize) -> Vec<i64> {
        sample_evenly(&self.students, count)
    }

    /// A deterministic sample of authors with possible affiliations.
    pub fn sample_affiliated_authors(&self, count: usize) -> Vec<i64> {
        sample_evenly(&self.affiliated_authors, count)
    }
}

/// Picks `count` elements spread evenly across the slice.
fn sample_evenly(items: &[i64], count: usize) -> Vec<i64> {
    if items.is_empty() || count == 0 {
        return Vec::new();
    }
    let count = count.min(items.len());
    (0..count).map(|i| items[i * items.len() / count]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_given_the_seed() {
        let cfg = DblpConfig::with_authors(60);
        let a = DblpDataset::generate(cfg.clone()).unwrap();
        let b = DblpDataset::generate(cfg).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.advisors, b.advisors);
    }

    #[test]
    fn stats_reflect_the_schema_of_figure_1() {
        let data = DblpDataset::generate(DblpConfig::with_authors(80)).unwrap();
        let s = data.stats;
        assert_eq!(s.author, 80);
        assert!(s.publication > 0);
        assert!(s.wrote >= s.publication);
        assert!(s.first_pub > 0);
        assert!(s.homepage == s.dblp_affiliation);
        assert!(s.student > 0);
        assert!(s.advisor > 0);
        // Every junior has up to 6 student-year tuples.
        assert!(s.student <= 6 * s.author);
        assert!(s.v1 > 0, "V1 must have outputs");
        assert!(
            s.v2 > 0,
            "V2 must have outputs (students with 2 candidate advisors)"
        );
        assert!(!data.advisors.is_empty());
        assert!(!data.students.is_empty());
    }

    #[test]
    fn advisor_weights_follow_the_figure_1_formula() {
        let data = DblpDataset::generate(DblpConfig::with_authors(60)).unwrap();
        let indb = data.mvdb.base();
        let advisor = indb.schema().relation_id("Advisor").unwrap();
        let rel = indb.database().relation(advisor);
        assert!(!rel.is_empty());
        for (row_index, _row) in rel.iter() {
            let id = indb.tuple_id(advisor, row_index).unwrap();
            let w = indb.weight(id).value();
            // exp(0.25 * c) for c >= 2.
            assert!(w >= (0.25f64 * 2.0).exp() - 1e-9);
        }
    }

    #[test]
    fn student_weights_decay_with_years_since_first_publication() {
        let data = DblpDataset::generate(DblpConfig::with_authors(60)).unwrap();
        let indb = data.mvdb.base();
        let student = indb.schema().relation_id("Student").unwrap();
        let rel = indb.database().relation(student);
        // Group tuples per author and check that weights are non-increasing
        // in the year.
        let mut per_author: BTreeMap<i64, Vec<(i64, f64)>> = BTreeMap::new();
        for (row_index, row) in rel.iter() {
            let id = indb.tuple_id(student, row_index).unwrap();
            per_author
                .entry(row[0].as_int().unwrap())
                .or_default()
                .push((row[1].as_int().unwrap(), indb.weight(id).value()));
        }
        for (_aid, mut tuples) in per_author {
            tuples.sort_by_key(|t| t.0);
            for pair in tuples.windows(2) {
                assert!(pair[0].1 >= pair[1].1 - 1e-9);
            }
        }
    }

    #[test]
    fn small_datasets_disable_the_affiliation_view_cleanly() {
        let cfg = DblpConfig {
            with_affiliation_view: false,
            ..DblpConfig::with_authors(40)
        };
        let data = DblpDataset::generate(cfg).unwrap();
        assert_eq!(data.stats.affiliation, 0);
        assert_eq!(data.stats.v3, 0);
        assert_eq!(data.mvdb.views().len(), 2);
    }

    #[test]
    fn sampling_helpers_are_bounded_and_deterministic() {
        let data = DblpDataset::generate(DblpConfig::with_authors(80)).unwrap();
        let a = data.sample_advisors(5);
        assert!(a.len() <= 5);
        assert_eq!(a, data.sample_advisors(5));
        assert!(data.sample_students(3).len() <= 3);
        assert!(sample_evenly(&[], 3).is_empty());
        assert_eq!(sample_evenly(&[7], 3), vec![7]);
    }
}
