//! The query workloads of the paper's evaluation.
//!
//! Section 5 evaluates three query families over the DBLP MVDB:
//!
//! * *find the advisor of a student X* (Figure 5),
//! * *find all students of an advisor Y* (Figures 6 and 10) — the running
//!   example of Figure 2 when the advisor is selected by name,
//! * *find the affiliations of an author Z* (Figure 11).
//!
//! This module builds those queries, parameterised by author id or by a name
//! fragment (the `%Madden%`-style selection of the running example).

use mv_query::{parse_ucq, Result, Ucq};

use crate::generate::DblpDataset;

/// `Q(aid2) :- Student(X, y), Advisor(X, aid2)` — the advisor(s) of student `X`.
pub fn advisor_of_student(student: i64) -> Result<Ucq> {
    parse_ucq(&format!(
        "Q(aid2) :- Student({student}, year), Advisor({student}, aid2)"
    ))
}

/// `Q(aid) :- Student(aid, y), Advisor(aid, Y)` — all students of advisor `Y`.
pub fn students_of_advisor(advisor: i64) -> Result<Ucq> {
    parse_ucq(&format!(
        "Q(aid) :- Student(aid, year), Advisor(aid, {advisor})"
    ))
}

/// The running example of Figure 2: students whose advisor's name matches a
/// fragment.
pub fn students_of_advisor_named(fragment: &str) -> Result<Ucq> {
    parse_ucq(&format!(
        "Q(aid) :- Student(aid, year), Advisor(aid, aid1), Author(aid, n), \
         Author(aid1, n1), n1 like '%{fragment}%'"
    ))
}

/// `Q(inst) :- Affiliation(Z, inst)` — the affiliations of author `Z`.
pub fn affiliation_of_author(author: i64) -> Result<Ucq> {
    parse_ucq(&format!("Q(inst) :- Affiliation({author}, inst)"))
}

impl DblpDataset {
    /// The Figure 5 workload: one *advisor of student X* query per sampled
    /// student.
    pub fn advisor_of_student_workload(&self, count: usize) -> Result<Vec<Ucq>> {
        self.sample_students(count)
            .into_iter()
            .map(advisor_of_student)
            .collect()
    }

    /// The Figure 6 / Figure 10 workload: one *students of advisor Y* query
    /// per sampled advisor.
    pub fn students_of_advisor_workload(&self, count: usize) -> Result<Vec<Ucq>> {
        self.sample_advisors(count)
            .into_iter()
            .map(students_of_advisor)
            .collect()
    }

    /// The Figure 11 workload: one *affiliation of author Z* query per sampled
    /// affiliated author.
    pub fn affiliation_workload(&self, count: usize) -> Result<Vec<Ucq>> {
        self.sample_affiliated_authors(count)
            .into_iter()
            .map(affiliation_of_author)
            .collect()
    }

    /// The name of an author, for name-selection queries.
    pub fn author_name(&self, aid: i64) -> Option<String> {
        let indb = self.mvdb.base();
        let author = indb.schema().relation_id("Author")?;
        let rel = indb.database().relation(author);
        rel.rows()
            .iter()
            .find(|r| r[0].as_int() == Some(aid))
            .and_then(|r| r[1].as_str().map(str::to_string))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::DblpConfig;
    use mv_core::MvdbEngine;

    fn dataset() -> DblpDataset {
        DblpDataset::generate(DblpConfig::with_authors(48)).unwrap()
    }

    #[test]
    fn workloads_produce_runnable_queries() {
        let data = dataset();
        let engine = MvdbEngine::compile(&data.mvdb).unwrap();
        for q in data.students_of_advisor_workload(3).unwrap() {
            let answers = engine.answers(&q).unwrap();
            for (_, p) in &answers {
                assert!(
                    (-1e-9..=1.0 + 1e-9).contains(p),
                    "probability out of range: {p}"
                );
            }
        }
        for q in data.advisor_of_student_workload(3).unwrap() {
            let answers = engine.answers(&q).unwrap();
            // A student has candidate advisors; the denial view V2 makes them
            // mutually exclusive but each one remains possible.
            for (_, p) in &answers {
                assert!(*p > -1e-9 && *p <= 1.0 + 1e-9);
            }
        }
        for q in data.affiliation_workload(2).unwrap() {
            engine.answers(&q).unwrap();
        }
    }

    #[test]
    fn the_running_example_query_by_name_returns_students() {
        let data = dataset();
        let engine = MvdbEngine::compile(&data.mvdb).unwrap();
        let advisor = data.sample_advisors(1)[0];
        let name = data.author_name(advisor).unwrap();
        let q = students_of_advisor_named(&name).unwrap();
        let by_name = engine.answers(&q).unwrap();
        let by_id = engine
            .answers(&students_of_advisor(advisor).unwrap())
            .unwrap();
        assert_eq!(by_name.len(), by_id.len());
        for ((r1, p1), (r2, p2)) in by_name.iter().zip(by_id.iter()) {
            assert_eq!(r1, r2);
            assert!((p1 - p2).abs() < 1e-9);
        }
        assert!(!by_name.is_empty());
    }

    #[test]
    fn author_name_lookup_works() {
        let data = dataset();
        assert!(data.author_name(1).is_some());
        assert!(data.author_name(9999).is_none());
    }
}
