//! Error type of the query layer.

use std::fmt;

/// Errors raised while parsing or evaluating queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The datalog text could not be parsed.
    Parse {
        /// Human-readable description of the problem.
        message: String,
        /// Byte offset in the input where the problem was detected.
        position: usize,
    },
    /// An atom refers to a relation that is not in the schema.
    UnknownRelation(String),
    /// An atom's arity does not match the relation schema.
    ArityMismatch {
        /// The relation.
        relation: String,
        /// Arity declared in the schema.
        expected: usize,
        /// Arity used in the atom.
        actual: usize,
    },
    /// A head variable does not appear in any atom of the body.
    UnboundHeadVariable(String),
    /// A variable used in a comparison does not appear in any atom.
    UnboundComparisonVariable(String),
    /// The disjuncts of a UCQ do not all have the same head arity.
    MismatchedHeads {
        /// Arity of the first disjunct's head.
        first: usize,
        /// Arity of the offending disjunct's head.
        other: usize,
    },
    /// An operation that requires a Boolean query was given a query with
    /// head variables.
    NotBoolean(String),
    /// A Monte Carlo estimator could not be constructed over the database
    /// (unsatisfiable condition, non-finite tuple probability, …).
    Unsampleable(String),
    /// The evaluation was cut short by its cooperative budget (deadline,
    /// step limit, or cancellation).
    Budget(crate::budget::BudgetError),
    /// A lower-level database error.
    Pdb(mv_pdb::PdbError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            QueryError::UnknownRelation(r) => write!(f, "unknown relation `{r}` in query"),
            QueryError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "atom over `{relation}` has {actual} terms but the relation has {expected} attributes"
            ),
            QueryError::UnboundHeadVariable(v) => {
                write!(f, "head variable `{v}` does not appear in the query body")
            }
            QueryError::UnboundComparisonVariable(v) => write!(
                f,
                "variable `{v}` appears only in comparison predicates, not in any atom"
            ),
            QueryError::MismatchedHeads { first, other } => write!(
                f,
                "all disjuncts of a UCQ must have the same head arity (found {first} and {other})"
            ),
            QueryError::NotBoolean(name) => {
                write!(f, "query `{name}` has head variables but a Boolean query is required")
            }
            QueryError::Unsampleable(reason) => {
                write!(f, "cannot sample possible worlds: {reason}")
            }
            QueryError::Budget(e) => write!(f, "{e}"),
            QueryError::Pdb(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<mv_pdb::PdbError> for QueryError {
    fn from(e: mv_pdb::PdbError) -> Self {
        QueryError::Pdb(e)
    }
}

impl From<crate::budget::BudgetError> for QueryError {
    fn from(e: crate::budget::BudgetError) -> Self {
        QueryError::Budget(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = QueryError::Parse {
            message: "expected `:-`".into(),
            position: 7,
        };
        assert!(e.to_string().contains("7"));
        assert!(QueryError::UnknownRelation("R".into())
            .to_string()
            .contains('R'));
        assert!(QueryError::NotBoolean("Q".into()).to_string().contains('Q'));
    }

    #[test]
    fn pdb_errors_convert() {
        let e: QueryError = mv_pdb::PdbError::UnknownRelation("S".into()).into();
        assert!(matches!(e, QueryError::Pdb(_)));
    }
}
