//! # `mv-query` — unions of conjunctive queries over probabilistic databases
//!
//! This crate implements the query language of the MarkoViews paper
//! (Section 2.1) and the machinery needed to evaluate it over
//! tuple-independent probabilistic databases (`mv_pdb::InDb`):
//!
//! * [`ast`] — terms, atoms, comparison predicates, conjunctive queries
//!   ([`ConjunctiveQuery`]) and unions of conjunctive queries ([`Ucq`]).
//! * [`parser`] — a datalog-style parser: `Q(x) :- R(x, y), S(y), y > 5`.
//! * [`eval`] — evaluation of (unions of) conjunctive queries over
//!   deterministic [`mv_pdb::Database`] instances: the [`eval::EvalContext`]
//!   with its compiled-plan cache, plus the legacy backtracking evaluator
//!   kept as the agreement oracle.
//! * [`plan`] — the compile→execute split: slot-based physical plans over
//!   the dictionary-encoded columnar store (static atom order, scan/probe
//!   access paths, register files of `u32` codes, iterative operator loop).
//! * [`vec_exec`] — the vectorized batch executor the production entry
//!   points run: fixed-size batches of partial matches over the code
//!   columns, CSR join indexes with a spill-aware hybrid hash fallback,
//!   and zone-map block skipping driven by the plan's interned constants
//!   and join-key bounds. The tuple-at-a-time plan loop stays as the
//!   exact-equality oracle.
//! * [`lineage`] — lineage computation: the Boolean provenance formula
//!   `Φ_Q` of a Boolean query over an [`mv_pdb::InDb`], in DNF over
//!   [`mv_pdb::TupleId`] variables.
//! * [`analysis`] — root variables, separator variables, hierarchical and
//!   inversion-free tests (Section 4.2), and safety detection.
//! * [`components`] — connected-component analysis of lineage clause sets
//!   (union-find), shared by the Monte Carlo sampler's component pruning
//!   and the scale-out sharding layer.
//! * [`partition`] — [`ComponentPartitioner`]: packs the components of
//!   `W`'s lineage into balanced disjoint shards and routes query clauses
//!   to their home shard (flagging cross-shard clauses for fallback).
//! * [`safe_plan`] — the lifted (safe-plan) probability evaluator for safe
//!   UCQs, correct for negative probabilities.
//! * [`shannon`] — exact lineage probability by Shannon expansion with
//!   independent-component decomposition (general fallback, also correct for
//!   negative probabilities).
//! * [`brute`] — exhaustive truth-table evaluation over the lineage
//!   variables, used as the ground-truth oracle in tests.
//! * [`approx`] — Monte Carlo approximate inference: a seedable possible-
//!   world sampler for the Theorem 1 conditional with Rao-Blackwellised
//!   `NV` variables, component pruning, and Wilson / Hoeffding / Normal
//!   confidence intervals with early stopping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod approx;
pub mod ast;
pub mod brute;
pub mod budget;
pub mod components;
pub mod error;
pub mod eval;
pub mod lineage;
pub mod parser;
pub mod partition;
pub mod plan;
pub mod rewrite;
pub mod safe_plan;
pub mod shannon;
pub mod vec_exec;

pub use analysis::QueryAnalysis;
pub use approx::{
    approx_lineage_probability, ApproxAccumulator, ApproxAnswer, ApproxConfig, ConditionalSampler,
    IntervalMethod,
};
pub use ast::{Atom, CmpOp, Comparison, ConjunctiveQuery, Term, Ucq};
pub use budget::{BudgetError, EvalBudget};
pub use components::{component_relevant_clauses, connected_components, Components, UnionFind};
pub use error::QueryError;
pub use eval::{evaluate_boolean, evaluate_ucq, Answer};
pub use lineage::{Clause, Lineage};
pub use parser::{parse_query, parse_ucq};
pub use partition::{ComponentPartitioner, Partition, RoutedLineage};
pub use plan::{CompiledUcq, PhysicalPlan, PlanStats};
pub use rewrite::{separator_domain, simplify_cq, SimplifiedCq};
pub use safe_plan::{safe_probability, SafePlanError};
pub use shannon::{shannon_probability, shannon_query_probability_with};
pub use vec_exec::{CsrIndex, ExecStats, VecCompiledUcq, BATCH_ROWS};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, QueryError>;
