//! Monte Carlo approximate inference over tuple-independent databases.
//!
//! Exact OBDD synthesis (Theorem 1's workhorse) blows up on queries whose
//! lineage admits no small diagram. This module provides the fallback that
//! is *always* available on the tuple-independent translation: draw possible
//! worlds from a seeded [`ChaCha8Rng`] stream, evaluate the query's lineage
//! clauses per world (or drive a compiled physical plan over a materialised
//! world), and report `(estimate, half_width)` confidence intervals with
//! early stopping at a target `±ε`.
//!
//! # The conditional estimator
//!
//! [`ConditionalSampler`] estimates the Theorem 1 conditional
//! `P0(Q ∧ ¬W) / P0(¬W)` directly, without ever subtracting two nearly
//! equal probabilities. Three ideas make it practical on translated MVDBs:
//!
//! 1. **Rao-Blackwellised `NV` variables.** Every clause of `W`'s lineage
//!    contains at most one `NV` tuple variable (the translation joins one
//!    `NV_i(ā)` atom with the view body). Instead of sampling those —
//!    impossible when their translated probability is negative — they are
//!    integrated out *exactly*: given the sampled base tuples, the residual
//!    of `¬W` is `¬(∨ distinct active NV_t)`, whose probability is the
//!    product `∏ (1 − p_t)`. For an `NV` tuple the factor `1 − p_t` equals
//!    the original MarkoView weight `w`, so the per-world weight is exactly
//!    the MLN view factor — the estimator is simultaneously an importance
//!    sampler for the MVDB semantics.
//! 2. **Component pruning.** `¬W` factorises over the connected components
//!    of the clause/variable graph, and components disjoint from `Q`'s
//!    lineage cancel between numerator and denominator. Only the component
//!    of `Q` is sampled, so per-sample cost and estimator variance scale
//!    with the query's neighbourhood, not the database (the sampling
//!    analogue of the MV-index's block partitioning).
//! 3. **Signed residual variables.** A variable with probability outside
//!    `[0, 1]` that *must* be sampled (it appears in `Q`'s own lineage) is
//!    drawn from the normalised proposal `|p| / (|p| + |1 − p|)`; the
//!    importance magnitude is then constant across worlds and cancels in
//!    the ratio, leaving only a tracked sign.
//!
//! # Confidence intervals
//!
//! The interval method adapts to what the sampler actually drew
//! ([`IntervalMethod`]): **Wilson** when the per-world weights are `{0, 1}`
//! (plain conditional Bernoulli — no views, denial views only), **Hoeffding**
//! when weights are bounded by a small constant (factors `≤` the configured
//! limit), and a delta-method **Normal** interval for general importance
//! weights, floored by a Wilson interval at the Kish effective sample size.
//! Wilson and Hoeffding have (asymptotic resp. finite-sample) coverage
//! guarantees; the delta-method interval is the standard self-normalised
//! importance-sampling interval and is validated against the exact oracles
//! by the statistical agreement suites.

use std::collections::{BTreeMap, BTreeSet};

use fxhash::FxHashMap;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use mv_pdb::{InDb, TupleId};

use crate::ast::Ucq;
use crate::components::component_relevant_clauses;
use crate::error::QueryError;
use crate::eval::evaluate_boolean;
use crate::lineage::Lineage;
use crate::Result;

/// Derives a decorrelated seed for a parallel stream (worker shard, batch
/// lane) from a base seed. SplitMix64-style finalisation: distinct streams
/// of the same base seed are statistically independent for the vendored
/// generator.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ (stream.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of a Monte Carlo estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxConfig {
    /// Seed of the ChaCha world stream. Runs with equal seeds (and equal
    /// configuration) are bit-identical.
    pub seed: u64,
    /// Coverage level of the reported interval (e.g. `0.99`).
    pub confidence: f64,
    /// Early-stopping target: sampling stops once the half-width drops to
    /// this value (checked every [`ApproxConfig::batch`] samples, after
    /// [`ApproxConfig::min_samples`]). `0.0` disables early stopping.
    pub target_half_width: f64,
    /// Samples drawn before early stopping is first considered.
    pub min_samples: u64,
    /// Hard sample budget.
    pub max_samples: u64,
    /// Samples between early-stopping checks.
    pub batch: u64,
    /// Largest weight range for which the rigorous Hoeffding interval is
    /// preferred over the delta-method Normal interval.
    pub hoeffding_weight_limit: f64,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            seed: 0x5eed_ca57,
            confidence: 0.99,
            target_half_width: 0.01,
            min_samples: 512,
            max_samples: 65_536,
            batch: 512,
            hoeffding_weight_limit: 2.0,
        }
    }
}

impl ApproxConfig {
    /// A config with the given seed and every other knob at its default.
    pub fn with_seed(seed: u64) -> Self {
        ApproxConfig {
            seed,
            ..ApproxConfig::default()
        }
    }

    /// The same configuration re-seeded for an independent stream.
    pub fn stream(self, stream: u64) -> Self {
        ApproxConfig {
            seed: derive_seed(self.seed, stream),
            ..self
        }
    }
}

/// The confidence-interval construction a run ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntervalMethod {
    /// Wilson score interval on accepted (weight-1) samples: per-world
    /// weights were all `{0, 1}` — plain conditional Bernoulli sampling.
    Wilson,
    /// Hoeffding bounds on the numerator and denominator means (union
    /// bound, conservatively propagated through the ratio): weights were
    /// bounded by a small constant.
    Hoeffding,
    /// Delta-method interval for the self-normalised importance-sampling
    /// ratio, floored by a Wilson interval at the Kish effective sample
    /// size: general (unbounded-range) weights.
    Normal,
}

impl IntervalMethod {
    /// Stable lower-case name (used by the bench report).
    pub fn name(self) -> &'static str {
        match self {
            IntervalMethod::Wilson => "wilson",
            IntervalMethod::Hoeffding => "hoeffding",
            IntervalMethod::Normal => "normal",
        }
    }
}

/// A Monte Carlo estimate with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxAnswer {
    /// The point estimate (the raw ratio estimator; may fall slightly
    /// outside `[0, 1]` in weighted modes — see [`ApproxAnswer::clamped`]).
    pub estimate: f64,
    /// Half-width of the confidence interval around [`ApproxAnswer::estimate`].
    pub half_width: f64,
    /// The coverage level the interval was built for.
    pub confidence: f64,
    /// Worlds drawn.
    pub samples: u64,
    /// Worlds with non-zero weight (accepted worlds in rejection mode).
    pub effective: u64,
    /// Which interval construction produced [`ApproxAnswer::half_width`].
    pub method: IntervalMethod,
}

impl ApproxAnswer {
    /// Lower end of the interval.
    pub fn lower(&self) -> f64 {
        self.estimate - self.half_width
    }

    /// Upper end of the interval.
    pub fn upper(&self) -> f64 {
        self.estimate + self.half_width
    }

    /// `true` when `p` lies inside the interval.
    pub fn contains(&self, p: f64) -> bool {
        self.lower() <= p && p <= self.upper()
    }

    /// The estimate clamped into `[0, 1]` (the true value is a probability).
    pub fn clamped(&self) -> f64 {
        self.estimate.clamp(0.0, 1.0)
    }
}

/// Partial sums of a sampling run. Accumulators from independent streams
/// merge by addition, so parallel workers can each run a private ChaCha
/// stream and the merged accumulator yields the weighted-average estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ApproxAccumulator {
    /// Worlds drawn.
    pub samples: u64,
    /// Worlds with non-zero weight.
    pub effective: u64,
    sum_num: f64,
    sum_den: f64,
    sum_num2: f64,
    sum_den2: f64,
    sum_num_den: f64,
}

impl ApproxAccumulator {
    fn record(&mut self, num: f64, den: f64) {
        self.samples += 1;
        if den != 0.0 {
            self.effective += 1;
        }
        self.sum_num += num;
        self.sum_den += den;
        self.sum_num2 += num * num;
        self.sum_den2 += den * den;
        self.sum_num_den += num * den;
    }

    /// Adds another stream's partial sums into this accumulator.
    pub fn merge(&mut self, other: &ApproxAccumulator) {
        self.samples += other.samples;
        self.effective += other.effective;
        self.sum_num += other.sum_num;
        self.sum_den += other.sum_den;
        self.sum_num2 += other.sum_num2;
        self.sum_den2 += other.sum_den2;
        self.sum_num_den += other.sum_num_den;
    }
}

/// One compiled `W` clause: the sampled base literals that must all be
/// present, and the index of the integrated `NV` factor the clause
/// activates (`None` for denial clauses, which zero the weight directly).
#[derive(Debug, Clone)]
struct CompiledWClause {
    base: Vec<u32>,
    nv: Option<u32>,
}

/// A compiled Monte Carlo estimator for the conditional probability
/// `P0(Φ_Q ∧ ¬W) / P0(¬W)` over a tuple-independent database.
///
/// Construction analyses the two lineages once (variable classification,
/// Rao-Blackwellisation of `NV` variables, component pruning); every
/// subsequent [`ConditionalSampler::collect`] run is a tight loop over the
/// compiled clause sets. See the module docs for the estimator design.
pub struct ConditionalSampler<'a> {
    indb: &'a InDb,
    /// Trivially known conditional probability (`Φ_Q` constant), if any.
    constant: Option<f64>,
    /// Proposal probability of each sampled variable, by local index.
    thresholds: Vec<f64>,
    /// Local index → tuple id of each sampled variable.
    sampled_ids: Vec<TupleId>,
    /// Tuple id → local index of each sampled variable.
    id_to_local: FxHashMap<TupleId, u32>,
    /// Sign corrections of signed (out-of-`[0, 1]`) sampled variables:
    /// `(local index, sign when present, sign when absent)`.
    signed: Vec<(u32, f64, f64)>,
    /// `Φ_Q` clauses over local sampled indices.
    q_clauses: Vec<Vec<u32>>,
    /// Kept (component-relevant) `W` clauses.
    w_clauses: Vec<CompiledWClause>,
    /// Residual factor `1 − p_t` per integrated `NV` variable.
    integrated: Vec<f64>,
    /// Tuple ids of the integrated variables (reporting only).
    integrated_ids: Vec<TupleId>,
    /// Upper bound of the per-world weight magnitude.
    weight_range: f64,
    /// `true` when every possible weight is `0` or `±1`.
    direct: bool,
    /// Evaluate `Φ_Q` by materialising each world and running the compiled
    /// physical plan of this (Boolean) query, instead of the clause scan.
    plan_query: Option<Ucq>,
}

impl<'a> ConditionalSampler<'a> {
    /// Compiles an estimator for `P0(Φ_Q ∧ ¬W) / P0(¬W)`.
    ///
    /// `lin_w` is the lineage of the helper query `W` (`None` for plain
    /// tuple-independent databases — the estimator then targets `P0(Φ_Q)`).
    /// `integrable` marks the variables that may be integrated out
    /// analytically (the `NV` tuples of a translated MVDB); pass
    /// `|_| false` when there are none.
    pub fn new(
        lin_q: &Lineage,
        lin_w: Option<&Lineage>,
        indb: &'a InDb,
        integrable: impl Fn(TupleId) -> bool,
    ) -> Result<ConditionalSampler<'a>> {
        if let Some(w) = lin_w {
            if w.is_true() {
                return Err(QueryError::Unsampleable(
                    "the condition ¬W is unsatisfiable: W has lineage `true`".into(),
                ));
            }
        }
        let mut sampler = ConditionalSampler {
            indb,
            constant: None,
            thresholds: Vec::new(),
            sampled_ids: Vec::new(),
            id_to_local: FxHashMap::default(),
            signed: Vec::new(),
            q_clauses: Vec::new(),
            w_clauses: Vec::new(),
            integrated: Vec::new(),
            integrated_ids: Vec::new(),
            weight_range: 1.0,
            direct: true,
            plan_query: None,
        };
        if lin_q.is_true() {
            sampler.constant = Some(1.0);
            return Ok(sampler);
        }
        if lin_q.is_false() {
            sampler.constant = Some(0.0);
            return Ok(sampler);
        }

        let vars_q: BTreeSet<TupleId> = lin_q.variables();
        let w_clauses: &[Vec<TupleId>] = lin_w.map(Lineage::clauses).unwrap_or(&[]);

        // Variables eligible for exact integration: marked integrable, not
        // needed by Φ_Q, and with a finite probability ≤ 1 (so the residual
        // factor 1 − p is non-negative). Clauses must end up with at most
        // one integrated variable each — the residual of ¬W given the
        // sampled variables is then a disjunction of single literals, whose
        // probability is a plain product. Surplus candidates are demoted to
        // sampled variables (globally, so no variable is both).
        let mut integrated_set: BTreeSet<TupleId> = w_clauses
            .iter()
            .flatten()
            .copied()
            .filter(|&t| {
                let p = indb.probability(t);
                integrable(t) && !vars_q.contains(&t) && p.is_finite() && p <= 1.0
            })
            .collect();
        loop {
            let mut demote: Vec<TupleId> = Vec::new();
            for clause in w_clauses {
                let members: Vec<TupleId> = clause
                    .iter()
                    .copied()
                    .filter(|t| integrated_set.contains(t))
                    .collect();
                if members.len() >= 2 {
                    demote.extend_from_slice(&members[..members.len() - 1]);
                }
            }
            if demote.is_empty() {
                break;
            }
            for t in demote {
                integrated_set.remove(&t);
            }
        }

        // Component pruning: ¬W factorises over connected components of the
        // clause/variable graph, and components disjoint from Φ_Q cancel
        // between numerator and denominator. The traversal is shared with
        // the sharding layer (`crate::components`).
        let kept = component_relevant_clauses(lin_q, w_clauses);

        // Sampled variables: everything Φ_Q mentions plus the base literals
        // of the kept W clauses, in sorted (deterministic) order.
        let mut sampled: BTreeSet<TupleId> = vars_q.clone();
        for clause in &kept {
            for &t in clause.iter() {
                if !integrated_set.contains(&t) {
                    sampled.insert(t);
                }
            }
        }
        for (&t, local) in sampled.iter().zip(0u32..) {
            let p = indb.probability(t);
            if !p.is_finite() {
                return Err(QueryError::Unsampleable(format!(
                    "tuple {t} has non-finite probability {p}"
                )));
            }
            let threshold = if (0.0..=1.0).contains(&p) {
                p
            } else {
                // Out of [0, 1]: draw from the normalised proposal
                // |p| / (|p| + |1 − p|). The importance magnitude
                // |p| + |1 − p| is the same whether the tuple is present or
                // absent, so it cancels in the ratio and only the sign of
                // the realised branch needs tracking.
                let (sign_present, sign_absent) = (p.signum(), (1.0 - p).signum());
                sampler.signed.push((local, sign_present, sign_absent));
                p.abs() / (p.abs() + (1.0 - p).abs())
            };
            sampler.thresholds.push(threshold);
            sampler.sampled_ids.push(t);
            sampler.id_to_local.insert(t, local);
        }

        // Compile Φ_Q onto local indices.
        sampler.q_clauses = lin_q
            .clauses()
            .iter()
            .map(|clause| {
                clause
                    .iter()
                    .map(|t| sampler.id_to_local[t])
                    .collect::<Vec<u32>>()
            })
            .collect();

        // Compile the kept W clauses; integrated variables become shared
        // residual factors (deduplicated — several groundings of one NV
        // tuple activate a single ¬NV_t literal).
        let mut factor_index: BTreeMap<TupleId, u32> = BTreeMap::new();
        for clause in kept {
            let mut base: Vec<u32> = Vec::with_capacity(clause.len());
            let mut nv: Option<u32> = None;
            for &t in clause {
                if integrated_set.contains(&t) {
                    let next = sampler.integrated.len() as u32;
                    let idx = *factor_index.entry(t).or_insert_with(|| {
                        sampler.integrated.push(1.0 - indb.probability(t));
                        sampler.integrated_ids.push(t);
                        next
                    });
                    nv = Some(idx);
                } else {
                    base.push(sampler.id_to_local[&t]);
                }
            }
            if let Some(idx) = nv {
                if sampler.integrated[idx as usize] == 1.0 {
                    // p_t = 0: the NV tuple is never present, so the clause
                    // can never fire — drop it.
                    continue;
                }
            }
            sampler.w_clauses.push(CompiledWClause { base, nv });
        }

        sampler.weight_range = sampler
            .integrated
            .iter()
            .map(|f| f.max(1.0))
            .product::<f64>();
        sampler.direct = sampler.signed.is_empty() && sampler.integrated.iter().all(|f| *f == 0.0);
        Ok(sampler)
    }

    /// Switches `Φ_Q` evaluation from the clause scan to full plan
    /// evaluation: each sampled world is materialised as a deterministic
    /// database and the (Boolean) query runs through a compiled physical
    /// plan over it. Slower, but independent of the lineage collection —
    /// the differential-testing counterpart of the clause mode (identical
    /// seeds must produce identical estimates).
    pub fn with_plan_query(mut self, query: &Ucq) -> Self {
        self.plan_query = Some(query.boolean());
        self
    }

    /// Number of variables drawn per world.
    pub fn num_sampled_vars(&self) -> usize {
        self.thresholds.len()
    }

    /// Number of `NV` variables integrated out analytically.
    pub fn num_integrated_vars(&self) -> usize {
        self.integrated.len()
    }

    /// Number of `W` clauses kept after component pruning.
    pub fn num_w_clauses(&self) -> usize {
        self.w_clauses.len()
    }

    /// `true` when every per-world weight is `0` or `1` (Wilson mode).
    pub fn is_direct(&self) -> bool {
        self.direct
    }

    /// Upper bound of the per-world weight magnitude.
    pub fn weight_range(&self) -> f64 {
        self.weight_range
    }

    /// The interval construction [`ConditionalSampler::answer_from`] will
    /// use under this configuration.
    pub fn method(&self, config: &ApproxConfig) -> IntervalMethod {
        if self.direct {
            IntervalMethod::Wilson
        } else if self.value_range() <= config.hoeffding_weight_limit {
            IntervalMethod::Hoeffding
        } else {
            IntervalMethod::Normal
        }
    }

    /// The width of the interval the per-world values can range over.
    fn value_range(&self) -> f64 {
        if self.signed.is_empty() {
            self.weight_range
        } else {
            2.0 * self.weight_range
        }
    }

    /// Draws one world; returns `(numerator, denominator)` contributions.
    fn draw(
        &self,
        rng: &mut ChaCha8Rng,
        presence: &mut [bool],
        stamp: &mut [u32],
        generation: u32,
    ) -> (f64, f64) {
        for (slot, &threshold) in presence.iter_mut().zip(&self.thresholds) {
            *slot = rng.gen::<f64>() < threshold;
        }
        let mut weight = 1.0;
        for &(local, sign_present, sign_absent) in &self.signed {
            weight *= if presence[local as usize] {
                sign_present
            } else {
                sign_absent
            };
        }
        for clause in &self.w_clauses {
            if clause.base.iter().all(|&i| presence[i as usize]) {
                match clause.nv {
                    None => {
                        // Denial clause satisfied: the world violates a hard
                        // constraint of ¬W.
                        weight = 0.0;
                        break;
                    }
                    Some(idx) => {
                        let idx = idx as usize;
                        if stamp[idx] != generation {
                            stamp[idx] = generation;
                            weight *= self.integrated[idx];
                            if weight == 0.0 {
                                break;
                            }
                        }
                    }
                }
            }
        }
        let q_true = if weight == 0.0 {
            false
        } else {
            match &self.plan_query {
                None => self
                    .q_clauses
                    .iter()
                    .any(|clause| clause.iter().all(|&i| presence[i as usize])),
                Some(query) => {
                    let world = self.indb.materialize_world_where(|t| {
                        self.id_to_local
                            .get(&t)
                            .is_some_and(|&i| presence[i as usize])
                    });
                    evaluate_boolean(query, &world)
                        .expect("world databases share the schema of the possible-tuple instance")
                }
            }
        };
        (if q_true { weight } else { 0.0 }, weight)
    }

    /// Runs the sampling loop under `config`: draws worlds in batches,
    /// early-stopping once the half-width reaches the target. Returns the
    /// partial sums (merge accumulators from [`ApproxConfig::stream`]-seeded
    /// runs for parallel estimation).
    pub fn collect(&self, config: &ApproxConfig) -> ApproxAccumulator {
        self.collect_budgeted(config, None)
            .expect("collection without a budget cannot be cut short")
    }

    /// [`ConditionalSampler::collect`] under a cooperative
    /// [`EvalBudget`](crate::budget::EvalBudget), polled between sample
    /// batches. Sampling is an *anytime* algorithm, so a budget trip after
    /// [`ApproxConfig::min_samples`] returns the partial accumulator
    /// (`Ok`) — the interval is simply wider than requested; a trip before
    /// any statistically usable estimate exists surfaces as `Err`.
    pub fn collect_budgeted(
        &self,
        config: &ApproxConfig,
        budget: Option<&crate::budget::EvalBudget>,
    ) -> std::result::Result<ApproxAccumulator, crate::budget::BudgetError> {
        let mut acc = ApproxAccumulator::default();
        if self.constant.is_some() {
            return Ok(acc);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut presence = vec![false; self.thresholds.len()];
        let mut stamp = vec![0u32; self.integrated.len()];
        let mut generation: u32 = 0;
        let batch = config.batch.max(1);
        while acc.samples < config.max_samples {
            let run = batch.min(config.max_samples - acc.samples);
            if let Some(b) = budget {
                if let Err(e) = b.charge(run) {
                    // Keep what we have if it can carry an interval at all;
                    // otherwise the budget left no usable answer.
                    if acc.samples >= config.min_samples.max(1) {
                        break;
                    }
                    return Err(e);
                }
            }
            for _ in 0..run {
                generation = generation.wrapping_add(1);
                if generation == 0 {
                    stamp.fill(u32::MAX);
                    generation = 1;
                }
                let (num, den) = self.draw(&mut rng, &mut presence, &mut stamp, generation);
                acc.record(num, den);
            }
            if config.target_half_width > 0.0
                && acc.samples >= config.min_samples
                && self.answer_from(&acc, config).half_width <= config.target_half_width
            {
                break;
            }
        }
        Ok(acc)
    }

    /// Builds the `(estimate, half_width)` answer from partial sums.
    pub fn answer_from(&self, acc: &ApproxAccumulator, config: &ApproxConfig) -> ApproxAnswer {
        if let Some(constant) = self.constant {
            return ApproxAnswer {
                estimate: constant,
                half_width: 0.0,
                confidence: config.confidence,
                samples: acc.samples,
                effective: acc.effective,
                method: IntervalMethod::Wilson,
            };
        }
        let method = self.method(config);
        let z = z_score(config.confidence);
        let vacuous = |method| ApproxAnswer {
            estimate: 0.5,
            half_width: 0.5,
            confidence: config.confidence,
            samples: acc.samples,
            effective: acc.effective,
            method,
        };
        let (estimate, half_width) = match method {
            IntervalMethod::Wilson => {
                // Weights are {0, 1}: conditional on acceptance, the
                // accepted indicators are iid Bernoulli.
                let m = acc.sum_den;
                if m < 1.0 {
                    return vacuous(method);
                }
                let p = acc.sum_num / m;
                (p, wilson_half_width(p, m, z))
            }
            IntervalMethod::Hoeffding => {
                let n = acc.samples as f64;
                if n < 1.0 {
                    return vacuous(method);
                }
                // Union bound: each of the two means gets δ/2, i.e.
                // deviation t with 2·exp(−2nt²/range²) = δ/2.
                let delta = (1.0 - config.confidence).max(f64::MIN_POSITIVE);
                let h = self.value_range() * ((4.0 / delta).ln() / (2.0 * n)).sqrt();
                let den_mean = acc.sum_den / n;
                if den_mean <= h {
                    return vacuous(method);
                }
                let estimate = acc.sum_num / acc.sum_den;
                // |P − P̂| ≤ (|num − n̂| + |P̂|·|den − d̂|) / |den| with
                // |den| ≥ d̂ − h on the joint Hoeffding event.
                let half = (h + estimate.abs() * h) / (den_mean - h);
                (estimate, half)
            }
            IntervalMethod::Normal => {
                if acc.sum_den <= 0.0 {
                    return vacuous(method);
                }
                let estimate = acc.sum_num / acc.sum_den;
                // Delta method: Var(P̂) ≈ Σ(uᵢ − P̂·vᵢ)² / (Σv)².
                let spread = (acc.sum_num2 - 2.0 * estimate * acc.sum_num_den
                    + estimate * estimate * acc.sum_den2)
                    .max(0.0);
                let delta_half = z * spread.sqrt() / acc.sum_den;
                // Floor by a Wilson interval at the Kish effective sample
                // size, so zero observed spread (all accepted worlds agree)
                // never collapses the interval to a point.
                let ess = if acc.sum_den2 > 0.0 {
                    acc.sum_den * acc.sum_den / acc.sum_den2
                } else {
                    return vacuous(method);
                };
                let wilson_floor = wilson_half_width(estimate.clamp(0.0, 1.0), ess, z);
                (estimate, delta_half.max(wilson_floor))
            }
        };
        ApproxAnswer {
            estimate,
            half_width,
            confidence: config.confidence,
            samples: acc.samples,
            effective: acc.effective,
            method,
        }
    }

    /// Runs the full estimation: [`ConditionalSampler::collect`] followed by
    /// [`ConditionalSampler::answer_from`].
    pub fn estimate(&self, config: &ApproxConfig) -> ApproxAnswer {
        self.answer_from(&self.collect(config), config)
    }

    /// [`ConditionalSampler::estimate`] under a cooperative budget — see
    /// [`ConditionalSampler::collect_budgeted`] for the anytime semantics.
    pub fn estimate_budgeted(
        &self,
        config: &ApproxConfig,
        budget: Option<&crate::budget::EvalBudget>,
    ) -> std::result::Result<ApproxAnswer, crate::budget::BudgetError> {
        Ok(self.answer_from(&self.collect_budgeted(config, budget)?, config))
    }
}

impl std::fmt::Debug for ConditionalSampler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConditionalSampler")
            .field("constant", &self.constant)
            .field("sampled_vars", &self.thresholds.len())
            .field("signed_vars", &self.signed.len())
            .field("integrated_vars", &self.integrated.len())
            .field("q_clauses", &self.q_clauses.len())
            .field("w_clauses", &self.w_clauses.len())
            .field("weight_range", &self.weight_range)
            .field("direct", &self.direct)
            .finish_non_exhaustive()
    }
}

/// Estimates the unconditional probability `P0(Φ)` of a lineage over a
/// tuple-independent database by Monte Carlo (all probabilities must be
/// finite; negative probabilities are handled through signed sampling).
pub fn approx_lineage_probability(
    lineage: &Lineage,
    indb: &InDb,
    config: &ApproxConfig,
) -> Result<ApproxAnswer> {
    Ok(ConditionalSampler::new(lineage, None, indb, |_| false)?.estimate(config))
}

/// Symmetric half-width envelope of the Wilson score interval for `m`
/// Bernoulli trials with success fraction `p` at critical value `z`.
fn wilson_half_width(p: f64, m: f64, z: f64) -> f64 {
    let z2 = z * z;
    let denom = 1.0 + z2 / m;
    let center = (p + z2 / (2.0 * m)) / denom;
    let spread = (z / denom) * (p * (1.0 - p) / m + z2 / (4.0 * m * m)).sqrt();
    // The Wilson interval is centred off p; report the symmetric envelope
    // around p so (estimate ± half_width) still covers it.
    (center - spread - p).abs().max((center + spread - p).abs())
}

/// The two-sided critical value `z` of the standard normal distribution for
/// the given coverage (e.g. `0.99 → 2.5758…`), via Acklam's rational
/// approximation of the inverse normal CDF (|relative error| < 1.2e-9).
///
/// Total over all inputs: coverages outside `(0, 1)` (including NaN) are
/// clamped to the nearest supported value, so `confidence: 1.0` yields the
/// widest finite interval (`z ≈ 7.1`) instead of a panic deep inside an
/// estimation run.
pub fn z_score(confidence: f64) -> f64 {
    let confidence = if confidence.is_nan() {
        1.0 - 1e-12
    } else {
        confidence.clamp(0.0, 1.0 - 1e-12)
    };
    inverse_normal_cdf(0.5 + confidence / 2.0)
}

/// Acklam's inverse normal CDF approximation.
fn inverse_normal_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    debug_assert!((0.0..1.0).contains(&p) && p > 0.0);
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_lineage_probability;
    use mv_pdb::value::row;
    use mv_pdb::{InDbBuilder, Weight};

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn z_scores_match_known_quantiles() {
        assert!(close(z_score(0.95), 1.959_963_985, 1e-6));
        assert!(close(z_score(0.99), 2.575_829_304, 1e-6));
        assert!(close(z_score(0.999), 3.290_526_731, 1e-6));
        assert!(close(z_score(0.5), 0.674_489_750, 1e-6));
    }

    #[test]
    fn z_score_is_total_over_degenerate_coverages() {
        // Out-of-range coverages clamp instead of panicking mid-run.
        assert!(z_score(1.0).is_finite() && z_score(1.0) > 6.0);
        assert_eq!(z_score(0.0), 0.0);
        assert_eq!(z_score(-3.0), 0.0);
        assert!(z_score(f64::NAN).is_finite());
        assert!(z_score(2.0) >= z_score(0.999_999));
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let seeds: std::collections::BTreeSet<u64> = (0..32).map(|w| derive_seed(42, w)).collect();
        assert_eq!(seeds.len(), 32);
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
    }

    /// R(a), R(b), S(a) with easy weights; no views.
    fn simple_indb() -> InDb {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["x"]).unwrap();
        let s = b.probabilistic_relation("S", &["x"]).unwrap();
        b.insert_weighted(r, row(["a"]), Weight::new(3.0)).unwrap();
        b.insert_weighted(r, row(["b"]), Weight::new(1.0)).unwrap();
        b.insert_weighted(s, row(["a"]), Weight::new(0.5)).unwrap();
        b.build()
    }

    #[test]
    fn direct_estimates_match_brute_force_within_ci() {
        let indb = simple_indb();
        let lin = Lineage::from_clauses(vec![vec![TupleId(0), TupleId(2)], vec![TupleId(1)]]);
        let exact = brute_force_lineage_probability(&lin, &indb);
        let config = ApproxConfig {
            seed: 7,
            target_half_width: 0.0,
            max_samples: 20_000,
            ..ApproxConfig::default()
        };
        let answer = approx_lineage_probability(&lin, &indb, &config).unwrap();
        assert_eq!(answer.method, IntervalMethod::Wilson);
        assert_eq!(answer.samples, 20_000);
        assert_eq!(answer.effective, 20_000, "no condition: every world counts");
        assert!(
            answer.contains(exact),
            "CI [{}, {}] misses exact {exact}",
            answer.lower(),
            answer.upper()
        );
        assert!(answer.half_width < 0.02);
    }

    #[test]
    fn same_seed_is_bit_identical_and_seeds_differ() {
        let indb = simple_indb();
        let lin = Lineage::from_clauses(vec![vec![TupleId(0), TupleId(2)]]);
        let config = ApproxConfig {
            seed: 99,
            target_half_width: 0.0,
            max_samples: 4096,
            ..ApproxConfig::default()
        };
        let a = approx_lineage_probability(&lin, &indb, &config).unwrap();
        let b = approx_lineage_probability(&lin, &indb, &config).unwrap();
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert_eq!(a.half_width.to_bits(), b.half_width.to_bits());
        let c = approx_lineage_probability(
            &lin,
            &indb,
            &ApproxConfig {
                seed: 100,
                ..config
            },
        )
        .unwrap();
        assert_ne!(a.estimate.to_bits(), c.estimate.to_bits());
    }

    #[test]
    fn early_stopping_halts_before_the_budget() {
        let indb = simple_indb();
        let lin = Lineage::from_clauses(vec![vec![TupleId(1)]]);
        let config = ApproxConfig {
            seed: 5,
            target_half_width: 0.05,
            min_samples: 512,
            max_samples: 1_000_000,
            ..ApproxConfig::default()
        };
        let answer = approx_lineage_probability(&lin, &indb, &config).unwrap();
        assert!(answer.half_width <= 0.05);
        assert!(
            answer.samples < 100_000,
            "±0.05 needs ~700 Bernoulli samples, ran {}",
            answer.samples
        );
    }

    #[test]
    fn constant_lineages_are_exact() {
        let indb = simple_indb();
        let t =
            approx_lineage_probability(&Lineage::constant_true(), &indb, &ApproxConfig::default())
                .unwrap();
        assert_eq!((t.estimate, t.half_width), (1.0, 0.0));
        let f =
            approx_lineage_probability(&Lineage::constant_false(), &indb, &ApproxConfig::default())
                .unwrap();
        assert_eq!((f.estimate, f.half_width), (0.0, 0.0));
    }

    #[test]
    fn certain_w_is_rejected_as_unsampleable() {
        let indb = simple_indb();
        let lin_q = Lineage::from_clauses(vec![vec![TupleId(0)]]);
        let err =
            ConditionalSampler::new(&lin_q, Some(&Lineage::constant_true()), &indb, |_| false);
        assert!(matches!(err, Err(QueryError::Unsampleable(_))));
    }

    /// A database with a negative-probability `NV` tuple (translated view
    /// weight 3 → probability −2) plus two base tuples.
    fn negative_indb() -> InDb {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["x"]).unwrap();
        let nv = b.probabilistic_relation("NV", &["x"]).unwrap();
        b.insert_weighted(r, row(["a"]), Weight::new(1.0)).unwrap();
        b.insert_weighted(r, row(["b"]), Weight::new(2.0)).unwrap();
        // Weight (1-3)/3 = -2/3 → probability -2 (view weight 3).
        b.insert_translated(nv, row(["a"]), Weight::new(-2.0 / 3.0))
            .unwrap();
        b.build()
    }

    #[test]
    fn integrated_nv_variables_reproduce_the_exact_conditional() {
        let indb = negative_indb();
        // Q = R(a); W = NV(a) ∧ R(a) ∧ R(b).
        let lin_q = Lineage::from_clauses(vec![vec![TupleId(0)]]);
        let lin_w = Lineage::from_clauses(vec![vec![TupleId(0), TupleId(1), TupleId(2)]]);
        let p_q_or_w = brute_force_lineage_probability(&lin_q.or(&lin_w), &indb);
        let p_w = brute_force_lineage_probability(&lin_w, &indb);
        let exact = (p_q_or_w - p_w) / (1.0 - p_w);
        let sampler =
            ConditionalSampler::new(&lin_q, Some(&lin_w), &indb, |t| t == TupleId(2)).unwrap();
        assert_eq!(sampler.num_integrated_vars(), 1);
        assert_eq!(sampler.num_sampled_vars(), 2);
        assert!(!sampler.is_direct());
        // Factor 1 − (−2) = 3 = the original view weight.
        assert!(close(sampler.weight_range(), 3.0, 1e-12));
        let config = ApproxConfig {
            seed: 11,
            target_half_width: 0.0,
            max_samples: 40_000,
            ..ApproxConfig::default()
        };
        let answer = sampler.estimate(&config);
        assert_eq!(answer.method, IntervalMethod::Normal);
        assert!(
            answer.contains(exact),
            "CI [{}, {}] misses exact {exact}",
            answer.lower(),
            answer.upper()
        );
        assert!(close(answer.estimate, exact, 0.05));
    }

    #[test]
    fn signed_sampling_handles_negative_variables_in_q() {
        let indb = negative_indb();
        // Q mentions the negative-probability tuple directly, so it cannot
        // be integrated out and is drawn through the signed proposal.
        let lin_q = Lineage::from_clauses(vec![vec![TupleId(0), TupleId(2)]]);
        let exact = brute_force_lineage_probability(&lin_q, &indb);
        let sampler = ConditionalSampler::new(&lin_q, None, &indb, |t| t == TupleId(2)).unwrap();
        assert_eq!(sampler.num_integrated_vars(), 0);
        let config = ApproxConfig {
            seed: 23,
            target_half_width: 0.0,
            max_samples: 60_000,
            ..ApproxConfig::default()
        };
        let answer = sampler.estimate(&config);
        assert!(
            answer.contains(exact),
            "CI [{}, {}] misses exact {exact}",
            answer.lower(),
            answer.upper()
        );
    }

    #[test]
    fn component_pruning_drops_unrelated_w_clauses() {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["x"]).unwrap();
        for i in 0..6i64 {
            b.insert_weighted(r, row([i]), Weight::ONE).unwrap();
        }
        let indb = b.build();
        let lin_q = Lineage::from_clauses(vec![vec![TupleId(0)]]);
        // One W clause shares a variable with Q, two live in a disjoint
        // component.
        let lin_w = Lineage::from_clauses(vec![
            vec![TupleId(0), TupleId(1)],
            vec![TupleId(2), TupleId(3)],
            vec![TupleId(3), TupleId(4)],
        ]);
        let sampler = ConditionalSampler::new(&lin_q, Some(&lin_w), &indb, |_| false).unwrap();
        assert_eq!(sampler.num_w_clauses(), 1);
        assert_eq!(sampler.num_sampled_vars(), 2);
        // The pruned estimator still matches the exact conditional over the
        // full W.
        let p_q_or_w = brute_force_lineage_probability(&lin_q.or(&lin_w), &indb);
        let p_w = brute_force_lineage_probability(&lin_w, &indb);
        let exact = (p_q_or_w - p_w) / (1.0 - p_w);
        let config = ApproxConfig {
            seed: 3,
            target_half_width: 0.0,
            max_samples: 30_000,
            ..ApproxConfig::default()
        };
        let answer = sampler.estimate(&config);
        assert_eq!(answer.method, IntervalMethod::Wilson);
        assert!(
            answer.contains(exact),
            "CI [{}, {}] misses exact {exact}",
            answer.lower(),
            answer.upper()
        );
    }

    #[test]
    fn merged_streams_match_their_weighted_average() {
        let indb = simple_indb();
        let lin = Lineage::from_clauses(vec![vec![TupleId(0)], vec![TupleId(1), TupleId(2)]]);
        let sampler = ConditionalSampler::new(&lin, None, &indb, |_| false).unwrap();
        let base = ApproxConfig {
            seed: 1234,
            target_half_width: 0.0,
            max_samples: 4096,
            ..ApproxConfig::default()
        };
        let mut merged = ApproxAccumulator::default();
        for stream in 0..4u64 {
            merged.merge(&sampler.collect(&base.stream(stream)));
        }
        assert_eq!(merged.samples, 4 * 4096);
        let answer = sampler.answer_from(&merged, &base);
        let exact = brute_force_lineage_probability(&lin, &indb);
        assert!(answer.contains(exact));
        // Merging is exactly the weighted average of the stream estimates.
        let weighted: f64 = (0..4u64)
            .map(|stream| {
                let acc = sampler.collect(&base.stream(stream));
                sampler.answer_from(&acc, &base).estimate * acc.samples as f64
            })
            .sum::<f64>()
            / merged.samples as f64;
        assert!(close(answer.estimate, weighted, 1e-12));
    }

    #[test]
    fn hoeffding_is_selected_for_small_bounded_weights() {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["x"]).unwrap();
        let nv = b.probabilistic_relation("NV", &["x"]).unwrap();
        b.insert_weighted(r, row(["a"]), Weight::new(1.0)).unwrap();
        // Weight 1 → probability 1/2; factor 1 − 1/2 = 1/2 ≤ limit.
        b.insert_translated(nv, row(["a"]), Weight::new(1.0))
            .unwrap();
        let indb = b.build();
        let lin_q = Lineage::from_clauses(vec![vec![TupleId(0)]]);
        let lin_w = Lineage::from_clauses(vec![vec![TupleId(0), TupleId(1)]]);
        let sampler =
            ConditionalSampler::new(&lin_q, Some(&lin_w), &indb, |t| t == TupleId(1)).unwrap();
        let config = ApproxConfig {
            seed: 17,
            target_half_width: 0.0,
            max_samples: 60_000,
            ..ApproxConfig::default()
        };
        assert_eq!(sampler.method(&config), IntervalMethod::Hoeffding);
        let p_q_or_w = brute_force_lineage_probability(&lin_q.or(&lin_w), &indb);
        let p_w = brute_force_lineage_probability(&lin_w, &indb);
        let exact = (p_q_or_w - p_w) / (1.0 - p_w);
        let answer = sampler.estimate(&config);
        assert!(
            answer.contains(exact),
            "CI [{}, {}] misses exact {exact}",
            answer.lower(),
            answer.upper()
        );
    }
}
