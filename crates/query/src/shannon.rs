//! Exact lineage probability by Shannon expansion.
//!
//! This is the generic exact inference fallback: given the DNF lineage of a
//! Boolean query and the marginal probabilities of its tuple variables, it
//! computes the probability by
//!
//! * splitting the DNF into connected components over disjoint variables
//!   (whose probabilities combine by independence), and
//! * Shannon-expanding on the most frequent variable otherwise,
//!
//! with memoisation on sub-formulas. All steps — independence, Shannon
//! expansion — remain valid when some probabilities are negative
//! (Section 3.3), so this evaluator is also used on translated databases.

use std::collections::{BTreeMap, BTreeSet};

use fxhash::FxHashMap;
use mv_pdb::{InDb, TupleId};

use crate::ast::Ucq;
use crate::eval::EvalContext;
use crate::lineage::{lineage_with, Clause, Lineage};
use crate::Result;

/// Computes the exact probability of a DNF lineage under the given
/// tuple-probability function.
pub fn probability_with(lineage: &Lineage, prob_of: &impl Fn(TupleId) -> f64) -> f64 {
    let clauses: Vec<Clause> = lineage.clauses().to_vec();
    let mut memo: FxHashMap<Vec<Clause>, f64> = FxHashMap::default();
    dnf_probability(&clauses, prob_of, &mut memo)
}

/// Computes the exact probability of a lineage over an [`InDb`] (using the
/// database's marginal tuple probabilities, which may be negative).
pub fn shannon_probability(lineage: &Lineage, indb: &InDb) -> f64 {
    probability_with(lineage, &|t| indb.probability(t))
}

/// Computes the exact probability of a Boolean UCQ: the lineage is collected
/// through the compiled slot-based matcher of `ctx` (plans and column
/// indexes are cached there), then Shannon-expanded.
pub fn shannon_query_probability_with(
    ucq: &Ucq,
    indb: &InDb,
    ctx: &EvalContext<'_>,
) -> Result<f64> {
    let lin = lineage_with(ucq, indb, ctx)?;
    Ok(shannon_probability(&lin, indb))
}

fn dnf_probability(
    clauses: &[Clause],
    prob_of: &impl Fn(TupleId) -> f64,
    memo: &mut FxHashMap<Vec<Clause>, f64>,
) -> f64 {
    if clauses.is_empty() {
        return 0.0;
    }
    if clauses.iter().any(Clause::is_empty) {
        return 1.0;
    }
    let key: Vec<Clause> = {
        let mut k = clauses.to_vec();
        k.sort();
        k.dedup();
        k
    };
    if let Some(&p) = memo.get(&key) {
        return p;
    }

    // Independent-component decomposition: clauses sharing no variables.
    let components = connected_components(&key);
    let p = if components.len() > 1 {
        // P(∨ components) = 1 - Π (1 - P(component)).
        let mut q = 1.0;
        for comp in components {
            let pc = dnf_probability(&comp, prob_of, memo);
            q *= 1.0 - pc;
        }
        1.0 - q
    } else {
        // Shannon expansion on the most frequent variable.
        let var = most_frequent_variable(&key);
        let p_var = prob_of(var);
        let mut pos: Vec<Clause> = Vec::new();
        let mut neg: Vec<Clause> = Vec::new();
        for clause in &key {
            if clause.binary_search(&var).is_ok() {
                // Under var = 1 the clause loses the literal.
                let reduced: Clause = clause.iter().copied().filter(|&t| t != var).collect();
                pos.push(reduced);
            } else {
                pos.push(clause.clone());
                neg.push(clause.clone());
            }
        }
        let p1 = dnf_probability(&pos, prob_of, memo);
        let p0 = dnf_probability(&neg, prob_of, memo);
        p_var * p1 + (1.0 - p_var) * p0
    };
    memo.insert(key, p);
    p
}

fn most_frequent_variable(clauses: &[Clause]) -> TupleId {
    let mut counts: BTreeMap<TupleId, usize> = BTreeMap::new();
    for clause in clauses {
        for &t in clause {
            *counts.entry(t).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(t, c)| (c, std::cmp::Reverse(t)))
        .map(|(t, _)| t)
        .expect("clauses are non-empty")
}

fn connected_components(clauses: &[Clause]) -> Vec<Vec<Clause>> {
    let n = clauses.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let mut owner: FxHashMap<TupleId, usize> = FxHashMap::default();
    for (i, clause) in clauses.iter().enumerate() {
        for &t in clause {
            match owner.get(&t) {
                Some(&j) => {
                    let a = find(&mut parent, i);
                    let b = find(&mut parent, j);
                    parent[a] = b;
                }
                None => {
                    owner.insert(t, i);
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<Clause>> = BTreeMap::new();
    for (i, clause) in clauses.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(clause.clone());
    }
    groups.into_values().collect()
}

/// Variables of a set of clauses (helper shared with tests).
pub fn clause_variables(clauses: &[Clause]) -> BTreeSet<TupleId> {
    clauses.iter().flatten().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_probability_with;

    fn t(i: u32) -> TupleId {
        TupleId(i)
    }

    #[test]
    fn query_entry_points_share_one_compiled_plan() {
        use crate::brute::brute_force_query_probability_with;
        use crate::eval::EvalContext;
        use crate::parser::parse_ucq;
        use mv_pdb::value::row;
        use mv_pdb::{InDbBuilder, Weight};

        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
        b.insert_weighted(r, row(["a1"]), Weight::new(3.0)).unwrap(); // p = 0.75
        b.insert_weighted(s, row(["a1", "b1"]), Weight::new(1.0))
            .unwrap(); // p = 0.5
        b.insert_weighted(s, row(["a1", "b2"]), Weight::new(1.0))
            .unwrap(); // p = 0.5
        let indb = b.build();
        let ctx = EvalContext::new(indb.database());
        let q = parse_ucq("Q() :- R(x), S(x, y)").unwrap();
        // P = 0.75 * (1 - 0.5 * 0.5) = 0.5625.
        let via_shannon = shannon_query_probability_with(&q, &indb, &ctx).unwrap();
        let via_brute = brute_force_query_probability_with(&q, &indb, &ctx).unwrap();
        assert!((via_shannon - 0.5625).abs() < 1e-12);
        assert!((via_shannon - via_brute).abs() < 1e-12);
        // Both entry points went through the same cached physical plan.
        assert_eq!(ctx.compiled_plans(), 1);
        // Non-Boolean queries are rejected, not silently mangled.
        let bad = parse_ucq("Q(x) :- R(x)").unwrap();
        assert!(shannon_query_probability_with(&bad, &indb, &ctx).is_err());
        assert!(brute_force_query_probability_with(&bad, &indb, &ctx).is_err());
    }

    #[test]
    fn constants_have_trivial_probabilities() {
        let p = |_| 0.5;
        assert_eq!(probability_with(&Lineage::constant_false(), &p), 0.0);
        assert_eq!(probability_with(&Lineage::constant_true(), &p), 1.0);
    }

    #[test]
    fn single_clause_is_a_product() {
        let l = Lineage::from_clauses(vec![vec![t(0), t(1)]]);
        let p = probability_with(&l, &|x| if x == t(0) { 0.5 } else { 0.25 });
        assert!((p - 0.125).abs() < 1e-12);
    }

    #[test]
    fn independent_clauses_combine_with_inclusion_exclusion() {
        // X0 ∨ X1 with p = 0.5, 0.5 → 0.75.
        let l = Lineage::from_clauses(vec![vec![t(0)], vec![t(1)]]);
        let p = probability_with(&l, &|_| 0.5);
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn shared_variables_are_handled_by_shannon_expansion() {
        // X0X1 ∨ X0X2, p = 0.5 each → P = p0 * (1 - (1-p1)(1-p2)) = 0.5 * 0.75.
        let l = Lineage::from_clauses(vec![vec![t(0), t(1)], vec![t(0), t(2)]]);
        let p = probability_with(&l, &|_| 0.5);
        assert!((p - 0.375).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_dnfs() {
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..50 {
            let num_vars = rng.gen_range(1..=8usize);
            let num_clauses = rng.gen_range(1..=6usize);
            let clauses: Vec<Clause> = (0..num_clauses)
                .map(|_| {
                    let len = rng.gen_range(1..=3usize);
                    (0..len)
                        .map(|_| t(rng.gen_range(0..num_vars) as u32))
                        .collect()
                })
                .collect();
            let lineage = Lineage::from_clauses(clauses);
            let probs: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(0.0..1.0)).collect();
            let f = |x: TupleId| probs[x.index()];
            let exact = probability_with(&lineage, &f);
            let brute = brute_force_probability_with(&lineage, &f);
            assert!(
                (exact - brute).abs() < 1e-9,
                "mismatch: {exact} vs {brute} on {lineage:?}"
            );
        }
    }

    #[test]
    fn negative_probabilities_are_supported() {
        // With p(X0) = -1 (weight -1/2), P(X0 ∨ X1) = p0 + p1 - p0 p1.
        let l = Lineage::from_clauses(vec![vec![t(0)], vec![t(1)]]);
        let f = |x: TupleId| if x == t(0) { -1.0 } else { 0.5 };
        let p = probability_with(&l, &f);
        let expected = -1.0 + 0.5 - -0.5;
        assert!((p - expected).abs() < 1e-12);
        let brute = brute_force_probability_with(&l, &f);
        assert!((p - brute).abs() < 1e-12);
    }
}
