//! Cooperative cancellation, deadlines and work budgets.
//!
//! An [`EvalBudget`] is a cheaply clonable handle shared by every layer of
//! one evaluation: the vectorized executor checks it at batch boundaries
//! ([`crate::vec_exec`]), OBDD synthesis checks it between (and inside)
//! apply folds (`mv-obdd`), and the Monte Carlo sampler checks it between
//! sample batches ([`crate::approx`]). Work never stops preemptively —
//! each layer polls at its natural quantum, so a budget trip surfaces as a
//! typed [`BudgetError`] through the ordinary `Result` channel instead of
//! a hang, an abort, or an unbounded allocation.
//!
//! The handle is `Arc`-backed: cloning shares the same counters, so a
//! deadline set once by a session worker bounds every stage of that
//! query's evaluation (lineage enumeration, synthesis, sampling) without
//! any of them knowing about the others.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an evaluation was cut short. Carried by every layer's error enum
/// (`QueryError::Budget`, `ObddError::Budget`, and the `mv-core`
/// `EvalError::{DeadlineExceeded, BudgetExceeded}` variants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetError {
    /// The wall-clock deadline passed before the evaluation finished.
    DeadlineExceeded {
        /// Time elapsed since the budget was created.
        elapsed: Duration,
    },
    /// The step budget (batch rows, arena nodes, samples — whatever the
    /// charging layer counts as a unit of work) ran out.
    StepBudgetExceeded {
        /// Steps charged so far.
        steps: u64,
        /// The limit they exceeded.
        limit: u64,
    },
    /// The budget was cancelled explicitly (caller gave up, or a sibling
    /// worker already produced the answer).
    Cancelled,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::DeadlineExceeded { elapsed } => {
                write!(f, "evaluation deadline exceeded after {elapsed:?}")
            }
            BudgetError::StepBudgetExceeded { steps, limit } => {
                write!(
                    f,
                    "evaluation step budget exhausted ({steps} steps, limit {limit})"
                )
            }
            BudgetError::Cancelled => write!(f, "evaluation cancelled"),
        }
    }
}

impl std::error::Error for BudgetError {}

#[derive(Debug)]
struct BudgetInner {
    started: Instant,
    deadline: Option<Instant>,
    step_limit: Option<u64>,
    steps: AtomicU64,
    cancelled: AtomicBool,
}

/// A shared deadline + work budget polled cooperatively by every
/// evaluation layer. Cloning is an `Arc` bump; all clones observe the same
/// step counter and cancellation flag.
#[derive(Debug, Clone)]
pub struct EvalBudget {
    inner: Arc<BudgetInner>,
}

impl EvalBudget {
    /// A budget with no deadline and no step limit. [`EvalBudget::check`]
    /// only fails after [`EvalBudget::cancel`].
    pub fn unlimited() -> Self {
        Self::build(None, None)
    }

    /// A budget that expires `deadline` from now.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self::build(Some(Instant::now() + deadline), None)
    }

    /// A budget that expires at the given instant.
    pub fn with_deadline_at(at: Instant) -> Self {
        Self::build(Some(at), None)
    }

    /// Returns this budget with a step limit added (builder style). The
    /// step counter is shared across clones, so the limit bounds the
    /// *total* work of every layer charging against this budget.
    pub fn with_step_limit(self, limit: u64) -> Self {
        Self::build(self.inner.deadline, Some(limit))
    }

    fn build(deadline: Option<Instant>, step_limit: Option<u64>) -> Self {
        EvalBudget {
            inner: Arc::new(BudgetInner {
                started: Instant::now(),
                deadline,
                step_limit,
                steps: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// Cancels the budget: every subsequent [`EvalBudget::check`] on any
    /// clone fails with [`BudgetError::Cancelled`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Time elapsed since the budget was created.
    pub fn elapsed(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// Time remaining until the deadline (`None` when no deadline is set;
    /// `Some(ZERO)` once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Steps charged so far across every clone.
    pub fn steps_used(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// Polls the budget without charging work: fails when cancelled, past
    /// the deadline, or already over the step limit.
    pub fn check(&self) -> Result<(), BudgetError> {
        let inner = &self.inner;
        if inner.cancelled.load(Ordering::Relaxed) {
            return Err(BudgetError::Cancelled);
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetError::DeadlineExceeded {
                    elapsed: inner.started.elapsed(),
                });
            }
        }
        if let Some(limit) = inner.step_limit {
            let steps = inner.steps.load(Ordering::Relaxed);
            if steps > limit {
                return Err(BudgetError::StepBudgetExceeded { steps, limit });
            }
        }
        Ok(())
    }

    /// Charges `n` units of work, then polls. The charge sticks even when
    /// the poll fails — a budget over its limit stays over it.
    pub fn charge(&self, n: u64) -> Result<(), BudgetError> {
        self.inner.steps.fetch_add(n, Ordering::Relaxed);
        self.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = EvalBudget::unlimited();
        assert!(b.check().is_ok());
        assert!(b.charge(1_000_000).is_ok());
        assert_eq!(b.steps_used(), 1_000_000);
        assert!(b.remaining().is_none());
    }

    #[test]
    fn expired_deadline_trips_with_elapsed_time() {
        let b = EvalBudget::with_deadline(Duration::ZERO);
        match b.check() {
            Err(BudgetError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn step_limit_trips_after_charge_and_is_shared_across_clones() {
        let b = EvalBudget::unlimited().with_step_limit(10);
        let c = b.clone();
        assert!(b.charge(10).is_ok());
        match c.charge(1) {
            Err(BudgetError::StepBudgetExceeded {
                steps: 11,
                limit: 10,
            }) => {}
            other => panic!("expected StepBudgetExceeded, got {other:?}"),
        }
        // Once over, it stays over — even a zero-cost poll fails.
        assert!(b.check().is_err());
    }

    #[test]
    fn cancel_is_visible_to_all_clones() {
        let b = EvalBudget::unlimited();
        let c = b.clone();
        b.cancel();
        assert_eq!(c.check(), Err(BudgetError::Cancelled));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = EvalBudget::with_deadline(Duration::from_secs(3600));
        assert!(b.check().is_ok());
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }
}
