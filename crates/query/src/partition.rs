//! Component-based sharding of a tuple-independent database.
//!
//! [`ComponentPartitioner`] turns the connected components of `W`'s lineage
//! ([`crate::components`]) into a [`Partition`] of the possible-tuple
//! universe into `num_shards` shards. Tuples mentioned by some `W` clause
//! (*W-homed*) live in exactly one shard — their whole component lands
//! together, so no `W` clause ever spans shards and
//! `¬W = ∧_s ¬W_s` with the per-shard `W_s` over disjoint, independent
//! variables: `P0(¬W) = ∏_s P0(¬W_s)` exactly. Tuples mentioned by no `W`
//! clause (*W-free*) are independent of `W` and of each other, so they have
//! no home at all: the sharding layer replicates them into every shard's
//! sub-store, and [`Partition::route`] pins each of them to one shard *per
//! query*.
//!
//! Routing a query lineage `Φ_Q = ∨ C_j` ([`Partition::route`]) groups the
//! clauses by shared variables (a union-find over the clauses themselves)
//! and binds each group to a shard:
//!
//! * a group whose W-homed variables all live in one shard is evaluated
//!   there — its W-free variables appear in no other group, so the
//!   per-shard disjuncts `φ_s` stay variable-disjoint and
//!   `P(Φ_Q | ¬W) = 1 − ∏_s (1 − P(φ_s | ¬W_s))` exactly;
//! * a group drawing W-homed variables from two shards has no home, and
//!   the query is reported [`RoutedLineage::CrossShard`] so the caller can
//!   fall back to the unsharded oracle;
//! * a group with no W-homed variable at all is pinned to a deterministic
//!   shard (first variable id modulo shard count).
//!
//! Packing is a greedy longest-processing-time bin fill: W-components
//! sorted by size descending (ties by smallest member tuple ascending) are
//! assigned to the currently least-loaded shard (ties to the lowest shard
//! id). The result is a pure function of the clause set and shard count.

use fxhash::FxHashMap;

use crate::components::{connected_components, Components, UnionFind};
use crate::lineage::{Clause, Lineage};
use mv_pdb::TupleId;

/// Sentinel in `Partition::home_of` for W-free (replicated) tuples.
const FREE: u16 = u16::MAX;

/// Splits a possible-tuple universe into shards along the connected
/// components of a clause set (typically `W`'s lineage).
#[derive(Debug, Clone)]
pub struct ComponentPartitioner {
    components: Components,
    in_w: Vec<bool>,
}

impl ComponentPartitioner {
    /// Analyses the components of `w_clauses` over a universe of
    /// `num_tuples` possible tuples.
    pub fn new(num_tuples: usize, w_clauses: &[Clause]) -> Self {
        let mut in_w = vec![false; num_tuples];
        for clause in w_clauses {
            for &t in clause {
                in_w[t.0 as usize] = true;
            }
        }
        ComponentPartitioner {
            components: connected_components(num_tuples, w_clauses),
            in_w,
        }
    }

    /// The underlying component analysis.
    pub fn components(&self) -> &Components {
        &self.components
    }

    /// Number of connected components (W-free singletons included).
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Packs the W-components into (at most) `num_shards` shards.
    ///
    /// `num_shards` is clamped to at least 1. Shards may end up empty when
    /// there are fewer W-components than shards.
    pub fn partition(&self, num_shards: usize) -> Partition {
        let num_shards = num_shards.max(1);
        // W-components by decreasing size; ties by smallest member so the
        // order (and thus the whole partition) is deterministic. W-free
        // tuples are singleton components with `in_w` false — they get no
        // home and are skipped here.
        let mut order: Vec<usize> = (0..self.components.len())
            .filter(|&c| self.in_w[self.components.members(c)[0].0 as usize])
            .collect();
        order.sort_by_key(|&c| {
            (
                std::cmp::Reverse(self.components.size(c)),
                self.components.members(c)[0],
            )
        });
        let mut shard_sizes = vec![0usize; num_shards];
        let mut home_of = vec![FREE; self.components.num_tuples()];
        for c in order {
            let shard = shard_sizes
                .iter()
                .enumerate()
                .min_by_key(|&(s, &size)| (size, s))
                .map(|(s, _)| s)
                .expect("at least one shard");
            shard_sizes[shard] += self.components.size(c);
            for &t in self.components.members(c) {
                home_of[t.0 as usize] = shard as u16;
            }
        }
        Partition {
            home_of,
            shard_sizes,
            num_components: self.components.len(),
        }
    }
}

/// A home-shard assignment for the W-homed tuples of a universe (W-free
/// tuples are replicated everywhere and have no home).
#[derive(Debug, Clone)]
pub struct Partition {
    home_of: Vec<u16>,
    shard_sizes: Vec<usize>,
    num_components: usize,
}

/// Where a query lineage lands on a [`Partition`].
#[derive(Debug, Clone, PartialEq)]
pub enum RoutedLineage {
    /// Every clause group binds to one shard: the clauses grouped per
    /// touched shard, in increasing shard order, with their original
    /// (global) tuple ids.
    Sharded {
        /// `(shard, clauses homed there)` for every non-empty shard.
        groups: Vec<(usize, Vec<Clause>)>,
        /// `true` when every clause contains at least one W-homed tuple.
        /// Then *syntactic* evaluation of the query against a shard's
        /// sub-store (W-homed tuples of that shard plus all replicated
        /// W-free tuples) yields exactly that shard's clause group, so
        /// backends without lineage-level entry points can still be
        /// dispatched per shard.
        structural_ok: bool,
    },
    /// Some clause group draws W-homed tuples from two different shards;
    /// the query must be evaluated against the unsharded store.
    CrossShard,
}

impl Partition {
    /// Builds a partition from an explicit per-tuple home assignment
    /// (`None` = W-free / replicated), e.g. the stability-aware
    /// re-partitioning of the update path, which keeps unchanged components
    /// on their old shards instead of re-packing from scratch.
    ///
    /// `num_shards` is clamped to at least 1; every assigned home must lie
    /// below it.
    pub fn from_homes(
        homes: &[Option<usize>],
        num_shards: usize,
        num_components: usize,
    ) -> Partition {
        let num_shards = num_shards.max(1);
        let mut shard_sizes = vec![0usize; num_shards];
        let mut home_of = vec![FREE; homes.len()];
        for (i, home) in homes.iter().enumerate() {
            if let Some(s) = *home {
                assert!(
                    s < num_shards,
                    "home {s} out of range for {num_shards} shards"
                );
                shard_sizes[s] += 1;
                home_of[i] = s as u16;
            }
        }
        Partition {
            home_of,
            shard_sizes,
            num_components,
        }
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.shard_sizes.len()
    }

    /// Number of connected components the partition was built from
    /// (W-free singletons included).
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Number of W-homed tuples assigned to each shard (replicated W-free
    /// tuples are not counted).
    pub fn shard_sizes(&self) -> &[usize] {
        &self.shard_sizes
    }

    /// The home shard of a W-homed tuple, or `None` for a W-free
    /// (replicated) tuple.
    ///
    /// Panics if `t` lies outside the universe the partition was built
    /// over.
    pub fn home_of(&self, t: TupleId) -> Option<usize> {
        match self.home_of[t.0 as usize] {
            FREE => None,
            s => Some(s as usize),
        }
    }

    /// Routes a (non-constant) lineage per the module-level grouping rules,
    /// or reports [`RoutedLineage::CrossShard`] as soon as any clause group
    /// mixes W-homed tuples from two shards.
    pub fn route(&self, lineage: &Lineage) -> RoutedLineage {
        let clauses = lineage.clauses();
        // Clauses sharing any variable must land on the same shard (their
        // disjuncts are not independent): union them into groups first.
        let mut uf = UnionFind::default();
        for clause in clauses {
            uf.union_clause(clause);
        }
        // Fold each clause's W-homed tuples into its group's home shard.
        let mut group_shard: FxHashMap<usize, Option<usize>> = FxHashMap::default();
        let mut structural_ok = true;
        for clause in clauses {
            let Some(&first) = clause.first() else {
                // An empty clause is constant true; constants are the
                // caller's short-circuit, not a routable lineage.
                return RoutedLineage::CrossShard;
            };
            let root = uf.find_id(first);
            let entry = group_shard.entry(root).or_insert(None);
            let mut clause_homed = false;
            for &t in clause {
                let Some(shard) = self.home_of(t) else {
                    continue;
                };
                clause_homed = true;
                match *entry {
                    None => *entry = Some(shard),
                    Some(prev) if prev != shard => return RoutedLineage::CrossShard,
                    Some(_) => {}
                }
            }
            structural_ok &= clause_homed;
        }
        // Pin all-W-free groups deterministically and bucket the clauses.
        let mut buckets: Vec<Vec<Clause>> = vec![Vec::new(); self.num_shards()];
        for clause in clauses {
            let root = uf.find_id(clause[0]);
            let entry = group_shard.get_mut(&root).expect("group registered above");
            let shard = *entry.get_or_insert(clause[0].0 as usize % self.num_shards());
            buckets[shard].push(clause.clone());
        }
        RoutedLineage::Sharded {
            groups: buckets
                .into_iter()
                .enumerate()
                .filter(|(_, clauses)| !clauses.is_empty())
                .collect(),
            structural_ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::Lineage;

    fn t(id: u32) -> TupleId {
        TupleId(id)
    }

    fn sharded_groups(routed: RoutedLineage) -> (Vec<(usize, Vec<Clause>)>, bool) {
        match routed {
            RoutedLineage::Sharded {
                groups,
                structural_ok,
            } => (groups, structural_ok),
            RoutedLineage::CrossShard => panic!("expected a sharded routing"),
        }
    }

    #[test]
    fn components_never_split_across_shards() {
        let clauses = vec![vec![t(0), t(1)], vec![t(2), t(3), t(4)], vec![t(5), t(6)]];
        let p = ComponentPartitioner::new(8, &clauses).partition(3);
        assert_eq!(p.num_shards(), 3);
        assert_eq!(p.home_of(t(0)), p.home_of(t(1)));
        assert_eq!(p.home_of(t(2)), p.home_of(t(3)));
        assert_eq!(p.home_of(t(3)), p.home_of(t(4)));
        assert_eq!(p.home_of(t(5)), p.home_of(t(6)));
        // Tuple 7 appears in no W clause: replicated, no home.
        assert_eq!(p.home_of(t(7)), None);
        assert_eq!(p.shard_sizes().iter().sum::<usize>(), 7);
    }

    #[test]
    fn packing_balances_by_size() {
        // Components {0,1,2}, {3,4} and {5} over two shards: the greedy
        // fill puts the big component alone and the others together.
        let clauses = vec![vec![t(0), t(1), t(2)], vec![t(3), t(4)], vec![t(5)]];
        let p = ComponentPartitioner::new(6, &clauses).partition(2);
        assert_eq!(p.shard_sizes(), &[3, 3]);
        let big = p.home_of(t(0)).unwrap();
        for id in 3..6 {
            assert_ne!(p.home_of(t(id)).unwrap(), big);
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let clauses = vec![vec![t(1), t(4)], vec![t(2), t(7)], vec![t(0), t(5)]];
        let a = ComponentPartitioner::new(9, &clauses).partition(4);
        let b = ComponentPartitioner::new(9, &clauses).partition(4);
        for id in 0..9 {
            assert_eq!(a.home_of(t(id)), b.home_of(t(id)));
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let p = ComponentPartitioner::new(3, &[vec![t(0)], vec![t(1)], vec![t(2)]]).partition(0);
        assert_eq!(p.num_shards(), 1);
        assert_eq!(p.shard_sizes(), &[3]);
    }

    #[test]
    fn routing_groups_clauses_by_shared_variables() {
        // Tuples 0/1 and 2/3 are separate W components on two shards.
        let w = vec![vec![t(0), t(1)], vec![t(2), t(3)]];
        let p = ComponentPartitioner::new(6, &w).partition(2);
        let s0 = p.home_of(t(0)).unwrap();
        let s2 = p.home_of(t(2)).unwrap();
        assert_ne!(s0, s2);

        // Two independent groups, each homed by its W tuple; the W-free
        // tuple 4 rides along with tuple 0's group.
        let routed = p.route(&Lineage::from_clauses([vec![t(0), t(4)], vec![t(2), t(3)]]));
        let (groups, structural_ok) = sharded_groups(routed);
        assert_eq!(groups.len(), 2);
        assert!(structural_ok);
        assert!(groups
            .iter()
            .any(|(s, clauses)| *s == s0 && clauses == &vec![vec![t(0), t(4)]]));

        // A W-free tuple shared between clauses homed on different shards
        // merges the groups: no home, fall back.
        let spanning = Lineage::from_clauses([vec![t(0), t(4)], vec![t(2), t(4)]]);
        assert_eq!(p.route(&spanning), RoutedLineage::CrossShard);

        // A single clause mixing the two W components falls back too.
        let mixed = Lineage::from_clauses([vec![t(0), t(2)]]);
        assert_eq!(p.route(&mixed), RoutedLineage::CrossShard);
    }

    #[test]
    fn all_free_groups_are_pinned_deterministically() {
        let w = vec![vec![t(0), t(1)]];
        let p = ComponentPartitioner::new(5, &w).partition(2);
        // Clauses over W-free tuples only: still routable (pinned by first
        // variable id), but not safe for syntactic per-shard evaluation.
        let routed = p.route(&Lineage::from_clauses([vec![t(2), t(3)], vec![t(4)]]));
        let (groups, structural_ok) = sharded_groups(routed.clone());
        assert!(!structural_ok);
        assert_eq!(
            groups.iter().map(|(_, c)| c.len()).sum::<usize>(),
            2,
            "every clause must be bucketed"
        );
        assert_eq!(
            p.route(&Lineage::from_clauses([vec![t(2), t(3)], vec![t(4)]])),
            routed
        );
    }
}
