//! Query simplification against a concrete database instance.
//!
//! These helpers are shared by the safe-plan evaluator and by the ConOBDD
//! construction: both repeatedly ground variables (separators) and then need
//! to (a) fold away atoms that are certainly true or false, and (b) compute
//! the domain over which a separator variable ranges.

use std::collections::BTreeSet;

use mv_pdb::{InDb, Value};

use crate::ast::{Atom, ConjunctiveQuery, Ucq};

/// The result of simplifying a Boolean conjunctive query against a database.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplifiedCq {
    /// The query is unsatisfiable on this database.
    False,
    /// The query is certainly true (no probabilistic atoms remain).
    True,
    /// The remaining query (ground deterministic atoms and ground
    /// comparisons removed, duplicate atoms merged).
    Query(ConjunctiveQuery),
}

/// Evaluates ground comparisons and ground atoms over deterministic relations
/// and removes them from the query; detects trivially false queries.
///
/// Ground atoms over probabilistic relations are kept (they are genuine
/// random events), but if they denote a tuple that is not even *possible* the
/// whole query is false.
pub fn simplify_cq(cq: &ConjunctiveQuery, indb: &InDb) -> SimplifiedCq {
    let mut atoms = Vec::new();
    for atom in &cq.atoms {
        if atom.is_ground() {
            let Some(rel) = indb.schema().relation_id(&atom.relation) else {
                return SimplifiedCq::False;
            };
            let row: Vec<Value> = atom
                .terms
                .iter()
                .map(|t| t.as_const().cloned().expect("ground atom"))
                .collect();
            if indb.is_deterministic(rel) {
                if indb.database().contains(rel, &row) {
                    continue; // certainly true: drop it
                }
                return SimplifiedCq::False;
            }
            if indb.tuple_id_by_values(rel, &row).is_none() {
                return SimplifiedCq::False;
            }
            atoms.push(atom.clone());
        } else {
            atoms.push(atom.clone());
        }
    }
    // Duplicate atoms denote the same subgoal; keep one copy.
    let mut seen_atoms = BTreeSet::new();
    atoms.retain(|a: &Atom| seen_atoms.insert(format!("{a}")));

    let mut comparisons = Vec::new();
    for cmp in &cq.comparisons {
        match cmp.eval_ground() {
            Some(true) => {}
            Some(false) => return SimplifiedCq::False,
            None => comparisons.push(cmp.clone()),
        }
    }
    if atoms.is_empty() {
        return SimplifiedCq::True;
    }
    SimplifiedCq::Query(ConjunctiveQuery::new(
        cq.name.clone(),
        vec![],
        atoms,
        comparisons,
    ))
}

/// Computes the grounding domain of a separator choice: for each disjunct,
/// the intersection over its atoms of the values appearing in the column
/// where the separator occurs; the overall domain is the union across
/// disjuncts, in ascending value order.
pub fn separator_domain(ucq: &Ucq, per_disjunct: &[String], indb: &InDb) -> Vec<Value> {
    let mut domain: BTreeSet<Value> = BTreeSet::new();
    for (cq, var) in ucq.disjuncts.iter().zip(per_disjunct) {
        let mut cq_domain: Option<BTreeSet<Value>> = None;
        for atom in &cq.atoms {
            let positions = atom.positions_of(var);
            if positions.is_empty() {
                continue;
            }
            let Some(rel) = indb.schema().relation_id(&atom.relation) else {
                continue;
            };
            let col: BTreeSet<Value> = indb
                .database()
                .column_domain(rel, positions[0])
                .into_iter()
                .collect();
            cq_domain = Some(match cq_domain {
                None => col,
                Some(d) => d.intersection(&col).cloned().collect(),
            });
        }
        if let Some(d) = cq_domain {
            domain.extend(d);
        }
    }
    domain.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_ucq};
    use mv_pdb::value::row;
    use mv_pdb::{InDbBuilder, Weight};

    fn db() -> InDb {
        let mut b = InDbBuilder::new();
        let d = b.deterministic_relation("D", &["a"]).unwrap();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
        b.insert_fact(d, row(["a1"])).unwrap();
        b.insert_weighted(r, row(["a1"]), Weight::ONE).unwrap();
        b.insert_weighted(s, row(["a1", "b1"]), Weight::ONE)
            .unwrap();
        b.insert_weighted(s, row(["a2", "b2"]), Weight::ONE)
            .unwrap();
        b.build()
    }

    #[test]
    fn deterministic_ground_atoms_are_folded() {
        let indb = db();
        let q = parse_query("Q() :- D('a1'), R(x)").unwrap();
        match simplify_cq(&q, &indb) {
            SimplifiedCq::Query(q) => assert_eq!(q.atoms.len(), 1),
            other => panic!("unexpected: {other:?}"),
        }
        let q = parse_query("Q() :- D('zzz'), R(x)").unwrap();
        assert_eq!(simplify_cq(&q, &indb), SimplifiedCq::False);
        let q = parse_query("Q() :- D('a1')").unwrap();
        assert_eq!(simplify_cq(&q, &indb), SimplifiedCq::True);
    }

    #[test]
    fn impossible_probabilistic_ground_atoms_make_the_query_false() {
        let indb = db();
        let q = parse_query("Q() :- R('nope')").unwrap();
        assert_eq!(simplify_cq(&q, &indb), SimplifiedCq::False);
        let q = parse_query("Q() :- R('a1')").unwrap();
        assert!(matches!(simplify_cq(&q, &indb), SimplifiedCq::Query(_)));
    }

    #[test]
    fn ground_comparisons_are_folded() {
        let indb = db();
        let q = parse_query("Q() :- R(x), 1 < 2").unwrap();
        match simplify_cq(&q, &indb) {
            SimplifiedCq::Query(q) => assert!(q.comparisons.is_empty()),
            other => panic!("unexpected: {other:?}"),
        }
        let q = parse_query("Q() :- R(x), 2 < 1").unwrap();
        assert_eq!(simplify_cq(&q, &indb), SimplifiedCq::False);
    }

    #[test]
    fn duplicate_atoms_are_merged() {
        let indb = db();
        let q = parse_query("Q() :- R(x), R(x)").unwrap();
        match simplify_cq(&q, &indb) {
            SimplifiedCq::Query(q) => assert_eq!(q.atoms.len(), 1),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn separator_domain_intersects_per_disjunct_columns() {
        let indb = db();
        let ucq = parse_ucq("Q() :- R(x), S(x, y)").unwrap();
        let domain = separator_domain(&ucq, &["x".to_string()], &indb);
        // R has only a1; S has a1, a2 in column 0; the intersection is {a1}.
        assert_eq!(domain, vec![Value::str("a1")]);
    }

    #[test]
    fn separator_domain_unions_across_disjuncts() {
        let indb = db();
        let ucq = parse_ucq("Q() :- R(x) ; Q() :- S(z, y)").unwrap();
        let domain = separator_domain(&ucq, &["x".to_string(), "z".to_string()], &indb);
        assert_eq!(domain, vec![Value::str("a1"), Value::str("a2")]);
    }
}
