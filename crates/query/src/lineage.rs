//! Lineage (Boolean provenance) of queries over tuple-independent databases.
//!
//! The lineage `Φ_Q` of a Boolean query `Q` is a positive Boolean formula in
//! DNF over the Boolean variables `X_t` of the probabilistic tuples
//! (Section 2.1 / Figure 3): each satisfying assignment of the query body
//! contributes one clause containing the probabilistic tuples it used;
//! deterministic tuples contribute nothing (they are always present).
//!
//! Clause collection runs through the compiled slot-based matcher of
//! [`crate::plan`], with hash-based duplicate elimination (each clause is
//! sorted, then deduplicated through an `FxHashSet`) instead of a `BTreeSet`
//! — the clause set is only ordered once, at the end, to keep the canonical
//! sorted form. The legacy backtracking evaluator remains reachable through
//! [`lineage_legacy_with`] as the agreement-test oracle.

use std::collections::BTreeMap;
use std::ops::ControlFlow;

use fxhash::FxHashSet;
use mv_pdb::{InDb, Row, TupleId};

use crate::ast::{Term, Ucq};
use crate::error::QueryError;
use crate::eval::{for_each_match, EvalContext};
use crate::vec_exec::ExecStats;
use crate::Result;

/// One clause of a DNF lineage: a conjunction of tuple variables, kept sorted
/// and duplicate-free.
pub type Clause = Vec<TupleId>;

/// The lineage of a Boolean query: a disjunction of [`Clause`]s.
///
/// The formula `false` is the empty disjunction; the formula `true` is
/// represented by a single empty clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lineage {
    clauses: Vec<Clause>,
}

impl Lineage {
    /// The constant `false` lineage (no clauses).
    pub fn constant_false() -> Self {
        Lineage { clauses: vec![] }
    }

    /// The constant `true` lineage (one empty clause).
    pub fn constant_true() -> Self {
        Lineage {
            clauses: vec![vec![]],
        }
    }

    /// Builds a lineage from clauses, normalising each clause (sort + dedup)
    /// and removing duplicate clauses through hash-based deduplication. The
    /// surviving clauses are sorted once, so the result is canonical:
    /// lineages are equal iff their clause sets are.
    pub fn from_clauses(clauses: impl IntoIterator<Item = Clause>) -> Self {
        let mut set: FxHashSet<Clause> = FxHashSet::default();
        for mut c in clauses {
            c.sort_unstable();
            c.dedup();
            set.insert(c);
        }
        // `true` absorbs everything.
        if set.contains(&Vec::new()) {
            return Lineage::constant_true();
        }
        let mut clauses: Vec<Clause> = set.into_iter().collect();
        clauses.sort_unstable();
        Lineage { clauses }
    }

    /// Builds a lineage from clauses that are already individually sorted,
    /// deduplicated and pairwise distinct — the compiled matcher maintains
    /// this while collecting, and any injective variable renaming of an
    /// existing lineage preserves it (re-sorting each clause first when the
    /// renaming is not monotone). Only the final clause ordering remains;
    /// callers are on the hook for the per-clause invariants.
    pub fn from_distinct_clauses(mut clauses: Vec<Clause>) -> Self {
        debug_assert!(clauses.iter().all(|c| c.windows(2).all(|w| w[0] < w[1])));
        if clauses.iter().any(Vec::is_empty) {
            return Lineage::constant_true();
        }
        clauses.sort_unstable();
        Lineage { clauses }
    }

    /// The clauses of the DNF.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// `true` when the lineage is the constant `false`.
    pub fn is_false(&self) -> bool {
        self.clauses.is_empty()
    }

    /// `true` when the lineage is the constant `true`.
    pub fn is_true(&self) -> bool {
        self.clauses.iter().any(Vec::is_empty)
    }

    /// The distinct tuple variables mentioned by the lineage.
    pub fn variables(&self) -> std::collections::BTreeSet<TupleId> {
        self.clauses.iter().flatten().copied().collect()
    }

    /// Total number of literals across all clauses (the "lineage size"
    /// reported in Figure 4 of the paper is [`Lineage::variables`]`.len()`;
    /// this is the finer-grained count).
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// The disjunction of two lineages (`Φ_{Q ∨ W} = Φ_Q ∨ Φ_W`).
    pub fn or(&self, other: &Lineage) -> Lineage {
        Lineage::from_clauses(self.clauses.iter().chain(other.clauses.iter()).cloned())
    }

    /// Removes absorbed clauses (clauses that are supersets of another
    /// clause). Quadratic; intended for modest lineages and tests.
    pub fn absorb(&self) -> Lineage {
        let mut kept: Vec<Clause> = Vec::new();
        // Shorter clauses absorb longer ones, so process by length.
        let mut sorted = self.clauses.clone();
        sorted.sort_by_key(Vec::len);
        'outer: for c in sorted {
            for k in &kept {
                if k.iter().all(|t| c.binary_search(t).is_ok()) {
                    continue 'outer;
                }
            }
            kept.push(c);
        }
        Lineage::from_clauses(kept)
    }

    /// Evaluates the lineage under a world mask (bit `i` = `TupleId(i)` true).
    pub fn eval(&self, mask: u64) -> bool {
        self.eval_with(|t| mask & (1u64 << t.0) != 0)
    }

    /// Evaluates the lineage under an arbitrary truth assignment.
    pub fn eval_with(&self, truth: impl Fn(TupleId) -> bool) -> bool {
        self.clauses.iter().any(|c| c.iter().all(|&t| truth(t)))
    }
}

/// Collects the clauses of one Boolean UCQ through the vectorized batch
/// executor, deduplicating as it goes. Returns `None` when an empty clause
/// was found (the lineage is certainly `true`, so enumeration stopped
/// early).
///
/// The per-batch loop builds each clause in a reusable buffer from the
/// dense tuple-id columns of the [`InDb`] (an array load per matched atom,
/// no hash lookup) and only clones the buffer into the set when the clause
/// is new — on the symmetric self-joins of the MarkoView workloads roughly
/// half the matches produce a clause already seen.
fn collect_clauses(ucq: &Ucq, indb: &InDb, ctx: &EvalContext<'_>) -> Result<Option<Vec<Clause>>> {
    for disjunct in &ucq.disjuncts {
        if !disjunct.is_boolean() {
            return Err(QueryError::NotBoolean(disjunct.name.clone()));
        }
    }
    let plan = ctx.compile_vec(ucq)?;
    let db = ctx.database();
    let budget = ctx.budget();
    let mut stats = ExecStats::default();
    // The set is the only store: clauses are moved in (duplicates are
    // dropped without ever being cloned) and moved out at the end.
    let mut seen: FxHashSet<Clause> = FxHashSet::default();
    let mut buf: Clause = Vec::new();
    for disjunct in plan.disjuncts() {
        let tid_cols: Vec<&[u32]> = disjunct
            .atom_rels()
            .iter()
            .map(|&rel| indb.tuple_id_column(rel))
            .collect();
        let certainly_true =
            disjunct.for_each_batch_budgeted(db, &mut stats, budget.as_ref(), |batch| {
                for entry in 0..batch.len() {
                    buf.clear();
                    for (atom, &row) in batch.atom_rows(entry).iter().enumerate() {
                        let raw = tid_cols[atom][row as usize];
                        if raw != InDb::NO_TUPLE_ID {
                            buf.push(TupleId(raw));
                        }
                    }
                    buf.sort_unstable();
                    buf.dedup();
                    if buf.is_empty() {
                        // A match over deterministic tuples alone: Φ is `true`
                        // and absorbs every other clause — stop enumerating.
                        return ControlFlow::Break(());
                    }
                    if !seen.contains(buf.as_slice()) {
                        seen.insert(buf.clone());
                    }
                }
                ControlFlow::Continue(())
            });
        let certainly_true = match certainly_true {
            Ok(b) => b,
            Err(e) => {
                ctx.record_exec(stats);
                return Err(e.into());
            }
        };
        if certainly_true.is_some() {
            ctx.record_exec(stats);
            return Ok(None);
        }
    }
    ctx.record_exec(stats);
    Ok(Some(seen.into_iter().collect()))
}

/// [`collect_clauses`] through the tuple-at-a-time compiled plan loop —
/// the PR-4 path, preserved as the exact-equality oracle.
fn collect_clauses_compiled(
    ucq: &Ucq,
    indb: &InDb,
    ctx: &EvalContext<'_>,
) -> Result<Option<Vec<Clause>>> {
    for disjunct in &ucq.disjuncts {
        if !disjunct.is_boolean() {
            return Err(QueryError::NotBoolean(disjunct.name.clone()));
        }
    }
    let plan = ctx.compile(ucq)?;
    let db = ctx.database();
    let mut seen: FxHashSet<Clause> = FxHashSet::default();
    for disjunct in plan.disjuncts() {
        let certainly_true = disjunct.for_each_match(db, |_, matched| {
            let mut clause: Clause = matched
                .iter()
                .filter_map(|&(rel, row_index)| indb.tuple_id(rel, row_index))
                .collect();
            clause.sort_unstable();
            clause.dedup();
            if clause.is_empty() {
                return ControlFlow::Break(());
            }
            seen.insert(clause);
            ControlFlow::Continue(())
        });
        if certainly_true.is_some() {
            return Ok(None);
        }
    }
    Ok(Some(seen.into_iter().collect()))
}

/// Computes the lineage of a Boolean UCQ over the tuple-independent database.
///
/// The query is evaluated against the instance of *possible* tuples
/// (`indb.database()`) through a compiled physical plan; each satisfying
/// assignment contributes the clause of probabilistic tuples it matched.
pub fn lineage(ucq: &Ucq, indb: &InDb) -> Result<Lineage> {
    let ctx = EvalContext::new(indb.database());
    lineage_with(ucq, indb, &ctx)
}

/// Like [`lineage`] but reuses an [`EvalContext`] built on
/// `indb.database()` (plans are compiled once per context and reused).
pub fn lineage_with(ucq: &Ucq, indb: &InDb, ctx: &EvalContext<'_>) -> Result<Lineage> {
    Ok(match collect_clauses(ucq, indb, ctx)? {
        None => Lineage::constant_true(),
        Some(clauses) => Lineage::from_distinct_clauses(clauses),
    })
}

/// [`lineage_with`] through the tuple-at-a-time compiled plan loop — the
/// PR-4 path, kept as the exact-equality oracle for the vectorized
/// executor (and as the baseline of the `query_vectorized` microbenchmark).
pub fn lineage_compiled_with(ucq: &Ucq, indb: &InDb, ctx: &EvalContext<'_>) -> Result<Lineage> {
    Ok(match collect_clauses_compiled(ucq, indb, ctx)? {
        None => Lineage::constant_true(),
        Some(clauses) => Lineage::from_distinct_clauses(clauses),
    })
}

/// [`lineage`] through the legacy backtracking evaluator — the agreement
/// oracle for the compiled path.
pub fn lineage_legacy(ucq: &Ucq, indb: &InDb) -> Result<Lineage> {
    let ctx = EvalContext::new(indb.database());
    lineage_legacy_with(ucq, indb, &ctx)
}

/// [`lineage_with`] through the legacy backtracking evaluator.
pub fn lineage_legacy_with(ucq: &Ucq, indb: &InDb, ctx: &EvalContext<'_>) -> Result<Lineage> {
    let mut clauses: Vec<Clause> = Vec::new();
    for disjunct in &ucq.disjuncts {
        if !disjunct.is_boolean() {
            return Err(QueryError::NotBoolean(disjunct.name.clone()));
        }
        for_each_match::<()>(disjunct, ctx, |_, matched| {
            let mut clause: Clause = matched
                .iter()
                .filter_map(|&(rel, row_index)| indb.tuple_id(rel, row_index))
                .collect();
            clause.sort();
            clause.dedup();
            clauses.push(clause);
            ControlFlow::Continue(())
        })?;
    }
    Ok(Lineage::from_clauses(clauses))
}

/// Computes, for every answer `ā` of a non-Boolean UCQ, the lineage of the
/// Boolean query `Q(ā)`. Answers are keyed by their head row.
pub fn answer_lineages(ucq: &Ucq, indb: &InDb) -> Result<BTreeMap<Row, Lineage>> {
    let ctx = EvalContext::new(indb.database());
    answer_lineages_with(ucq, indb, &ctx)
}

/// Like [`answer_lineages`] but reuses an [`EvalContext`] built on
/// `indb.database()` — the `mv-core` backends hold one per evaluation
/// context so the per-answer loop compiles each workload query only once.
pub fn answer_lineages_with(
    ucq: &Ucq,
    indb: &InDb,
    ctx: &EvalContext<'_>,
) -> Result<BTreeMap<Row, Lineage>> {
    let plan = ctx.compile_vec(ucq)?;
    let db = ctx.database();
    let interner = db.interner();
    let budget = ctx.budget();
    let mut stats = ExecStats::default();
    let mut per_answer: BTreeMap<Row, FxHashSet<Clause>> = BTreeMap::new();
    let mut buf: Clause = Vec::new();
    for disjunct in plan.disjuncts() {
        let tid_cols: Vec<&[u32]> = disjunct
            .atom_rels()
            .iter()
            .map(|&rel| indb.tuple_id_column(rel))
            .collect();
        let run =
            disjunct.for_each_batch_budgeted::<()>(db, &mut stats, budget.as_ref(), |batch| {
                for entry in 0..batch.len() {
                    let row = disjunct.decode_head(batch.regs(entry), interner);
                    buf.clear();
                    for (atom, &matched_row) in batch.atom_rows(entry).iter().enumerate() {
                        let raw = tid_cols[atom][matched_row as usize];
                        if raw != InDb::NO_TUPLE_ID {
                            buf.push(TupleId(raw));
                        }
                    }
                    buf.sort_unstable();
                    buf.dedup();
                    let clauses = per_answer.entry(row).or_default();
                    if !clauses.contains(buf.as_slice()) {
                        clauses.insert(buf.clone());
                    }
                }
                ControlFlow::Continue(())
            });
        if let Err(e) = run {
            ctx.record_exec(stats);
            return Err(e.into());
        }
    }
    ctx.record_exec(stats);
    Ok(per_answer
        .into_iter()
        .map(|(row, clauses)| {
            let lineage = Lineage::from_distinct_clauses(clauses.into_iter().collect());
            (row, lineage)
        })
        .collect())
}

/// [`answer_lineages_with`] through the tuple-at-a-time compiled plan loop
/// — the PR-4 path, kept as the exact-equality oracle for the vectorized
/// executor.
pub fn answer_lineages_compiled_with(
    ucq: &Ucq,
    indb: &InDb,
    ctx: &EvalContext<'_>,
) -> Result<BTreeMap<Row, Lineage>> {
    let plan = ctx.compile(ucq)?;
    let db = ctx.database();
    let interner = db.interner();
    let mut per_answer: BTreeMap<Row, FxHashSet<Clause>> = BTreeMap::new();
    for disjunct in plan.disjuncts() {
        disjunct.for_each_match::<()>(db, |regs, matched| {
            let row = disjunct.decode_head(regs, interner);
            let mut clause: Clause = matched
                .iter()
                .filter_map(|&(rel, row_index)| indb.tuple_id(rel, row_index))
                .collect();
            clause.sort_unstable();
            clause.dedup();
            per_answer.entry(row).or_default().insert(clause);
            ControlFlow::Continue(())
        });
    }
    Ok(per_answer
        .into_iter()
        .map(|(row, clauses)| {
            let lineage = Lineage::from_distinct_clauses(clauses.into_iter().collect());
            (row, lineage)
        })
        .collect())
}

/// [`answer_lineages`] through the legacy backtracking evaluator (oracle).
pub fn answer_lineages_legacy(ucq: &Ucq, indb: &InDb) -> Result<BTreeMap<Row, Lineage>> {
    let ctx = EvalContext::new(indb.database());
    let mut per_answer: BTreeMap<Row, Vec<Clause>> = BTreeMap::new();
    for disjunct in &ucq.disjuncts {
        for_each_match::<()>(disjunct, &ctx, |bindings, matched| {
            let row: Row = disjunct
                .head
                .iter()
                .map(|t| match t {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => bindings[v].clone(),
                })
                .collect();
            let mut clause: Clause = matched
                .iter()
                .filter_map(|&(rel, row_index)| indb.tuple_id(rel, row_index))
                .collect();
            clause.sort();
            clause.dedup();
            per_answer.entry(row).or_default().push(clause);
            ControlFlow::Continue(())
        })?;
    }
    Ok(per_answer
        .into_iter()
        .map(|(row, clauses)| (row, Lineage::from_clauses(clauses)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ucq;
    use mv_pdb::value::row;
    use mv_pdb::{InDbBuilder, Weight};

    /// The database of Figure 3: R = {a1, a2}, S = {(a1,b1), (a1,b2), (a2,b3), (a2,b4)}.
    fn fig3() -> InDb {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
        b.insert_weighted(r, row(["a1"]), Weight::ONE).unwrap();
        b.insert_weighted(r, row(["a2"]), Weight::ONE).unwrap();
        b.insert_weighted(s, row(["a1", "b1"]), Weight::ONE)
            .unwrap();
        b.insert_weighted(s, row(["a1", "b2"]), Weight::ONE)
            .unwrap();
        b.insert_weighted(s, row(["a2", "b3"]), Weight::ONE)
            .unwrap();
        b.insert_weighted(s, row(["a2", "b4"]), Weight::ONE)
            .unwrap();
        b.build()
    }

    #[test]
    fn figure3_lineage_has_four_clauses() {
        let indb = fig3();
        let q = parse_ucq("Q() :- R(x), S(x, y)").unwrap();
        let lin = lineage(&q, &indb).unwrap();
        assert_eq!(lin.num_clauses(), 4);
        assert_eq!(lin.variables().len(), 6);
        assert_eq!(lin.num_literals(), 8);
        // X1Y1 ∨ X1Y2 ∨ X2Y3 ∨ X2Y4 with ids 0..=5.
        let expected = Lineage::from_clauses(vec![
            vec![TupleId(0), TupleId(2)],
            vec![TupleId(0), TupleId(3)],
            vec![TupleId(1), TupleId(4)],
            vec![TupleId(1), TupleId(5)],
        ]);
        assert_eq!(lin, expected);
        // The legacy oracle computes the identical canonical lineage.
        assert_eq!(lineage_legacy(&q, &indb).unwrap(), lin);
    }

    #[test]
    fn deterministic_tuples_do_not_appear_in_lineage() {
        let mut b = InDbBuilder::new();
        let d = b.deterministic_relation("D", &["a"]).unwrap();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        b.insert_fact(d, row(["a"])).unwrap();
        b.insert_weighted(r, row(["a"]), Weight::ONE).unwrap();
        let indb = b.build();
        let q = parse_ucq("Q() :- D(x), R(x)").unwrap();
        let lin = lineage(&q, &indb).unwrap();
        assert_eq!(lin.clauses(), &[vec![TupleId(0)]]);
    }

    #[test]
    fn query_satisfied_by_deterministic_tuples_alone_has_true_lineage() {
        let mut b = InDbBuilder::new();
        let d = b.deterministic_relation("D", &["a"]).unwrap();
        b.insert_fact(d, row(["a"])).unwrap();
        let indb = b.build();
        let q = parse_ucq("Q() :- D(x)").unwrap();
        let lin = lineage(&q, &indb).unwrap();
        assert!(lin.is_true());
        assert_eq!(lineage_legacy(&q, &indb).unwrap(), lin);
    }

    #[test]
    fn unsatisfiable_query_has_false_lineage() {
        let indb = fig3();
        let q = parse_ucq("Q() :- R(x), S(x, y), y like '%zzz%'").unwrap();
        let lin = lineage(&q, &indb).unwrap();
        assert!(lin.is_false());
        assert_eq!(lin.num_clauses(), 0);
    }

    #[test]
    fn union_lineage_is_union_of_clauses() {
        let indb = fig3();
        let q1 = parse_ucq("Q() :- R(x), S(x, y)").unwrap();
        let q2 = parse_ucq("Q() :- S(x, y)").unwrap();
        let l1 = lineage(&q1, &indb).unwrap();
        let l2 = lineage(&q2, &indb).unwrap();
        let l12 = lineage(&q1.union(&q2), &indb).unwrap();
        assert_eq!(l12, l1.or(&l2));
    }

    #[test]
    fn absorption_removes_subsumed_clauses() {
        let l = Lineage::from_clauses(vec![
            vec![TupleId(0)],
            vec![TupleId(0), TupleId(1)],
            vec![TupleId(2), TupleId(3)],
        ]);
        let a = l.absorb();
        assert_eq!(a.num_clauses(), 2);
        assert!(a.clauses().contains(&vec![TupleId(0)]));
        assert!(a.clauses().contains(&vec![TupleId(2), TupleId(3)]));
    }

    #[test]
    fn eval_respects_masks() {
        let l = Lineage::from_clauses(vec![vec![TupleId(0), TupleId(1)], vec![TupleId(2)]]);
        assert!(l.eval(0b011));
        assert!(l.eval(0b100));
        assert!(!l.eval(0b001));
        assert!(!l.eval(0b000));
    }

    #[test]
    fn answer_lineages_group_by_head_tuple() {
        let indb = fig3();
        let q = parse_ucq("Q(x) :- R(x), S(x, y)").unwrap();
        let per_answer = answer_lineages(&q, &indb).unwrap();
        assert_eq!(per_answer.len(), 2);
        let l_a1 = &per_answer[&row(["a1"])];
        assert_eq!(l_a1.num_clauses(), 2);
        assert!(l_a1.variables().contains(&TupleId(0)));
        assert!(!l_a1.variables().contains(&TupleId(1)));
        // Exact agreement with the legacy oracle, per answer.
        assert_eq!(answer_lineages_legacy(&q, &indb).unwrap(), per_answer);
    }

    #[test]
    fn constants_true_false_behave() {
        assert!(Lineage::constant_true().is_true());
        assert!(Lineage::constant_false().is_false());
        assert!(Lineage::from_clauses(vec![vec![], vec![TupleId(0)]]).is_true());
        // true has exactly one (empty) clause after normalisation
        assert_eq!(
            Lineage::from_clauses(vec![vec![], vec![TupleId(0)]]).num_clauses(),
            1
        );
    }
}
