//! Lifted (safe-plan) probability evaluation of UCQs over tuple-independent
//! databases.
//!
//! This module implements the classical lifted-inference rules for unions of
//! conjunctive queries (independent join, independent project over a
//! separator variable, independent union, and inclusion–exclusion), which
//! compute `P(Q)` in polynomial time for *safe* queries [Dalvi & Suciu].
//! Queries on which none of the rules applies are reported as
//! [`SafePlanError::Unsafe`]; callers fall back to lineage-based exact
//! inference (Shannon expansion or OBDDs).
//!
//! Every rule — products for independent conjunctions, `1 − Π(1 − p)` for
//! independent disjunctions, inclusion–exclusion — remains valid when tuple
//! probabilities are negative, so this evaluator is also usable on the
//! translated databases of Section 3 (the paper's Section 3.3 makes exactly
//! this observation).
//!
//! The dominant data-dependent cost of a safe plan is enumerating separator
//! domains; those are served by
//! [`Database::column_domain`](mv_pdb::Database::column_domain), which
//! deduplicates the dictionary-encoded column as integer codes and decodes
//! only the distinct survivors.

use std::collections::BTreeSet;
use std::fmt;

use mv_pdb::{InDb, Value};

use crate::analysis::{
    find_separator, independent_atom_components, independent_disjunct_groups, root_variables,
};
use crate::ast::{Atom, ConjunctiveQuery, Ucq};
use crate::error::QueryError;
use crate::rewrite::{separator_domain, simplify_cq, SimplifiedCq};

/// Errors of the safe-plan evaluator.
#[derive(Debug, Clone, PartialEq)]
pub enum SafePlanError {
    /// The query is not recognised as safe by the implemented rules.
    Unsafe(String),
    /// A lower-level query error (unknown relation, arity mismatch, …).
    Query(QueryError),
}

impl fmt::Display for SafePlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafePlanError::Unsafe(q) => write!(f, "no safe plan found for query: {q}"),
            SafePlanError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SafePlanError {}

impl From<QueryError> for SafePlanError {
    fn from(e: QueryError) -> Self {
        SafePlanError::Query(e)
    }
}

/// Maximum number of disjuncts handled through inclusion–exclusion.
const MAX_INCLUSION_EXCLUSION: usize = 12;
/// Maximum recursion depth (guards against pathological inputs).
const MAX_DEPTH: usize = 64;

/// Computes the probability of a Boolean UCQ over a tuple-independent
/// database using lifted inference rules only.
pub fn safe_probability(ucq: &Ucq, indb: &InDb) -> Result<f64, SafePlanError> {
    if !ucq.is_boolean() {
        return Err(SafePlanError::Query(QueryError::NotBoolean(
            ucq.name.clone(),
        )));
    }
    // Validate relations/arities up front so that evaluation can assume a
    // well-formed query.
    for d in &ucq.disjuncts {
        for atom in &d.atoms {
            let rel = indb
                .schema()
                .relation_id(&atom.relation)
                .ok_or_else(|| QueryError::UnknownRelation(atom.relation.clone()))?;
            let arity = indb.schema().relation(rel).arity();
            if atom.terms.len() != arity {
                return Err(SafePlanError::Query(QueryError::ArityMismatch {
                    relation: atom.relation.clone(),
                    expected: arity,
                    actual: atom.terms.len(),
                }));
            }
        }
    }
    ucq_probability(&ucq.disjuncts, indb, 0)
}

fn ucq_probability(
    disjuncts: &[ConjunctiveQuery],
    indb: &InDb,
    depth: usize,
) -> Result<f64, SafePlanError> {
    if depth > MAX_DEPTH {
        return Err(SafePlanError::Unsafe("recursion limit exceeded".into()));
    }

    // Simplify every disjunct; drop the unsatisfiable ones, and short-circuit
    // if one of them is certainly true.
    let mut simplified: Vec<ConjunctiveQuery> = Vec::new();
    for d in disjuncts {
        match simplify_cq(d, indb) {
            SimplifiedCq::False => {}
            SimplifiedCq::True => return Ok(1.0),
            SimplifiedCq::Query(q) => simplified.push(q),
        }
    }
    // Deduplicate syntactically identical disjuncts.
    simplified.sort_by_key(|d| format!("{d}"));
    simplified.dedup_by_key(|d| format!("{d}"));

    if simplified.is_empty() {
        return Ok(0.0);
    }
    if simplified.len() == 1 {
        return cq_probability(&simplified[0], indb, depth);
    }

    let ucq = Ucq::new("q", simplified.clone());

    // Independent union: groups of disjuncts sharing no relation symbols.
    let groups = independent_disjunct_groups(&ucq);
    if groups.len() > 1 {
        let mut q = 1.0;
        for group in groups {
            let ds: Vec<ConjunctiveQuery> = group
                .into_iter()
                .map(|i| ucq.disjuncts[i].clone())
                .collect();
            let p = ucq_probability(&ds, indb, depth + 1)?;
            q *= 1.0 - p;
        }
        return Ok(1.0 - q);
    }

    // Separator variable: independent project across the whole union.
    if let Some(sep) = find_separator(&ucq) {
        let domain = separator_domain(&ucq, &sep.per_disjunct, indb);
        let mut q = 1.0;
        for value in domain {
            let grounded: Vec<ConjunctiveQuery> = ucq
                .disjuncts
                .iter()
                .zip(&sep.per_disjunct)
                .map(|(d, v)| d.substitute(v, &value))
                .collect();
            let p = ucq_probability(&grounded, indb, depth + 1)?;
            q *= 1.0 - p;
        }
        return Ok(1.0 - q);
    }

    // Inclusion–exclusion over the disjuncts.
    let m = ucq.disjuncts.len();
    if m > MAX_INCLUSION_EXCLUSION {
        return Err(SafePlanError::Unsafe(format!(
            "inclusion-exclusion over {m} disjuncts exceeds the limit"
        )));
    }
    let renamed: Vec<ConjunctiveQuery> = ucq
        .disjuncts
        .iter()
        .enumerate()
        .map(|(i, d)| d.rename_apart(&format!("@ie{i}")))
        .collect();
    let mut total = 0.0;
    for subset in 1u32..(1u32 << m) {
        let mut conj: Option<ConjunctiveQuery> = None;
        for (i, d) in renamed.iter().enumerate() {
            if subset & (1 << i) != 0 {
                conj = Some(match conj {
                    None => d.clone(),
                    Some(c) => c.conjoin(d),
                });
            }
        }
        let conj = conj.expect("subset is non-empty");
        let p = cq_probability(&conj, indb, depth + 1)?;
        let sign = if subset.count_ones() % 2 == 1 {
            1.0
        } else {
            -1.0
        };
        total += sign * p;
    }
    Ok(total)
}

fn cq_probability(cq: &ConjunctiveQuery, indb: &InDb, depth: usize) -> Result<f64, SafePlanError> {
    if depth > MAX_DEPTH {
        return Err(SafePlanError::Unsafe("recursion limit exceeded".into()));
    }
    let cq = match simplify_cq(cq, indb) {
        SimplifiedCq::False => return Ok(0.0),
        SimplifiedCq::True => return Ok(1.0),
        SimplifiedCq::Query(q) => q,
    };

    // Independent join: split the atoms into components connected by shared
    // existential variables, relation symbols or comparisons.
    let components = independent_atom_components(&cq);
    if components.len() > 1 {
        let mut product = 1.0;
        for comp in components {
            let atoms: Vec<Atom> = comp.iter().map(|&i| cq.atoms[i].clone()).collect();
            let vars: BTreeSet<String> = atoms
                .iter()
                .flat_map(|a| a.variables().map(str::to_string))
                .collect();
            let comparisons = cq
                .comparisons
                .iter()
                .filter(|c| c.variables().any(|v| vars.contains(v)))
                .cloned()
                .collect();
            let sub = ConjunctiveQuery::new(cq.name.clone(), vec![], atoms, comparisons);
            product *= cq_probability(&sub, indb, depth + 1)?;
        }
        return Ok(product);
    }

    // Single ground atom over a probabilistic relation.
    if cq.atoms.len() == 1 && cq.atoms[0].is_ground() {
        let atom = &cq.atoms[0];
        let rel = indb
            .schema()
            .relation_id(&atom.relation)
            .ok_or_else(|| QueryError::UnknownRelation(atom.relation.clone()))?;
        let row: Vec<Value> = atom
            .terms
            .iter()
            .map(|t| t.as_const().cloned().expect("atom is ground"))
            .collect();
        return Ok(match indb.tuple_id_by_values(rel, &row) {
            Some(t) => indb.probability(t),
            None => 0.0,
        });
    }

    // Independent project over a root variable that is position-consistent
    // (a separator for the singleton union).
    let ucq = Ucq::from_cq(cq.clone());
    if let Some(sep) = find_separator(&ucq) {
        let var = &sep.per_disjunct[0];
        let domain = separator_domain(&ucq, &sep.per_disjunct, indb);
        let mut q = 1.0;
        for value in domain {
            let grounded = cq.substitute(var, &value);
            let p = cq_probability(&grounded, indb, depth + 1)?;
            q *= 1.0 - p;
        }
        return Ok(1.0 - q);
    }

    // A root variable that is not position-consistent across a self-join
    // cannot be projected independently; no further rule applies.
    let _ = root_variables(&cq);
    Err(SafePlanError::Unsafe(cq.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_query_probability;
    use crate::parser::parse_ucq;
    use mv_pdb::value::row;
    use mv_pdb::{InDbBuilder, Weight};

    fn db() -> InDb {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
        let t = b.probabilistic_relation("T", &["b"]).unwrap();
        let d = b.deterministic_relation("D", &["a"]).unwrap();
        b.insert_weighted(r, row(["a1"]), Weight::new(3.0)).unwrap();
        b.insert_weighted(r, row(["a2"]), Weight::new(0.5)).unwrap();
        b.insert_weighted(s, row(["a1", "b1"]), Weight::new(1.0))
            .unwrap();
        b.insert_weighted(s, row(["a1", "b2"]), Weight::new(2.0))
            .unwrap();
        b.insert_weighted(s, row(["a2", "b2"]), Weight::new(1.0))
            .unwrap();
        b.insert_weighted(t, row(["b1"]), Weight::new(1.0)).unwrap();
        b.insert_weighted(t, row(["b2"]), Weight::new(4.0)).unwrap();
        b.insert_fact(d, row(["a1"])).unwrap();
        b.build()
    }

    fn assert_matches_brute(query: &str) {
        let indb = db();
        let q = parse_ucq(query).unwrap();
        let safe = safe_probability(&q, &indb).unwrap();
        let brute = brute_force_query_probability(&q, &indb).unwrap();
        assert!(
            (safe - brute).abs() < 1e-9,
            "{query}: safe {safe} vs brute {brute}"
        );
    }

    #[test]
    fn safe_queries_match_brute_force() {
        assert_matches_brute("Q() :- R(x), S(x, y)");
        assert_matches_brute("Q() :- R(x)");
        assert_matches_brute("Q() :- S(x, y)");
        assert_matches_brute("Q() :- R(x), S(x, y), y like '%b1%'");
        assert_matches_brute("Q() :- R(x), D(x)");
        assert_matches_brute("Q() :- R(x), S(x, y) ; Q() :- T(z)");
        assert_matches_brute("Q() :- R(x) ; Q() :- S(x, y), T(y)");
        assert_matches_brute("Q() :- S('a1', y)");
        assert_matches_brute("Q() :- R('a1')");
        assert_matches_brute("Q() :- R('zzz')");
    }

    #[test]
    fn unions_with_shared_relations_use_inclusion_exclusion() {
        // The "triangle" union over unary projections is safe but requires
        // inclusion–exclusion after grounding the separator.
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("A", &["x"]).unwrap();
        let s = b.probabilistic_relation("B", &["x"]).unwrap();
        let t = b.probabilistic_relation("C", &["x"]).unwrap();
        for (i, rel) in [r, s, t].into_iter().enumerate() {
            b.insert_weighted(rel, row(["v1"]), Weight::new(1.0 + i as f64))
                .unwrap();
            b.insert_weighted(rel, row(["v2"]), Weight::new(0.5))
                .unwrap();
        }
        let indb = b.build();
        let q = parse_ucq("Q() :- A(x), B(x) ; Q() :- A(y), C(y) ; Q() :- B(z), C(z)").unwrap();
        let safe = safe_probability(&q, &indb).unwrap();
        let brute = brute_force_query_probability(&q, &indb).unwrap();
        assert!((safe - brute).abs() < 1e-9, "safe {safe} vs brute {brute}");
    }

    #[test]
    fn the_hard_queries_are_reported_unsafe() {
        let indb = db();
        // H0 — the canonical #P-hard conjunctive query.
        let q = parse_ucq("Q() :- R(x), S(x, y), T(y)").unwrap();
        assert!(matches!(
            safe_probability(&q, &indb),
            Err(SafePlanError::Unsafe(_))
        ));
        // H1 — the canonical #P-hard union.
        let q = parse_ucq("Q() :- R(x), S(x, y) ; Q() :- S(u, v), T(v)").unwrap();
        assert!(matches!(
            safe_probability(&q, &indb),
            Err(SafePlanError::Unsafe(_))
        ));
    }

    #[test]
    fn deterministic_atoms_are_absorbed() {
        let indb = db();
        // D(a1) holds, so the query reduces to R(a1).
        let q = parse_ucq("Q() :- R(x), D(x)").unwrap();
        let p = safe_probability(&q, &indb).unwrap();
        assert!((p - 0.75).abs() < 1e-9);
    }

    #[test]
    fn non_boolean_queries_are_rejected() {
        let indb = db();
        let q = parse_ucq("Q(x) :- R(x)").unwrap();
        assert!(matches!(
            safe_probability(&q, &indb),
            Err(SafePlanError::Query(QueryError::NotBoolean(_)))
        ));
    }

    #[test]
    fn unknown_relations_are_reported() {
        let indb = db();
        let q = parse_ucq("Q() :- Missing(x)").unwrap();
        assert!(matches!(
            safe_probability(&q, &indb),
            Err(SafePlanError::Query(QueryError::UnknownRelation(_)))
        ));
    }

    #[test]
    fn negative_probabilities_flow_through_safe_plans() {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        let nv = b.probabilistic_relation("NV", &["a"]).unwrap();
        b.insert_weighted(r, row(["a"]), Weight::new(3.0)).unwrap();
        // Translated weight for a view weight of 4: (1-4)/4 = -0.75, p = -3.
        b.insert_translated(nv, row(["a"]), Weight::new(-0.75))
            .unwrap();
        let indb = b.build();
        let q = parse_ucq("Q() :- R(x), NV(x)").unwrap();
        let safe = safe_probability(&q, &indb).unwrap();
        let brute = brute_force_query_probability(&q, &indb).unwrap();
        assert!((safe - brute).abs() < 1e-9);
        assert!((safe - 0.75 * -3.0).abs() < 1e-9);
    }
}
