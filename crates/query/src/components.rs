//! Connected-component analysis of lineage clause sets.
//!
//! A set of DNF clauses over [`TupleId`] variables induces a dependency
//! graph: two tuples are connected when some clause mentions both. The
//! probability of a conjunction of clause-set negations (the Theorem 1
//! denominator `P0(¬W)`, for instance) factorises exactly over the
//! connected components of that graph, because tuples in different
//! components are independent and no clause spans components.
//!
//! Two consumers share this module:
//!
//! * the Monte Carlo sampler ([`crate::approx`]) prunes `W` clauses whose
//!   component is disjoint from the query lineage `Φ_Q` — those components
//!   cancel between the numerator and denominator of the conditional
//!   estimator ([`component_relevant_clauses`]);
//! * the scale-out sharding layer (`mv-core`) partitions the translated
//!   database into shard sub-stores along the components of `W`'s lineage
//!   ([`connected_components`]), so per-shard probabilities can be combined
//!   by plain independence algebra.

use std::collections::BTreeSet;

use fxhash::FxHashMap;

use mv_pdb::TupleId;

use crate::lineage::{Clause, Lineage};

/// A union-find (disjoint-set) structure over tuple ids, with dense indices
/// assigned on first use, path-halving finds and naive root linking.
#[derive(Debug, Default)]
pub struct UnionFind {
    index_of: FxHashMap<TupleId, usize>,
    parent: Vec<usize>,
}

impl UnionFind {
    /// Dense index of a tuple id, assigning the next free index on first use.
    pub fn index(&mut self, t: TupleId) -> usize {
        if let Some(&i) = self.index_of.get(&t) {
            return i;
        }
        let i = self.parent.len();
        self.parent.push(i);
        self.index_of.insert(t, i);
        i
    }

    /// Representative of the set containing dense index `i` (path-halving).
    pub fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    /// Merges the sets containing dense indices `a` and `b`.
    pub fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra;
        }
    }

    /// Root of a tuple id (assigning an index if the id was never seen).
    pub fn find_id(&mut self, t: TupleId) -> usize {
        let i = self.index(t);
        self.find(i)
    }

    /// Unions all variables of one clause into a single set.
    pub fn union_clause(&mut self, clause: &[TupleId]) {
        let mut vars = clause.iter();
        if let Some(&first) = vars.next() {
            let root = self.index(first);
            for &t in vars {
                let other = self.index(t);
                self.union(root, other);
            }
        }
    }
}

/// The `W` clauses sharing a connected component with the query lineage
/// `Φ_Q` — the clauses that *cannot* be cancelled out of the Theorem 1
/// conditional `P0(Φ_Q ∧ ¬W) / P0(¬W)`.
///
/// Components of `¬W` disjoint from `Φ_Q` contribute the same factor to
/// numerator and denominator, so dropping their clauses leaves the
/// conditional unchanged while shrinking the variable set to the query's
/// neighbourhood.
pub fn component_relevant_clauses<'w>(lin_q: &Lineage, w_clauses: &'w [Clause]) -> Vec<&'w Clause> {
    let mut uf = UnionFind::default();
    for clause in lin_q.clauses().iter().chain(w_clauses.iter()) {
        uf.union_clause(clause);
    }
    let q_roots: BTreeSet<usize> = lin_q.variables().iter().map(|&t| uf.find_id(t)).collect();
    w_clauses
        .iter()
        .filter(|clause| clause.iter().any(|&t| q_roots.contains(&uf.find_id(t))))
        .collect()
}

/// The connected components of a clause set over a universe of
/// `num_tuples` possible tuples (`TupleId(0) .. TupleId(num_tuples)`).
///
/// Every tuple mentioned by some clause joins the component of that clause;
/// tuples mentioned by no clause form singleton components. Component ids
/// are dense, and ordered by each component's smallest member tuple — the
/// numbering is a pure function of the clause set, independent of clause
/// order or hash-map iteration.
#[derive(Debug, Clone)]
pub struct Components {
    component_of: Vec<u32>,
    members: Vec<Vec<TupleId>>,
}

/// Computes [`Components`] for `clauses` over a `num_tuples` universe.
///
/// Panics if a clause mentions a tuple id at or beyond `num_tuples`.
pub fn connected_components(num_tuples: usize, clauses: &[Clause]) -> Components {
    let mut uf = UnionFind::default();
    for clause in clauses {
        uf.union_clause(clause);
    }
    let mut component_of = vec![u32::MAX; num_tuples];
    let mut members: Vec<Vec<TupleId>> = Vec::new();
    let mut root_to_component: FxHashMap<usize, u32> = FxHashMap::default();
    // Scan tuples in increasing id order so components are numbered by their
    // smallest member.
    for (raw, slot) in component_of.iter_mut().enumerate() {
        let t = TupleId(raw as u32);
        let component = if uf.index_of.contains_key(&t) {
            let root = uf.find_id(t);
            *root_to_component.entry(root).or_insert_with(|| {
                members.push(Vec::new());
                (members.len() - 1) as u32
            })
        } else {
            members.push(Vec::new());
            (members.len() - 1) as u32
        };
        *slot = component;
        members[component as usize].push(t);
    }
    Components {
        component_of,
        members,
    }
}

impl Components {
    /// Number of connected components (including singletons).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Size of the possible-tuple universe the components were built over.
    pub fn num_tuples(&self) -> usize {
        self.component_of.len()
    }

    /// `true` when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Dense component id of a tuple.
    ///
    /// Panics if `t` lies outside the universe the components were built
    /// over.
    pub fn component_of(&self, t: TupleId) -> usize {
        self.component_of[t.0 as usize] as usize
    }

    /// The member tuples of a component, in increasing id order.
    pub fn members(&self, component: usize) -> &[TupleId] {
        &self.members[component]
    }

    /// Number of tuples in a component.
    pub fn size(&self, component: usize) -> usize {
        self.members[component].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::Lineage;

    fn t(id: u32) -> TupleId {
        TupleId(id)
    }

    #[test]
    fn singleton_components_for_unconstrained_tuples() {
        let c = connected_components(4, &[]);
        assert_eq!(c.len(), 4);
        for id in 0..4 {
            assert_eq!(c.component_of(t(id)), id as usize);
            assert_eq!(c.members(id as usize), &[t(id)]);
        }
    }

    #[test]
    fn clauses_merge_their_variables() {
        // {0,1} and {1,2} chain into one component; 3 stays alone.
        let c = connected_components(4, &[vec![t(0), t(1)], vec![t(1), t(2)]]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.component_of(t(0)), 0);
        assert_eq!(c.component_of(t(1)), 0);
        assert_eq!(c.component_of(t(2)), 0);
        assert_eq!(c.component_of(t(3)), 1);
        assert_eq!(c.members(0), &[t(0), t(1), t(2)]);
        assert_eq!(c.size(0), 3);
    }

    #[test]
    fn numbering_is_independent_of_clause_order() {
        let forward = connected_components(5, &[vec![t(3), t(4)], vec![t(0), t(1)]]);
        let reversed = connected_components(5, &[vec![t(0), t(1)], vec![t(3), t(4)]]);
        for id in 0..5 {
            assert_eq!(forward.component_of(t(id)), reversed.component_of(t(id)));
        }
    }

    #[test]
    fn relevant_clauses_keep_only_the_query_component() {
        let lin_q = Lineage::from_clauses([vec![t(0)]]);
        let w_clauses = vec![vec![t(0), t(1)], vec![t(2), t(3)], vec![t(1), t(4)]];
        let kept = component_relevant_clauses(&lin_q, &w_clauses);
        // {0,1} and {1,4} share the query's component through tuple 1;
        // {2,3} cancels.
        assert_eq!(kept, vec![&w_clauses[0], &w_clauses[2]]);
    }

    #[test]
    fn relevant_clauses_empty_for_disjoint_query() {
        let lin_q = Lineage::from_clauses([vec![t(9)]]);
        let w_clauses = vec![vec![t(0), t(1)]];
        assert!(component_relevant_clauses(&lin_q, &w_clauses).is_empty());
    }
}
