//! Evaluation of (unions of) conjunctive queries over deterministic databases.
//!
//! This module plays the role Postgres plays in the paper: it computes the
//! set of answers of a UCQ over a database instance, and — through the
//! match enumeration driving [`crate::lineage`] — the satisfying
//! assignments that become Boolean provenance.
//!
//! Two evaluators live side by side:
//!
//! * the **compiled** evaluator ([`crate::plan`]): [`EvalContext::compile`]
//!   lowers a query once into a slot-based [`PhysicalPlan`] over the
//!   dictionary-encoded columnar store, and every production entry point
//!   ([`evaluate_ucq`], [`evaluate_boolean`], the lineage functions) runs
//!   the plan's iterative operator loop;
//! * the **legacy** backtracking evaluator ([`for_each_match`]): `String`
//!   → [`Value`] bindings, greedy per-call atom ranking, recursive search.
//!   It is retained as the independently-implemented oracle the agreement
//!   tests and the `query_eval` microbenchmark compare against (the role
//!   `RefManager` plays for the OBDD manager).
//!
//! Plans and the column hash indexes they probe are cached in the
//! [`EvalContext`]; reusing a context across queries amortises both, which
//! the MV-index compilation driver, the `mv-core` backends and the batch
//! sessions all rely on.

use std::cell::{Cell, RefCell};
use std::ops::ControlFlow;
use std::rc::Rc;

use fxhash::FxHashMap;
use mv_pdb::zonemap::RelationZones;
use mv_pdb::{Database, RelId, Row, Value};

use crate::ast::{Atom, ConjunctiveQuery, Term, Ucq};
use crate::error::QueryError;
use crate::plan::{CodeIndex, CompiledUcq, PlanStats};
use crate::vec_exec::{CsrIndex, ExecStats, PairIndex, VecCompiledUcq};
use crate::Result;

/// One answer of a non-Boolean query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Answer {
    /// The head tuple.
    pub row: Row,
}

/// A variable binding environment of the legacy evaluator (FxHash-keyed;
/// the compiled evaluator replaces this with a register file of codes).
pub type Bindings = FxHashMap<String, Value>;

/// One `Value`-keyed column index of the legacy evaluator
/// (`value → row positions`).
type LegacyIndex = FxHashMap<Value, Vec<usize>>;

/// Lazily built legacy indexes: `(relation, column) → index`. Each index
/// sits behind an `Rc` so a search can hold cheap handles to the indexes
/// it probes without keeping the cache's `RefCell` borrowed — reentrant
/// evaluation through the same context (an `on_match` callback issuing
/// another query) stays safe.
type ColumnIndexes = FxHashMap<(RelId, usize), Rc<LegacyIndex>>;

/// Per-database evaluation context: compiled-plan cache, shared
/// code-indexes for the compiled evaluator, and the legacy evaluator's
/// `Value`-keyed indexes.
///
/// Reusing a context across queries amortises plan compilation and index
/// construction; the MV-index compilation and the benchmark harness both
/// take advantage of it.
pub struct EvalContext<'a> {
    /// The database snapshot the caches below were built against. Swappable
    /// via [`EvalContext::rebind`]: derived structures are invalidated by
    /// comparing the incoming [`Database::version`] against `stamp`.
    db: Cell<&'a Database>,
    /// The store version every cached index/zone-map below was built at.
    stamp: Cell<u64>,
    /// Legacy-path indexes (`Value`-keyed).
    indexes: RefCell<ColumnIndexes>,
    /// Compiled-path indexes (code-keyed), shared across plans.
    code_indexes: RefCell<FxHashMap<(RelId, usize), Rc<CodeIndex>>>,
    /// Compiled plans, keyed by `(store version, canonical query text)`: a
    /// plan bakes in interned constants and access-path choices, so it is
    /// only valid against the version it was compiled at.
    plans: RefCell<FxHashMap<(u64, String), Rc<CompiledUcq>>>,
    /// Vectorized plans lowered from the compiled plans (same cache key).
    vec_plans: RefCell<FxHashMap<(u64, String), Rc<VecCompiledUcq>>>,
    /// CSR join indexes of the vectorized executor, shared across plans.
    csr_indexes: RefCell<FxHashMap<(RelId, usize), Rc<CsrIndex>>>,

    pair_indexes: RefCell<FxHashMap<(RelId, usize, usize), Rc<PairIndex>>>,
    /// Per-relation zone maps consulted for block skipping.
    zone_maps: RefCell<FxHashMap<RelId, Rc<RelationZones>>>,
    /// Distinct-code counts per `(rel, column)` — the probe-key selectivity
    /// estimate of the vectorized lowering.
    distinct_counts: RefCell<FxHashMap<(RelId, usize), usize>>,
    /// Executor counters accumulated across every vectorized run.
    exec: Cell<ExecStats>,
    /// Cooperative budget consulted at batch boundaries by the lineage and
    /// evaluation drivers (`None` = unlimited).
    budget: RefCell<Option<crate::budget::EvalBudget>>,
}

impl<'a> EvalContext<'a> {
    /// Creates a context for the given database.
    pub fn new(db: &'a Database) -> Self {
        EvalContext {
            db: Cell::new(db),
            stamp: Cell::new(db.version()),
            indexes: RefCell::new(FxHashMap::default()),
            code_indexes: RefCell::new(FxHashMap::default()),
            plans: RefCell::new(FxHashMap::default()),
            vec_plans: RefCell::new(FxHashMap::default()),
            csr_indexes: RefCell::new(FxHashMap::default()),
            pair_indexes: RefCell::new(FxHashMap::default()),
            zone_maps: RefCell::new(FxHashMap::default()),
            distinct_counts: RefCell::new(FxHashMap::default()),
            exec: Cell::new(ExecStats::default()),
            budget: RefCell::new(None),
        }
    }

    /// Installs (or clears) the cooperative budget every subsequent
    /// evaluation through this context polls at batch boundaries. Budgets
    /// are per-query in session use: workers re-install a fresh budget
    /// before each query.
    pub fn set_budget(&self, budget: Option<crate::budget::EvalBudget>) {
        *self.budget.borrow_mut() = budget;
    }

    /// The currently installed budget, if any (cheap clone of the shared
    /// handle).
    pub fn budget(&self) -> Option<crate::budget::EvalBudget> {
        self.budget.borrow().clone()
    }

    /// The underlying database.
    pub fn database(&self) -> &'a Database {
        self.db.get()
    }

    /// The store version this context's derived caches were built at.
    pub fn version_stamp(&self) -> u64 {
        self.stamp.get()
    }

    /// Points the context at (a possibly newer snapshot of) its database.
    /// When the incoming snapshot's [`Database::version`] differs from the
    /// version the cached structures were built at, every structural cache —
    /// CSR/pair/code/legacy indexes, zone maps, distinct counts — is
    /// dropped so it rebuilds lazily against the new snapshot. Compiled
    /// plans are keyed by version and need no clearing: stale entries are
    /// simply never hit again (a long-lived context re-compiles per
    /// version, which is the snapshot-correctness the update path needs).
    ///
    /// Rebinding to a snapshot with the *same* version (e.g. a clone) is
    /// free and keeps every cache.
    pub fn rebind(&self, db: &'a Database) {
        self.db.set(db);
        if db.version() != self.stamp.get() {
            self.indexes.borrow_mut().clear();
            self.code_indexes.borrow_mut().clear();
            self.csr_indexes.borrow_mut().clear();
            self.pair_indexes.borrow_mut().clear();
            self.zone_maps.borrow_mut().clear();
            self.distinct_counts.borrow_mut().clear();
            self.stamp.set(db.version());
        }
    }

    /// Compiles `ucq` into a physical plan, or returns the cached plan if
    /// this context has compiled the same query before *at the current
    /// store version*. The cache key pairs the version stamp with the
    /// query's canonical display form: syntactically identical queries
    /// share one plan per context and per version — a plan compiled against
    /// version N's interned constants and access paths is never replayed
    /// against version N+1.
    pub fn compile(&self, ucq: &Ucq) -> Result<Rc<CompiledUcq>> {
        let key = (self.stamp.get(), ucq.to_string());
        if let Some(plan) = self.plans.borrow().get(&key) {
            return Ok(Rc::clone(plan));
        }
        let plan = Rc::new(CompiledUcq::compile(ucq, self)?);
        self.plans.borrow_mut().insert(key, Rc::clone(&plan));
        Ok(plan)
    }

    /// Number of distinct plans this context has compiled.
    pub fn compiled_plans(&self) -> usize {
        self.plans.borrow().len()
    }

    /// Aggregate shape statistics over every cached plan.
    pub fn plan_stats(&self) -> PlanStats {
        self.plans
            .borrow()
            .values()
            .map(|p| p.stats())
            .fold(PlanStats::default(), |a, b| a + b)
    }

    /// Lowers `ucq` into a vectorized plan (compiling it first if needed),
    /// or returns the cached lowering. Shares the compiled-plan cache key.
    pub fn compile_vec(&self, ucq: &Ucq) -> Result<Rc<VecCompiledUcq>> {
        let key = (self.stamp.get(), ucq.to_string());
        if let Some(plan) = self.vec_plans.borrow().get(&key) {
            return Ok(Rc::clone(plan));
        }
        let base = self.compile(ucq)?;
        let plan = Rc::new(VecCompiledUcq::lower(&base, self));
        self.vec_plans.borrow_mut().insert(key, Rc::clone(&plan));
        Ok(plan)
    }

    /// The shared CSR join index of `(rel, column)`, flattened from the
    /// dictionary-encoded column on first use.
    pub(crate) fn csr_index(&self, rel: RelId, column: usize) -> Rc<CsrIndex> {
        if let Some(index) = self.csr_indexes.borrow().get(&(rel, column)) {
            return Rc::clone(index);
        }
        let index = Rc::new(CsrIndex::build(
            self.db.get().relation(rel).column_codes(column),
        ));
        self.csr_indexes
            .borrow_mut()
            .insert((rel, column), Rc::clone(&index));
        index
    }

    /// The shared composite join index of `(rel, col_a, col_b)`, built on
    /// first use for probe steps that arrive with both columns bound.
    pub(crate) fn pair_index(&self, rel: RelId, col_a: usize, col_b: usize) -> Rc<PairIndex> {
        if let Some(index) = self.pair_indexes.borrow().get(&(rel, col_a, col_b)) {
            return Rc::clone(index);
        }
        let relation = self.db.get().relation(rel);
        let index = Rc::new(PairIndex::build(
            relation.column_codes(col_a),
            relation.column_codes(col_b),
        ));
        self.pair_indexes
            .borrow_mut()
            .insert((rel, col_a, col_b), Rc::clone(&index));
        index
    }

    /// Distinct codes in `(rel, column)`, counted once and cached — the
    /// selectivity score the vectorized lowering ranks candidate probe keys
    /// by (more distinct codes → shorter expected posting lists).
    pub(crate) fn distinct_count(&self, rel: RelId, column: usize) -> usize {
        if let Some(&count) = self.distinct_counts.borrow().get(&(rel, column)) {
            return count;
        }
        let codes = self.db.get().relation(rel).column_codes(column);
        let mut seen: fxhash::FxHashSet<u32> = fxhash::FxHashSet::default();
        seen.reserve(codes.len());
        seen.extend(codes.iter().copied());
        let count = seen.len();
        self.distinct_counts
            .borrow_mut()
            .insert((rel, column), count);
        count
    }

    /// The shared zone maps of a relation, built on first use.
    pub(crate) fn zone_map(&self, rel: RelId) -> Rc<RelationZones> {
        if let Some(zones) = self.zone_maps.borrow().get(&rel) {
            return Rc::clone(zones);
        }
        let zones = Rc::new(RelationZones::build(self.db.get().relation(rel)));
        self.zone_maps.borrow_mut().insert(rel, Rc::clone(&zones));
        zones
    }

    /// Executor counters accumulated across every vectorized run on this
    /// context (block skipping, CSR probes, batches).
    pub fn exec_stats(&self) -> ExecStats {
        self.exec.get()
    }

    /// Folds one run's counters into the context totals.
    pub(crate) fn record_exec(&self, stats: ExecStats) {
        self.exec.set(self.exec.get() + stats);
    }

    /// The shared code index of `(rel, column)`, built in one pass over the
    /// dictionary-encoded column on first use.
    pub(crate) fn code_index(&self, rel: RelId, column: usize) -> Rc<CodeIndex> {
        if let Some(index) = self.code_indexes.borrow().get(&(rel, column)) {
            return Rc::clone(index);
        }
        let codes = self.db.get().relation(rel).column_codes(column);
        let mut map: CodeIndex = FxHashMap::default();
        map.reserve(codes.len());
        for (i, &code) in codes.iter().enumerate() {
            map.entry(code).or_default().push(i as u32);
        }
        let index = Rc::new(map);
        self.code_indexes
            .borrow_mut()
            .insert((rel, column), Rc::clone(&index));
        index
    }

    /// The legacy `Value`-keyed index of `(rel, column)`, built on first
    /// use. The `RefCell` is only borrowed transiently — the returned
    /// handle owns the index for as long as a search needs it.
    fn legacy_index(&self, rel: RelId, column: usize) -> Rc<LegacyIndex> {
        if let Some(index) = self.indexes.borrow().get(&(rel, column)) {
            return Rc::clone(index);
        }
        let mut index: LegacyIndex = FxHashMap::default();
        for (i, row) in self.db.get().relation(rel).iter() {
            index.entry(row[column].clone()).or_default().push(i);
        }
        let index = Rc::new(index);
        self.indexes
            .borrow_mut()
            .insert((rel, column), Rc::clone(&index));
        index
    }
}

/// Resolves the relation of an atom and checks its arity.
pub(crate) fn resolve_atom(db: &Database, atom: &Atom) -> Result<RelId> {
    let rel = db
        .schema()
        .relation_id(&atom.relation)
        .ok_or_else(|| QueryError::UnknownRelation(atom.relation.clone()))?;
    let arity = db.schema().relation(rel).arity();
    if atom.terms.len() != arity {
        return Err(QueryError::ArityMismatch {
            relation: atom.relation.clone(),
            expected: arity,
            actual: atom.terms.len(),
        });
    }
    Ok(rel)
}

/// One step of the static join order: which atom to match next, and which
/// column (if any) to probe through a hash index.
pub(crate) struct JoinStep {
    /// Atom position in the original query.
    pub(crate) atom: usize,
    /// Column probed through a hash index, or `None` for a full scan.
    pub(crate) probe: Option<usize>,
}

/// Computes the join order both evaluators execute: greedy
/// most-bound-terms-first, ties broken by original position, probing the
/// first bound column of each chosen atom. The choice depends only on which
/// atoms have been processed (never on the values bound), so fixing it up
/// front is exact — and sharing this one function between the legacy
/// evaluator and the plan compiler makes their enumeration orders identical
/// by construction, not by parallel maintenance.
pub(crate) fn static_join_order(cq: &ConjunctiveQuery) -> Vec<JoinStep> {
    let n = cq.atoms.len();
    let mut used = vec![false; n];
    let mut bound: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<(usize, usize)> = None;
        for (i, atom) in cq.atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let count = atom
                .terms
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v.as_str()),
                })
                .count();
            if best.map(|(_, b)| count > b).unwrap_or(true) {
                best = Some((i, count));
            }
        }
        let (atom_idx, _) = best.expect("there is at least one unused atom");
        used[atom_idx] = true;
        let atom = &cq.atoms[atom_idx];
        let probe = atom.terms.iter().position(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v.as_str()),
        });
        bound.extend(atom.variables());
        order.push(JoinStep {
            atom: atom_idx,
            probe,
        });
    }
    order
}

/// Calls `on_match` for every satisfying assignment of the conjunctive
/// query's body. The callback receives the bindings and, for each atom (in
/// the original atom order), the `(relation, row_index)` of the matched row.
///
/// Returning [`ControlFlow::Break`] from the callback stops the enumeration.
///
/// This is the **legacy** backtracking evaluator, retained as the test
/// oracle for the compiled plans of [`crate::plan`]; production callers go
/// through [`EvalContext::compile`] (the lineage and answer functions do so
/// internally).
pub fn for_each_match<B>(
    cq: &ConjunctiveQuery,
    ctx: &EvalContext<'_>,
    mut on_match: impl FnMut(&Bindings, &[(RelId, usize)]) -> ControlFlow<B>,
) -> Result<Option<B>> {
    let db = ctx.database();
    let rels: Vec<RelId> = cq
        .atoms
        .iter()
        .map(|a| resolve_atom(db, a))
        .collect::<Result<_>>()?;

    // Ground comparisons can be checked once, up front.
    for cmp in &cq.comparisons {
        if cmp.eval_ground() == Some(false) {
            return Ok(None);
        }
    }

    // The atom order is value-independent; fix it up front and grab a
    // handle to every probed index before the search, so probing borrows
    // posting lists for the whole enumeration instead of cloning them per
    // call (and no `RefCell` borrow is held while `on_match` runs).
    let order = static_join_order(cq);
    let probed: Vec<Option<Rc<LegacyIndex>>> = order
        .iter()
        .map(|step| step.probe.map(|col| ctx.legacy_index(rels[step.atom], col)))
        .collect();

    let mut bindings: Bindings = Bindings::default();
    let mut matched: Vec<(RelId, usize)> = vec![(RelId(0), 0); cq.atoms.len()];
    let result = search(
        cq,
        db,
        &rels,
        &order,
        &probed,
        &mut bindings,
        &mut matched,
        0,
        &mut on_match,
    );
    Ok(result)
}

/// Candidate rows of one legacy step: a borrowed posting list or a scan.
enum Candidates<'x> {
    Probe(std::slice::Iter<'x, usize>),
    Scan(std::ops::Range<usize>),
}

impl Iterator for Candidates<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        match self {
            Candidates::Probe(iter) => iter.next().copied(),
            Candidates::Scan(range) => range.next(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn search<B>(
    cq: &ConjunctiveQuery,
    db: &Database,
    rels: &[RelId],
    order: &[JoinStep],
    probed: &[Option<Rc<LegacyIndex>>],
    bindings: &mut Bindings,
    matched: &mut Vec<(RelId, usize)>,
    depth: usize,
    on_match: &mut impl FnMut(&Bindings, &[(RelId, usize)]) -> ControlFlow<B>,
) -> Option<B> {
    if depth == cq.atoms.len() {
        // All atoms matched; every comparison must be ground by now (the
        // parser guarantees comparison variables appear in atoms).
        for cmp in &cq.comparisons {
            let c = ground_comparison(cmp, bindings);
            if !c {
                return None;
            }
        }
        return match on_match(bindings, matched) {
            ControlFlow::Break(b) => Some(b),
            ControlFlow::Continue(()) => None,
        };
    }

    let step = &order[depth];
    let atom = &cq.atoms[step.atom];
    let rel = rels[step.atom];

    // Choose the access path fixed at order time: probe the index on the
    // first bound column (borrowing its posting list — no clone, and no
    // `Value` clone for the key either), or scan the whole relation.
    let candidates = match step.probe {
        Some(col) => {
            let key: &Value = match &atom.terms[col] {
                Term::Const(c) => c,
                Term::Var(v) => &bindings[v],
            };
            let index = probed[depth].as_ref().expect("probe step has its index");
            let posting = index.get(key).map(|rows| rows.as_slice()).unwrap_or(&[]);
            Candidates::Probe(posting.iter())
        }
        None => Candidates::Scan(0..db.relation(rel).len()),
    };

    for row_index in candidates {
        let row = db.relation(rel).row(row_index);
        // Unify the atom's terms with the row.
        let mut new_bindings: Vec<String> = Vec::new();
        let mut ok = true;
        for (term, value) in atom.terms.iter().zip(row.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match bindings.get(v) {
                    Some(bound) => {
                        if bound != value {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        bindings.insert(v.clone(), value.clone());
                        new_bindings.push(v.clone());
                    }
                },
            }
        }
        if ok {
            // Check comparisons that just became ground, to prune early.
            let prune = cq
                .comparisons
                .iter()
                .any(|cmp| is_ground_under(cmp, bindings) && !ground_comparison(cmp, bindings));
            if !prune {
                matched[step.atom] = (rel, row_index);
                if let Some(b) = search(
                    cq,
                    db,
                    rels,
                    order,
                    probed,
                    bindings,
                    matched,
                    depth + 1,
                    on_match,
                ) {
                    for v in new_bindings {
                        bindings.remove(&v);
                    }
                    return Some(b);
                }
            }
        }
        for v in new_bindings {
            bindings.remove(&v);
        }
    }
    None
}

fn is_ground_under(cmp: &crate::ast::Comparison, bindings: &Bindings) -> bool {
    cmp.variables().all(|v| bindings.contains_key(v))
}

fn ground_comparison(cmp: &crate::ast::Comparison, bindings: &Bindings) -> bool {
    let resolve = |t: &Term| -> Value {
        match t {
            Term::Const(c) => c.clone(),
            Term::Var(v) => bindings
                .get(v)
                .cloned()
                .expect("comparison variables are bound by atoms"),
        }
    };
    cmp.op.eval(&resolve(&cmp.left), &resolve(&cmp.right))
}

/// Evaluates a (possibly non-Boolean) UCQ over a deterministic database,
/// returning the distinct answers (through a freshly compiled plan).
pub fn evaluate_ucq(ucq: &Ucq, db: &Database) -> Result<Vec<Answer>> {
    let ctx = EvalContext::new(db);
    evaluate_ucq_with(ucq, &ctx)
}

/// Like [`evaluate_ucq`] but reuses an existing [`EvalContext`] (and hence
/// its compiled-plan, lowered-plan and index caches).
///
/// This is the vectorized production path: each disjunct's batch plan is
/// driven batch-at-a-time, answers are deduplicated on raw head codes
/// before any `Value` is decoded (exact — the interner is bijective), and
/// only the per-disjunct-distinct survivors reach the global row set. The
/// tuple-at-a-time plan loop remains available as
/// [`evaluate_ucq_compiled_with`] (the exact-equality oracle).
pub fn evaluate_ucq_with(ucq: &Ucq, ctx: &EvalContext<'_>) -> Result<Vec<Answer>> {
    let plan = ctx.compile_vec(ucq)?;
    let db = ctx.database();
    let interner = db.interner();
    let mut stats = crate::vec_exec::ExecStats::default();
    let mut seen = fxhash::FxHashSet::default();
    let mut answers = Vec::new();
    for disjunct in plan.disjuncts() {
        let head_slots = disjunct.head_slots();
        let mut code_seen: fxhash::FxHashSet<Vec<u32>> = fxhash::FxHashSet::default();
        disjunct.for_each_batch::<()>(db, &mut stats, |batch| {
            for entry in 0..batch.len() {
                let regs = batch.regs(entry);
                let key: Vec<u32> = head_slots.iter().map(|&s| regs[usize::from(s)]).collect();
                if !code_seen.insert(key) {
                    continue;
                }
                let row = disjunct.decode_head(regs, interner);
                if seen.insert(row.clone()) {
                    answers.push(Answer { row });
                }
            }
            ControlFlow::Continue(())
        });
    }
    ctx.record_exec(stats);
    Ok(answers)
}

/// [`evaluate_ucq`] through the tuple-at-a-time compiled plan loop — the
/// PR-4 path, preserved as the exact-equality oracle for the vectorized
/// executor (and as the baseline of the `query_vectorized` microbenchmark).
pub fn evaluate_ucq_compiled_with(ucq: &Ucq, ctx: &EvalContext<'_>) -> Result<Vec<Answer>> {
    let plan = ctx.compile(ucq)?;
    let db = ctx.database();
    let interner = db.interner();
    let mut seen = fxhash::FxHashSet::default();
    let mut answers = Vec::new();
    for disjunct in plan.disjuncts() {
        disjunct.for_each_match::<()>(db, |regs, _| {
            let row = disjunct.decode_head(regs, interner);
            if seen.insert(row.clone()) {
                answers.push(Answer { row });
            }
            ControlFlow::Continue(())
        });
    }
    Ok(answers)
}

/// [`evaluate_ucq`] through the legacy backtracking evaluator (test
/// oracle; reuses the context's `Value`-keyed indexes).
pub fn evaluate_ucq_legacy_with(ucq: &Ucq, ctx: &EvalContext<'_>) -> Result<Vec<Answer>> {
    let mut seen = fxhash::FxHashSet::default();
    let mut answers = Vec::new();
    for disjunct in &ucq.disjuncts {
        for_each_match::<()>(disjunct, ctx, |bindings, _| {
            let row: Row = disjunct
                .head
                .iter()
                .map(|t| match t {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => bindings[v].clone(),
                })
                .collect();
            if seen.insert(row.clone()) {
                answers.push(Answer { row });
            }
            ControlFlow::Continue(())
        })?;
    }
    Ok(answers)
}

/// Evaluates a Boolean UCQ over a deterministic database.
pub fn evaluate_boolean(ucq: &Ucq, db: &Database) -> Result<bool> {
    let ctx = EvalContext::new(db);
    evaluate_boolean_with(ucq, &ctx)
}

/// Like [`evaluate_boolean`] but reuses an existing [`EvalContext`]. Runs
/// the vectorized executor, stopping at the first complete batch (which
/// the executor emits as soon as any match exists).
pub fn evaluate_boolean_with(ucq: &Ucq, ctx: &EvalContext<'_>) -> Result<bool> {
    for disjunct in &ucq.disjuncts {
        if !disjunct.is_boolean() {
            return Err(QueryError::NotBoolean(disjunct.name.clone()));
        }
    }
    let plan = ctx.compile_vec(ucq)?;
    let mut stats = crate::vec_exec::ExecStats::default();
    let mut hit = false;
    for disjunct in plan.disjuncts() {
        if disjunct
            .for_each_batch(ctx.database(), &mut stats, |_| ControlFlow::Break(()))
            .is_some()
        {
            hit = true;
            break;
        }
    }
    ctx.record_exec(stats);
    Ok(hit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_ucq};
    use mv_pdb::value::row;

    fn db() -> Database {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a"]).unwrap();
        let s = db.add_relation("S", &["a", "b"]).unwrap();
        let t = db.add_relation("T", &["b"]).unwrap();
        db.insert(r, row([1i64])).unwrap();
        db.insert(r, row([2i64])).unwrap();
        db.insert(s, row([1i64, 10])).unwrap();
        db.insert(s, row([1i64, 20])).unwrap();
        db.insert(s, row([2i64, 30])).unwrap();
        db.insert(s, row([3i64, 30])).unwrap();
        db.insert(t, row([30i64])).unwrap();
        db
    }

    #[test]
    fn simple_join_returns_expected_answers() {
        let db = db();
        let q = parse_ucq("Q(x, y) :- R(x), S(x, y)").unwrap();
        let mut answers: Vec<Row> = evaluate_ucq(&q, &db)
            .unwrap()
            .into_iter()
            .map(|a| a.row)
            .collect();
        answers.sort();
        assert_eq!(
            answers,
            vec![row([1i64, 10]), row([1i64, 20]), row([2i64, 30])]
        );
    }

    #[test]
    fn comparisons_filter_answers() {
        let db = db();
        let q = parse_ucq("Q(x, y) :- R(x), S(x, y), y >= 20").unwrap();
        let mut answers: Vec<Row> = evaluate_ucq(&q, &db)
            .unwrap()
            .into_iter()
            .map(|a| a.row)
            .collect();
        answers.sort();
        assert_eq!(answers, vec![row([1i64, 20]), row([2i64, 30])]);
    }

    #[test]
    fn boolean_queries_detect_satisfiability() {
        let db = db();
        assert!(evaluate_boolean(&parse_ucq("Q() :- R(x), S(x, y), T(y)").unwrap(), &db).unwrap());
        assert!(
            !evaluate_boolean(&parse_ucq("Q() :- R(x), S(x, y), y > 100").unwrap(), &db).unwrap()
        );
    }

    #[test]
    fn constants_in_atoms_restrict_matches() {
        let db = db();
        let q = parse_ucq("Q(y) :- S(1, y)").unwrap();
        let mut answers: Vec<Row> = evaluate_ucq(&q, &db)
            .unwrap()
            .into_iter()
            .map(|a| a.row)
            .collect();
        answers.sort();
        assert_eq!(answers, vec![row([10i64]), row([20i64])]);
    }

    #[test]
    fn constants_absent_from_the_database_yield_no_answers() {
        let db = db();
        // 99 appears nowhere: the plan is proven empty at compile time.
        let q = parse_ucq("Q(y) :- S(99, y)").unwrap();
        assert!(evaluate_ucq(&q, &db).unwrap().is_empty());
        assert!(!evaluate_boolean(&parse_ucq("Q() :- S(99, y)").unwrap(), &db).unwrap());
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut db = Database::new();
        let e = db.add_relation("E", &["a", "b"]).unwrap();
        db.insert(e, row([1i64, 1])).unwrap();
        db.insert(e, row([1i64, 2])).unwrap();
        let q = parse_ucq("Q(x) :- E(x, x)").unwrap();
        let answers = evaluate_ucq(&q, &db).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].row, row([1i64]));
    }

    #[test]
    fn union_of_queries_merges_and_deduplicates_answers() {
        let db = db();
        let q = parse_ucq("Q(x) :- R(x) ; Q(x) :- S(x, y), y = 30").unwrap();
        let mut answers: Vec<Row> = evaluate_ucq(&q, &db)
            .unwrap()
            .into_iter()
            .map(|a| a.row)
            .collect();
        answers.sort();
        assert_eq!(answers, vec![row([1i64]), row([2i64]), row([3i64])]);
    }

    #[test]
    fn unknown_relation_and_bad_arity_are_reported() {
        let db = db();
        assert!(matches!(
            evaluate_boolean(&parse_ucq("Q() :- Nope(x)").unwrap(), &db),
            Err(QueryError::UnknownRelation(_))
        ));
        assert!(matches!(
            evaluate_boolean(&parse_ucq("Q() :- R(x, y)").unwrap(), &db),
            Err(QueryError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn boolean_evaluation_rejects_non_boolean_queries() {
        let db = db();
        assert!(matches!(
            evaluate_boolean(&parse_ucq("Q(x) :- R(x)").unwrap(), &db),
            Err(QueryError::NotBoolean(_))
        ));
    }

    #[test]
    fn like_predicate_selects_matching_names() {
        let mut db = Database::new();
        let a = db.add_relation("Author", &["aid", "name"]).unwrap();
        db.insert(a, row([Value::int(1), Value::str("Sam Madden")]))
            .unwrap();
        db.insert(a, row([Value::int(2), Value::str("Dan Suciu")]))
            .unwrap();
        let q = parse_ucq("Q(aid) :- Author(aid, n), n like '%Madden%'").unwrap();
        let answers = evaluate_ucq(&q, &db).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].row, row([1i64]));
    }

    #[test]
    fn for_each_match_reports_matched_rows_per_atom() {
        let db = db();
        let ctx = EvalContext::new(&db);
        let q = parse_query("Q() :- R(x), S(x, y)").unwrap();
        let mut count = 0;
        for_each_match::<()>(&q, &ctx, |_, matched| {
            assert_eq!(matched.len(), 2);
            count += 1;
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(count, 3);
    }

    #[test]
    fn ast_constructed_unbound_comparison_variables_error_at_compile() {
        // The parser rejects comparisons over variables absent from the
        // atoms; AST-constructed queries get an explicit compile error
        // instead of silently matching nothing.
        use crate::ast::{CmpOp, Comparison};
        let db = db();
        let cq = ConjunctiveQuery::new(
            "Q",
            vec![],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![Comparison::new(
                Term::var("y"),
                CmpOp::Gt,
                Term::constant(5i64),
            )],
        );
        let ctx = EvalContext::new(&db);
        assert!(matches!(
            ctx.compile(&Ucq::from_cq(cq)),
            Err(QueryError::UnboundComparisonVariable(v)) if v == "y"
        ));
    }

    #[test]
    fn legacy_evaluation_is_reentrant_on_one_context() {
        // An `on_match` callback may issue another legacy query on the same
        // context — including one that builds a new index — without
        // tripping a `RefCell` borrow (the search holds `Rc` handles to its
        // probed indexes, never the cache borrow itself).
        let db = db();
        let ctx = EvalContext::new(&db);
        let outer = parse_query("Q() :- R(x), S(x, y)").unwrap();
        let inner = parse_ucq("Q() :- T(b), S(a, b)").unwrap();
        let mut inner_hits = 0;
        for_each_match::<()>(&outer, &ctx, |_, _| {
            if evaluate_ucq_legacy_with(&inner, &ctx).unwrap().len() == 1 {
                inner_hits += 1;
            }
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(inner_hits, 3);
    }

    #[test]
    fn plan_cache_reuses_compiled_plans() {
        let db = db();
        let ctx = EvalContext::new(&db);
        let q = parse_ucq("Q(x, y) :- R(x), S(x, y)").unwrap();
        let p1 = ctx.compile(&q).unwrap();
        let p2 = ctx.compile(&q).unwrap();
        assert!(Rc::ptr_eq(&p1, &p2));
        assert_eq!(ctx.compiled_plans(), 1);
        let stats = ctx.plan_stats();
        assert_eq!(stats.disjuncts, 1);
        assert_eq!(stats.steps, 2);
        // R is scanned, S is probed on the bound join column.
        assert_eq!(stats.scan_steps, 1);
        assert_eq!(stats.probe_steps, 1);
        assert_eq!(stats.slots, 2);
    }

    #[test]
    fn rebind_refreshes_structural_caches_after_mutation() {
        // Regression: CSR join indexes, zone maps and code indexes used to
        // be built once per context and never invalidated, so a mutated
        // relation silently served stale postings and skipped live blocks.
        let base = db();
        let ctx = EvalContext::new(&base);
        let q = parse_ucq("Q(x, y) :- R(x), S(x, y)").unwrap();
        // Query once: indexes and zone maps are built for version N.
        assert_eq!(evaluate_ucq_with(&q, &ctx).unwrap().len(), 3);
        // Mutate into a new snapshot (copy-on-write leaves `base` intact).
        let mut v2 = base.clone();
        let r = v2.relation_id("R").unwrap();
        let s = v2.relation_id("S").unwrap();
        v2.insert(r, row([3i64])).unwrap();
        v2.insert(s, row([3i64, 40])).unwrap();
        // Re-query through the same context against the new snapshot.
        ctx.rebind(&v2);
        let mut answers: Vec<Row> = evaluate_ucq_with(&q, &ctx)
            .unwrap()
            .into_iter()
            .map(|a| a.row)
            .collect();
        answers.sort();
        assert_eq!(
            answers,
            vec![
                row([1i64, 10]),
                row([1i64, 20]),
                row([2i64, 30]),
                row([3i64, 30]),
                row([3i64, 40]),
            ]
        );
        // The old snapshot still evaluates correctly after rebinding back.
        ctx.rebind(&base);
        assert_eq!(evaluate_ucq_with(&q, &ctx).unwrap().len(), 3);
    }

    #[test]
    fn plan_cache_is_version_keyed_across_insertions() {
        // Regression: the compiled-plan cache was keyed by canonical query
        // text only, so a plan proven empty at version N (constant absent
        // from the dictionary) was replayed against version N+1 where the
        // constant exists.
        let base = db();
        let ctx = EvalContext::new(&base);
        let q = parse_ucq("Q(y) :- S(99, y)").unwrap();
        // 99 appears nowhere: the plan is proven empty at compile time.
        assert!(evaluate_ucq_with(&q, &ctx).unwrap().is_empty());
        let mut v2 = base.clone();
        let s = v2.relation_id("S").unwrap();
        v2.insert(s, row([99i64, 7])).unwrap();
        ctx.rebind(&v2);
        let answers = evaluate_ucq_with(&q, &ctx).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].row, row([7i64]));
        // Distinct plans exist for the two versions; the old one still hits.
        assert_eq!(ctx.compiled_plans(), 2);
        ctx.rebind(&base);
        assert!(evaluate_ucq_with(&q, &ctx).unwrap().is_empty());
        assert_eq!(ctx.compiled_plans(), 2);
    }

    #[test]
    fn compiled_and_legacy_agree_on_every_sample_query() {
        let db = db();
        let ctx = EvalContext::new(&db);
        for text in [
            "Q(x, y) :- R(x), S(x, y)",
            "Q(x, y) :- R(x), S(x, y), y >= 20",
            "Q(y) :- S(1, y)",
            "Q(y) :- S(99, y)",
            "Q(x) :- R(x) ; Q(x) :- S(x, y), y = 30",
            "Q() :- R(x), S(x, y), T(y)",
            "Q(b) :- T(b), S(a, b), R(a)",
            "Q(x) :- S(x, 30), T(30)",
        ] {
            let q = parse_ucq(text).unwrap();
            let mut compiled: Vec<Row> = evaluate_ucq_with(&q, &ctx)
                .unwrap()
                .into_iter()
                .map(|a| a.row)
                .collect();
            let mut legacy: Vec<Row> = evaluate_ucq_legacy_with(&q, &ctx)
                .unwrap()
                .into_iter()
                .map(|a| a.row)
                .collect();
            compiled.sort();
            legacy.sort();
            assert_eq!(compiled, legacy, "{text}");
        }
    }
}
