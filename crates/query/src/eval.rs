//! Evaluation of (unions of) conjunctive queries over deterministic databases.
//!
//! This module plays the role Postgres plays in the paper: it computes the
//! set of answers of a UCQ over a database instance, and — through
//! [`for_each_match`] — enumerates the satisfying assignments that the
//! lineage computation in [`crate::lineage`] turns into Boolean provenance.
//!
//! The evaluator is a backtracking join: atoms are processed in an order that
//! greedily prefers atoms with the most bound terms, each atom probes a
//! hash index on one bound column (built lazily per relation/column), and
//! comparison predicates are applied as soon as both sides are bound.

use std::cell::RefCell;
use std::ops::ControlFlow;

use fxhash::FxHashMap;
use mv_pdb::{Database, RelId, Row, Value};

use crate::ast::{Atom, ConjunctiveQuery, Term, Ucq};
use crate::error::QueryError;
use crate::Result;

/// One answer of a non-Boolean query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Answer {
    /// The head tuple.
    pub row: Row,
}

/// A variable binding environment (FxHash-keyed: probed per atom term on
/// the lineage hot path).
pub type Bindings = FxHashMap<String, Value>;

/// Lazily built column index: `(relation, column) → value → row positions`.
type ColumnIndexes = FxHashMap<(RelId, usize), FxHashMap<Value, Vec<usize>>>;

/// Per-database evaluation context with lazily built column indexes.
///
/// Reusing a context across queries amortises the index construction; the
/// MV-index compilation and the benchmark harness both take advantage of it.
pub struct EvalContext<'a> {
    db: &'a Database,
    indexes: RefCell<ColumnIndexes>,
}

impl<'a> EvalContext<'a> {
    /// Creates a context for the given database.
    pub fn new(db: &'a Database) -> Self {
        EvalContext {
            db,
            indexes: RefCell::new(FxHashMap::default()),
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    fn ensure_index(&self, rel: RelId, column: usize) {
        let mut indexes = self.indexes.borrow_mut();
        indexes.entry((rel, column)).or_insert_with(|| {
            let mut index: FxHashMap<Value, Vec<usize>> = FxHashMap::default();
            for (i, row) in self.db.relation(rel).iter() {
                index.entry(row[column].clone()).or_default().push(i);
            }
            index
        });
    }

    /// Row indexes of `rel` whose `column` equals `value`.
    fn probe(&self, rel: RelId, column: usize, value: &Value) -> Vec<usize> {
        self.ensure_index(rel, column);
        self.indexes
            .borrow()
            .get(&(rel, column))
            .and_then(|ix| ix.get(value))
            .cloned()
            .unwrap_or_default()
    }
}

/// Resolves the relation of an atom and checks its arity.
fn resolve_atom(db: &Database, atom: &Atom) -> Result<RelId> {
    let rel = db
        .schema()
        .relation_id(&atom.relation)
        .ok_or_else(|| QueryError::UnknownRelation(atom.relation.clone()))?;
    let arity = db.schema().relation(rel).arity();
    if atom.terms.len() != arity {
        return Err(QueryError::ArityMismatch {
            relation: atom.relation.clone(),
            expected: arity,
            actual: atom.terms.len(),
        });
    }
    Ok(rel)
}

/// Calls `on_match` for every satisfying assignment of the conjunctive
/// query's body. The callback receives the bindings and, for each atom (in
/// the original atom order), the `(relation, row_index)` of the matched row.
///
/// Returning [`ControlFlow::Break`] from the callback stops the enumeration.
pub fn for_each_match<B>(
    cq: &ConjunctiveQuery,
    ctx: &EvalContext<'_>,
    mut on_match: impl FnMut(&Bindings, &[(RelId, usize)]) -> ControlFlow<B>,
) -> Result<Option<B>> {
    let db = ctx.database();
    let rels: Vec<RelId> = cq
        .atoms
        .iter()
        .map(|a| resolve_atom(db, a))
        .collect::<Result<_>>()?;

    // Ground comparisons can be checked once, up front.
    for cmp in &cq.comparisons {
        if cmp.eval_ground() == Some(false) {
            return Ok(None);
        }
    }

    let mut bindings: Bindings = Bindings::default();
    let mut matched: Vec<(RelId, usize)> = vec![(RelId(0), 0); cq.atoms.len()];
    let mut used: Vec<bool> = vec![false; cq.atoms.len()];
    let result = search(
        cq,
        ctx,
        &rels,
        &mut bindings,
        &mut matched,
        &mut used,
        0,
        &mut on_match,
    );
    Ok(result)
}

#[allow(clippy::too_many_arguments)]
fn search<B>(
    cq: &ConjunctiveQuery,
    ctx: &EvalContext<'_>,
    rels: &[RelId],
    bindings: &mut Bindings,
    matched: &mut Vec<(RelId, usize)>,
    used: &mut Vec<bool>,
    depth: usize,
    on_match: &mut impl FnMut(&Bindings, &[(RelId, usize)]) -> ControlFlow<B>,
) -> Option<B> {
    if depth == cq.atoms.len() {
        // All atoms matched; every comparison must be ground by now (the
        // parser guarantees comparison variables appear in atoms).
        for cmp in &cq.comparisons {
            let c = ground_comparison(cmp, bindings);
            if !c {
                return None;
            }
        }
        return match on_match(bindings, matched) {
            ControlFlow::Break(b) => Some(b),
            ControlFlow::Continue(()) => None,
        };
    }

    // Pick the unprocessed atom with the most bound terms (constants or
    // already-bound variables); ties are broken by original order.
    let mut best: Option<(usize, usize)> = None;
    for (i, atom) in cq.atoms.iter().enumerate() {
        if used[i] {
            continue;
        }
        let bound = atom
            .terms
            .iter()
            .filter(|t| match t {
                Term::Const(_) => true,
                Term::Var(v) => bindings.contains_key(v),
            })
            .count();
        if best.map(|(_, b)| bound > b).unwrap_or(true) {
            best = Some((i, bound));
        }
    }
    let (atom_idx, _) = best.expect("there is at least one unused atom");
    used[atom_idx] = true;
    let atom = &cq.atoms[atom_idx];
    let rel = rels[atom_idx];

    // Choose an access path: probe an index on the first bound column, or
    // scan the whole relation if nothing is bound.
    let bound_col = atom.terms.iter().enumerate().find_map(|(i, t)| match t {
        Term::Const(c) => Some((i, c.clone())),
        Term::Var(v) => bindings.get(v).map(|val| (i, val.clone())),
    });
    let candidates: Vec<usize> = match bound_col {
        Some((col, value)) => ctx.probe(rel, col, &value),
        None => (0..ctx.database().relation(rel).len()).collect(),
    };

    for row_index in candidates {
        let row = ctx.database().relation(rel).row(row_index);
        // Unify the atom's terms with the row.
        let mut new_bindings: Vec<String> = Vec::new();
        let mut ok = true;
        for (term, value) in atom.terms.iter().zip(row.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match bindings.get(v) {
                    Some(bound) => {
                        if bound != value {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        bindings.insert(v.clone(), value.clone());
                        new_bindings.push(v.clone());
                    }
                },
            }
        }
        if ok {
            // Check comparisons that just became ground, to prune early.
            let prune = cq
                .comparisons
                .iter()
                .any(|cmp| is_ground_under(cmp, bindings) && !ground_comparison(cmp, bindings));
            if !prune {
                matched[atom_idx] = (rel, row_index);
                if let Some(b) = search(cq, ctx, rels, bindings, matched, used, depth + 1, on_match)
                {
                    for v in new_bindings {
                        bindings.remove(&v);
                    }
                    used[atom_idx] = false;
                    return Some(b);
                }
            }
        }
        for v in new_bindings {
            bindings.remove(&v);
        }
    }
    used[atom_idx] = false;
    None
}

fn is_ground_under(cmp: &crate::ast::Comparison, bindings: &Bindings) -> bool {
    cmp.variables().all(|v| bindings.contains_key(v))
}

fn ground_comparison(cmp: &crate::ast::Comparison, bindings: &Bindings) -> bool {
    let resolve = |t: &Term| -> Value {
        match t {
            Term::Const(c) => c.clone(),
            Term::Var(v) => bindings
                .get(v)
                .cloned()
                .expect("comparison variables are bound by atoms"),
        }
    };
    cmp.op.eval(&resolve(&cmp.left), &resolve(&cmp.right))
}

/// Evaluates a (possibly non-Boolean) UCQ over a deterministic database,
/// returning the distinct answers.
pub fn evaluate_ucq(ucq: &Ucq, db: &Database) -> Result<Vec<Answer>> {
    let ctx = EvalContext::new(db);
    evaluate_ucq_with(ucq, &ctx)
}

/// Like [`evaluate_ucq`] but reuses an existing [`EvalContext`].
pub fn evaluate_ucq_with(ucq: &Ucq, ctx: &EvalContext<'_>) -> Result<Vec<Answer>> {
    let mut seen = fxhash::FxHashSet::default();
    let mut answers = Vec::new();
    for disjunct in &ucq.disjuncts {
        for_each_match::<()>(disjunct, ctx, |bindings, _| {
            let row: Row = disjunct
                .head
                .iter()
                .map(|t| match t {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => bindings[v].clone(),
                })
                .collect();
            if seen.insert(row.clone()) {
                answers.push(Answer { row });
            }
            ControlFlow::Continue(())
        })?;
    }
    Ok(answers)
}

/// Evaluates a Boolean UCQ over a deterministic database.
pub fn evaluate_boolean(ucq: &Ucq, db: &Database) -> Result<bool> {
    let ctx = EvalContext::new(db);
    for disjunct in &ucq.disjuncts {
        if !disjunct.is_boolean() {
            return Err(QueryError::NotBoolean(disjunct.name.clone()));
        }
        let hit = for_each_match(disjunct, &ctx, |_, _| ControlFlow::Break(()))?;
        if hit.is_some() {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_ucq};
    use mv_pdb::value::row;

    fn db() -> Database {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a"]).unwrap();
        let s = db.add_relation("S", &["a", "b"]).unwrap();
        let t = db.add_relation("T", &["b"]).unwrap();
        db.insert(r, row([1i64])).unwrap();
        db.insert(r, row([2i64])).unwrap();
        db.insert(s, row([1i64, 10])).unwrap();
        db.insert(s, row([1i64, 20])).unwrap();
        db.insert(s, row([2i64, 30])).unwrap();
        db.insert(s, row([3i64, 30])).unwrap();
        db.insert(t, row([30i64])).unwrap();
        db
    }

    #[test]
    fn simple_join_returns_expected_answers() {
        let db = db();
        let q = parse_ucq("Q(x, y) :- R(x), S(x, y)").unwrap();
        let mut answers: Vec<Row> = evaluate_ucq(&q, &db)
            .unwrap()
            .into_iter()
            .map(|a| a.row)
            .collect();
        answers.sort();
        assert_eq!(
            answers,
            vec![row([1i64, 10]), row([1i64, 20]), row([2i64, 30])]
        );
    }

    #[test]
    fn comparisons_filter_answers() {
        let db = db();
        let q = parse_ucq("Q(x, y) :- R(x), S(x, y), y >= 20").unwrap();
        let mut answers: Vec<Row> = evaluate_ucq(&q, &db)
            .unwrap()
            .into_iter()
            .map(|a| a.row)
            .collect();
        answers.sort();
        assert_eq!(answers, vec![row([1i64, 20]), row([2i64, 30])]);
    }

    #[test]
    fn boolean_queries_detect_satisfiability() {
        let db = db();
        assert!(evaluate_boolean(&parse_ucq("Q() :- R(x), S(x, y), T(y)").unwrap(), &db).unwrap());
        assert!(
            !evaluate_boolean(&parse_ucq("Q() :- R(x), S(x, y), y > 100").unwrap(), &db).unwrap()
        );
    }

    #[test]
    fn constants_in_atoms_restrict_matches() {
        let db = db();
        let q = parse_ucq("Q(y) :- S(1, y)").unwrap();
        let mut answers: Vec<Row> = evaluate_ucq(&q, &db)
            .unwrap()
            .into_iter()
            .map(|a| a.row)
            .collect();
        answers.sort();
        assert_eq!(answers, vec![row([10i64]), row([20i64])]);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut db = Database::new();
        let e = db.add_relation("E", &["a", "b"]).unwrap();
        db.insert(e, row([1i64, 1])).unwrap();
        db.insert(e, row([1i64, 2])).unwrap();
        let q = parse_ucq("Q(x) :- E(x, x)").unwrap();
        let answers = evaluate_ucq(&q, &db).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].row, row([1i64]));
    }

    #[test]
    fn union_of_queries_merges_and_deduplicates_answers() {
        let db = db();
        let q = parse_ucq("Q(x) :- R(x) ; Q(x) :- S(x, y), y = 30").unwrap();
        let mut answers: Vec<Row> = evaluate_ucq(&q, &db)
            .unwrap()
            .into_iter()
            .map(|a| a.row)
            .collect();
        answers.sort();
        assert_eq!(answers, vec![row([1i64]), row([2i64]), row([3i64])]);
    }

    #[test]
    fn unknown_relation_and_bad_arity_are_reported() {
        let db = db();
        assert!(matches!(
            evaluate_boolean(&parse_ucq("Q() :- Nope(x)").unwrap(), &db),
            Err(QueryError::UnknownRelation(_))
        ));
        assert!(matches!(
            evaluate_boolean(&parse_ucq("Q() :- R(x, y)").unwrap(), &db),
            Err(QueryError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn boolean_evaluation_rejects_non_boolean_queries() {
        let db = db();
        assert!(matches!(
            evaluate_boolean(&parse_ucq("Q(x) :- R(x)").unwrap(), &db),
            Err(QueryError::NotBoolean(_))
        ));
    }

    #[test]
    fn like_predicate_selects_matching_names() {
        let mut db = Database::new();
        let a = db.add_relation("Author", &["aid", "name"]).unwrap();
        db.insert(a, row([Value::int(1), Value::str("Sam Madden")]))
            .unwrap();
        db.insert(a, row([Value::int(2), Value::str("Dan Suciu")]))
            .unwrap();
        let q = parse_ucq("Q(aid) :- Author(aid, n), n like '%Madden%'").unwrap();
        let answers = evaluate_ucq(&q, &db).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].row, row([1i64]));
    }

    #[test]
    fn for_each_match_reports_matched_rows_per_atom() {
        let db = db();
        let ctx = EvalContext::new(&db);
        let q = parse_query("Q() :- R(x), S(x, y)").unwrap();
        let mut count = 0;
        for_each_match::<()>(&q, &ctx, |_, matched| {
            assert_eq!(matched.len(), 2);
            count += 1;
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(count, 3);
    }
}
