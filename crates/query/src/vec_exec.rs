//! Vectorized batch execution over the dictionary-encoded columns.
//!
//! This module is the batch counterpart of the tuple-at-a-time operator
//! loop in [`crate::plan`]: the production entry points of [`crate::eval`]
//! and [`crate::lineage`] lower every [`PhysicalPlan`] into a [`VecPlan`]
//! and drive it batch-at-a-time, while the PR-4 loop stays reachable as the
//! exact-equality oracle (`*_compiled_with`). Three ideas carry the speedup:
//!
//! * **Batches instead of rows.** Each join step consumes a batch of up to
//!   [`BATCH_ROWS`] partial matches (a register file of `u32` codes plus the
//!   matched row per atom, both stored entry-major) and appends the
//!   surviving extensions to the next depth's batch. The per-row iterator
//!   stack, its `enum` dispatch and the per-candidate hash probes of the
//!   tuple-at-a-time loop disappear; the inner loop is array loads and
//!   integer compares over the columnar store.
//! * **CSR join index with a robust hybrid fallback.** Probes run against a
//!   [`CsrIndex`]: posting lists flattened into `offsets` plus one dense
//!   `Vec<u32>` of row positions. When the code domain is small relative to
//!   the build side, `offsets` is indexed *directly by code* — a probe is
//!   two array loads, no hashing at all. When the domain exceeds the dense
//!   budget, the build side is hash-partitioned instead, growing the
//!   partition count (robust-join style) until every partition's key list
//!   fits a cache-friendly budget; a probe hashes its key **once**, picks
//!   the partition from that hash and scans the short key list — the probe
//!   stream is never re-hashed.
//! * **Zone-map block skipping.** Scans consult the per-block
//!   [`RelationZones`] of `mv-pdb` before touching rows: blocks whose
//!   min/max/Bloom summaries cannot contain the plan's interned equality
//!   constants, or whose code range misses the join-key bounds of a later
//!   probe, are skipped wholesale — the provenance-driven skipping of the
//!   lineage pass. Equality and inequality comparisons whose operands are
//!   interned are additionally evaluated on raw codes (the interner is
//!   bijective), so the dominant `aid2 <> aid3` self-join filter never
//!   decodes a `Value`.
//!
//! Everything here preserves the enumeration order of the tuple-at-a-time
//! loop by construction: the join order is shared, CSR posting lists keep
//! rows ascending within each key (stable counting sort), and batches are
//! filled depth-first.

use std::ops::ControlFlow;
use std::rc::Rc;

use fxhash::FxHashMap;
use mv_pdb::interner::ValueInterner;
use mv_pdb::zonemap::RelationZones;
use mv_pdb::{Database, RelId, Row};

use crate::ast::CmpOp;
use crate::eval::EvalContext;
use crate::plan::{
    resolve_operand, Access, CmpOperand, ColOp, CompiledCmp, HeadTerm, Key, PhysicalPlan, UNBOUND,
};

/// Maximum entries per batch of partial matches.
pub const BATCH_ROWS: usize = 1024;

/// Dense-layout budget of [`CsrIndex::build`]: the offsets array may be
/// directly code-indexed as long as the code domain is at most this factor
/// of the build side (plus slack for small relations).
const DENSE_DOMAIN_FACTOR: usize = 8;
const DENSE_DOMAIN_SLACK: usize = 4096;

/// Partitioned-layout budget: maximum distinct keys per partition before the
/// partition count doubles.
const PARTITION_KEY_BUDGET: usize = 48;

/// Composite-probe threshold: a probe step with two bound columns upgrades
/// from the best single-column CSR index to a [`PairIndex`] only when the
/// best key's expected posting list is at least this long. Below it, the
/// dense CSR layout (direct array indexing, no hashing) wins over the
/// pair's `u64` hash lookup; above it, scanning-and-filtering long postings
/// costs one scattered column read per posting and the exact composite
/// lookup takes over.
const PAIR_MIN_EXPECTED_POSTINGS: usize = 8;

/// Runtime counters of the vectorized executor, accumulated per
/// [`EvalContext`] and surfaced through the `query_vectorized` and
/// `session` figure series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Zone-map blocks whose rows were scanned.
    pub blocks_scanned: u64,
    /// Zone-map blocks skipped without touching a row.
    pub blocks_skipped: u64,
    /// CSR index probes (one per partial match entering a probe step).
    pub csr_probe_steps: u64,
    /// Batches of partial matches emitted across all depths.
    pub batches: u64,
}

impl std::ops::Add for ExecStats {
    type Output = ExecStats;
    fn add(self, rhs: ExecStats) -> ExecStats {
        ExecStats {
            blocks_scanned: self.blocks_scanned + rhs.blocks_scanned,
            blocks_skipped: self.blocks_skipped + rhs.blocks_skipped,
            csr_probe_steps: self.csr_probe_steps + rhs.csr_probe_steps,
            batches: self.batches + rhs.batches,
        }
    }
}

#[inline]
fn mix(code: u32) -> u32 {
    code.wrapping_mul(0x9E37_79B9)
}

/// A join index over one dictionary-encoded column with posting lists
/// flattened into CSR form: `offsets` plus one dense `Vec<u32>` of row
/// positions, ascending within each key.
#[derive(Debug)]
pub struct CsrIndex {
    kind: CsrKind,
}

#[derive(Debug)]
enum CsrKind {
    /// `offsets` is indexed directly by code: the postings of `code` are
    /// `rows[offsets[code]..offsets[code + 1]]`. Probing is two array loads.
    Dense { offsets: Vec<u32>, rows: Vec<u32> },
    /// Hash-partitioned fallback for sparse code domains. `part_offsets`
    /// groups `keys` (and the parallel `key_offsets`) by partition; a probe
    /// hashes once, picks `hash >> shift` and scans that partition's short
    /// key list.
    Partitioned {
        shift: u32,
        part_offsets: Vec<u32>,
        keys: Vec<u32>,
        key_offsets: Vec<u32>,
        rows: Vec<u32>,
    },
}

impl CsrIndex {
    /// Builds the index over a column's code array with the production
    /// budgets.
    pub fn build(codes: &[u32]) -> CsrIndex {
        CsrIndex::build_with_budgets(
            codes,
            DENSE_DOMAIN_FACTOR
                .saturating_mul(codes.len())
                .saturating_add(DENSE_DOMAIN_SLACK),
            PARTITION_KEY_BUDGET,
        )
    }

    /// Builds the index with explicit budgets (tests exercise the
    /// partitioned fallback and its growth loop through small budgets).
    pub(crate) fn build_with_budgets(
        codes: &[u32],
        dense_domain_budget: usize,
        partition_key_budget: usize,
    ) -> CsrIndex {
        let max_code = codes.iter().copied().max();
        let domain = max_code.map_or(0, |m| m as usize + 1);
        if domain <= dense_domain_budget {
            return CsrIndex::build_dense(codes, domain);
        }
        CsrIndex::build_partitioned(codes, partition_key_budget.max(1))
    }

    /// Stable counting sort of row positions by code: rows stay ascending
    /// within each key, so probe enumeration order matches the hash-map
    /// posting lists of the tuple-at-a-time path.
    fn build_dense(codes: &[u32], domain: usize) -> CsrIndex {
        let mut offsets = vec![0u32; domain + 1];
        for &c in codes {
            offsets[c as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut rows = vec![0u32; codes.len()];
        for (i, &c) in codes.iter().enumerate() {
            let slot = &mut cursor[c as usize];
            rows[*slot as usize] = i as u32;
            *slot += 1;
        }
        CsrIndex {
            kind: CsrKind::Dense { offsets, rows },
        }
    }

    fn build_partitioned(codes: &[u32], partition_key_budget: usize) -> CsrIndex {
        // Distinct keys in first-appearance order, with posting counts.
        let mut key_slot: FxHashMap<u32, u32> = FxHashMap::default();
        let mut key_codes: Vec<u32> = Vec::new();
        let mut key_counts: Vec<u32> = Vec::new();
        for &c in codes {
            match key_slot.get(&c) {
                Some(&k) => key_counts[k as usize] += 1,
                None => {
                    key_slot.insert(c, key_codes.len() as u32);
                    key_codes.push(c);
                    key_counts.push(1);
                }
            }
        }
        let num_keys = key_codes.len();

        // Grow the partition count until every partition's key list fits the
        // budget (or growth stops helping: keys sharing a full hash can
        // never be split apart).
        let mut partitions: usize = 1;
        let cap = num_keys.next_power_of_two().max(1) * 2;
        let part_of = |code: u32, shift: u32| -> usize {
            if shift >= 32 {
                0
            } else {
                (mix(code) >> shift) as usize
            }
        };
        let (shift, bucket_counts) = loop {
            let shift = 32u32.saturating_sub(partitions.trailing_zeros());
            let mut buckets = vec![0u32; partitions];
            for &code in &key_codes {
                buckets[part_of(code, shift)] += 1;
            }
            let worst = buckets.iter().copied().max().unwrap_or(0) as usize;
            if worst <= partition_key_budget || partitions >= cap {
                break (shift, buckets);
            }
            partitions *= 2;
        };

        // Group keys by partition (stable), then lay the postings out in
        // key-group order; rows stay ascending within each key.
        let mut part_offsets = vec![0u32; partitions + 1];
        for (p, &count) in bucket_counts.iter().enumerate() {
            part_offsets[p + 1] = part_offsets[p] + count;
        }
        let mut key_position = vec![0u32; num_keys];
        let mut keys = vec![0u32; num_keys];
        let mut part_cursor = part_offsets.clone();
        for (k, &code) in key_codes.iter().enumerate() {
            let p = part_of(code, shift);
            let j = part_cursor[p];
            part_cursor[p] += 1;
            keys[j as usize] = code;
            key_position[k] = j;
        }
        let mut key_offsets = vec![0u32; num_keys + 1];
        for (k, &count) in key_counts.iter().enumerate() {
            key_offsets[key_position[k] as usize + 1] = count;
        }
        for i in 1..key_offsets.len() {
            key_offsets[i] += key_offsets[i - 1];
        }
        let mut cursor = key_offsets.clone();
        let mut rows = vec![0u32; codes.len()];
        for (i, &c) in codes.iter().enumerate() {
            let j = key_position[key_slot[&c] as usize] as usize;
            rows[cursor[j] as usize] = i as u32;
            cursor[j] += 1;
        }
        CsrIndex {
            kind: CsrKind::Partitioned {
                shift,
                part_offsets,
                keys,
                key_offsets,
                rows,
            },
        }
    }

    /// The row positions holding `code`, ascending. Empty for absent codes.
    #[inline]
    pub fn probe(&self, code: u32) -> &[u32] {
        match &self.kind {
            CsrKind::Dense { offsets, rows } => {
                let c = code as usize;
                if c + 1 >= offsets.len() {
                    return &[];
                }
                &rows[offsets[c] as usize..offsets[c + 1] as usize]
            }
            CsrKind::Partitioned {
                shift,
                part_offsets,
                keys,
                key_offsets,
                rows,
            } => {
                let p = if *shift >= 32 {
                    0
                } else {
                    (mix(code) >> shift) as usize
                };
                let lo = part_offsets[p] as usize;
                let hi = part_offsets[p + 1] as usize;
                for (j, &key) in keys[lo..hi].iter().enumerate() {
                    if key == code {
                        let j = lo + j;
                        return &rows[key_offsets[j] as usize..key_offsets[j + 1] as usize];
                    }
                }
                &[]
            }
        }
    }

    /// `true` when the index fell back to the hash-partitioned layout.
    pub fn is_partitioned(&self) -> bool {
        matches!(self.kind, CsrKind::Partitioned { .. })
    }
}

/// A composite join index over an ordered pair of dictionary-encoded
/// columns. When a probe step arrives with *two* columns already bound, a
/// single-column CSR probe must scan the postings of one key and filter on
/// the other — one scattered column read per posting. The pair index folds
/// both codes into one `u64` key, so the probe is a single hash lookup and
/// only true matches are ever touched. Postings stay ascending within each
/// key (rows are appended in scan order), preserving the enumeration-order
/// contract with the tuple-at-a-time oracle.
#[derive(Debug)]
pub struct PairIndex {
    /// `(a_code << 32 | b_code)` → `(start, len)` into `rows`.
    map: FxHashMap<u64, (u32, u32)>,
    rows: Vec<u32>,
}

impl PairIndex {
    /// Builds the index over two parallel code arrays of one relation.
    pub fn build(a: &[u32], b: &[u32]) -> PairIndex {
        assert_eq!(a.len(), b.len(), "pair index needs parallel columns");
        let key = |i: usize| (u64::from(a[i]) << 32) | u64::from(b[i]);
        // Counting-sort build: tally per key, carve disjoint ranges, then
        // fill in row order so postings ascend within each key.
        let mut map: FxHashMap<u64, (u32, u32)> = FxHashMap::default();
        map.reserve(a.len());
        for i in 0..a.len() {
            map.entry(key(i)).or_insert((0, 0)).1 += 1;
        }
        let mut start = 0u32;
        for entry in map.values_mut() {
            entry.0 = start;
            start += entry.1;
            entry.1 = 0;
        }
        let mut rows = vec![0u32; a.len()];
        for i in 0..a.len() {
            let entry = map.get_mut(&key(i)).expect("tallied above");
            rows[(entry.0 + entry.1) as usize] = i as u32;
            entry.1 += 1;
        }
        PairIndex { map, rows }
    }

    /// The row positions holding `a_code` and `b_code` in the indexed
    /// column pair, ascending. Empty for absent combinations.
    #[inline]
    pub fn probe(&self, a_code: u32, b_code: u32) -> &[u32] {
        let key = (u64::from(a_code) << 32) | u64::from(b_code);
        match self.map.get(&key) {
            Some(&(start, len)) => &self.rows[start as usize..(start + len) as usize],
            None => &[],
        }
    }
}

/// A comparison lowered to raw dictionary codes. Exact for `=` and `<>`
/// because the interner is bijective: equal codes ⇔ equal values.
#[derive(Debug, Clone, Copy)]
enum CodeCmp {
    EqSlots(u16, u16),
    NeSlots(u16, u16),
    EqConst(u16, u32),
    NeConst(u16, u32),
}

/// How a vectorized step enumerates candidates.
#[derive(Debug)]
enum VecAccess {
    /// Scan the relation block-at-a-time, consulting the zone maps.
    Scan,
    /// Probe a shared CSR index.
    Probe { csr: Rc<CsrIndex>, key: Key },
    /// Probe a shared composite pair index on two bound columns (`key_a`
    /// keys the lower-numbered column).
    Probe2 {
        pair: Rc<PairIndex>,
        key_a: Key,
        key_b: Key,
    },
}

/// One vectorized join step.
#[derive(Debug)]
struct VecStep {
    atom: u16,
    rel: RelId,
    access: VecAccess,
    ops: Vec<ColOp>,
    code_cmps: Vec<CodeCmp>,
    value_cmps: Vec<CompiledCmp>,
    /// Zone maps of the scanned relation (scan steps only).
    zones: Option<Rc<RelationZones>>,
    /// Block-skip predicates: the block must possibly contain `code` in
    /// column `col` (equality constants of this step).
    skip_consts: Vec<(u16, u32)>,
    /// Block-skip bounds: the block's `col` range must intersect
    /// `[min, max]` (join-key bounds of later probes fed by this step).
    skip_ranges: Vec<(u16, u32, u32)>,
}

/// The vectorized plan of one conjunctive query, lowered from a
/// [`PhysicalPlan`] against the same context.
#[derive(Debug)]
pub struct VecPlan {
    steps: Vec<VecStep>,
    head: Vec<HeadTerm>,
    /// Relation of each original atom position (for lineage collection).
    atom_rels: Vec<RelId>,
    num_slots: usize,
    num_atoms: usize,
    never_matches: bool,
}

/// A compiled-and-lowered UCQ: one [`VecPlan`] per disjunct.
#[derive(Debug)]
pub struct VecCompiledUcq {
    disjuncts: Vec<VecPlan>,
}

impl VecCompiledUcq {
    pub(crate) fn lower(base: &crate::plan::CompiledUcq, ctx: &EvalContext<'_>) -> VecCompiledUcq {
        VecCompiledUcq {
            disjuncts: base
                .disjuncts()
                .iter()
                .map(|p| VecPlan::lower(p, ctx))
                .collect(),
        }
    }

    /// The per-disjunct vectorized plans, in query order.
    pub fn disjuncts(&self) -> &[VecPlan] {
        &self.disjuncts
    }
}

/// A batch of partial (or complete) matches, stored entry-major: entry `i`
/// owns `num_slots` registers and `num_atoms` matched row positions.
pub struct MatchBatch {
    num_slots: usize,
    num_atoms: usize,
    len: usize,
    regs: Vec<u32>,
    rows: Vec<u32>,
}

impl MatchBatch {
    fn new(num_slots: usize, num_atoms: usize) -> MatchBatch {
        MatchBatch {
            num_slots,
            num_atoms,
            len: 0,
            // Grown on first use and reused across descend calls via the
            // per-depth pool, so tiny plans never pay a batch-sized alloc.
            regs: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Entries currently in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the batch holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The register file (slot → code) of one entry.
    #[inline]
    pub fn regs(&self, entry: usize) -> &[u32] {
        &self.regs[entry * self.num_slots..(entry + 1) * self.num_slots]
    }

    /// The matched row position per original atom of one entry.
    #[inline]
    pub fn atom_rows(&self, entry: usize) -> &[u32] {
        &self.rows[entry * self.num_atoms..(entry + 1) * self.num_atoms]
    }

    fn clear(&mut self) {
        self.len = 0;
        self.regs.clear();
        self.rows.clear();
    }
}

impl VecPlan {
    /// Lowers a compiled plan: probes get CSR indexes, scans get zone maps
    /// and block-skip predicates, `=`/`<>` comparisons over interned
    /// operands drop to raw code compares.
    fn lower(plan: &PhysicalPlan, ctx: &EvalContext<'_>) -> VecPlan {
        let interner = ctx.database().interner();
        let mut never_matches = plan.never_matches;
        let mut atom_rels = vec![RelId(0); plan.num_atoms];
        for step in &plan.steps {
            atom_rels[usize::from(step.atom)] = step.rel;
        }

        let mut steps: Vec<VecStep> = Vec::with_capacity(plan.steps.len());
        // Every column equality a step enforces against an already-bound
        // slot, as `(step, slot, relation, column)` — the probe key plus any
        // `CheckSlot` op. Feeds the join-key block bounds below.
        let mut slot_eqs: Vec<(usize, u16, RelId, u16)> = Vec::new();
        for (step_idx, step) in plan.steps.iter().enumerate() {
            let mut ops = step.ops.clone();
            // Slots first bound by this step; a `CheckSlot` on one of them is
            // an in-atom variable repetition, not an equality with an
            // already-bound key.
            let bound_here: Vec<u16> = ops
                .iter()
                .filter_map(|op| match *op {
                    ColOp::Bind { slot, .. } => Some(slot),
                    _ => None,
                })
                .collect();

            let access = match step.access {
                Access::Scan { .. } => VecAccess::Scan,
                Access::Probe { col, key, .. } => {
                    // Key re-selection and widening: the planner probes the
                    // first bound column, but every other bound column (a
                    // `CheckSlot` / `CheckConst` op) is an equally valid
                    // key. Rank candidates by distinct codes — shortest
                    // expected posting list first. With one usable column
                    // the step probes the single-column CSR index on the
                    // best; with two distinct bound columns it probes the
                    // composite pair index instead, turning postings-scan-
                    // plus-filter into one exact hash lookup. Whatever is
                    // probed, surviving rows come out in ascending row
                    // order, so the match enumeration stays bit-identical
                    // to the oracles.
                    let mut candidates: Vec<(u16, Key, Option<usize>)> = vec![(col, key, None)];
                    for (i, op) in ops.iter().enumerate() {
                        match *op {
                            ColOp::CheckConst { col: c, code } => {
                                candidates.push((c, Key::Const(code), Some(i)));
                            }
                            ColOp::CheckSlot { col: c, slot } if !bound_here.contains(&slot) => {
                                candidates.push((c, Key::Slot(slot), Some(i)));
                            }
                            _ => {}
                        }
                    }
                    // Stable sort: on equal selectivity the planner's key
                    // stays in front.
                    candidates.sort_by_key(|&(c, _, _)| {
                        std::cmp::Reverse(ctx.distinct_count(step.rel, usize::from(c)))
                    });
                    let (best_col, best_key, _) = candidates[0];
                    // The composite upgrade only pays once the best single
                    // key's postings get long; a short-postings dense-CSR
                    // probe is two array loads and beats any hash lookup.
                    let rows = ctx.database().relation(step.rel).len();
                    let expected_postings =
                        rows / ctx.distinct_count(step.rel, usize::from(best_col)).max(1);
                    let second = if expected_postings >= PAIR_MIN_EXPECTED_POSTINGS {
                        candidates[1..]
                            .iter()
                            .find(|&&(c, _, _)| c != best_col)
                            .copied()
                    } else {
                        None
                    };

                    let mut used = vec![candidates[0]];
                    used.extend(second);
                    // Ops consumed as probe keys disappear from the check
                    // list; if the planner's own key is no longer probed it
                    // must be re-checked as an op instead.
                    let mut removed: Vec<usize> = used.iter().filter_map(|&(_, _, i)| i).collect();
                    removed.sort_unstable_by(|a, b| b.cmp(a));
                    for i in removed {
                        ops.remove(i);
                    }
                    if used.iter().all(|&(_, _, i)| i.is_some()) {
                        ops.push(match key {
                            Key::Const(code) => ColOp::CheckConst { col, code },
                            Key::Slot(slot) => ColOp::CheckSlot { col, slot },
                        });
                    }
                    for &(c, k, _) in &used {
                        if let Key::Slot(s) = k {
                            slot_eqs.push((step_idx, s, step.rel, c));
                        }
                    }
                    match second {
                        Some((sec_col, sec_key, _)) => {
                            let (col_a, key_a, col_b, key_b) = if best_col <= sec_col {
                                (best_col, best_key, sec_col, sec_key)
                            } else {
                                (sec_col, sec_key, best_col, best_key)
                            };
                            VecAccess::Probe2 {
                                pair: ctx.pair_index(
                                    step.rel,
                                    usize::from(col_a),
                                    usize::from(col_b),
                                ),
                                key_a,
                                key_b,
                            }
                        }
                        None => VecAccess::Probe {
                            csr: ctx.csr_index(step.rel, usize::from(best_col)),
                            key: best_key,
                        },
                    }
                }
            };
            for op in &ops {
                if let ColOp::CheckSlot { col, slot } = *op {
                    if !bound_here.contains(&slot) {
                        slot_eqs.push((step_idx, slot, step.rel, col));
                    }
                }
            }

            let mut code_cmps = Vec::new();
            let mut value_cmps = Vec::new();
            for cmp in &step.cmps {
                match lower_cmp(cmp, interner) {
                    LoweredCmp::Code(c) => code_cmps.push(c),
                    LoweredCmp::AlwaysTrue => {}
                    LoweredCmp::NeverMatches => never_matches = true,
                    LoweredCmp::Value => value_cmps.push(cmp.clone()),
                }
            }

            let (zones, skip_consts) = match access {
                VecAccess::Scan => {
                    let mut consts: Vec<(u16, u32)> = ops
                        .iter()
                        .filter_map(|op| match *op {
                            ColOp::CheckConst { col, code } => Some((col, code)),
                            _ => None,
                        })
                        .collect();
                    // Equality constants lowered from comparisons bind to the
                    // column this step's `Bind` writes the slot from.
                    for cc in &code_cmps {
                        if let CodeCmp::EqConst(slot, code) = *cc {
                            for op in &ops {
                                if let ColOp::Bind { col, slot: s } = *op {
                                    if s == slot {
                                        consts.push((col, code));
                                    }
                                }
                            }
                        }
                    }
                    (Some(ctx.zone_map(step.rel)), consts)
                }
                VecAccess::Probe { .. } | VecAccess::Probe2 { .. } => (None, Vec::new()),
            };

            steps.push(VecStep {
                atom: step.atom,
                rel: step.rel,
                access,
                ops,
                code_cmps,
                value_cmps,
                zones,
                skip_consts,
                skip_ranges: Vec::new(),
            });
        }

        // Join-key bounds: a scan feeding a later equality through a slot
        // only needs the blocks whose code range intersects the equated
        // column's.
        for (eq_idx, key_slot, rel, col) in slot_eqs {
            let Some((min, max)) = ctx.zone_map(rel).column_range(usize::from(col)) else {
                continue;
            };
            for earlier in steps[..eq_idx].iter_mut() {
                if !matches!(earlier.access, VecAccess::Scan) {
                    continue;
                }
                for op in earlier.ops.clone() {
                    if let ColOp::Bind { col, slot } = op {
                        if slot == key_slot {
                            earlier.skip_ranges.push((col, min, max));
                        }
                    }
                }
            }
        }

        VecPlan {
            steps,
            head: plan.head.clone(),
            atom_rels,
            num_slots: plan.num_slots,
            num_atoms: plan.num_atoms,
            never_matches,
        }
    }

    /// Relation of each original atom position.
    pub fn atom_rels(&self) -> &[RelId] {
        &self.atom_rels
    }

    /// `true` when lowering (or compilation) proved the plan empty.
    pub fn never_matches(&self) -> bool {
        self.never_matches
    }

    /// Decodes the head tuple from an entry's register file. Panics on head
    /// variables no atom binds (parity with both row-at-a-time evaluators).
    pub fn decode_head(&self, regs: &[u32], interner: &ValueInterner) -> Row {
        self.head
            .iter()
            .map(|t| match t {
                HeadTerm::Const(v) => v.clone(),
                HeadTerm::Slot(s) => interner.value(regs[usize::from(*s)]).clone(),
                HeadTerm::Unbound(name) => {
                    panic!("head variable {name} is not bound by any atom")
                }
            })
            .collect()
    }

    /// The slots the head projects, in head order (head constants carry no
    /// slot). Batch sinks deduplicate on these codes before decoding.
    pub fn head_slots(&self) -> Vec<u16> {
        self.head
            .iter()
            .filter_map(|t| match t {
                HeadTerm::Slot(s) => Some(*s),
                _ => None,
            })
            .collect()
    }

    /// Drives the plan batch-at-a-time, calling `on_batch` for every batch
    /// of complete matches (depth-first, so enumeration order equals the
    /// tuple-at-a-time loop's). Returning [`ControlFlow::Break`] stops the
    /// run. Skipping/probe counters accumulate into `stats`.
    pub fn for_each_batch<B>(
        &self,
        db: &Database,
        stats: &mut ExecStats,
        mut on_batch: impl FnMut(&MatchBatch) -> ControlFlow<B>,
    ) -> Option<B> {
        if self.never_matches {
            return None;
        }
        if self.steps.is_empty() {
            // Body-free query whose comparisons were all ground and true:
            // one empty match.
            let mut unit = MatchBatch::new(self.num_slots, self.num_atoms);
            unit.len = 1;
            unit.regs.resize(self.num_slots, UNBOUND);
            unit.rows.resize(self.num_atoms, 0);
            stats.batches += 1;
            return match on_batch(&unit) {
                ControlFlow::Break(b) => Some(b),
                ControlFlow::Continue(()) => None,
            };
        }

        // Block-skip decisions are value-independent; make them once per run
        // and reuse the surviving row ranges for every partial match.
        let scan_ranges: Vec<Option<Vec<std::ops::Range<u32>>>> = self
            .steps
            .iter()
            .map(|step| match step.access {
                VecAccess::Scan => Some(self.pruned_ranges(step, db, stats)),
                VecAccess::Probe { .. } | VecAccess::Probe2 { .. } => None,
            })
            .collect();

        let mut root = MatchBatch::new(self.num_slots, self.num_atoms);
        root.len = 1;
        root.regs.resize(self.num_slots, UNBOUND);
        root.rows.resize(self.num_atoms, 0);
        // One output batch per depth, reused across every descend call at
        // that depth: buffers grow to their high-water mark once and tiny
        // plans never pay a batch-sized allocation.
        let mut pool: Vec<MatchBatch> = (0..self.steps.len())
            .map(|_| MatchBatch::new(self.num_slots, self.num_atoms))
            .collect();
        match self.descend(db, stats, &scan_ranges, 0, &mut pool, &root, &mut on_batch) {
            ControlFlow::Break(b) => Some(b),
            ControlFlow::Continue(()) => None,
        }
    }

    /// [`Self::for_each_batch`] under a cooperative [`EvalBudget`]: before
    /// every batch is handed to `on_batch`, the batch's rows are charged as
    /// budget steps and the deadline is polled — a trip abandons the run
    /// and surfaces as `Err` instead of enumerating further. With no
    /// budget this is exactly `for_each_batch`.
    pub fn for_each_batch_budgeted<B>(
        &self,
        db: &Database,
        stats: &mut ExecStats,
        budget: Option<&crate::budget::EvalBudget>,
        mut on_batch: impl FnMut(&MatchBatch) -> ControlFlow<B>,
    ) -> std::result::Result<Option<B>, crate::budget::BudgetError> {
        let Some(budget) = budget else {
            return Ok(self.for_each_batch(db, stats, on_batch));
        };
        budget.check()?;
        let mut trip: Option<crate::budget::BudgetError> = None;
        let out = self.for_each_batch(db, stats, |batch| {
            if let Err(e) = budget.charge(batch.len() as u64) {
                trip = Some(e);
                return ControlFlow::Break(None);
            }
            match on_batch(batch) {
                ControlFlow::Break(b) => ControlFlow::Break(Some(b)),
                ControlFlow::Continue(()) => ControlFlow::Continue(()),
            }
        });
        match trip {
            Some(e) => Err(e),
            None => Ok(out.flatten()),
        }
    }

    /// The surviving row ranges of a scan step after zone-map skipping,
    /// with adjacent surviving blocks merged.
    fn pruned_ranges(
        &self,
        step: &VecStep,
        db: &Database,
        stats: &mut ExecStats,
    ) -> Vec<std::ops::Range<u32>> {
        let rows = db.relation(step.rel).len() as u32;
        let full = |r: u32| std::iter::once(0..r).collect::<Vec<_>>();
        let Some(zones) = step.zones.as_deref() else {
            return full(rows);
        };
        let num_blocks = zones.num_blocks();
        if num_blocks == 0 {
            return Vec::new();
        }
        if step.skip_consts.is_empty() && step.skip_ranges.is_empty() {
            stats.blocks_scanned += num_blocks as u64;
            return full(rows);
        }
        let mut ranges: Vec<std::ops::Range<u32>> = Vec::new();
        for block in 0..num_blocks {
            let survives = step
                .skip_consts
                .iter()
                .all(|&(col, code)| zones.column(block, usize::from(col)).might_contain(code))
                && step.skip_ranges.iter().all(|&(col, min, max)| {
                    zones.column(block, usize::from(col)).intersects(min, max)
                });
            if !survives {
                stats.blocks_skipped += 1;
                continue;
            }
            stats.blocks_scanned += 1;
            let r = zones.block_rows(block);
            let (start, end) = (r.start as u32, r.end as u32);
            match ranges.last_mut() {
                Some(last) if last.end == start => last.end = end,
                _ => ranges.push(start..end),
            }
        }
        ranges
    }

    /// Extends every entry of `parent` through step `depth`, flushing full
    /// batches downward (or to `on_batch` at the last depth).
    #[allow(clippy::too_many_arguments)]
    fn descend<B>(
        &self,
        db: &Database,
        stats: &mut ExecStats,
        scan_ranges: &[Option<Vec<std::ops::Range<u32>>>],
        depth: usize,
        pool: &mut [MatchBatch],
        parent: &MatchBatch,
        on_batch: &mut impl FnMut(&MatchBatch) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        let step = &self.steps[depth];
        let relation = db.relation(step.rel);
        let interner = db.interner();
        let ns = self.num_slots;
        let na = self.num_atoms;
        let (out, pool_rest) = pool.split_first_mut().expect("pool covers every depth");
        out.clear();

        // Hoist the per-op column slices out of the candidate loop: one
        // bounds-checked slice lookup per descend call instead of a
        // column-table indirection per candidate row.
        enum RowOp<'a> {
            Bind { codes: &'a [u32], slot: u16 },
            CheckSlot { codes: &'a [u32], slot: u16 },
            CheckConst { codes: &'a [u32], code: u32 },
        }
        let row_ops: Vec<RowOp<'_>> = step
            .ops
            .iter()
            .map(|op| match *op {
                ColOp::Bind { col, slot } => RowOp::Bind {
                    codes: relation.column_codes(usize::from(col)),
                    slot,
                },
                ColOp::CheckSlot { col, slot } => RowOp::CheckSlot {
                    codes: relation.column_codes(usize::from(col)),
                    slot,
                },
                ColOp::CheckConst { col, code } => RowOp::CheckConst {
                    codes: relation.column_codes(usize::from(col)),
                    code,
                },
            })
            .collect();

        macro_rules! flush {
            () => {
                if !out.is_empty() {
                    stats.batches += 1;
                    if depth + 1 == self.steps.len() {
                        on_batch(&*out)?;
                    } else {
                        self.descend(
                            db,
                            stats,
                            scan_ranges,
                            depth + 1,
                            &mut *pool_rest,
                            &*out,
                            on_batch,
                        )?;
                    }
                    out.clear();
                }
            };
        }

        // Slots this step binds, staged here until a candidate passes every
        // check — failing rows (the common case on selective probes) never
        // touch the output batch.
        let mut scratch: Vec<(u16, u32)> = Vec::with_capacity(row_ops.len());

        for entry in 0..parent.len() {
            let parent_regs = parent.regs(entry);
            let parent_rows = parent.atom_rows(entry);

            let mut try_row = |row: u32,
                               out: &mut MatchBatch,
                               scratch: &mut Vec<(u16, u32)>,
                               stats: &mut ExecStats|
             -> ControlFlow<B> {
                let row_idx = row as usize;
                scratch.clear();
                // A slot is bound at most once per step, so the first
                // scratch hit is the only one.
                let reg = |scratch: &[(u16, u32)], slot: u16| {
                    scratch
                        .iter()
                        .find(|&&(s, _)| s == slot)
                        .map_or(parent_regs[usize::from(slot)], |&(_, c)| c)
                };
                let mut ok = true;
                for op in &row_ops {
                    match *op {
                        RowOp::Bind { codes, slot } => {
                            scratch.push((slot, codes[row_idx]));
                        }
                        RowOp::CheckSlot { codes, slot } => {
                            if codes[row_idx] != reg(scratch, slot) {
                                ok = false;
                                break;
                            }
                        }
                        RowOp::CheckConst { codes, code } => {
                            if codes[row_idx] != code {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
                if ok {
                    for cmp in &step.code_cmps {
                        let pass = match *cmp {
                            CodeCmp::EqSlots(a, b) => reg(scratch, a) == reg(scratch, b),
                            CodeCmp::NeSlots(a, b) => reg(scratch, a) != reg(scratch, b),
                            CodeCmp::EqConst(s, c) => reg(scratch, s) == c,
                            CodeCmp::NeConst(s, c) => reg(scratch, s) != c,
                        };
                        if !pass {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    return ControlFlow::Continue(());
                }
                let base = out.len * ns;
                out.regs.extend_from_slice(parent_regs);
                for &(slot, code) in scratch.iter() {
                    out.regs[base + usize::from(slot)] = code;
                }
                // Value comparisons (`<`, `like`, …) need the materialized
                // register file; they are rare, so the copy-then-truncate
                // cost stays off the code-only fast path.
                let regs = &out.regs[base..];
                for cmp in &step.value_cmps {
                    let left = resolve_operand(&cmp.left, regs, interner);
                    let right = resolve_operand(&cmp.right, regs, interner);
                    if !cmp.op.eval(left, right) {
                        out.regs.truncate(base);
                        return ControlFlow::Continue(());
                    }
                }
                out.rows.extend_from_slice(parent_rows);
                let rows_base = out.len * na;
                out.rows[rows_base + usize::from(step.atom)] = row;
                out.len += 1;
                if out.len == BATCH_ROWS {
                    stats.batches += 1;
                    if depth + 1 == self.steps.len() {
                        on_batch(out)?;
                    } else {
                        self.descend(
                            db,
                            stats,
                            scan_ranges,
                            depth + 1,
                            &mut *pool_rest,
                            out,
                            on_batch,
                        )?;
                    }
                    out.clear();
                }
                ControlFlow::Continue(())
            };

            match &step.access {
                VecAccess::Scan => {
                    for range in scan_ranges[depth].as_ref().expect("scan step has ranges") {
                        for row in range.clone() {
                            try_row(row, &mut *out, &mut scratch, stats)?;
                        }
                    }
                }
                VecAccess::Probe { csr, key } => {
                    let code = match key {
                        Key::Const(c) => *c,
                        Key::Slot(s) => parent_regs[usize::from(*s)],
                    };
                    stats.csr_probe_steps += 1;
                    for &row in csr.probe(code) {
                        try_row(row, &mut *out, &mut scratch, stats)?;
                    }
                }
                VecAccess::Probe2 { pair, key_a, key_b } => {
                    let resolve = |key: &Key| match *key {
                        Key::Const(c) => c,
                        Key::Slot(s) => parent_regs[usize::from(s)],
                    };
                    stats.csr_probe_steps += 1;
                    for &row in pair.probe(resolve(key_a), resolve(key_b)) {
                        try_row(row, &mut *out, &mut scratch, stats)?;
                    }
                }
            }
        }
        flush!();
        ControlFlow::Continue(())
    }
}

enum LoweredCmp {
    Code(CodeCmp),
    Value,
    AlwaysTrue,
    NeverMatches,
}

/// Lowers `=` / `<>` comparisons to code compares when both operands are
/// interned (slots always are; constants must appear in the dictionary). A
/// constant absent from the database can equal no slot value: `=` proves
/// the plan empty, `<>` is always true.
fn lower_cmp(cmp: &CompiledCmp, interner: &ValueInterner) -> LoweredCmp {
    let eq = match cmp.op {
        CmpOp::Eq => true,
        CmpOp::Ne => false,
        _ => return LoweredCmp::Value,
    };
    match (&cmp.left, &cmp.right) {
        (CmpOperand::Slot(a), CmpOperand::Slot(b)) => LoweredCmp::Code(if eq {
            CodeCmp::EqSlots(*a, *b)
        } else {
            CodeCmp::NeSlots(*a, *b)
        }),
        (CmpOperand::Slot(s), CmpOperand::Const(v))
        | (CmpOperand::Const(v), CmpOperand::Slot(s)) => match interner.code_of(v) {
            Some(code) => LoweredCmp::Code(if eq {
                CodeCmp::EqConst(*s, code)
            } else {
                CodeCmp::NeConst(*s, code)
            }),
            None if eq => LoweredCmp::NeverMatches,
            None => LoweredCmp::AlwaysTrue,
        },
        // Ground comparisons were folded at compile time.
        (CmpOperand::Const(_), CmpOperand::Const(_)) => LoweredCmp::Value,
    }
}

/// Convenience used by tests: evaluates `value` probes against a scratch
/// CSR index built over `codes`, comparing dense and partitioned layouts.
#[cfg(test)]
fn postings_of(index: &CsrIndex, code: u32) -> Vec<u32> {
    index.probe(code).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_partitioned_csr_agree_with_reference_postings() {
        // A skewed multiset of codes, including a huge outlier that forces
        // the sparse-domain fallback when the dense budget is small.
        let codes: Vec<u32> = (0..2000u32)
            .map(|i| match i % 7 {
                0 => 5,
                1 | 2 => i % 97,
                _ => (i * 31) % 4093,
            })
            .chain([1 << 30, 1 << 30, 7])
            .collect();
        let mut reference: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for (i, &c) in codes.iter().enumerate() {
            reference.entry(c).or_default().push(i as u32);
        }

        let dense = CsrIndex::build_with_budgets(&codes, usize::MAX, 16);
        assert!(!dense.is_partitioned());
        let partitioned = CsrIndex::build_with_budgets(&codes, 0, 16);
        assert!(partitioned.is_partitioned());

        for (&code, posting) in &reference {
            assert_eq!(&postings_of(&dense, code), posting, "dense code {code}");
            assert_eq!(
                &postings_of(&partitioned, code),
                posting,
                "partitioned code {code}"
            );
        }
        // Absent codes probe empty in both layouts.
        for absent in [6u32, 4094, u32::MAX, (1 << 30) + 1] {
            if reference.contains_key(&absent) {
                continue;
            }
            assert!(postings_of(&dense, absent).is_empty());
            assert!(postings_of(&partitioned, absent).is_empty());
        }
    }

    #[test]
    fn production_budget_picks_dense_for_compact_domains() {
        let codes: Vec<u32> = (0..100).collect();
        assert!(!CsrIndex::build(&codes).is_partitioned());
        // A tiny build side over a huge sparse domain partitions.
        let sparse: Vec<u32> = (0..64u32).map(|i| i.wrapping_mul(0x0F00_0301)).collect();
        let idx = CsrIndex::build(&sparse);
        assert!(idx.is_partitioned());
        for (i, &c) in sparse.iter().enumerate() {
            assert_eq!(postings_of(&idx, c), vec![i as u32], "code {c}");
        }
    }

    #[test]
    fn partition_growth_keeps_every_posting_reachable() {
        // 10k distinct keys with a budget of 2 forces many doublings.
        let codes: Vec<u32> = (0..10_000u32).map(|i| i * 3 + 1).collect();
        let idx = CsrIndex::build_with_budgets(&codes, 0, 2);
        assert!(idx.is_partitioned());
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(postings_of(&idx, c), vec![i as u32]);
        }
        assert!(postings_of(&idx, 0).is_empty());
    }

    #[test]
    fn empty_column_builds_an_empty_index() {
        let idx = CsrIndex::build(&[]);
        assert!(postings_of(&idx, 0).is_empty());
        assert!(postings_of(&idx, u32::MAX).is_empty());
    }

    #[test]
    fn pair_index_agrees_with_reference_postings() {
        // Duplicated pairs, shared prefixes and suffixes, and codes whose
        // halves collide when naively truncated to 32 bits.
        let a: Vec<u32> = (0..500u32).map(|i| i % 9).collect();
        let b: Vec<u32> = (0..500u32).map(|i| (i * 13) % 11).collect();
        let mut reference: FxHashMap<(u32, u32), Vec<u32>> = FxHashMap::default();
        for i in 0..a.len() {
            reference.entry((a[i], b[i])).or_default().push(i as u32);
        }
        let idx = PairIndex::build(&a, &b);
        for (&(ka, kb), posting) in &reference {
            assert_eq!(idx.probe(ka, kb), &posting[..], "pair ({ka}, {kb})");
        }
        // Absent combinations (including swapped halves of present pairs)
        // probe empty.
        assert!(idx.probe(9, 0).is_empty());
        assert!(idx.probe(u32::MAX, 0).is_empty());
        let empty = PairIndex::build(&[], &[]);
        assert!(empty.probe(0, 0).is_empty());
    }

    #[test]
    fn two_bound_columns_with_long_postings_lower_to_a_pair_probe() {
        use mv_pdb::{InDbBuilder, Value, Weight};

        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        let t = b.probabilistic_relation("T", &["b"]).unwrap();
        let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
        for i in 0..8i64 {
            b.insert_weighted(r, vec![Value::int(i)], Weight::ONE)
                .unwrap();
            b.insert_weighted(t, vec![Value::int(i)], Weight::ONE)
                .unwrap();
        }
        // An 8x8 key grid: either column alone expects 8 postings per key,
        // exactly the composite-upgrade threshold.
        for i in 0..64i64 {
            b.insert_weighted(s, vec![Value::int(i % 8), Value::int(i / 8)], Weight::ONE)
                .unwrap();
        }
        let indb = b.build();
        let ctx = EvalContext::new(indb.database());

        // The second atom of the self-join arrives with both columns bound
        // (the greedy join order processes most-bound atoms first, so a
        // three-atom chain would probe S with only one binding).
        let q = crate::parse_ucq("Q() :- S(x, y), S(y, x)").unwrap();
        let plan = ctx.compile_vec(&q).unwrap();
        assert!(
            plan.disjuncts()[0]
                .steps
                .iter()
                .any(|s| matches!(s.access, VecAccess::Probe2 { .. })),
            "a probe step with two bound long-postings columns must use the pair index"
        );

        // A sparse workload-shaped probe stays on the single-column CSR
        // index: short postings beat the composite hash lookup.
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        let t = b.probabilistic_relation("T", &["b"]).unwrap();
        let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
        for i in 0..64i64 {
            b.insert_weighted(s, vec![Value::int(i), Value::int(i)], Weight::ONE)
                .unwrap();
        }
        b.insert_weighted(r, vec![Value::int(0)], Weight::ONE)
            .unwrap();
        b.insert_weighted(t, vec![Value::int(0)], Weight::ONE)
            .unwrap();
        let indb = b.build();
        let ctx = EvalContext::new(indb.database());
        let q = crate::parse_ucq("Q() :- S(x, y), S(y, x)").unwrap();
        let plan = ctx.compile_vec(&q).unwrap();
        assert!(
            plan.disjuncts()[0]
                .steps
                .iter()
                .all(|s| !matches!(s.access, VecAccess::Probe2 { .. })),
            "unique-key probes must stay on the single-column CSR index"
        );
    }
}
