//! A datalog-style parser for (unions of) conjunctive queries.
//!
//! Grammar (informal):
//!
//! ```text
//! ucq       := rule ( (";" | newline)+ rule )*
//! rule      := head [ "[" annotation "]" ] ":-" literal ("," literal)*
//! head      := ident "(" [ term ("," term)* ] ")"
//! literal   := atom | comparison
//! atom      := ident "(" term ("," term)* ")"
//! comparison:= term op term
//! op        := "<" | "<=" | ">" | ">=" | "=" | "!=" | "<>" | "like"
//! term      := ident | integer | "'" chars "'"
//! ```
//!
//! Bare identifiers in term position are variables; quoted strings and
//! integers are constants. The optional `[annotation]` after the head is the
//! MarkoView weight expression of Definition 3 (e.g. `V(x)[0.5] :- …`); it is
//! returned verbatim so that `mv-core` can interpret it.

use mv_pdb::Value;

use crate::ast::{Atom, CmpOp, Comparison, ConjunctiveQuery, Term, Ucq};
use crate::error::QueryError;
use crate::Result;

/// Parses a single conjunctive query (one rule).
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery> {
    let (cq, annotation) = parse_rule_with_annotation(input)?;
    if annotation.is_some() {
        return Err(QueryError::Parse {
            message: "unexpected weight annotation on a plain query (only MarkoViews carry `[…]`)"
                .into(),
            position: 0,
        });
    }
    Ok(cq)
}

/// Parses a union of conjunctive queries: one rule per line (or separated by
/// `;`), all with the same head predicate arity.
pub fn parse_ucq(input: &str) -> Result<Ucq> {
    let mut disjuncts = Vec::new();
    for part in split_rules(input) {
        let cq = parse_query(part)?;
        if let Some(first) = disjuncts.first() {
            let first: &ConjunctiveQuery = first;
            if first.head.len() != cq.head.len() {
                return Err(QueryError::MismatchedHeads {
                    first: first.head.len(),
                    other: cq.head.len(),
                });
            }
        }
        disjuncts.push(cq);
    }
    if disjuncts.is_empty() {
        return Err(QueryError::Parse {
            message: "empty input: expected at least one rule".into(),
            position: 0,
        });
    }
    let name = disjuncts[0].name.clone();
    Ok(Ucq::new(name, disjuncts))
}

/// Parses a single rule, returning the optional `[annotation]` text after the
/// head (used by MarkoView definitions).
pub fn parse_rule_with_annotation(input: &str) -> Result<(ConjunctiveQuery, Option<String>)> {
    Parser::new(input).parse_rule()
}

/// Splits an input into rule chunks at `;` and blank-line boundaries, keeping
/// rules that span multiple lines together (a rule ends where the next line
/// starts a new `Head(...) :-`).
fn split_rules(input: &str) -> Vec<&str> {
    let mut rules = Vec::new();
    for chunk in input.split(';') {
        let chunk = chunk.trim();
        if !chunk.is_empty() {
            rules.push(chunk);
        }
    }
    rules
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(QueryError::Parse {
            message: message.into(),
            position: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && (self.bytes[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn eat(&mut self, expected: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(expected) {
            self.pos += expected.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: &str) -> Result<()> {
        if self.eat(expected) {
            Ok(())
        } else {
            self.error(format!("expected `{expected}`"))
        }
    }

    fn parse_ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || (self.pos > start && c == '.') {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.error("expected an identifier");
        }
        let ident = &self.input[start..self.pos];
        if ident.chars().next().unwrap().is_numeric() || ident.starts_with('-') {
            return self.error("identifiers must not start with a digit");
        }
        Ok(ident.to_string())
    }

    fn parse_term(&mut self) -> Result<Term> {
        self.skip_ws();
        match self.peek() {
            Some('\'') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == '\'' {
                        break;
                    }
                    self.pos += c.len_utf8();
                }
                if self.peek() != Some('\'') {
                    return self.error("unterminated string literal");
                }
                let s = &self.input[start..self.pos];
                self.pos += 1;
                Ok(Term::Const(Value::str(s)))
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = self.pos;
                if c == '-' {
                    self.pos += 1;
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = &self.input[start..self.pos];
                match text.parse::<i64>() {
                    Ok(i) => Ok(Term::Const(Value::int(i))),
                    Err(_) => self.error(format!("invalid integer literal `{text}`")),
                }
            }
            Some(c) if c.is_alphabetic() || c == '_' => Ok(Term::Var(self.parse_ident()?)),
            _ => self.error("expected a term (variable, integer or 'string')"),
        }
    }

    fn parse_term_list(&mut self) -> Result<Vec<Term>> {
        self.expect("(")?;
        let mut terms = Vec::new();
        self.skip_ws();
        if self.eat(")") {
            return Ok(terms);
        }
        loop {
            terms.push(self.parse_term()?);
            self.skip_ws();
            if self.eat(")") {
                break;
            }
            self.expect(",")?;
        }
        Ok(terms)
    }

    fn parse_cmp_op(&mut self) -> Option<CmpOp> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let lowered = rest.to_ascii_lowercase();
        let (op, len) = if lowered.starts_with("like") {
            (CmpOp::Like, 4)
        } else if rest.starts_with("<=") {
            (CmpOp::Le, 2)
        } else if rest.starts_with(">=") {
            (CmpOp::Ge, 2)
        } else if rest.starts_with("<>") || rest.starts_with("!=") {
            (CmpOp::Ne, 2)
        } else if rest.starts_with('<') {
            (CmpOp::Lt, 1)
        } else if rest.starts_with('>') {
            (CmpOp::Gt, 1)
        } else if rest.starts_with('=') {
            (CmpOp::Eq, 1)
        } else {
            return None;
        };
        self.pos += len;
        Some(op)
    }

    /// Parses one body literal: either `Rel(t, …)` or `t op t`.
    fn parse_literal(&mut self) -> Result<Literal> {
        let left = self.parse_term()?;
        self.skip_ws();
        if self.peek() == Some('(') {
            // It was actually a relation name.
            let relation = match left {
                Term::Var(name) => name,
                Term::Const(_) => return self.error("relation names must be identifiers"),
            };
            let terms = self.parse_term_list()?;
            return Ok(Literal::Atom(Atom::new(relation, terms)));
        }
        match self.parse_cmp_op() {
            Some(op) => {
                let right = self.parse_term()?;
                Ok(Literal::Comparison(Comparison::new(left, op, right)))
            }
            None => self.error("expected `(` (atom) or a comparison operator"),
        }
    }

    fn parse_rule(mut self) -> Result<(ConjunctiveQuery, Option<String>)> {
        let name = self.parse_ident()?;
        let head = self.parse_term_list()?;
        self.skip_ws();
        let annotation = if self.eat("[") {
            let start = self.pos;
            let mut depth = 1usize;
            while let Some(c) = self.peek() {
                if c == '[' {
                    depth += 1;
                } else if c == ']' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                self.pos += c.len_utf8();
            }
            if self.peek() != Some(']') {
                return self.error("unterminated `[` annotation");
            }
            let text = self.input[start..self.pos].trim().to_string();
            self.pos += 1;
            Some(text)
        } else {
            None
        };
        self.expect(":-")?;
        let mut atoms = Vec::new();
        let mut comparisons = Vec::new();
        loop {
            match self.parse_literal()? {
                Literal::Atom(a) => atoms.push(a),
                Literal::Comparison(c) => comparisons.push(c),
            }
            self.skip_ws();
            if !self.eat(",") {
                break;
            }
        }
        self.skip_ws();
        if self.pos != self.input.len() {
            return self.error("trailing input after the rule body");
        }
        let cq = ConjunctiveQuery::new(name, head, atoms, comparisons);
        validate(&cq)?;
        Ok((cq, annotation))
    }
}

enum Literal {
    Atom(Atom),
    Comparison(Comparison),
}

/// Checks that head variables and comparison variables appear in some atom.
fn validate(cq: &ConjunctiveQuery) -> Result<()> {
    let body_vars: std::collections::BTreeSet<String> = cq
        .atoms
        .iter()
        .flat_map(|a| a.variables().map(str::to_string))
        .collect();
    for v in cq.head_variables() {
        if !body_vars.contains(&v) {
            return Err(QueryError::UnboundHeadVariable(v));
        }
    }
    for c in &cq.comparisons {
        for v in c.variables() {
            if !body_vars.contains(v) {
                return Err(QueryError::UnboundComparisonVariable(v.to_string()));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_running_example_query() {
        let q = parse_query(
            "Q(aid) :- Student(aid), Advisor(aid, aid1), Author(aid, n), Author(aid1, n1), n1 like '%Madden%'",
        )
        .unwrap();
        assert_eq!(q.name, "Q");
        assert_eq!(q.head, vec![Term::var("aid")]);
        assert_eq!(q.atoms.len(), 4);
        assert_eq!(q.comparisons.len(), 1);
        assert_eq!(q.comparisons[0].op, CmpOp::Like);
    }

    #[test]
    fn parses_boolean_queries_with_empty_heads() {
        let q = parse_query("Q() :- R(x), S(x, y)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.variables(), vec!["x", "y"]);
    }

    #[test]
    fn parses_constants_in_atoms() {
        let q = parse_query("Q() :- Pub(pid, t, 2008), Wrote('ullman', pid), pid >= 7").unwrap();
        assert_eq!(q.atoms[0].terms[2], Term::Const(Value::int(2008)));
        assert_eq!(q.atoms[1].terms[0], Term::Const(Value::str("ullman")));
        assert_eq!(q.comparisons[0].op, CmpOp::Ge);
    }

    #[test]
    fn parses_all_comparison_operators() {
        let q =
            parse_query("Q() :- R(a, b, c, d, e, f), a < 1, b <= 2, c > 3, d >= 4, e = 5, f <> 6")
                .unwrap();
        let ops: Vec<CmpOp> = q.comparisons.iter().map(|c| c.op).collect();
        assert_eq!(
            ops,
            vec![
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
                CmpOp::Eq,
                CmpOp::Ne
            ]
        );
    }

    #[test]
    fn parses_ucq_with_multiple_rules() {
        let u = parse_ucq("W() :- R(x), S(x, y) ; W() :- T(z), S(z, y)").unwrap();
        assert_eq!(u.disjuncts.len(), 2);
        assert!(u.is_boolean());
    }

    #[test]
    fn mismatched_heads_are_rejected() {
        let err = parse_ucq("Q(x) :- R(x) ; Q(x, y) :- S(x, y)").unwrap_err();
        assert!(matches!(err, QueryError::MismatchedHeads { .. }));
    }

    #[test]
    fn markoview_annotation_is_returned_verbatim() {
        let (cq, ann) = parse_rule_with_annotation(
            "V1(aid1, aid2)[count(pid)/2] :- Advisor(aid1, aid2), Wrote(aid1, pid)",
        )
        .unwrap();
        assert_eq!(cq.name, "V1");
        assert_eq!(ann.as_deref(), Some("count(pid)/2"));
    }

    #[test]
    fn plain_queries_must_not_carry_annotations() {
        assert!(parse_query("Q(x)[2] :- R(x)").is_err());
    }

    #[test]
    fn unbound_head_variable_is_rejected() {
        let err = parse_query("Q(z) :- R(x)").unwrap_err();
        assert_eq!(err, QueryError::UnboundHeadVariable("z".into()));
    }

    #[test]
    fn unbound_comparison_variable_is_rejected() {
        let err = parse_query("Q() :- R(x), y > 3").unwrap_err();
        assert_eq!(err, QueryError::UnboundComparisonVariable("y".into()));
    }

    #[test]
    fn negative_integers_and_malformed_input() {
        let q = parse_query("Q() :- R(x), x > -5").unwrap();
        assert_eq!(q.comparisons[0].right, Term::Const(Value::int(-5)));
        assert!(parse_query("Q() :-").is_err());
        assert!(parse_query("Q() : R(x)").is_err());
        assert!(parse_query("Q() :- R(x) extra").is_err());
        assert!(parse_query("Q() :- R(x").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_ucq("   ").is_err());
    }

    #[test]
    fn string_literals_may_contain_spaces_and_percent() {
        let q = parse_query("Q(n) :- Author(a, n), n like '%Sam Madden%'").unwrap();
        assert_eq!(
            q.comparisons[0].right,
            Term::Const(Value::str("%Sam Madden%"))
        );
    }
}
