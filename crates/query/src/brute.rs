//! Brute-force probability computation over lineage variables.
//!
//! These functions enumerate all `2^n` truth assignments of the variables
//! appearing in a lineage. They exist purely as ground-truth oracles for
//! tests and for tiny examples; every production code path uses the safe-plan
//! evaluator, the Shannon evaluator or the OBDD/MV-index machinery instead.

use mv_pdb::{InDb, TupleId};

use crate::error::QueryError;
use crate::eval::EvalContext;
use crate::lineage::{lineage, lineage_with, Lineage};
use crate::Result;

/// Maximum number of distinct lineage variables the brute-force evaluator
/// will enumerate.
pub const MAX_BRUTE_VARIABLES: usize = 24;

/// Computes the probability of a lineage by enumerating assignments of its
/// variables, with probabilities given by `prob_of`.
///
/// Panics if the lineage mentions more than [`MAX_BRUTE_VARIABLES`]
/// variables.
pub fn brute_force_probability_with(lineage: &Lineage, prob_of: &impl Fn(TupleId) -> f64) -> f64 {
    if lineage.is_true() {
        return 1.0;
    }
    if lineage.is_false() {
        return 0.0;
    }
    let vars: Vec<TupleId> = lineage.variables().into_iter().collect();
    assert!(
        vars.len() <= MAX_BRUTE_VARIABLES,
        "brute-force enumeration over {} variables is not feasible",
        vars.len()
    );
    let mut total = 0.0;
    for assignment in 0u64..(1u64 << vars.len()) {
        let mut assignment_prob = 1.0;
        for (bit, &t) in vars.iter().enumerate() {
            let p = prob_of(t);
            if assignment & (1 << bit) != 0 {
                assignment_prob *= p;
            } else {
                assignment_prob *= 1.0 - p;
            }
        }
        if eval_on_vars(lineage, &vars, assignment) {
            total += assignment_prob;
        }
    }
    total
}

fn eval_on_vars(lineage: &Lineage, vars: &[TupleId], assignment: u64) -> bool {
    let truth = |t: TupleId| -> bool {
        vars.iter()
            .position(|&v| v == t)
            .map(|i| assignment & (1 << i) != 0)
            .unwrap_or(false)
    };
    lineage
        .clauses()
        .iter()
        .any(|c| c.iter().all(|&t| truth(t)))
}

/// Computes the probability of a lineage over an [`InDb`] by enumeration.
pub fn brute_force_lineage_probability(lineage: &Lineage, indb: &InDb) -> f64 {
    brute_force_probability_with(lineage, &|t| indb.probability(t))
}

/// Computes the probability of a Boolean UCQ over an [`InDb`] by computing
/// its lineage (through a compiled physical plan) and enumerating the
/// lineage variables.
pub fn brute_force_query_probability(ucq: &crate::ast::Ucq, indb: &InDb) -> Result<f64> {
    if !ucq.is_boolean() {
        return Err(QueryError::NotBoolean(ucq.name.clone()));
    }
    let lin = lineage(ucq, indb)?;
    Ok(brute_force_lineage_probability(&lin, indb))
}

/// [`brute_force_query_probability`] reusing an [`EvalContext`]'s cached
/// plans and column indexes.
pub fn brute_force_query_probability_with(
    ucq: &crate::ast::Ucq,
    indb: &InDb,
    ctx: &EvalContext<'_>,
) -> Result<f64> {
    if !ucq.is_boolean() {
        return Err(QueryError::NotBoolean(ucq.name.clone()));
    }
    let lin = lineage_with(ucq, indb, ctx)?;
    Ok(brute_force_lineage_probability(&lin, indb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ucq;
    use mv_pdb::value::row;
    use mv_pdb::{InDbBuilder, Weight};

    fn db() -> InDb {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
        b.insert_weighted(r, row(["a1"]), Weight::new(3.0)).unwrap(); // p = 0.75
        b.insert_weighted(s, row(["a1", "b1"]), Weight::new(1.0))
            .unwrap(); // p = 0.5
        b.insert_weighted(s, row(["a1", "b2"]), Weight::new(1.0))
            .unwrap(); // p = 0.5
        b.build()
    }

    #[test]
    fn brute_force_matches_hand_computation() {
        let indb = db();
        let q = parse_ucq("Q() :- R(x), S(x, y)").unwrap();
        // P = p(R) * (1 - (1-p(S1))(1-p(S2))) = 0.75 * 0.75.
        let p = brute_force_query_probability(&q, &indb).unwrap();
        assert!((p - 0.5625).abs() < 1e-12);
    }

    #[test]
    fn constant_lineages_short_circuit() {
        let indb = db();
        assert_eq!(
            brute_force_lineage_probability(&Lineage::constant_true(), &indb),
            1.0
        );
        assert_eq!(
            brute_force_lineage_probability(&Lineage::constant_false(), &indb),
            0.0
        );
    }

    #[test]
    fn non_boolean_queries_are_rejected() {
        let indb = db();
        let q = parse_ucq("Q(x) :- R(x)").unwrap();
        assert!(matches!(
            brute_force_query_probability(&q, &indb),
            Err(QueryError::NotBoolean(_))
        ));
    }

    #[test]
    #[should_panic(expected = "not feasible")]
    fn too_many_variables_panics() {
        let clauses: Vec<Vec<mv_pdb::TupleId>> =
            (0..30u32).map(|i| vec![mv_pdb::TupleId(i)]).collect();
        let l = Lineage::from_clauses(clauses);
        let _ = brute_force_probability_with(&l, &|_| 0.5);
    }
}
