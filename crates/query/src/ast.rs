//! Abstract syntax of (unions of) conjunctive queries.
//!
//! Queries are written in datalog notation, as in the paper:
//!
//! ```text
//! Q(aid) :- Student(aid), Advisor(aid, aid1), Author(aid1, n1), n1 like '%Madden%'
//! ```
//!
//! A [`ConjunctiveQuery`] is a head (a list of terms), a body of relational
//! [`Atom`]s and a list of [`Comparison`] predicates. A [`Ucq`] is a union of
//! conjunctive queries with compatible heads. Boolean queries are queries with
//! an empty head.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use mv_pdb::Value;

/// A term: either a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable, identified by name.
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Builds a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Builds a constant term.
    pub fn constant(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// `true` when the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Replaces the variable `var` by the constant `value`, if it matches.
    pub fn substitute(&self, var: &str, value: &Value) -> Term {
        match self {
            Term::Var(v) if v == var => Term::Const(value.clone()),
            other => other.clone(),
        }
    }

    /// Renames the variable `from` to `to`, if it matches.
    pub fn rename(&self, from: &str, to: &str) -> Term {
        match self {
            Term::Var(v) if v == from => Term::Var(to.to_string()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Str(s)) => write!(f, "'{s}'"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Comparison operators allowed in query bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `like '%needle%'` — substring containment on the string form.
    Like,
}

impl CmpOp {
    /// Evaluates the operator on two constants.
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        match self {
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Like => {
                let pattern = match right {
                    Value::Str(s) => s.trim_matches('%').to_string(),
                    Value::Int(i) => i.to_string(),
                };
                left.contains(&pattern)
            }
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Like => "like",
        };
        write!(f, "{s}")
    }
}

/// A comparison predicate, e.g. `year > 2004` or `aid2 <> aid3`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Comparison {
    /// Left operand.
    pub left: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Term,
}

impl Comparison {
    /// Creates a comparison.
    pub fn new(left: Term, op: CmpOp, right: Term) -> Self {
        Comparison { left, op, right }
    }

    /// Variables mentioned by the comparison.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.left.as_var().into_iter().chain(self.right.as_var())
    }

    /// Substitutes a variable by a constant on both sides.
    pub fn substitute(&self, var: &str, value: &Value) -> Comparison {
        Comparison {
            left: self.left.substitute(var, value),
            op: self.op,
            right: self.right.substitute(var, value),
        }
    }

    /// Renames a variable on both sides.
    pub fn rename(&self, from: &str, to: &str) -> Comparison {
        Comparison {
            left: self.left.rename(from, to),
            op: self.op,
            right: self.right.rename(from, to),
        }
    }

    /// Evaluates the comparison if both sides are constants.
    pub fn eval_ground(&self) -> Option<bool> {
        match (&self.left, &self.right) {
            (Term::Const(l), Term::Const(r)) => Some(self.op.eval(l, r)),
            _ => None,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A relational atom, e.g. `Wrote(aid, pid)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Terms, one per attribute.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// The variables of the atom, with duplicates.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// The set of distinct variables of the atom.
    pub fn variable_set(&self) -> BTreeSet<&str> {
        self.variables().collect()
    }

    /// Positions (attribute indices) at which the variable occurs.
    pub fn positions_of(&self, var: &str) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t.as_var() == Some(var)).then_some(i))
            .collect()
    }

    /// Substitutes a variable by a constant in every term.
    pub fn substitute(&self, var: &str, value: &Value) -> Atom {
        Atom {
            relation: self.relation.clone(),
            terms: self
                .terms
                .iter()
                .map(|t| t.substitute(var, value))
                .collect(),
        }
    }

    /// Renames a variable in every term.
    pub fn rename(&self, from: &str, to: &str) -> Atom {
        Atom {
            relation: self.relation.clone(),
            terms: self.terms.iter().map(|t| t.rename(from, to)).collect(),
        }
    }

    /// `true` when no term is a variable.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let terms: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "{}({})", self.relation, terms.join(", "))
    }
}

/// A conjunctive query: `head :- atom, ..., comparison, ...` with implicit
/// existential quantification of all non-head variables.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctiveQuery {
    /// Name of the query (the head predicate).
    pub name: String,
    /// Head terms; empty for a Boolean query.
    pub head: Vec<Term>,
    /// Relational atoms of the body.
    pub atoms: Vec<Atom>,
    /// Comparison predicates of the body.
    pub comparisons: Vec<Comparison>,
}

impl ConjunctiveQuery {
    /// Creates a conjunctive query.
    pub fn new(
        name: impl Into<String>,
        head: Vec<Term>,
        atoms: Vec<Atom>,
        comparisons: Vec<Comparison>,
    ) -> Self {
        ConjunctiveQuery {
            name: name.into(),
            head,
            atoms,
            comparisons,
        }
    }

    /// `true` when the query has no head variables.
    pub fn is_boolean(&self) -> bool {
        self.head.iter().all(|t| !t.is_var())
    }

    /// All distinct variables of the body, in first-occurrence order.
    pub fn variables(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for atom in &self.atoms {
            for v in atom.variables() {
                if seen.insert(v.to_string()) {
                    out.push(v.to_string());
                }
            }
        }
        for cmp in &self.comparisons {
            for v in cmp.variables() {
                if seen.insert(v.to_string()) {
                    out.push(v.to_string());
                }
            }
        }
        out
    }

    /// The distinct head variables.
    pub fn head_variables(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.head {
            if let Some(v) = t.as_var() {
                if seen.insert(v.to_string()) {
                    out.push(v.to_string());
                }
            }
        }
        out
    }

    /// The existential (non-head) variables.
    pub fn existential_variables(&self) -> Vec<String> {
        let head: BTreeSet<String> = self.head_variables().into_iter().collect();
        self.variables()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect()
    }

    /// Relation names used by the body, with duplicates removed.
    pub fn relation_names(&self) -> BTreeSet<&str> {
        self.atoms.iter().map(|a| a.relation.as_str()).collect()
    }

    /// `true` when some relation name appears in more than one atom.
    pub fn has_self_join(&self) -> bool {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for a in &self.atoms {
            *counts.entry(a.relation.as_str()).or_default() += 1;
        }
        counts.values().any(|&c| c > 1)
    }

    /// Substitutes a variable by a constant everywhere (head, atoms,
    /// comparisons).
    pub fn substitute(&self, var: &str, value: &Value) -> ConjunctiveQuery {
        ConjunctiveQuery {
            name: self.name.clone(),
            head: self.head.iter().map(|t| t.substitute(var, value)).collect(),
            atoms: self
                .atoms
                .iter()
                .map(|a| a.substitute(var, value))
                .collect(),
            comparisons: self
                .comparisons
                .iter()
                .map(|c| c.substitute(var, value))
                .collect(),
        }
    }

    /// Renames a variable everywhere.
    pub fn rename(&self, from: &str, to: &str) -> ConjunctiveQuery {
        ConjunctiveQuery {
            name: self.name.clone(),
            head: self.head.iter().map(|t| t.rename(from, to)).collect(),
            atoms: self.atoms.iter().map(|a| a.rename(from, to)).collect(),
            comparisons: self
                .comparisons
                .iter()
                .map(|c| c.rename(from, to))
                .collect(),
        }
    }

    /// Renames every variable by appending a suffix; used to make the
    /// variables of different disjuncts disjoint before taking conjunctions.
    pub fn rename_apart(&self, suffix: &str) -> ConjunctiveQuery {
        let mut q = self.clone();
        for v in self.variables() {
            q = q.rename(&v, &format!("{v}{suffix}"));
        }
        q
    }

    /// Turns this query into a Boolean query by dropping all head terms
    /// (i.e. existentially quantifying the head variables).
    pub fn boolean(&self) -> ConjunctiveQuery {
        ConjunctiveQuery {
            name: self.name.clone(),
            head: Vec::new(),
            atoms: self.atoms.clone(),
            comparisons: self.comparisons.clone(),
        }
    }

    /// Binds the head variables to the constants of `answer`, producing the
    /// Boolean query `Q(ā)` of Section 2.1.
    pub fn bind_head(&self, answer: &[Value]) -> ConjunctiveQuery {
        assert_eq!(
            answer.len(),
            self.head.len(),
            "answer arity must match the head arity"
        );
        let mut q = self.clone();
        for (term, value) in self.head.iter().zip(answer) {
            if let Some(v) = term.as_var() {
                q = q.substitute(v, value);
            }
        }
        q.head = answer.iter().cloned().map(Term::Const).collect();
        q
    }

    /// The conjunction of two conjunctive queries (bodies concatenated).
    /// Callers are responsible for renaming variables apart when the queries
    /// should not share variables.
    pub fn conjoin(&self, other: &ConjunctiveQuery) -> ConjunctiveQuery {
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().cloned());
        let mut comparisons = self.comparisons.clone();
        comparisons.extend(other.comparisons.iter().cloned());
        ConjunctiveQuery {
            name: format!("{}_{}", self.name, other.name),
            head: Vec::new(),
            atoms,
            comparisons,
        }
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: Vec<String> = self.head.iter().map(|t| t.to_string()).collect();
        write!(f, "{}({}) :- ", self.name, head.join(", "))?;
        let mut parts: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        parts.extend(self.comparisons.iter().map(|c| c.to_string()));
        write!(f, "{}", parts.join(", "))
    }
}

/// A union of conjunctive queries with compatible heads.
#[derive(Debug, Clone, PartialEq)]
pub struct Ucq {
    /// Name of the query.
    pub name: String,
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl Ucq {
    /// Creates a UCQ from its disjuncts. Panics if empty.
    pub fn new(name: impl Into<String>, disjuncts: Vec<ConjunctiveQuery>) -> Self {
        assert!(!disjuncts.is_empty(), "a UCQ needs at least one disjunct");
        Ucq {
            name: name.into(),
            disjuncts,
        }
    }

    /// Wraps a single conjunctive query as a UCQ.
    pub fn from_cq(cq: ConjunctiveQuery) -> Self {
        Ucq {
            name: cq.name.clone(),
            disjuncts: vec![cq],
        }
    }

    /// Head arity (all disjuncts share it).
    pub fn head_arity(&self) -> usize {
        self.disjuncts[0].head.len()
    }

    /// `true` when every disjunct is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.disjuncts.iter().all(ConjunctiveQuery::is_boolean)
    }

    /// Relation names used anywhere in the UCQ.
    pub fn relation_names(&self) -> BTreeSet<&str> {
        self.disjuncts
            .iter()
            .flat_map(|d| d.relation_names())
            .collect()
    }

    /// The disjunction of two UCQs (used to form `Q ∨ W` in Theorem 1).
    pub fn union(&self, other: &Ucq) -> Ucq {
        let mut disjuncts = self.disjuncts.clone();
        disjuncts.extend(other.disjuncts.iter().cloned());
        Ucq {
            name: format!("{}_or_{}", self.name, other.name),
            disjuncts,
        }
    }

    /// Substitutes a variable by a constant in every disjunct.
    pub fn substitute(&self, var: &str, value: &Value) -> Ucq {
        Ucq {
            name: self.name.clone(),
            disjuncts: self
                .disjuncts
                .iter()
                .map(|d| d.substitute(var, value))
                .collect(),
        }
    }

    /// Binds the head of every disjunct to the given answer tuple, producing
    /// a Boolean UCQ.
    pub fn bind_head(&self, answer: &[Value]) -> Ucq {
        Ucq {
            name: self.name.clone(),
            disjuncts: self.disjuncts.iter().map(|d| d.bind_head(answer)).collect(),
        }
    }

    /// Turns the UCQ into a Boolean UCQ by dropping head variables.
    pub fn boolean(&self) -> Ucq {
        Ucq {
            name: self.name.clone(),
            disjuncts: self.disjuncts.iter().map(|d| d.boolean()).collect(),
        }
    }
}

impl fmt::Display for Ucq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.disjuncts.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join(" ; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> ConjunctiveQuery {
        // Q(x) :- R(x, y), S(y, z), y > 5
        ConjunctiveQuery::new(
            "Q",
            vec![Term::var("x")],
            vec![
                Atom::new("R", vec![Term::var("x"), Term::var("y")]),
                Atom::new("S", vec![Term::var("y"), Term::var("z")]),
            ],
            vec![Comparison::new(
                Term::var("y"),
                CmpOp::Gt,
                Term::constant(5i64),
            )],
        )
    }

    #[test]
    fn variables_and_head_variables() {
        let q = q();
        assert_eq!(q.variables(), vec!["x", "y", "z"]);
        assert_eq!(q.head_variables(), vec!["x"]);
        assert_eq!(q.existential_variables(), vec!["y", "z"]);
        assert!(!q.is_boolean());
        assert!(q.boolean().is_boolean());
    }

    #[test]
    fn substitution_replaces_everywhere() {
        let q = q().substitute("y", &Value::int(7));
        assert!(q.atoms[0].terms[1].as_const().is_some());
        assert!(q.atoms[1].terms[0].as_const().is_some());
        assert_eq!(q.comparisons[0].eval_ground(), Some(true));
        let q0 = super::super::ast::ConjunctiveQuery::substitute(&q, "y", &Value::int(3));
        // y is already gone, substitution is a no-op
        assert_eq!(q0, q);
    }

    #[test]
    fn bind_head_grounds_the_head_variable() {
        let b = q().bind_head(&[Value::int(1)]);
        assert!(b.is_boolean());
        assert_eq!(b.atoms[0].terms[0], Term::Const(Value::int(1)));
        assert_eq!(b.head, vec![Term::Const(Value::int(1))]);
    }

    #[test]
    fn rename_apart_makes_variables_disjoint() {
        let a = q();
        let b = q().rename_apart("_1");
        let vars_a: BTreeSet<_> = a.variables().into_iter().collect();
        let vars_b: BTreeSet<_> = b.variables().into_iter().collect();
        assert!(vars_a.is_disjoint(&vars_b));
    }

    #[test]
    fn self_join_detection() {
        assert!(!q().has_self_join());
        let mut sj = q();
        sj.atoms
            .push(Atom::new("R", vec![Term::var("z"), Term::var("z")]));
        assert!(sj.has_self_join());
    }

    #[test]
    fn comparison_operators_evaluate() {
        assert!(CmpOp::Lt.eval(&Value::int(1), &Value::int(2)));
        assert!(CmpOp::Ge.eval(&Value::int(2), &Value::int(2)));
        assert!(CmpOp::Ne.eval(&Value::str("a"), &Value::str("b")));
        assert!(CmpOp::Like.eval(&Value::str("Sam Madden"), &Value::str("%Madden%")));
        assert!(!CmpOp::Like.eval(&Value::str("Dan Suciu"), &Value::str("%Madden%")));
    }

    #[test]
    fn ucq_union_and_display() {
        let u1 = Ucq::from_cq(q());
        let u2 = Ucq::from_cq(q().rename_apart("_b"));
        let u = u1.union(&u2);
        assert_eq!(u.disjuncts.len(), 2);
        assert!(u.to_string().contains(" ; "));
        assert_eq!(u.head_arity(), 1);
        assert!(u.relation_names().contains("R"));
    }

    #[test]
    fn atom_positions_and_groundness() {
        let a = Atom::new(
            "R",
            vec![Term::var("x"), Term::var("x"), Term::constant(3i64)],
        );
        assert_eq!(a.positions_of("x"), vec![0, 1]);
        assert!(!a.is_ground());
        let g = a.substitute("x", &Value::int(1));
        assert!(g.is_ground());
    }

    #[test]
    fn display_round_trips_visually() {
        let s = q().to_string();
        assert!(s.contains("Q(x) :- R(x, y), S(y, z), y > 5"));
    }

    #[test]
    #[should_panic(expected = "at least one disjunct")]
    fn empty_ucq_is_rejected() {
        let _ = Ucq::new("Q", vec![]);
    }
}
