//! Static analysis of UCQs: root variables, separator variables,
//! hierarchical and inversion-free tests, and safety detection.
//!
//! These notions drive both the safe-plan evaluator ([`crate::safe_plan`])
//! and the ConOBDD construction of Section 4.2:
//!
//! * a **root variable** of a conjunctive query appears in every atom;
//! * a **separator variable** of a UCQ is obtained by picking a root variable
//!   in each disjunct and unifying them, such that any two atoms over the
//!   same relation symbol carry it at the same attribute position;
//! * a conjunctive query without self-joins is **hierarchical** iff for any
//!   two existential variables the sets of atoms containing them are either
//!   disjoint or one contains the other — for such queries the Boolean
//!   probability is computable in polynomial time (safe);
//! * a UCQ is **inversion-free** when it can be compiled into an OBDD using
//!   only concatenation steps; inversion-free queries admit OBDDs of width
//!   bounded by a constant (Proposition 2).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{ConjunctiveQuery, Ucq};

/// A separator choice for a UCQ: for each disjunct, the name of the root
/// variable that plays the role of the separator `z`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Separator {
    /// For each disjunct (by index), the chosen root variable.
    pub per_disjunct: Vec<String>,
}

/// Result of analysing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAnalysis {
    /// Whether each disjunct (as a Boolean query) is hierarchical.
    pub hierarchical: Vec<bool>,
    /// Whether the UCQ has a separator variable.
    pub separator: Option<Separator>,
    /// Whether the UCQ is (detectably) inversion-free.
    pub inversion_free: bool,
}

/// Root variables of a conjunctive query: existential variables that occur in
/// every atom.
pub fn root_variables(cq: &ConjunctiveQuery) -> Vec<String> {
    if cq.atoms.is_empty() {
        return Vec::new();
    }
    let mut candidates: BTreeSet<String> = cq.atoms[0].variables().map(str::to_string).collect();
    for atom in &cq.atoms[1..] {
        let vars: BTreeSet<String> = atom.variables().map(str::to_string).collect();
        candidates = candidates.intersection(&vars).cloned().collect();
    }
    // Head variables are constants from the probabilistic point of view, so
    // they are excluded: a root variable must be existentially quantified.
    let head: BTreeSet<String> = cq.head_variables().into_iter().collect();
    candidates
        .into_iter()
        .filter(|v| !head.contains(v))
        .collect()
}

/// The set of atom indices containing each existential variable.
fn occurrence_map(cq: &ConjunctiveQuery) -> BTreeMap<String, BTreeSet<usize>> {
    let head: BTreeSet<String> = cq.head_variables().into_iter().collect();
    let mut map: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    for (i, atom) in cq.atoms.iter().enumerate() {
        for v in atom.variable_set() {
            if !head.contains(v) {
                map.entry(v.to_string()).or_default().insert(i);
            }
        }
    }
    map
}

/// `true` when the conjunctive query is hierarchical: for any two existential
/// variables `x`, `y`, `at(x) ⊆ at(y)`, `at(y) ⊆ at(x)`, or
/// `at(x) ∩ at(y) = ∅`.
pub fn is_hierarchical(cq: &ConjunctiveQuery) -> bool {
    let occ = occurrence_map(cq);
    let vars: Vec<&BTreeSet<usize>> = occ.values().collect();
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            let a = vars[i];
            let b = vars[j];
            let disjoint = a.is_disjoint(b);
            let a_in_b = a.is_subset(b);
            let b_in_a = b.is_subset(a);
            if !(disjoint || a_in_b || b_in_a) {
                return false;
            }
        }
    }
    true
}

/// Finds a separator variable of a Boolean UCQ (Section 4.2): one root
/// variable per disjunct such that any two atoms with the same relation
/// symbol (across all disjuncts) contain it at the same attribute position.
pub fn find_separator(ucq: &Ucq) -> Option<Separator> {
    find_separator_over(ucq, &|_| true)
}

/// Like [`find_separator`], but only atoms over relations for which
/// `is_probabilistic` returns `true` are constrained.
///
/// Deterministic atoms contribute no Boolean variables to the lineage, so a
/// variable that occurs in every *probabilistic* atom of a disjunct (at
/// consistent positions per probabilistic relation) already guarantees that
/// groundings with different values touch disjoint sets of tuples — which is
/// all that the independent-project rule and the ConOBDD concatenation need.
/// This is how the MarkoViews of Figure 1 obtain their per-author /
/// per-institution blocks even though the separator does not occur in the
/// deterministic `Wrote` and `Pub` atoms.
pub fn find_separator_over(
    ucq: &Ucq,
    is_probabilistic: &impl Fn(&str) -> bool,
) -> Option<Separator> {
    // Candidate root variables of a disjunct, restricted to its probabilistic
    // atoms.
    fn prob_roots(cq: &ConjunctiveQuery, is_probabilistic: &impl Fn(&str) -> bool) -> Vec<String> {
        let prob_atoms: Vec<_> = cq
            .atoms
            .iter()
            .filter(|a| is_probabilistic(&a.relation))
            .collect();
        if prob_atoms.is_empty() {
            return Vec::new();
        }
        let mut candidates: BTreeSet<String> =
            prob_atoms[0].variables().map(str::to_string).collect();
        for atom in &prob_atoms[1..] {
            let vars: BTreeSet<String> = atom.variables().map(str::to_string).collect();
            candidates = candidates.intersection(&vars).cloned().collect();
        }
        let head: BTreeSet<String> = cq.head_variables().into_iter().collect();
        candidates
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect()
    }

    fn consistent(
        cq: &ConjunctiveQuery,
        var: &str,
        positions: &mut BTreeMap<String, usize>,
        is_probabilistic: &impl Fn(&str) -> bool,
    ) -> bool {
        for atom in &cq.atoms {
            if !is_probabilistic(&atom.relation) {
                continue;
            }
            let pos = atom.positions_of(var);
            if pos.is_empty() {
                return false;
            }
            let p = pos[0];
            match positions.get(&atom.relation) {
                Some(&q) if q != p => return false,
                Some(_) => {}
                None => {
                    positions.insert(atom.relation.clone(), p);
                }
            }
        }
        true
    }

    // Depth-first search over the choices of root variables per disjunct.
    fn go(
        ucq: &Ucq,
        idx: usize,
        positions: &mut BTreeMap<String, usize>,
        chosen: &mut Vec<String>,
        is_probabilistic: &impl Fn(&str) -> bool,
    ) -> bool {
        if idx == ucq.disjuncts.len() {
            return true;
        }
        let cq = &ucq.disjuncts[idx];
        if cq.atoms.is_empty() {
            return false;
        }
        for var in prob_roots(cq, is_probabilistic) {
            let mut saved = positions.clone();
            if consistent(cq, &var, &mut saved, is_probabilistic) {
                chosen.push(var);
                let mut next = saved;
                if go(ucq, idx + 1, &mut next, chosen, is_probabilistic) {
                    *positions = next;
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }

    let mut chosen = Vec::new();
    let mut positions = BTreeMap::new();
    if go(ucq, 0, &mut positions, &mut chosen, is_probabilistic) {
        Some(Separator {
            per_disjunct: chosen,
        })
    } else {
        None
    }
}

/// Partitions the disjuncts of a UCQ into groups that share no relation
/// symbols; different groups have independent lineages.
pub fn independent_disjunct_groups(ucq: &Ucq) -> Vec<Vec<usize>> {
    let n = ucq.disjuncts.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let ri = ucq.disjuncts[i].relation_names();
            let rj = ucq.disjuncts[j].relation_names();
            if !ri.is_disjoint(&rj) {
                let a = find(&mut parent, i);
                let b = find(&mut parent, j);
                parent[a] = b;
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    groups.into_values().collect()
}

/// Partitions the atoms of a conjunctive query into components connected by
/// shared existential variables *or* shared relation symbols. Distinct
/// components have independent lineages, so their probabilities multiply.
pub fn independent_atom_components(cq: &ConjunctiveQuery) -> Vec<Vec<usize>> {
    let n = cq.atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let head: BTreeSet<String> = cq.head_variables().into_iter().collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let vi: BTreeSet<&str> = cq.atoms[i]
                .variable_set()
                .into_iter()
                .filter(|v| !head.contains(*v))
                .collect();
            let vj: BTreeSet<&str> = cq.atoms[j]
                .variable_set()
                .into_iter()
                .filter(|v| !head.contains(*v))
                .collect();
            let share_var = !vi.is_disjoint(&vj);
            let share_rel = cq.atoms[i].relation == cq.atoms[j].relation;
            // Comparisons joining variables of the two atoms also connect them.
            let share_cmp = cq.comparisons.iter().any(|c| {
                let vars: BTreeSet<&str> = c.variables().collect();
                !vars.is_disjoint(&vi) && !vars.is_disjoint(&vj)
            });
            if share_var || share_rel || share_cmp {
                let a = find(&mut parent, i);
                let b = find(&mut parent, j);
                parent[a] = b;
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    groups.into_values().collect()
}

/// Conservative inversion-freeness test (Section 4.2 / [15]).
///
/// A UCQ is inversion-free when there exists a choice of per-relation
/// attribute permutations `π` such that the `ConOBDD` construction performs
/// only concatenations in rule R3; such queries have OBDDs of constant width.
///
/// The test used here is the classical position-consistency characterisation:
/// every disjunct must be hierarchical, and it must be possible to order the
/// attributes of every relation so that, within each atom, attributes holding
/// "higher" variables (variables whose atom set strictly contains that of
/// another variable) come before attributes holding "lower" variables —
/// consistently across all atoms of the same relation in all disjuncts.
/// `true` is only returned when such an ordering exists, so a `true` answer
/// guarantees a constant-width OBDD; a `false` answer is conservative.
pub fn is_inversion_free(ucq: &Ucq) -> bool {
    let boolean = ucq.boolean();
    if !boolean.disjuncts.iter().all(is_hierarchical) {
        return false;
    }
    // Precedence constraints `earlier < later` between attribute positions,
    // per relation name.
    let mut constraints: BTreeMap<String, BTreeSet<(usize, usize)>> = BTreeMap::new();
    for cq in &boolean.disjuncts {
        let occ = occurrence_map(cq);
        for atom in &cq.atoms {
            let vars: Vec<&str> = atom.variable_set().into_iter().collect();
            for &x in &vars {
                for &y in &vars {
                    if x == y {
                        continue;
                    }
                    let (Some(ax), Some(ay)) = (occ.get(x), occ.get(y)) else {
                        continue;
                    };
                    // x strictly above y in the hierarchy of this disjunct.
                    if ax.is_superset(ay) && ax != ay {
                        for &px in &atom.positions_of(x) {
                            for &py in &atom.positions_of(y) {
                                constraints
                                    .entry(atom.relation.clone())
                                    .or_default()
                                    .insert((px, py));
                            }
                        }
                    }
                }
            }
        }
    }
    // Each relation's precedence constraints must be satisfiable (acyclic).
    for cs in constraints.values() {
        if has_cycle(cs) {
            return false;
        }
    }
    true
}

/// Detects a cycle in a set of `a < b` precedence constraints.
fn has_cycle(edges: &BTreeSet<(usize, usize)>) -> bool {
    let nodes: BTreeSet<usize> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    // Kahn's algorithm.
    let mut indegree: BTreeMap<usize, usize> = nodes.iter().map(|&n| (n, 0)).collect();
    for &(_, b) in edges {
        *indegree.get_mut(&b).unwrap() += 1;
    }
    let mut queue: Vec<usize> = indegree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut seen = 0;
    while let Some(n) = queue.pop() {
        seen += 1;
        for &(a, b) in edges {
            if a == n {
                let d = indegree.get_mut(&b).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push(b);
                }
            }
        }
    }
    seen != nodes.len()
}

/// Runs the full analysis on a UCQ (considered as a Boolean query).
pub fn analyze(ucq: &Ucq) -> QueryAnalysis {
    let boolean = ucq.boolean();
    QueryAnalysis {
        hierarchical: boolean.disjuncts.iter().map(is_hierarchical).collect(),
        separator: find_separator(&boolean),
        inversion_free: is_inversion_free(&boolean),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_ucq};

    #[test]
    fn root_variables_of_simple_queries() {
        let q = parse_query("Q() :- R(x), S(x, y)").unwrap();
        assert_eq!(root_variables(&q), vec!["x"]);
        let q = parse_query("Q() :- R(x), S(x, y), T(y)").unwrap();
        assert!(root_variables(&q).is_empty());
        let q = parse_query("Q(x) :- R(x), S(x, y)").unwrap();
        // Head variables are not roots.
        assert!(root_variables(&q).is_empty());
    }

    #[test]
    fn hierarchical_classification_matches_the_known_examples() {
        // Safe query: R(x), S(x, y).
        assert!(is_hierarchical(
            &parse_query("Q() :- R(x), S(x, y)").unwrap()
        ));
        // The canonical #P-hard query H0 = R(x), S(x, y), T(y).
        assert!(!is_hierarchical(
            &parse_query("Q() :- R(x), S(x, y), T(y)").unwrap()
        ));
        // Grounded variables restore safety.
        assert!(is_hierarchical(
            &parse_query("Q(y) :- R(x), S(x, y), T(y)").unwrap()
        ));
    }

    #[test]
    fn separator_exists_for_queries_with_shared_root_positions() {
        let u = parse_ucq("Q() :- R(x1), S(x1, y1) ; Q() :- T(x2), S(x2, y2)").unwrap();
        let sep = find_separator(&u).unwrap();
        assert_eq!(sep.per_disjunct, vec!["x1".to_string(), "x2".to_string()]);
    }

    #[test]
    fn separator_missing_for_inverted_queries() {
        // Example from Section 4.2: R(x1),S(x1,y1) ∨ S(x2,y2),T(y2) has no separator.
        let u = parse_ucq("Q() :- R(x1), S(x1, y1) ; Q() :- S(x2, y2), T(y2)").unwrap();
        assert!(find_separator(&u).is_none());
        assert!(!is_inversion_free(&u));
    }

    #[test]
    fn inversion_free_queries_are_detected() {
        let u = parse_ucq("Q() :- R(x1), S(x1, y1) ; Q() :- T(x2), S(x2, y2)").unwrap();
        assert!(is_inversion_free(&u));
        let single = parse_ucq("Q() :- R(x), S(x, y)").unwrap();
        assert!(is_inversion_free(&single));
        // H0 is not inversion-free.
        let h0 = parse_ucq("Q() :- R(x), S(x, y), T(y)").unwrap();
        assert!(!is_inversion_free(&h0));
    }

    #[test]
    fn independent_groups_split_by_relation_symbols() {
        let u = parse_ucq("Q() :- R(x), S(x, y) ; Q() :- T(z) ; Q() :- S(u, v)").unwrap();
        let groups = independent_disjunct_groups(&u);
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert!(sizes.contains(&1) && sizes.contains(&2));
    }

    #[test]
    fn independent_atom_components_split_disconnected_subqueries() {
        let q = parse_query("Q() :- R(x), S(x, y), T(z), U(z, w)").unwrap();
        let comps = independent_atom_components(&q);
        assert_eq!(comps.len(), 2);
        // Self-joins keep atoms in the same component even without shared vars.
        let q = parse_query("Q() :- R(x), R(y)").unwrap();
        assert_eq!(independent_atom_components(&q).len(), 1);
    }

    #[test]
    fn analyze_summarises_everything() {
        let u = parse_ucq("Q() :- R(x), S(x, y)").unwrap();
        let a = analyze(&u);
        assert_eq!(a.hierarchical, vec![true]);
        assert!(a.separator.is_some());
        assert!(a.inversion_free);
    }

    #[test]
    fn comparisons_connect_atom_components() {
        let q = parse_query("Q() :- R(x), T(z), x < z").unwrap();
        assert_eq!(independent_atom_components(&q).len(), 1);
    }
}
