//! Slot-based physical plans over the dictionary-encoded columnar store —
//! the production evaluator behind lineage computation and answer
//! enumeration.
//!
//! [`EvalContext::compile`](crate::eval::EvalContext::compile) lowers a
//! [`Ucq`] into one [`PhysicalPlan`] per disjunct. Compilation resolves
//! everything the legacy backtracking evaluator used to re-derive per
//! recursive call:
//!
//! * every variable becomes a dense `u16` **slot**; the runtime binding
//!   environment is a register file of `u32` dictionary codes (no string
//!   hashing, no `Value` clones, no per-row allocation on the hot path);
//! * the atom order is fixed once through the join-order function both
//!   evaluators share ([`crate::eval::static_join_order`]: greedy
//!   most-bound-terms-first) — the choice depends only on *which* atoms
//!   were processed, never on the values bound, so fixing it statically is
//!   exact and the two evaluators enumerate matches in the same order by
//!   construction;
//! * each atom gets a fixed access path: a full **scan**, or a **probe** of
//!   a hash index `code → row positions` on its first bound column. The
//!   indexes for exactly the probed `(relation, column)` pairs are built in
//!   one pass over the columnar code arrays at compile time (and shared
//!   across plans through the [`EvalContext`]); probing returns a borrowed
//!   posting list — nothing is cloned per probe;
//! * query constants are interned once; a constant that appears nowhere in
//!   the database marks the plan as *never matching*;
//! * comparison predicates are attached to the earliest step at which all
//!   their variables are bound and evaluated over decoded values
//!   (decoding is an array probe, not a hash lookup).
//!
//! Execution is an iterative operator loop over an explicit stack of
//! candidate iterators — no recursion, no `HashMap` in sight. The legacy
//! evaluator ([`crate::eval::for_each_match`]) remains as the
//! independently-implemented test oracle, like `RefManager` on the OBDD
//! side.

use std::ops::ControlFlow;
use std::rc::Rc;

use fxhash::FxHashMap;
use mv_pdb::interner::ValueInterner;
use mv_pdb::{Database, RelId, Row, Value};

use crate::ast::{CmpOp, ConjunctiveQuery, Term, Ucq};
use crate::eval::{resolve_atom, static_join_order, EvalContext};
use crate::Result;

/// Register value of a slot that no processed atom has bound yet. Never
/// read by a well-formed plan (the compiler schedules reads after writes);
/// it exists so a register file can be a dense `Vec<u32>` instead of
/// `Vec<Option<u32>>`.
pub const UNBOUND: u32 = u32::MAX;

/// A hash index over one dictionary-encoded column:
/// `code → positions of the rows holding it`, built in one pass at compile
/// time and shared across every plan compiled through the same context.
pub type CodeIndex = FxHashMap<u32, Vec<u32>>;

/// Where a probe key comes from at runtime.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Key {
    /// A query constant, interned at compile time.
    Const(u32),
    /// A register bound by an earlier step.
    Slot(u16),
}

/// How a step enumerates its candidate rows.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Access {
    /// Scan the whole relation (row count frozen at compile time).
    Scan { rows: u32 },
    /// Probe one shared [`CodeIndex`] (over column `col`) with a key.
    Probe { index: u16, col: u16, key: Key },
}

/// One per-column operation applied to a candidate row, in column order.
/// The probed column is skipped — the index already guarantees equality.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ColOp {
    /// First occurrence of a variable: write the row's code into a register.
    Bind { col: u16, slot: u16 },
    /// Later occurrence of a variable: compare codes.
    CheckSlot { col: u16, slot: u16 },
    /// A constant term: compare against its interned code.
    CheckConst { col: u16, code: u32 },
}

/// One side of a compiled comparison.
#[derive(Debug, Clone)]
pub(crate) enum CmpOperand {
    Const(Value),
    Slot(u16),
}

/// A comparison predicate scheduled onto the earliest step that grounds it.
#[derive(Debug, Clone)]
pub(crate) struct CompiledCmp {
    pub(crate) left: CmpOperand,
    pub(crate) op: CmpOp,
    pub(crate) right: CmpOperand,
}

/// One join step: candidate enumeration plus unification for one atom.
#[derive(Debug)]
pub(crate) struct Step {
    /// The atom's position in the original query (for the `matched` output).
    pub(crate) atom: u16,
    pub(crate) rel: RelId,
    pub(crate) access: Access,
    pub(crate) ops: Vec<ColOp>,
    pub(crate) cmps: Vec<CompiledCmp>,
}

/// A head term resolved against the slot assignment.
#[derive(Debug, Clone)]
pub(crate) enum HeadTerm {
    Const(Value),
    Slot(u16),
    /// A head variable no atom binds; only an error if answers are decoded
    /// (mirroring the legacy evaluator, which fails at enumeration time).
    Unbound(String),
}

/// Aggregate shape statistics of compiled plans (reported by the
/// `query_eval` microbenchmark).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Compiled conjunctive-query plans.
    pub disjuncts: usize,
    /// Total join steps.
    pub steps: usize,
    /// Steps using an index probe.
    pub probe_steps: usize,
    /// Steps scanning a whole relation.
    pub scan_steps: usize,
    /// Register-file slots across all plans.
    pub slots: usize,
    /// Plans proven empty at compile time (unknown constants, false
    /// comparisons).
    pub never_matching: usize,
}

impl std::ops::Add for PlanStats {
    type Output = PlanStats;
    fn add(self, rhs: PlanStats) -> PlanStats {
        PlanStats {
            disjuncts: self.disjuncts + rhs.disjuncts,
            steps: self.steps + rhs.steps,
            probe_steps: self.probe_steps + rhs.probe_steps,
            scan_steps: self.scan_steps + rhs.scan_steps,
            slots: self.slots + rhs.slots,
            never_matching: self.never_matching + rhs.never_matching,
        }
    }
}

/// The physical plan of one conjunctive query.
#[derive(Debug)]
pub struct PhysicalPlan {
    pub(crate) steps: Vec<Step>,
    /// The shared column indexes this plan probes ([`Access::Probe::index`]
    /// points into this vector).
    pub(crate) indexes: Vec<Rc<CodeIndex>>,
    pub(crate) head: Vec<HeadTerm>,
    pub(crate) num_slots: usize,
    pub(crate) num_atoms: usize,
    pub(crate) never_matches: bool,
}

/// A compiled UCQ: one [`PhysicalPlan`] per disjunct.
#[derive(Debug)]
pub struct CompiledUcq {
    disjuncts: Vec<PhysicalPlan>,
}

impl CompiledUcq {
    /// Compiles every disjunct against the context's database.
    pub(crate) fn compile(ucq: &Ucq, ctx: &EvalContext<'_>) -> Result<CompiledUcq> {
        let disjuncts = ucq
            .disjuncts
            .iter()
            .map(|cq| PhysicalPlan::compile(cq, ctx))
            .collect::<Result<_>>()?;
        Ok(CompiledUcq { disjuncts })
    }

    /// The per-disjunct plans, in query order.
    pub fn disjuncts(&self) -> &[PhysicalPlan] {
        &self.disjuncts
    }

    /// Aggregate shape statistics.
    pub fn stats(&self) -> PlanStats {
        self.disjuncts
            .iter()
            .map(PhysicalPlan::stats)
            .fold(PlanStats::default(), |a, b| a + b)
    }
}

impl PhysicalPlan {
    /// Compiles one conjunctive query: fixes the atom order, assigns slots,
    /// resolves access paths and builds (or reuses) the probed column
    /// indexes.
    pub(crate) fn compile(cq: &ConjunctiveQuery, ctx: &EvalContext<'_>) -> Result<PhysicalPlan> {
        let db = ctx.database();
        let interner = db.interner();
        let rels: Vec<RelId> = cq
            .atoms
            .iter()
            .map(|a| resolve_atom(db, a))
            .collect::<Result<_>>()?;

        let mut plan = PhysicalPlan {
            steps: Vec::with_capacity(cq.atoms.len()),
            indexes: Vec::new(),
            head: Vec::new(),
            num_slots: 0,
            num_atoms: cq.atoms.len(),
            never_matches: false,
        };

        // Fold ground comparisons; collect the rest for scheduling.
        let mut pending: Vec<&crate::ast::Comparison> = Vec::new();
        for cmp in &cq.comparisons {
            match cmp.eval_ground() {
                Some(false) => plan.never_matches = true,
                Some(true) => {}
                None => pending.push(cmp),
            }
        }

        let mut slot_of: FxHashMap<&str, u16> = FxHashMap::default();
        // Interning a query constant; unknown constants can never match any
        // row of any relation.
        let intern_const = |plan: &mut PhysicalPlan, value: &Value| -> u32 {
            match interner.code_of(value) {
                Some(code) => code,
                None => {
                    plan.never_matches = true;
                    UNBOUND
                }
            }
        };

        let mut index_slot: FxHashMap<(RelId, usize), u16> = FxHashMap::default();
        let mut bound: fxhash::FxHashSet<&str> = fxhash::FxHashSet::default();

        // The atom order and per-atom probe columns come from the one
        // join-order function both evaluators share
        // ([`crate::eval::static_join_order`]), so the compiled and legacy
        // enumeration orders are identical by construction.
        for join_step in static_join_order(cq) {
            let atom_idx = join_step.atom;
            let atom = &cq.atoms[atom_idx];
            let rel = rels[atom_idx];

            let probe_col = join_step.probe;
            let access = match probe_col {
                Some(col) => {
                    let key = match &atom.terms[col] {
                        Term::Const(c) => Key::Const(intern_const(&mut plan, c)),
                        Term::Var(v) => Key::Slot(ensure_slot(&mut slot_of, v)),
                    };
                    let index = match index_slot.get(&(rel, col)) {
                        Some(&i) => i,
                        None => {
                            let i = plan.indexes.len() as u16;
                            plan.indexes.push(ctx.code_index(rel, col));
                            index_slot.insert((rel, col), i);
                            i
                        }
                    };
                    Access::Probe {
                        index,
                        col: col as u16,
                        key,
                    }
                }
                None => Access::Scan {
                    rows: db.relation(rel).len() as u32,
                },
            };

            // Per-column unification ops (probed column excluded: the index
            // guarantees its equality).
            let mut ops = Vec::with_capacity(atom.terms.len());
            for (col, t) in atom.terms.iter().enumerate() {
                match t {
                    Term::Const(c) => {
                        if Some(col) != probe_col {
                            let code = intern_const(&mut plan, c);
                            ops.push(ColOp::CheckConst {
                                col: col as u16,
                                code,
                            });
                        }
                    }
                    Term::Var(v) => {
                        let known = slot_of.contains_key(v.as_str());
                        let slot = ensure_slot(&mut slot_of, v);
                        let already_bound = bound.contains(v.as_str())
                            || (known && atom.terms[..col].iter().any(|u| u.as_var() == Some(v)));
                        if Some(col) == probe_col {
                            continue; // key equality enforced by the probe
                        }
                        if already_bound {
                            ops.push(ColOp::CheckSlot {
                                col: col as u16,
                                slot,
                            });
                        } else {
                            ops.push(ColOp::Bind {
                                col: col as u16,
                                slot,
                            });
                        }
                    }
                }
            }
            for v in atom.variables() {
                bound.insert(v);
            }

            // Attach every comparison that just became ground.
            let mut cmps = Vec::new();
            pending.retain(|cmp| {
                if cmp.variables().all(|v| bound.contains(v)) {
                    cmps.push(CompiledCmp {
                        left: compile_operand(&cmp.left, &slot_of),
                        op: cmp.op,
                        right: compile_operand(&cmp.right, &slot_of),
                    });
                    false
                } else {
                    true
                }
            });

            plan.steps.push(Step {
                atom: atom_idx as u16,
                rel,
                access,
                ops,
                cmps,
            });
        }

        // A comparison over a variable no atom binds can never be grounded.
        // The parser rejects such queries; AST-constructed ones get the
        // same explicit error here instead of silently matching nothing.
        if let Some(cmp) = pending.first() {
            let var = cmp
                .variables()
                .find(|v| !bound.contains(v))
                .unwrap_or_default()
                .to_string();
            return Err(crate::error::QueryError::UnboundComparisonVariable(var));
        }

        plan.head = cq
            .head
            .iter()
            .map(|t| match t {
                Term::Const(c) => HeadTerm::Const(c.clone()),
                Term::Var(v) => match slot_of.get(v.as_str()) {
                    Some(&s) => HeadTerm::Slot(s),
                    None => HeadTerm::Unbound(v.clone()),
                },
            })
            .collect();
        plan.num_slots = slot_of.len();
        Ok(plan)
    }

    /// Shape statistics of this plan.
    pub fn stats(&self) -> PlanStats {
        let probe_steps = self
            .steps
            .iter()
            .filter(|s| matches!(s.access, Access::Probe { .. }))
            .count();
        PlanStats {
            disjuncts: 1,
            steps: self.steps.len(),
            probe_steps,
            scan_steps: self.steps.len() - probe_steps,
            slots: self.num_slots,
            never_matching: usize::from(self.never_matches),
        }
    }

    /// `true` when compilation proved the query can never match (a constant
    /// absent from the database, or a false ground comparison).
    pub fn never_matches(&self) -> bool {
        self.never_matches
    }

    /// Calls `on_match` for every satisfying assignment, with the register
    /// file (slot → dictionary code) and, per original atom position, the
    /// `(relation, row_index)` of the matched row. Returning
    /// [`ControlFlow::Break`] stops the enumeration.
    ///
    /// This is the iterative core: an explicit stack of candidate
    /// iterators, one per join step, over borrowed posting lists.
    pub fn for_each_match<B>(
        &self,
        db: &Database,
        mut on_match: impl FnMut(&[u32], &[(RelId, usize)]) -> ControlFlow<B>,
    ) -> Option<B> {
        if self.never_matches {
            return None;
        }
        if self.steps.is_empty() {
            // Body-free query whose comparisons were all ground and true.
            return match on_match(&[], &[]) {
                ControlFlow::Break(b) => Some(b),
                ControlFlow::Continue(()) => None,
            };
        }
        let mut regs: Vec<u32> = vec![UNBOUND; self.num_slots];
        let mut matched: Vec<(RelId, usize)> = vec![(RelId(0), 0); self.num_atoms];
        let mut iters: Vec<StepIter<'_>> = Vec::with_capacity(self.steps.len());
        iters.push(self.candidates(0, &regs));
        loop {
            let depth = iters.len() - 1;
            let Some(row) = iters[depth].next() else {
                iters.pop();
                if iters.is_empty() {
                    return None;
                }
                continue;
            };
            let step = &self.steps[depth];
            if !self.match_row(step, row, &mut regs, db) {
                continue;
            }
            matched[usize::from(step.atom)] = (step.rel, row as usize);
            if depth + 1 == self.steps.len() {
                if let ControlFlow::Break(b) = on_match(&regs, &matched) {
                    return Some(b);
                }
            } else {
                let next = self.candidates(depth + 1, &regs);
                iters.push(next);
            }
        }
    }

    /// The candidate rows of a step under the current registers.
    fn candidates(&self, depth: usize, regs: &[u32]) -> StepIter<'_> {
        match self.steps[depth].access {
            Access::Scan { rows } => StepIter::Scan(0..rows),
            Access::Probe { index, key, .. } => {
                let code = match key {
                    Key::Const(c) => c,
                    Key::Slot(s) => regs[usize::from(s)],
                };
                match self.indexes[usize::from(index)].get(&code) {
                    Some(posting) => StepIter::Posting(posting.iter()),
                    None => StepIter::Scan(0..0),
                }
            }
        }
    }

    /// Applies a step's unification ops and comparisons to one row.
    #[inline]
    fn match_row(&self, step: &Step, row: u32, regs: &mut [u32], db: &Database) -> bool {
        let relation = db.relation(step.rel);
        let row = row as usize;
        for op in &step.ops {
            match *op {
                ColOp::Bind { col, slot } => {
                    regs[usize::from(slot)] = relation.code_at(row, usize::from(col));
                }
                ColOp::CheckSlot { col, slot } => {
                    if relation.code_at(row, usize::from(col)) != regs[usize::from(slot)] {
                        return false;
                    }
                }
                ColOp::CheckConst { col, code } => {
                    if relation.code_at(row, usize::from(col)) != code {
                        return false;
                    }
                }
            }
        }
        if !step.cmps.is_empty() {
            let interner = db.interner();
            for cmp in &step.cmps {
                let left = resolve_operand(&cmp.left, regs, interner);
                let right = resolve_operand(&cmp.right, regs, interner);
                if !cmp.op.eval(left, right) {
                    return false;
                }
            }
        }
        true
    }

    /// Decodes the head tuple from a register file.
    ///
    /// Panics if a head variable is bound by no atom (parity with the
    /// legacy evaluator, which fails at answer-enumeration time).
    pub fn decode_head(&self, regs: &[u32], interner: &ValueInterner) -> Row {
        self.head
            .iter()
            .map(|t| match t {
                HeadTerm::Const(v) => v.clone(),
                HeadTerm::Slot(s) => interner.value(regs[usize::from(*s)]).clone(),
                HeadTerm::Unbound(name) => {
                    panic!("head variable {name} is not bound by any atom")
                }
            })
            .collect()
    }
}

/// Candidate enumeration of one step: a scan range or a borrowed posting
/// list from a shared column index.
enum StepIter<'p> {
    Scan(std::ops::Range<u32>),
    Posting(std::slice::Iter<'p, u32>),
}

impl Iterator for StepIter<'_> {
    type Item = u32;
    #[inline]
    fn next(&mut self) -> Option<u32> {
        match self {
            StepIter::Scan(range) => range.next(),
            StepIter::Posting(iter) => iter.next().copied(),
        }
    }
}

fn compile_operand(term: &Term, slot_of: &FxHashMap<&str, u16>) -> CmpOperand {
    match term {
        Term::Const(c) => CmpOperand::Const(c.clone()),
        Term::Var(v) => CmpOperand::Slot(
            *slot_of
                .get(v.as_str())
                .expect("comparison variables are bound by atoms"),
        ),
    }
}

#[inline]
pub(crate) fn resolve_operand<'v>(
    operand: &'v CmpOperand,
    regs: &[u32],
    interner: &'v ValueInterner,
) -> &'v Value {
    match operand {
        CmpOperand::Const(v) => v,
        CmpOperand::Slot(s) => interner.value(regs[usize::from(*s)]),
    }
}

/// Assigns (or retrieves) the dense slot of a variable.
fn ensure_slot<'q>(slots: &mut FxHashMap<&'q str, u16>, name: &'q str) -> u16 {
    debug_assert!(slots.len() < usize::from(u16::MAX), "slot space exhausted");
    let next = slots.len() as u16;
    *slots.entry(name).or_insert(next)
}
