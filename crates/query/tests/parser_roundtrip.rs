//! Round-trip and robustness tests of the datalog parser: the `Display`
//! output of a parsed query parses back to the same query, and the paper's
//! own queries (Figures 1–2) all parse.

use mv_query::{parse_query, parse_ucq};
use proptest::prelude::*;

/// Queries appearing verbatim (modulo aggregate materialisation) in the paper.
const PAPER_QUERIES: &[&str] = &[
    // Figure 2 (a): the running example.
    "Q(aid) :- Student(aid, y), Advisor(aid, aid1), Author(aid, n), Author(aid1, n1), n1 like '%Madden%'",
    // Figure 2 (b): the helper queries W1–W3.
    "W() :- NV1(aid1, aid2), Advisor(aid1, aid2), Student(aid1, year), Wrote(aid1, pid), Wrote(aid2, pid), Pub(pid, title, year)",
    "W() :- NV2(aid1, aid2, aid3), Advisor(aid1, aid2), Advisor(aid1, aid3), aid2 <> aid3",
    "W() :- NV3(aid1, aid2, inst), Affiliation(aid1, inst), Affiliation(aid2, inst), Wrote(aid1, pid), Wrote(aid2, pid), Pub(pid, title, year), year > 2004",
    // Section 2 examples.
    "Q(x) :- R(x), S(x, y)",
    "Q() :- R(x), S(x, y), T(y)",
];

#[test]
fn the_papers_queries_parse() {
    for text in PAPER_QUERIES {
        let q = parse_query(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert!(!q.atoms.is_empty());
    }
}

#[test]
fn display_round_trips_for_the_papers_queries() {
    for text in PAPER_QUERIES {
        let q = parse_query(text).unwrap();
        let reparsed = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, reparsed, "round trip failed for {text}");
    }
}

#[test]
fn ucq_round_trips_through_display() {
    let u = parse_ucq("Q() :- R(x), S(x, y) ; Q() :- T(z), S(z, y), z > 3").unwrap();
    let reparsed = parse_ucq(&u.to_string()).unwrap();
    assert_eq!(u, reparsed);
}

/// Strategy for random (syntactically valid) conjunctive queries.
fn query_text_strategy() -> impl Strategy<Value = String> {
    let var = prop_oneof![Just("x"), Just("y"), Just("z"), Just("w")];
    let atom = (
        prop_oneof![Just("R"), Just("S"), Just("T")],
        var.clone(),
        var.clone(),
    )
        .prop_map(|(r, a, b)| format!("{r}({a}, {b})"));
    (
        proptest::collection::vec(atom, 1..4),
        proptest::option::of((var, 1i64..100).prop_map(|(v, k)| format!("{v} < {k}"))),
    )
        .prop_map(|(atoms, cmp)| {
            // Comparisons may only mention variables that occur in atoms; the
            // generated variables always do because atoms use the same pool.
            let mut body = atoms.join(", ");
            if let Some(c) = cmp {
                body.push_str(", ");
                body.push_str(&c);
            }
            format!("Q() :- {body}")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_queries_round_trip_through_display(text in query_text_strategy()) {
        let parsed = match parse_query(&text) {
            Ok(q) => q,
            // A comparison can mention a variable absent from the atoms if
            // the random pools differ; that rejection is correct behaviour.
            Err(_) => return Ok(()),
        };
        let reparsed = parse_query(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(text in "\\PC{0,60}") {
        let _ = parse_query(&text);
        let _ = parse_ucq(&text);
    }
}
