//! Vectorized / compiled / legacy evaluator agreement.
//!
//! Three independently-implemented evaluators are pinned against each
//! other over random databases and a fixed family of queries covering
//! joins, unions, constants (present and absent), self-joins, repeated
//! variables (within one atom and across a whole body), atoms shared
//! across disjuncts, all-constant atoms and every comparison kind:
//!
//! * the **vectorized** batch executor (`mv_query::vec_exec`) behind the
//!   production entry points — CSR join indexes, zone-map block skipping,
//!   code-level `=`/`<>` comparisons;
//! * the **compiled** tuple-at-a-time plan loop (`*_compiled_with`), the
//!   PR-4 production path kept as the exact-equality oracle;
//! * the **legacy** String-keyed backtracking evaluator.
//!
//! All deterministic comparisons are **exact**: set equality of answers and
//! equality of canonical lineages — not approximate agreement. A fourth
//! implementation joins the differential loop: the Monte Carlo estimator of
//! `mv_query::approx`, checked *statistically* — the brute-force lineage
//! probability must fall inside its high-confidence interval (seeds are
//! derived from the database content, so any counterexample is
//! reproducible).

use mv_pdb::{InDbBuilder, Row, Value, Weight};
use mv_query::approx::{approx_lineage_probability, ApproxConfig};
use mv_query::brute::brute_force_lineage_probability;
use mv_query::eval::{
    evaluate_ucq_compiled_with, evaluate_ucq_legacy_with, evaluate_ucq_with, EvalContext,
};
use mv_query::lineage::{
    answer_lineages, answer_lineages_compiled_with, answer_lineages_legacy, lineage_compiled_with,
    lineage_legacy_with, lineage_with,
};
use mv_query::parse_ucq;
use proptest::prelude::*;

/// A random tuple-independent database over R(a), S(a, b), T(b) with a
/// small shared integer domain (dense enough that joins, self-joins and
/// constants all hit).
#[derive(Debug, Clone)]
struct RandomDb {
    r_rows: Vec<i64>,
    s_rows: Vec<(i64, i64)>,
    t_rows: Vec<i64>,
}

fn db_strategy() -> impl Strategy<Value = RandomDb> {
    let domain = 0i64..5;
    (
        proptest::collection::vec(domain.clone(), 0..5),
        proptest::collection::vec((0i64..5, 0i64..5), 0..8),
        proptest::collection::vec(domain, 0..5),
    )
        .prop_map(|(r_rows, s_rows, t_rows)| RandomDb {
            r_rows,
            s_rows,
            t_rows,
        })
}

fn build(desc: &RandomDb) -> mv_pdb::InDb {
    let mut b = InDbBuilder::new();
    let r = b.probabilistic_relation("R", &["a"]).unwrap();
    let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
    let t = b.probabilistic_relation("T", &["b"]).unwrap();
    for &x in &desc.r_rows {
        b.insert_weighted(r, vec![Value::int(x)], Weight::ONE)
            .unwrap();
    }
    for &(x, y) in &desc.s_rows {
        b.insert_weighted(s, vec![Value::int(x), Value::int(y)], Weight::new(2.0))
            .unwrap();
    }
    for &y in &desc.t_rows {
        b.insert_weighted(t, vec![Value::int(y)], Weight::new(0.5))
            .unwrap();
    }
    b.build()
}

/// The fixed query family the agreement is checked over. Boolean and
/// non-Boolean shapes; constants `1` (usually present) and `99` (never
/// present); self-joins with repeated variables; all comparison operators
/// the parser accepts.
fn queries() -> Vec<&'static str> {
    vec![
        "Q() :- R(x)",
        "Q() :- R(x), S(x, y)",
        "Q() :- R(x), S(x, y), T(y)",
        "Q() :- S(x, y) ; Q() :- T(y)",
        "Q() :- S(x, x)",
        "Q() :- S(x, y), S(y, z)",
        "Q() :- S(x, y), S(x, z), y <> z",
        "Q() :- R(1)",
        "Q() :- R(99)",
        "Q() :- S(1, y), T(y)",
        "Q() :- S(x, y), y >= 2",
        "Q() :- S(x, y), y < x",
        "Q() :- T(y), y = 3",
        "Q() :- R(x), x like '%1%'",
        "Q(x) :- R(x), S(x, y)",
        "Q(x, y) :- S(x, y), T(y)",
        "Q(y) :- S(1, y)",
        "Q(x) :- S(x, y) ; Q(x) :- R(x)",
        "Q(x) :- S(x, x), R(x)",
        "Q(x, z) :- S(x, y), S(y, z), x <= z",
        // --- under-covered shapes -----------------------------------------
        // Repeated variables: within one atom, chained through a body, and
        // combined with a diagonal self-join.
        "Q() :- S(x, x), S(x, y), S(y, y)",
        "Q(x) :- S(x, x), S(x, x)",
        "Q() :- S(x, y), S(y, x)",
        // Cross-disjunct shared atoms: the same atom appears in several
        // disjuncts, so clause deduplication across disjuncts matters.
        "Q() :- R(x), S(x, y) ; Q() :- R(x), T(x)",
        "Q(x) :- R(x), S(x, y) ; Q(x) :- R(x), S(x, 2)",
        "Q() :- S(1, y) ; Q() :- S(1, y), T(y) ; Q() :- S(x, 1)",
        // All-constant atoms: ground bodies, present and absent, alone and
        // joined with variable atoms.
        "Q() :- S(1, 2)",
        "Q() :- S(99, 99)",
        "Q() :- S(1, 2), R(1)",
        "Q() :- S(1, 2), S(2, 1)",
        "Q(x) :- R(x), S(2, 2)",
        "Q() :- R(1), R(1) ; Q() :- S(2, 2)",
    ]
}

fn sorted_rows(answers: Vec<mv_query::Answer>) -> Vec<Row> {
    let mut rows: Vec<Row> = answers.into_iter().map(|a| a.row).collect();
    rows.sort();
    rows
}

/// A deterministic seed from the database description, so a CI miss in the
/// statistical check reproduces on re-run instead of flaking.
fn content_seed(desc: &RandomDb) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: i64| {
        h ^= v as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &x in &desc.r_rows {
        mix(x);
    }
    for &(x, y) in &desc.s_rows {
        mix(x);
        mix(y);
    }
    for &y in &desc.t_rows {
        mix(y);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_answers_and_lineage_match_legacy_on_random_databases(desc in db_strategy()) {
        let indb = build(&desc);
        let db = indb.database();
        let ctx = EvalContext::new(db);
        let approx_config = ApproxConfig {
            seed: content_seed(&desc),
            confidence: 0.9999,
            target_half_width: 0.0,
            max_samples: 4_096,
            ..ApproxConfig::default()
        };
        for text in queries() {
            let q = parse_ucq(text).unwrap();

            // Answer sets agree exactly (deterministic evaluation) across
            // all three evaluators.
            let vectorized = sorted_rows(evaluate_ucq_with(&q, &ctx).unwrap());
            let compiled = sorted_rows(evaluate_ucq_compiled_with(&q, &ctx).unwrap());
            let legacy = sorted_rows(evaluate_ucq_legacy_with(&q, &ctx).unwrap());
            prop_assert_eq!(&vectorized, &compiled, "vectorized answers diverge on {}", text);
            prop_assert_eq!(&compiled, &legacy, "answers diverge on {}", text);

            // Lineages agree exactly (canonical form) for Boolean queries.
            if q.is_boolean() {
                let lin_compiled = lineage_with(&q, &indb, &ctx).unwrap();
                let lin_oracle = lineage_compiled_with(&q, &indb, &ctx).unwrap();
                let lin_legacy = lineage_legacy_with(&q, &indb, &ctx).unwrap();
                prop_assert_eq!(&lin_compiled, &lin_oracle, "vectorized lineage diverges on {}", text);
                prop_assert_eq!(&lin_compiled, &lin_legacy, "lineage diverges on {}", text);

                // The Monte Carlo estimator agrees statistically: the exact
                // (brute-force) probability falls inside its 99.99% CI. The
                // generous-margin fallback keeps the expected false-alarm
                // rate of the whole suite far below one in a million runs.
                let exact = brute_force_lineage_probability(&lin_compiled, &indb);
                let approx = approx_lineage_probability(&lin_compiled, &indb, &approx_config)
                    .unwrap();
                prop_assert!(
                    approx.contains(exact) || (approx.estimate - exact).abs() < 0.06,
                    "approx diverges on {}: CI [{}, {}] vs exact {}",
                    text, approx.lower(), approx.upper(), exact
                );
            } else {
                // Per-answer lineages agree exactly, including the key set.
                let per_vectorized = answer_lineages(&q, &indb).unwrap();
                let per_compiled = answer_lineages_compiled_with(&q, &indb, &ctx).unwrap();
                let per_legacy = answer_lineages_legacy(&q, &indb).unwrap();
                prop_assert_eq!(
                    &per_vectorized, &per_compiled,
                    "vectorized answer lineages diverge on {}", text
                );
                prop_assert_eq!(&per_compiled, &per_legacy, "answer lineages diverge on {}", text);
            }
        }
    }
}

#[test]
fn compiled_plans_agree_on_handwritten_edge_cases() {
    // Deterministic + probabilistic mix, ground atoms, body-free truth.
    let mut b = InDbBuilder::new();
    let d = b.deterministic_relation("D", &["a"]).unwrap();
    let r = b.probabilistic_relation("R", &["a", "b"]).unwrap();
    b.insert_fact(d, vec![Value::str("a1")]).unwrap();
    b.insert_fact(d, vec![Value::str("a2")]).unwrap();
    b.insert_weighted(
        r,
        vec![Value::str("a1"), Value::str("b1")],
        Weight::new(3.0),
    )
    .unwrap();
    b.insert_weighted(
        r,
        vec![Value::str("a2"), Value::str("b1")],
        Weight::new(0.5),
    )
    .unwrap();
    let indb = b.build();
    let ctx = EvalContext::new(indb.database());
    for text in [
        "Q() :- D(x)",
        "Q() :- D(x), R(x, y)",
        "Q() :- D('a1'), R('a1', 'b1')",
        "Q() :- D('zzz')",
        "Q() :- R(x, y), R(z, y), x <> z",
        "Q(y) :- R(x, y), D(x)",
        "Q() :- R(x, y), x < y, y like '%b%'",
    ] {
        let q = parse_ucq(text).unwrap();
        let vectorized = sorted_rows(evaluate_ucq_with(&q, &ctx).unwrap());
        let compiled = sorted_rows(evaluate_ucq_compiled_with(&q, &ctx).unwrap());
        let legacy = sorted_rows(evaluate_ucq_legacy_with(&q, &ctx).unwrap());
        assert_eq!(vectorized, compiled, "vectorized answers diverge on {text}");
        assert_eq!(compiled, legacy, "answers diverge on {text}");
        if q.is_boolean() {
            let lin = lineage_with(&q, &indb, &ctx).unwrap();
            assert_eq!(
                lin,
                lineage_compiled_with(&q, &indb, &ctx).unwrap(),
                "vectorized lineage diverges on {text}"
            );
            assert_eq!(
                lin,
                lineage_legacy_with(&q, &indb, &ctx).unwrap(),
                "lineage diverges on {text}"
            );
        }
    }
}

/// Probe steps that arrive with *two* columns already bound and long
/// posting lists on either single column upgrade to the composite pair
/// index (64 `S`-rows over an 8x8 key grid put the expected postings of
/// each column exactly at the upgrade threshold). The upgraded plans must
/// agree exactly — answers, per-answer lineages and canonical Boolean
/// lineages — with both the tuple-at-a-time and the legacy oracle.
#[test]
fn composite_pair_probes_agree_with_both_oracles() {
    let mut b = InDbBuilder::new();
    let r = b.probabilistic_relation("R", &["a"]).unwrap();
    let t = b.probabilistic_relation("T", &["b"]).unwrap();
    let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
    for i in 0..8i64 {
        b.insert_weighted(r, vec![Value::int(i)], Weight::ONE)
            .unwrap();
        b.insert_weighted(t, vec![Value::int(i)], Weight::new(0.5))
            .unwrap();
    }
    for i in 0..64i64 {
        b.insert_weighted(
            s,
            vec![Value::int(i % 8), Value::int(i / 8)],
            Weight::new(2.0),
        )
        .unwrap();
    }
    let indb = b.build();
    let ctx = EvalContext::new(indb.database());
    for text in [
        // Both keys from earlier atoms (slot/slot pair probe).
        "Q() :- R(x), T(y), S(x, y)",
        "Q(x, y) :- R(x), T(y), S(x, y)",
        // One key is a constant (slot/const pair probe).
        "Q(x) :- R(x), S(x, 3)",
        "Q() :- R(x), S(x, 99)",
        // Self-join: the second S atom gets both columns bound.
        "Q() :- S(x, y), S(y, x)",
    ] {
        let q = parse_ucq(text).unwrap();
        let vectorized = sorted_rows(evaluate_ucq_with(&q, &ctx).unwrap());
        let compiled = sorted_rows(evaluate_ucq_compiled_with(&q, &ctx).unwrap());
        let legacy = sorted_rows(evaluate_ucq_legacy_with(&q, &ctx).unwrap());
        assert_eq!(vectorized, compiled, "vectorized answers diverge on {text}");
        assert_eq!(compiled, legacy, "answers diverge on {text}");
        let bq = q.boolean();
        let lin = lineage_with(&bq, &indb, &ctx).unwrap();
        assert_eq!(
            lin,
            lineage_compiled_with(&bq, &indb, &ctx).unwrap(),
            "vectorized lineage diverges on {text}"
        );
        assert_eq!(
            lin,
            lineage_legacy_with(&bq, &indb, &ctx).unwrap(),
            "lineage diverges on {text}"
        );
        if !q.is_boolean() {
            let per_vectorized = answer_lineages(&q, &indb).unwrap();
            let per_compiled = answer_lineages_compiled_with(&q, &indb, &ctx).unwrap();
            assert_eq!(
                per_vectorized, per_compiled,
                "answer lineages diverge on {text}"
            );
        }
    }
}

/// Batch-boundary sizes: relations of exactly 0, 1, 1023, 1024 and 1025
/// rows, so runs end one row short of a batch, exactly on a batch, and one
/// row past it — plus sizes crossing zone-map block boundaries (256 rows
/// per block). The vectorized executor must agree exactly with the
/// tuple-at-a-time oracle on answers and canonical lineages at every size,
/// including all-constant and never-matching plans.
#[test]
fn batch_boundary_sizes_agree_with_the_compiled_oracle() {
    for n in [0usize, 1, 255, 256, 257, 1023, 1024, 1025] {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
        for i in 0..n {
            b.insert_weighted(r, vec![Value::int(i as i64)], Weight::ONE)
                .unwrap();
            b.insert_weighted(
                s,
                vec![Value::int(i as i64), Value::int((i % 97) as i64)],
                Weight::new(2.0),
            )
            .unwrap();
        }
        let indb = b.build();
        let ctx = EvalContext::new(indb.database());
        for text in [
            // Full enumeration: n answers cross 0, 1 or 2 batch flushes.
            "Q(x) :- R(x)",
            "Q(x, y) :- R(x), S(x, y)",
            // Break-on-first through a complete batch.
            "Q() :- R(x), S(x, y)",
            // Equality constant lowered to a code compare on a scan
            // (present at every size > 0, and in the first block only).
            "Q(x) :- R(x), x = 0",
            // Constant in the last row: present only at the largest sizes.
            "Q(x) :- R(x), x = 1024",
            // Inequality keeps nearly every row: maximal batch churn.
            "Q(x) :- R(x), x <> 0",
            // All-constant and never-matching plans.
            "Q() :- S(0, 0)",
            "Q() :- R(123456789)",
            "Q(y) :- S(123456789, y)",
        ] {
            let q = parse_ucq(text).unwrap();
            let vectorized = sorted_rows(evaluate_ucq_with(&q, &ctx).unwrap());
            let compiled = sorted_rows(evaluate_ucq_compiled_with(&q, &ctx).unwrap());
            assert_eq!(vectorized, compiled, "answers diverge on {text} at n={n}");
            let bq = q.boolean();
            assert_eq!(
                lineage_with(&bq, &indb, &ctx).unwrap(),
                lineage_compiled_with(&bq, &indb, &ctx).unwrap(),
                "lineage diverges on {text} at n={n}"
            );
        }
        // The legacy oracle joins at the sizes where it stays affordable.
        if n <= 257 {
            for text in ["Q(x) :- R(x)", "Q(x, y) :- R(x), S(x, y)"] {
                let q = parse_ucq(text).unwrap();
                assert_eq!(
                    sorted_rows(evaluate_ucq_with(&q, &ctx).unwrap()),
                    sorted_rows(evaluate_ucq_legacy_with(&q, &ctx).unwrap()),
                    "legacy answers diverge on {text} at n={n}"
                );
            }
        }
    }
}
