//! The `ConOBDD(π, Q)` construction of Section 4.2.
//!
//! [`ConObddBuilder`] constructs the OBDD of a Boolean UCQ by recursing over
//! the query structure:
//!
//! * **R1/R2** — unions and conjunctions of sub-queries over disjoint
//!   relations are combined by *concatenation* when their variables occupy
//!   disjoint, consecutive level ranges, and by synthesis otherwise;
//! * **R3** — an existential (separator) variable is expanded over the active
//!   domain; the groundings touch pairwise-disjoint sets of tuples, so their
//!   OBDDs are concatenated;
//! * **R4** — ground atoms become single-variable diagrams.
//!
//! The builder records how many concatenation and synthesis steps were used
//! ([`ConstructionStats`]), which the benchmarks report. When the query is
//! inversion-free and `π` puts the separator attributes first, only
//! concatenations are performed and the resulting diagram has constant width
//! (Proposition 2) — this is what makes the construction two orders of
//! magnitude faster than generic synthesis in Figure 8.

use std::sync::Arc;

use fxhash::FxHashMap;
use mv_pdb::{InDb, TupleId, Value};
use mv_query::analysis::{find_separator_over, independent_atom_components};
use mv_query::eval::EvalContext;
use mv_query::lineage::lineage_with;
use mv_query::rewrite::{separator_domain, simplify_cq, SimplifiedCq};
use mv_query::{ConjunctiveQuery, Ucq};

use crate::manager::ObddManager;
use crate::obdd::Obdd;
use crate::order::{PiOrder, VarOrder};
use crate::synthesis::SynthesisBuilder;
use crate::Result;

/// Counters describing how an OBDD was constructed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstructionStats {
    /// Number of concatenation steps (linear-time combinations).
    pub concatenations: usize,
    /// Number of synthesis (`apply`) steps.
    pub syntheses: usize,
    /// Number of sub-queries compiled by falling back to lineage synthesis.
    pub lineage_fallbacks: usize,
}

/// Builds OBDDs for UCQs using the concatenation-based construction.
///
/// Every diagram the builder produces — per-value parts, per-disjunct
/// diagrams, lineage fallbacks — lives in the builder's shared
/// [`ObddManager`], so combining them concatenates and synthesises in place
/// without ever copying node stores.
pub struct ConObddBuilder<'a> {
    indb: &'a InDb,
    ctx: EvalContext<'a>,
    manager: ObddManager,
    stats: ConstructionStats,
}

impl<'a> ConObddBuilder<'a> {
    /// Creates a builder over the order induced by the given `π` (with a
    /// fresh manager).
    pub fn new(indb: &'a InDb, pi: &PiOrder) -> Self {
        let order = Arc::new(pi.tuple_order(indb));
        Self::with_manager(indb, ObddManager::new(order))
    }

    /// Creates a builder that constructs into an existing manager (whose
    /// order must cover every probabilistic tuple the queries can touch).
    pub fn with_manager(indb: &'a InDb, manager: ObddManager) -> Self {
        ConObddBuilder {
            indb,
            ctx: EvalContext::new(indb.database()),
            manager,
            stats: ConstructionStats::default(),
        }
    }

    /// Creates a builder whose `π` is inferred from the query so that
    /// separator attributes come first (the heuristic of Section 4.2).
    pub fn for_query(indb: &'a InDb, ucq: &Ucq) -> Self {
        let pi = Self::infer_pi(ucq, indb);
        Self::new(indb, &pi)
    }

    /// Infers per-relation attribute permutations by repeatedly locating a
    /// separator variable and recording, for every atom, the attribute
    /// position it occupies; those positions are placed first, in discovery
    /// order.
    pub fn infer_pi(ucq: &Ucq, indb: &InDb) -> PiOrder {
        let mut partial: FxHashMap<String, Vec<usize>> = FxHashMap::default();
        let mut current = ucq.boolean();
        for depth in 0..16 {
            let is_prob = |name: &str| {
                indb.schema()
                    .relation_id(name)
                    .map(|r| !indb.is_deterministic(r))
                    .unwrap_or(false)
            };
            let Some(sep) = find_separator_over(&current, &is_prob) else {
                break;
            };
            for (d, var) in current.disjuncts.iter().zip(&sep.per_disjunct) {
                for atom in &d.atoms {
                    if let Some(&pos) = atom.positions_of(var).first() {
                        let entry = partial.entry(atom.relation.clone()).or_default();
                        if !entry.contains(&pos) {
                            entry.push(pos);
                        }
                    }
                }
            }
            let marker = Value::str(format!("@pi{depth}"));
            let disjuncts: Vec<ConjunctiveQuery> = current
                .disjuncts
                .iter()
                .zip(&sep.per_disjunct)
                .map(|(d, v)| d.substitute(v, &marker))
                .collect();
            current = Ucq::new(current.name.clone(), disjuncts);
        }
        let mut pi = PiOrder::identity();
        for (rel_id, schema) in indb.schema().relations() {
            let _ = rel_id;
            let name = schema.name();
            let arity = schema.arity();
            let mut perm: Vec<usize> = partial.get(name).cloned().unwrap_or_default();
            perm.retain(|&p| p < arity);
            for p in 0..arity {
                if !perm.contains(&p) {
                    perm.push(p);
                }
            }
            pi.set_permutation(name, perm);
        }
        pi
    }

    /// The variable order used by this builder.
    pub fn order(&self) -> Arc<VarOrder> {
        Arc::clone(self.manager.order())
    }

    /// The shared manager every diagram of this builder lives in.
    pub fn manager(&self) -> &ObddManager {
        &self.manager
    }

    /// Construction statistics accumulated so far.
    pub fn stats(&self) -> ConstructionStats {
        self.stats
    }

    /// Builds the OBDD of a Boolean UCQ.
    pub fn build(&mut self, ucq: &Ucq) -> Result<Obdd> {
        let boolean = ucq.boolean();
        self.build_ucq(&boolean.disjuncts)
    }

    fn constant(&self, value: bool) -> Obdd {
        self.manager.constant(value)
    }

    /// Predicate telling probabilistic relations apart from deterministic
    /// ones; separators only need to cover the probabilistic atoms.
    fn is_probabilistic(&self) -> impl Fn(&str) -> bool + 'a {
        let indb = self.indb;
        move |name: &str| {
            indb.schema()
                .relation_id(name)
                .map(|r| !indb.is_deterministic(r))
                .unwrap_or(false)
        }
    }

    fn build_ucq(&mut self, disjuncts: &[ConjunctiveQuery]) -> Result<Obdd> {
        // Simplify against the database; drop false disjuncts.
        let mut simplified = Vec::new();
        for d in disjuncts {
            match simplify_cq(d, self.indb) {
                SimplifiedCq::False => {}
                SimplifiedCq::True => return Ok(self.constant(true)),
                SimplifiedCq::Query(q) => simplified.push(q),
            }
        }
        simplified.sort_by_key(|d| d.to_string());
        simplified.dedup_by_key(|d| d.to_string());
        if simplified.is_empty() {
            return Ok(self.constant(false));
        }
        if simplified.len() == 1 {
            return self.build_cq(&simplified[0]);
        }
        let ucq = Ucq::new("w", simplified);

        // R3 with a separator across the whole union: expand over the domain
        // and concatenate.
        let separator = find_separator_over(&ucq, &self.is_probabilistic());
        if let Some(sep) = separator {
            let domain = separator_domain(&ucq, &sep.per_disjunct, self.indb);
            let mut parts = Vec::with_capacity(domain.len());
            for value in &domain {
                let grounded: Vec<ConjunctiveQuery> = ucq
                    .disjuncts
                    .iter()
                    .zip(&sep.per_disjunct)
                    .map(|(d, v)| d.substitute(v, value))
                    .collect();
                parts.push(self.build_ucq(&grounded)?);
            }
            return self.combine_or(parts);
        }

        // R1 without a separator: build each disjunct and synthesise.
        let mut acc = self.constant(false);
        for d in &ucq.disjuncts {
            let part = self.build_cq(d)?;
            acc = self.or(acc, part)?;
        }
        Ok(acc)
    }

    fn build_cq(&mut self, cq: &ConjunctiveQuery) -> Result<Obdd> {
        let cq = match simplify_cq(cq, self.indb) {
            SimplifiedCq::False => return Ok(self.constant(false)),
            SimplifiedCq::True => return Ok(self.constant(true)),
            SimplifiedCq::Query(q) => q,
        };

        // All atoms ground: the query is a single conjunction of tuple
        // variables (R4 plus R2-concatenation).
        if cq.atoms.iter().all(|a| a.is_ground()) {
            let mut tuples: Vec<TupleId> = Vec::with_capacity(cq.atoms.len());
            for atom in &cq.atoms {
                let rel = self
                    .indb
                    .schema()
                    .relation_id(&atom.relation)
                    .expect("simplify_cq verified the relation exists");
                let row: Vec<Value> = atom
                    .terms
                    .iter()
                    .map(|t| t.as_const().cloned().expect("atom is ground"))
                    .collect();
                let id = self
                    .indb
                    .tuple_id_by_values(rel, &row)
                    .expect("simplify_cq verified the tuple is possible");
                tuples.push(id);
            }
            self.stats.concatenations += tuples.len().saturating_sub(1);
            return self.manager.clause(&tuples);
        }

        // R2: independent components are combined one by one.
        let components = independent_atom_components(&cq);
        if components.len() > 1 {
            let mut parts = Vec::with_capacity(components.len());
            for comp in components {
                let atoms: Vec<_> = comp.iter().map(|&i| cq.atoms[i].clone()).collect();
                let vars: std::collections::BTreeSet<String> = atoms
                    .iter()
                    .flat_map(|a| a.variables().map(str::to_string))
                    .collect();
                let comparisons = cq
                    .comparisons
                    .iter()
                    .filter(|c| c.variables().any(|v| vars.contains(v)))
                    .cloned()
                    .collect();
                let sub = ConjunctiveQuery::new(cq.name.clone(), vec![], atoms, comparisons);
                parts.push(self.build_cq(&sub)?);
            }
            let mut acc = self.constant(true);
            for part in parts {
                acc = self.and(acc, part)?;
            }
            return Ok(acc);
        }

        // R3 within a single conjunctive query: expand a root variable.
        let ucq = Ucq::from_cq(cq.clone());
        let separator = find_separator_over(&ucq, &self.is_probabilistic());
        if let Some(sep) = separator {
            let var = &sep.per_disjunct[0];
            let domain = separator_domain(&ucq, &sep.per_disjunct, self.indb);
            let mut parts = Vec::with_capacity(domain.len());
            for value in &domain {
                parts.push(self.build_cq(&cq.substitute(var, value))?);
            }
            return self.combine_or(parts);
        }

        // Fallback: compute the lineage of this (small) sub-query and
        // synthesise it clause by clause.
        self.stats.lineage_fallbacks += 1;
        let lin = lineage_with(&ucq, self.indb, &self.ctx)?;
        self.stats.syntheses += lin.num_clauses().saturating_sub(1);
        SynthesisBuilder::with_manager(self.manager.clone()).from_lineage(&lin)
    }

    /// Disjunction of many parts: concatenate if the level ranges line up,
    /// otherwise fold with synthesis.
    fn combine_or(&mut self, parts: Vec<Obdd>) -> Result<Obdd> {
        if parts.is_empty() {
            return Ok(self.constant(false));
        }
        match Obdd::concat_many_or(self.order(), &parts) {
            Ok(obdd) => {
                self.stats.concatenations += parts.len().saturating_sub(1);
                Ok(obdd)
            }
            Err(_) => {
                let mut acc = self.constant(false);
                for part in parts {
                    acc = self.or(acc, part)?;
                }
                Ok(acc)
            }
        }
    }

    fn or(&mut self, a: Obdd, b: Obdd) -> Result<Obdd> {
        if a.levels_precede(&b) {
            if let Ok(r) = a.concat_or(&b) {
                self.stats.concatenations += 1;
                return Ok(r);
            }
        } else if b.levels_precede(&a) {
            if let Ok(r) = b.concat_or(&a) {
                self.stats.concatenations += 1;
                return Ok(r);
            }
        }
        self.stats.syntheses += 1;
        a.apply_or(&b)
    }

    fn and(&mut self, a: Obdd, b: Obdd) -> Result<Obdd> {
        if a.levels_precede(&b) {
            if let Ok(r) = a.concat_and(&b) {
                self.stats.concatenations += 1;
                return Ok(r);
            }
        } else if b.levels_precede(&a) {
            if let Ok(r) = b.concat_and(&a) {
                self.stats.concatenations += 1;
                return Ok(r);
            }
        }
        self.stats.syntheses += 1;
        a.apply_and(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_pdb::value::row;
    use mv_pdb::{InDbBuilder, Weight};
    use mv_query::brute::brute_force_query_probability;
    use mv_query::parse_ucq;

    fn fig3() -> InDb {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
        let t = b.probabilistic_relation("T", &["a"]).unwrap();
        let u = b.probabilistic_relation("U", &["b"]).unwrap();
        b.insert_weighted(r, row(["a1"]), Weight::new(3.0)).unwrap();
        b.insert_weighted(r, row(["a2"]), Weight::new(0.5)).unwrap();
        b.insert_weighted(s, row(["a1", "b1"]), Weight::new(1.0))
            .unwrap();
        b.insert_weighted(s, row(["a1", "b2"]), Weight::new(2.0))
            .unwrap();
        b.insert_weighted(s, row(["a2", "b3"]), Weight::new(1.0))
            .unwrap();
        b.insert_weighted(s, row(["a2", "b4"]), Weight::new(4.0))
            .unwrap();
        b.insert_weighted(t, row(["a1"]), Weight::new(1.0)).unwrap();
        b.insert_weighted(t, row(["a2"]), Weight::new(2.0)).unwrap();
        b.insert_weighted(u, row(["b1"]), Weight::new(1.5)).unwrap();
        b.insert_weighted(u, row(["b3"]), Weight::new(0.5)).unwrap();
        b.build()
    }

    fn check_against_brute(query: &str, indb: &InDb) -> (f64, ConstructionStats) {
        let q = parse_ucq(query).unwrap();
        let mut builder = ConObddBuilder::for_query(indb, &q);
        let obdd = builder.build(&q).unwrap();
        let p = obdd.probability(|t| indb.probability(t));
        let brute = brute_force_query_probability(&q, indb).unwrap();
        assert!(
            (p - brute).abs() < 1e-9,
            "{query}: obdd {p} vs brute {brute}"
        );
        (p, builder.stats())
    }

    #[test]
    fn simple_join_uses_only_concatenations() {
        let indb = fig3();
        let (_, stats) = check_against_brute("Q() :- R(x), S(x, y)", &indb);
        assert_eq!(stats.syntheses, 0);
        assert_eq!(stats.lineage_fallbacks, 0);
        assert!(stats.concatenations > 0);
    }

    #[test]
    fn unions_with_separators_are_concatenated() {
        let indb = fig3();
        // The outer separator expansion is concatenation-based; the inner
        // per-value unions share the relation S, so they are synthesised on
        // small (per-value) diagrams — no lineage fallback is needed.
        let (_, stats) = check_against_brute("Q() :- R(x), S(x, y) ; Q() :- T(z), S(z, y)", &indb);
        assert_eq!(stats.lineage_fallbacks, 0);
        assert!(stats.concatenations > 0);
    }

    #[test]
    fn non_inversion_free_queries_still_build_correctly() {
        let indb = fig3();
        // H1 has no separator; the builder falls back to synthesis/lineage
        // but must still produce the exact probability.
        let (_, stats) = check_against_brute("Q() :- R(x), S(x, y) ; Q() :- S(u, v), U(v)", &indb);
        assert!(stats.syntheses + stats.lineage_fallbacks > 0);
    }

    #[test]
    fn hard_conjunctive_queries_fall_back_to_lineage() {
        let indb = fig3();
        let (p, stats) = check_against_brute("Q() :- R(x), S(x, y), U(y)", &indb);
        assert!(stats.lineage_fallbacks > 0);
        assert!(p > 0.0);
    }

    #[test]
    fn ground_queries_and_empty_queries() {
        let indb = fig3();
        check_against_brute("Q() :- R('a1')", &indb);
        check_against_brute("Q() :- R('a1'), S('a1', 'b1')", &indb);
        let q = parse_ucq("Q() :- R('zzz')").unwrap();
        let mut builder = ConObddBuilder::for_query(&indb, &q);
        let obdd = builder.build(&q).unwrap();
        assert!(!obdd.eval(|_| true));
    }

    #[test]
    fn conobdd_matches_synthesis_builder_diagram_size() {
        // Canonicity: with the same order the two constructions give the
        // same reduced OBDD, hence the same size (this is how the paper
        // validates the CUDD comparison in Section 5.2).
        let indb = fig3();
        let q = parse_ucq("Q() :- R(x), S(x, y)").unwrap();
        let mut builder = ConObddBuilder::for_query(&indb, &q);
        let fast = builder.build(&q).unwrap();
        let slow = SynthesisBuilder::new(builder.order())
            .from_query(&q, &indb)
            .unwrap();
        assert_eq!(fast.size(), slow.size());
        let pf = fast.probability(|t| indb.probability(t));
        let ps = slow.probability(|t| indb.probability(t));
        assert!((pf - ps).abs() < 1e-12);
    }

    #[test]
    fn inferred_pi_puts_separator_attributes_first() {
        let indb = fig3();
        let q = parse_ucq("Q() :- R(x), S(x, y)").unwrap();
        let pi = ConObddBuilder::infer_pi(&q, &indb);
        assert_eq!(pi.permutation("S", 2), vec![0, 1]);
        assert_eq!(pi.permutation("R", 1), vec![0]);
    }

    #[test]
    fn comparisons_inside_views_are_respected() {
        let indb = fig3();
        check_against_brute("Q() :- S(x, y), y like '%b1%'", &indb);
        check_against_brute("Q() :- R(x), S(x, y), x <> y", &indb);
    }

    #[test]
    fn deterministic_relations_vanish_from_the_diagram() {
        let mut b = InDbBuilder::new();
        let d = b.deterministic_relation("D", &["a"]).unwrap();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        b.insert_fact(d, row(["a1"])).unwrap();
        b.insert_fact(d, row(["a2"])).unwrap();
        b.insert_weighted(r, row(["a1"]), Weight::new(1.0)).unwrap();
        b.insert_weighted(r, row(["a2"]), Weight::new(3.0)).unwrap();
        let indb = b.build();
        let q = parse_ucq("Q() :- D(x), R(x)").unwrap();
        let mut builder = ConObddBuilder::for_query(&indb, &q);
        let obdd = builder.build(&q).unwrap();
        assert_eq!(obdd.size(), 2);
        let p = obdd.probability(|t| indb.probability(t));
        let brute = brute_force_query_probability(&q, &indb).unwrap();
        assert!((p - brute).abs() < 1e-12);
    }
}
