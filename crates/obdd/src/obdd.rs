//! The OBDD data structure.
//!
//! An [`Obdd`] is a reduced, ordered binary decision diagram over the tuple
//! variables of a probabilistic database, together with the [`VarOrder`] that
//! fixes the variable order `Π`. Each diagram owns its node store; nodes are
//! hash-consed so that structurally identical sub-diagrams are shared.
//!
//! Operations:
//!
//! * [`Obdd::apply_or`] / [`Obdd::apply_and`] — classical synthesis, running
//!   in `O(|G1| · |G2|)`;
//! * [`Obdd::concat_or`] / [`Obdd::concat_and`] and the n-ary
//!   [`Obdd::concat_many_or`] — the *concatenation* operation of Section 4.2
//!   for diagrams over disjoint, level-separated variable ranges: the
//!   `0`-sink (resp. `1`-sink) of the first diagram is redirected to the root
//!   of the second. Linear in the total size;
//! * [`Obdd::negate`] — swaps the sinks;
//! * [`Obdd::probability`] — Shannon-expansion probability, computed
//!   bottom-up without recursion so that very deep (concatenated) diagrams do
//!   not overflow the stack; correct for negative probabilities.

use std::collections::HashMap;
use std::sync::Arc;

use mv_pdb::TupleId;

use crate::error::ObddError;
use crate::order::VarOrder;
use crate::Result;

/// Index of a node inside an [`Obdd`] store.
pub type NodeId = u32;

/// The `false` sink.
pub const FALSE: NodeId = 0;
/// The `true` sink.
pub const TRUE: NodeId = 1;

/// Level value used for the two sink nodes.
pub const SINK_LEVEL: u32 = u32::MAX;

/// One internal node (or sink) of an OBDD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObddNode {
    /// The level (position in the variable order) of the node's variable;
    /// [`SINK_LEVEL`] for sinks.
    pub level: u32,
    /// Child followed when the variable is `false`.
    pub lo: NodeId,
    /// Child followed when the variable is `true`.
    pub hi: NodeId,
}

/// A reduced ordered binary decision diagram.
#[derive(Debug, Clone)]
pub struct Obdd {
    order: Arc<VarOrder>,
    nodes: Vec<ObddNode>,
    unique: HashMap<(u32, NodeId, NodeId), NodeId>,
    root: NodeId,
}

impl Obdd {
    fn empty(order: Arc<VarOrder>) -> Self {
        let nodes = vec![
            ObddNode {
                level: SINK_LEVEL,
                lo: FALSE,
                hi: FALSE,
            },
            ObddNode {
                level: SINK_LEVEL,
                lo: TRUE,
                hi: TRUE,
            },
        ];
        Obdd {
            order,
            nodes,
            unique: HashMap::new(),
            root: FALSE,
        }
    }

    /// The constant diagram `true` or `false`.
    pub fn constant(order: Arc<VarOrder>, value: bool) -> Self {
        let mut o = Obdd::empty(order);
        o.root = if value { TRUE } else { FALSE };
        o
    }

    /// The diagram of a single positive literal.
    pub fn literal(order: Arc<VarOrder>, tuple: TupleId) -> Result<Self> {
        let level = order
            .level_of(tuple)
            .ok_or_else(|| ObddError::UnknownVariable(tuple.to_string()))?;
        let mut o = Obdd::empty(order);
        let root = o.mk(level, FALSE, TRUE);
        o.root = root;
        Ok(o)
    }

    /// The diagram of a conjunction of positive literals (one DNF clause).
    pub fn clause(order: Arc<VarOrder>, clause: &[TupleId]) -> Result<Self> {
        let mut levels: Vec<u32> = clause
            .iter()
            .map(|&t| {
                order
                    .level_of(t)
                    .ok_or_else(|| ObddError::UnknownVariable(t.to_string()))
            })
            .collect::<Result<_>>()?;
        levels.sort_unstable();
        levels.dedup();
        let mut o = Obdd::empty(order);
        // Build bottom-up: the deepest literal points to TRUE.
        let mut child = TRUE;
        for &level in levels.iter().rev() {
            child = o.mk(level, FALSE, child);
        }
        o.root = child;
        Ok(o)
    }

    /// The shared variable order.
    pub fn order(&self) -> &Arc<VarOrder> {
        &self.order
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node behind an id.
    pub fn node(&self, id: NodeId) -> ObddNode {
        self.nodes[id as usize]
    }

    /// `true` when the id denotes a sink.
    pub fn is_sink(&self, id: NodeId) -> bool {
        id == TRUE || id == FALSE
    }

    /// The tuple variable labelling a node.
    pub fn tuple_of(&self, id: NodeId) -> Option<TupleId> {
        let node = self.node(id);
        if node.level == SINK_LEVEL {
            None
        } else {
            Some(self.order.tuple_at(node.level))
        }
    }

    /// Total number of nodes in the store (including the two sinks and any
    /// unreachable intermediate nodes).
    pub fn store_size(&self) -> usize {
        self.nodes.len()
    }

    /// Number of internal nodes reachable from the root ("the size of the
    /// OBDD" in the paper's terminology).
    pub fn size(&self) -> usize {
        self.reachable_ids()
            .into_iter()
            .filter(|&id| !self.is_sink(id))
            .count()
    }

    /// The width of the diagram: the maximum number of reachable nodes
    /// labelled with the same variable.
    pub fn width(&self) -> usize {
        let mut per_level: HashMap<u32, usize> = HashMap::new();
        for id in self.reachable_ids() {
            let node = self.node(id);
            if node.level != SINK_LEVEL {
                *per_level.entry(node.level).or_default() += 1;
            }
        }
        per_level.values().copied().max().unwrap_or(0)
    }

    /// Ids of all nodes reachable from the root (iterative DFS).
    pub fn reachable_ids(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if seen[id as usize] {
                continue;
            }
            seen[id as usize] = true;
            out.push(id);
            if !self.is_sink(id) {
                let node = self.node(id);
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        out
    }

    /// The smallest and largest levels of reachable internal nodes, if any.
    pub fn level_range(&self) -> Option<(u32, u32)> {
        let mut min = None;
        let mut max = None;
        for id in self.reachable_ids() {
            let node = self.node(id);
            if node.level == SINK_LEVEL {
                continue;
            }
            min = Some(min.map_or(node.level, |m: u32| m.min(node.level)));
            max = Some(max.map_or(node.level, |m: u32| m.max(node.level)));
        }
        Some((min?, max?))
    }

    /// Creates (or reuses) a node, applying the standard reduction rules.
    pub(crate) fn mk(&mut self, level: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        if let Some(&id) = self.unique.get(&(level, lo, hi)) {
            return id;
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(ObddNode { level, lo, hi });
        self.unique.insert((level, lo, hi), id);
        id
    }

    fn check_same_order(&self, other: &Obdd) -> Result<()> {
        if Arc::ptr_eq(&self.order, &other.order) || self.order == other.order {
            Ok(())
        } else {
            Err(ObddError::OrderMismatch)
        }
    }

    fn level(&self, id: NodeId) -> u32 {
        self.nodes[id as usize].level
    }

    /// Generic binary synthesis (`apply`).
    fn apply(&self, other: &Obdd, op: impl Fn(bool, bool) -> bool + Copy) -> Result<Obdd> {
        self.check_same_order(other)?;
        let mut result = Obdd::empty(Arc::clone(&self.order));
        let mut memo: HashMap<(NodeId, NodeId), NodeId> = HashMap::new();

        // Iterative two-phase (expand / combine) traversal to avoid deep
        // recursion on long chains.
        enum Frame {
            Expand(NodeId, NodeId),
            Combine(NodeId, NodeId, u32),
        }
        let mut stack = vec![Frame::Expand(self.root, other.root)];
        let mut results: Vec<NodeId> = Vec::new();
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Expand(u, v) => {
                    if let Some(&r) = memo.get(&(u, v)) {
                        results.push(r);
                        continue;
                    }
                    let u_sink = self.is_sink(u);
                    let v_sink = other.is_sink(v);
                    if u_sink && v_sink {
                        let r = if op(u == TRUE, v == TRUE) {
                            TRUE
                        } else {
                            FALSE
                        };
                        memo.insert((u, v), r);
                        results.push(r);
                        continue;
                    }
                    let lu = self.level(u);
                    let lv = other.level(v);
                    let m = lu.min(lv);
                    let (u0, u1) = if lu == m {
                        (self.node(u).lo, self.node(u).hi)
                    } else {
                        (u, u)
                    };
                    let (v0, v1) = if lv == m {
                        (other.node(v).lo, other.node(v).hi)
                    } else {
                        (v, v)
                    };
                    stack.push(Frame::Combine(u, v, m));
                    stack.push(Frame::Expand(u1, v1));
                    stack.push(Frame::Expand(u0, v0));
                }
                Frame::Combine(u, v, m) => {
                    let r1 = results.pop().expect("hi result available");
                    let r0 = results.pop().expect("lo result available");
                    let r = result.mk(m, r0, r1);
                    memo.insert((u, v), r);
                    results.push(r);
                }
            }
        }
        result.root = results.pop().expect("apply produces a root");
        Ok(result)
    }

    /// Synthesis of the disjunction `self ∨ other`.
    pub fn apply_or(&self, other: &Obdd) -> Result<Obdd> {
        self.apply(other, |a, b| a || b)
    }

    /// Synthesis of the conjunction `self ∧ other`.
    pub fn apply_and(&self, other: &Obdd) -> Result<Obdd> {
        self.apply(other, |a, b| a && b)
    }

    /// The negation of the diagram (the two sinks are swapped).
    pub fn negate(&self) -> Obdd {
        let mut result = Obdd::empty(Arc::clone(&self.order));
        if self.root == TRUE {
            result.root = FALSE;
            return result;
        }
        if self.root == FALSE {
            result.root = TRUE;
            return result;
        }
        // Rebuild bottom-up (children have strictly larger levels, so
        // processing ids in decreasing level order is safe).
        let mut ids = self.reachable_ids();
        ids.sort_by_key(|&id| std::cmp::Reverse(self.level(id)));
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        map.insert(FALSE, TRUE);
        map.insert(TRUE, FALSE);
        for id in ids {
            if self.is_sink(id) {
                continue;
            }
            let node = self.node(id);
            let lo = map[&node.lo];
            let hi = map[&node.hi];
            let new_id = result.mk(node.level, lo, hi);
            map.insert(id, new_id);
        }
        result.root = map[&self.root];
        result
    }

    /// Concatenation for disjunction (Section 4.2): every edge to the
    /// `0`-sink of `self` is redirected to the root of `other`, computing
    /// `self ∨ other` in time linear in the two diagrams.
    ///
    /// Requires the two diagrams to live on disjoint level ranges with every
    /// level of `self` smaller than every level of `other`; otherwise the
    /// result would violate the variable order and an [`ObddError`] is
    /// returned. Use [`Obdd::apply_or`] in that case.
    pub fn concat_or(&self, other: &Obdd) -> Result<Obdd> {
        self.concat(other, false)
    }

    /// Concatenation for conjunction: every edge to the `1`-sink of `self` is
    /// redirected to the root of `other`, computing `self ∧ other`.
    pub fn concat_and(&self, other: &Obdd) -> Result<Obdd> {
        self.concat(other, true)
    }

    fn concat(&self, other: &Obdd, and: bool) -> Result<Obdd> {
        self.check_same_order(other)?;
        if !self.levels_precede(other) {
            return Err(ObddError::OrderMismatch);
        }
        // Trivial cases.
        match (and, self.root) {
            (false, FALSE) | (true, TRUE) => return Ok(other.clone()),
            (false, TRUE) | (true, FALSE) => return Ok(self.clone()),
            _ => {}
        }
        let mut result = Obdd::empty(Arc::clone(&self.order));
        // Copy `other` first.
        let other_root = copy_into(other, &mut result, &HashMap::new());
        // Copy `self`, redirecting the appropriate sink to `other_root`.
        let mut redirect = HashMap::new();
        if and {
            redirect.insert(TRUE, other_root);
        } else {
            redirect.insert(FALSE, other_root);
        }
        let self_root = copy_into(self, &mut result, &redirect);
        result.root = self_root;
        Ok(result)
    }

    /// `true` when every reachable internal level of `self` is strictly less
    /// than every reachable internal level of `other` (or either diagram is
    /// constant).
    pub fn levels_precede(&self, other: &Obdd) -> bool {
        match (self.level_range(), other.level_range()) {
            (Some((_, max_a)), Some((min_b, _))) => max_a < min_b,
            _ => true,
        }
    }

    /// n-ary disjunctive concatenation: combines `parts` (ordered by level
    /// range) into a single diagram in one pass. Parts are connected by
    /// redirecting `0`-sinks of each part to the root of the next, so the
    /// total cost is linear in the sum of the part sizes.
    pub fn concat_many_or(order: Arc<VarOrder>, parts: &[Obdd]) -> Result<Obdd> {
        let mut result = Obdd::empty(Arc::clone(&order));
        let mut tail = FALSE;
        // Verify level separation pairwise (adjacent suffices since parts are
        // processed in order) and build from the last part backwards.
        for pair in parts.windows(2) {
            if !pair[0].levels_precede(&pair[1]) {
                return Err(ObddError::OrderMismatch);
            }
        }
        for part in parts.iter().rev() {
            if Arc::ptr_eq(&part.order, &order) || part.order == order {
                if part.root == TRUE {
                    tail = TRUE;
                    continue;
                }
                if part.root == FALSE {
                    continue;
                }
                let mut redirect = HashMap::new();
                redirect.insert(FALSE, tail);
                tail = copy_into(part, &mut result, &redirect);
            } else {
                return Err(ObddError::OrderMismatch);
            }
        }
        result.root = tail;
        Ok(result)
    }

    /// Evaluates the diagram under a truth assignment of the tuple variables.
    pub fn eval(&self, assignment: impl Fn(TupleId) -> bool) -> bool {
        let mut id = self.root;
        while !self.is_sink(id) {
            let node = self.node(id);
            let tuple = self.order.tuple_at(node.level);
            id = if assignment(tuple) { node.hi } else { node.lo };
        }
        id == TRUE
    }

    /// The probability of the Boolean function represented by the diagram,
    /// under the given per-tuple probabilities (Shannon expansion,
    /// Section 4.1). Valid for negative probabilities.
    pub fn probability(&self, prob_of: impl Fn(TupleId) -> f64) -> f64 {
        self.node_probabilities(prob_of)[self.root as usize]
    }

    /// The probability of the sub-diagram rooted at every node
    /// (`probUnder` in the paper's terminology). Index `i` of the returned
    /// vector is the probability of node `i`; unreachable nodes get correct
    /// values too (they are simply never used).
    pub fn node_probabilities(&self, prob_of: impl Fn(TupleId) -> f64) -> Vec<f64> {
        let mut prob = vec![0.0; self.nodes.len()];
        prob[TRUE as usize] = 1.0;
        prob[FALSE as usize] = 0.0;
        // Children always have strictly larger levels, so processing nodes by
        // decreasing level is a valid bottom-up order.
        let mut ids: Vec<NodeId> = (2..self.nodes.len() as NodeId).collect();
        ids.sort_by_key(|&id| std::cmp::Reverse(self.level(id)));
        for id in ids {
            let node = self.node(id);
            let p = prob_of(self.order.tuple_at(node.level));
            prob[id as usize] = (1.0 - p) * prob[node.lo as usize] + p * prob[node.hi as usize];
        }
        prob
    }
}

/// Copies the reachable part of `src` into `dst`, mapping sink ids through
/// `redirect` (entries default to the identity), and returns the id of the
/// copied root.
fn copy_into(src: &Obdd, dst: &mut Obdd, redirect: &HashMap<NodeId, NodeId>) -> NodeId {
    let map_sink =
        |id: NodeId, map: &HashMap<NodeId, NodeId>| -> NodeId { *map.get(&id).unwrap_or(&id) };
    if src.is_sink(src.root) {
        return map_sink(src.root, redirect);
    }
    let mut ids = src.reachable_ids();
    ids.sort_by_key(|&id| std::cmp::Reverse(src.level(id)));
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    map.insert(FALSE, map_sink(FALSE, redirect));
    map.insert(TRUE, map_sink(TRUE, redirect));
    for id in ids {
        if src.is_sink(id) {
            continue;
        }
        let node = src.node(id);
        let lo = map[&node.lo];
        let hi = map[&node.hi];
        let new_id = dst.mk(node.level, lo, hi);
        map.insert(id, new_id);
    }
    map[&src.root]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(n: u32) -> Arc<VarOrder> {
        Arc::new(VarOrder::from_tuples((0..n).map(TupleId)))
    }

    #[test]
    fn constants_and_literals() {
        let ord = order(3);
        let t = Obdd::constant(Arc::clone(&ord), true);
        let f = Obdd::constant(Arc::clone(&ord), false);
        assert_eq!(t.root(), TRUE);
        assert_eq!(f.root(), FALSE);
        assert_eq!(t.size(), 0);
        let x1 = Obdd::literal(Arc::clone(&ord), TupleId(1)).unwrap();
        assert_eq!(x1.size(), 1);
        assert!(x1.eval(|t| t == TupleId(1)));
        assert!(!x1.eval(|_| false));
        assert!(Obdd::literal(ord, TupleId(9)).is_err());
    }

    #[test]
    fn clause_builds_an_and_chain() {
        let ord = order(4);
        let c = Obdd::clause(Arc::clone(&ord), &[TupleId(2), TupleId(0)]).unwrap();
        assert_eq!(c.size(), 2);
        assert!(c.eval(|t| t == TupleId(0) || t == TupleId(2)));
        assert!(!c.eval(|t| t == TupleId(0)));
        let p = c.probability(|_| 0.5);
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn apply_or_and_match_truth_tables() {
        let ord = order(2);
        let x0 = Obdd::literal(Arc::clone(&ord), TupleId(0)).unwrap();
        let x1 = Obdd::literal(Arc::clone(&ord), TupleId(1)).unwrap();
        let or = x0.apply_or(&x1).unwrap();
        let and = x0.apply_and(&x1).unwrap();
        for mask in 0..4u8 {
            let assign = |t: TupleId| mask & (1 << t.0) != 0;
            assert_eq!(or.eval(assign), assign(TupleId(0)) || assign(TupleId(1)));
            assert_eq!(and.eval(assign), assign(TupleId(0)) && assign(TupleId(1)));
        }
        assert!((or.probability(|_| 0.5) - 0.75).abs() < 1e-12);
        assert!((and.probability(|_| 0.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reduction_shares_nodes_and_collapses_redundant_tests() {
        let ord = order(2);
        // x0 ∨ ¬x0 should reduce to the constant true.
        let x0 = Obdd::literal(Arc::clone(&ord), TupleId(0)).unwrap();
        let not_x0 = x0.negate();
        let taut = x0.apply_or(&not_x0).unwrap();
        assert_eq!(taut.root(), TRUE);
        assert_eq!(taut.size(), 0);
    }

    #[test]
    fn negate_swaps_semantics_and_probability() {
        let ord = order(3);
        let c = Obdd::clause(Arc::clone(&ord), &[TupleId(0), TupleId(1)]).unwrap();
        let n = c.negate();
        for mask in 0..8u8 {
            let assign = |t: TupleId| mask & (1 << t.0) != 0;
            assert_eq!(n.eval(assign), !c.eval(assign));
        }
        let p = c.probability(|_| 0.3);
        let np = n.probability(|_| 0.3);
        assert!((p + np - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concatenation_matches_synthesis_on_disjoint_blocks() {
        let ord = order(4);
        let a = Obdd::clause(Arc::clone(&ord), &[TupleId(0), TupleId(1)]).unwrap();
        let b = Obdd::clause(Arc::clone(&ord), &[TupleId(2), TupleId(3)]).unwrap();
        let by_concat = a.concat_or(&b).unwrap();
        let by_apply = a.apply_or(&b).unwrap();
        for mask in 0..16u8 {
            let assign = |t: TupleId| mask & (1 << t.0) != 0;
            assert_eq!(by_concat.eval(assign), by_apply.eval(assign));
        }
        assert!((by_concat.probability(|_| 0.5) - by_apply.probability(|_| 0.5)).abs() < 1e-12);
        // Size of a concatenation is the sum of the parts.
        assert_eq!(by_concat.size(), a.size() + b.size());
    }

    #[test]
    fn concat_and_matches_apply_and() {
        let ord = order(4);
        let a = Obdd::clause(Arc::clone(&ord), &[TupleId(0)]).unwrap();
        let b = Obdd::clause(Arc::clone(&ord), &[TupleId(3)]).unwrap();
        let c = a.concat_and(&b).unwrap();
        let d = a.apply_and(&b).unwrap();
        for mask in 0..16u8 {
            let assign = |t: TupleId| mask & (1 << t.0) != 0;
            assert_eq!(c.eval(assign), d.eval(assign));
        }
    }

    #[test]
    fn concatenation_rejects_interleaved_levels() {
        let ord = order(4);
        let a = Obdd::clause(Arc::clone(&ord), &[TupleId(0), TupleId(2)]).unwrap();
        let b = Obdd::clause(Arc::clone(&ord), &[TupleId(1), TupleId(3)]).unwrap();
        assert!(matches!(a.concat_or(&b), Err(ObddError::OrderMismatch)));
    }

    #[test]
    fn concat_many_or_combines_blocks_linearly() {
        let ord = order(6);
        let parts: Vec<Obdd> = (0..3)
            .map(|i| Obdd::clause(Arc::clone(&ord), &[TupleId(2 * i), TupleId(2 * i + 1)]).unwrap())
            .collect();
        let combined = Obdd::concat_many_or(Arc::clone(&ord), &parts).unwrap();
        assert_eq!(combined.size(), 6);
        // P = 1 - (1 - 0.25)^3 with p = 0.5 everywhere.
        let p = combined.probability(|_| 0.5);
        assert!((p - (1.0 - 0.75f64.powi(3))).abs() < 1e-12);
        // Width stays 1: this is the hallmark of inversion-free concatenation.
        assert_eq!(combined.width(), 1);
    }

    #[test]
    fn concat_many_or_handles_constants() {
        let ord = order(2);
        let parts = vec![
            Obdd::constant(Arc::clone(&ord), false),
            Obdd::clause(Arc::clone(&ord), &[TupleId(1)]).unwrap(),
        ];
        let combined = Obdd::concat_many_or(Arc::clone(&ord), &parts).unwrap();
        assert_eq!(combined.size(), 1);
        let parts = vec![
            Obdd::constant(Arc::clone(&ord), true),
            Obdd::clause(Arc::clone(&ord), &[TupleId(1)]).unwrap(),
        ];
        let combined = Obdd::concat_many_or(Arc::clone(&ord), &parts).unwrap();
        assert_eq!(combined.root(), TRUE);
    }

    #[test]
    fn order_mismatch_is_detected() {
        let a = Obdd::literal(order(2), TupleId(0)).unwrap();
        let b = Obdd::literal(order(3), TupleId(0)).unwrap();
        assert!(matches!(a.apply_or(&b), Err(ObddError::OrderMismatch)));
    }

    #[test]
    fn figure3_obdd_probability() {
        // Lineage X1Y1 ∨ X1Y2 ∨ X2Y3 ∨ X2Y4 in the order X1,Y1,Y2,X2,Y3,Y4.
        let ord = order(6);
        let x1 = 0u32;
        let y1 = 1u32;
        let y2 = 2u32;
        let x2 = 3u32;
        let y3 = 4u32;
        let y4 = 5u32;
        let clauses = [
            vec![TupleId(x1), TupleId(y1)],
            vec![TupleId(x1), TupleId(y2)],
            vec![TupleId(x2), TupleId(y3)],
            vec![TupleId(x2), TupleId(y4)],
        ];
        let mut acc = Obdd::constant(Arc::clone(&ord), false);
        for c in &clauses {
            let clause = Obdd::clause(Arc::clone(&ord), c).unwrap();
            acc = acc.apply_or(&clause).unwrap();
        }
        // P = 1 - (1 - p(1-(1-p)^2))^2 with p = 0.5.
        let inner = 0.5 * (1.0 - 0.25);
        let expected = 1.0 - (1.0 - inner) * (1.0 - inner);
        assert!((acc.probability(|_| 0.5) - expected).abs() < 1e-12);
        // The OBDD of Figure 3 has 6 internal nodes.
        assert_eq!(acc.size(), 6);
        assert_eq!(acc.width(), 1);
    }

    #[test]
    fn negative_probabilities_propagate_through_shannon_expansion() {
        let ord = order(2);
        let x0 = Obdd::literal(Arc::clone(&ord), TupleId(0)).unwrap();
        let x1 = Obdd::literal(Arc::clone(&ord), TupleId(1)).unwrap();
        let both = x0.apply_and(&x1).unwrap();
        let p = both.probability(|t| if t == TupleId(0) { -2.0 } else { 0.5 });
        assert!((p - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn node_probabilities_expose_prob_under() {
        let ord = order(2);
        let x0 = Obdd::literal(Arc::clone(&ord), TupleId(0)).unwrap();
        let x1 = Obdd::literal(Arc::clone(&ord), TupleId(1)).unwrap();
        let or = x0.apply_or(&x1).unwrap();
        let probs = or.node_probabilities(|_| 0.5);
        assert_eq!(probs[TRUE as usize], 1.0);
        assert_eq!(probs[FALSE as usize], 0.0);
        assert!((probs[or.root() as usize] - 0.75).abs() < 1e-12);
    }
}
