//! The OBDD handle type.
//!
//! An [`Obdd`] is a reduced, ordered binary decision diagram over the tuple
//! variables of a probabilistic database. Since the manager refactor it is a
//! cheap `{manager, root}` handle into a shared, hash-consed
//! [`ObddManager`](crate::ObddManager) arena: cloning a diagram, combining
//! two diagrams, or keeping thousands of per-view diagrams alive never
//! duplicates node storage.
//!
//! Operations:
//!
//! * [`Obdd::apply_or`] / [`Obdd::apply_and`] — classical synthesis, running
//!   in `O(|G1| · |G2|)` and memoised persistently in the manager;
//! * [`Obdd::concat_or`] / [`Obdd::concat_and`] and the n-ary
//!   [`Obdd::concat_many_or`] — the *concatenation* operation of Section 4.2
//!   for diagrams over disjoint, level-separated variable ranges: edges to
//!   the `0`-sink (resp. `1`-sink) of the first diagram are redirected to
//!   the root of the second. Linear in the *first* diagram only — the
//!   second diagram's nodes are reused in place;
//! * [`Obdd::negate`] — swaps the sinks (memoised involution);
//! * [`Obdd::probability`] — Shannon-expansion probability, computed
//!   bottom-up without recursion so that very deep (concatenated) diagrams
//!   do not overflow the stack; correct for negative probabilities.
//!   [`Obdd::probability_cached`] additionally reuses the manager's
//!   per-node probability cache (keyed by the weight epoch).
//!
//! Combining handles from two *different* managers is supported when their
//! variable orders are equal: the other operand is imported (copied) into
//! this handle's manager first. That fallback is the only remaining copy
//! path; production code keeps each pipeline inside one manager.

use std::sync::Arc;

use mv_pdb::TupleId;

use crate::error::ObddError;
use crate::manager::{concat_trivial, BoolOp, NodeProbs, ObddManager, ObddNodes};
use crate::order::VarOrder;
use crate::Result;

/// Index of a node inside an [`ObddManager`] arena.
pub type NodeId = u32;

/// The `false` sink.
pub const FALSE: NodeId = 0;
/// The `true` sink.
pub const TRUE: NodeId = 1;

/// Level value used for the two sink nodes.
pub const SINK_LEVEL: u32 = u32::MAX;

/// One internal node (or sink) of an OBDD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObddNode {
    /// The level (position in the variable order) of the node's variable;
    /// [`SINK_LEVEL`] for sinks.
    pub level: u32,
    /// Child followed when the variable is `false`.
    pub lo: NodeId,
    /// Child followed when the variable is `true`.
    pub hi: NodeId,
}

/// A reduced ordered binary decision diagram: a root inside a shared
/// [`ObddManager`]. Cloning is O(1).
#[derive(Debug, Clone)]
pub struct Obdd {
    manager: ObddManager,
    root: NodeId,
    /// The manager's compaction generation when the handle was taken. A
    /// compaction remaps every node id, so a handle from an earlier
    /// generation must never be dereferenced — unless its root was
    /// registered and the handle rehydrated via
    /// [`ObddManager::registered_obdd`]. Checked by `debug_assert` on every
    /// dereferencing operation.
    generation: u64,
}

impl Obdd {
    pub(crate) fn from_parts(manager: ObddManager, root: NodeId) -> Obdd {
        let generation = manager.generation();
        Obdd {
            manager,
            root,
            generation,
        }
    }

    /// Asserts (debug builds) that the arena has not been compacted since
    /// this handle was taken: post-compaction, the raw root id points at an
    /// arbitrary remapped node and silently reading it would return wrong
    /// diagrams/probabilities. Registered roots survive — rehydrate through
    /// [`ObddManager::registered_obdd`] instead of holding raw handles.
    #[inline]
    fn assert_current_generation(&self) {
        debug_assert_eq!(
            self.generation,
            self.manager.generation(),
            "stale Obdd handle dereferenced after an arena compaction; \
             register the root and rehydrate via ObddManager::registered_obdd"
        );
    }

    /// The constant diagram `true` or `false` (in a fresh single-diagram
    /// manager; use [`ObddManager::constant`] to build into a shared one).
    pub fn constant(order: Arc<VarOrder>, value: bool) -> Self {
        ObddManager::new(order).constant(value)
    }

    /// The diagram of a single positive literal (fresh manager; see
    /// [`ObddManager::literal`] for the shared-arena variant).
    pub fn literal(order: Arc<VarOrder>, tuple: TupleId) -> Result<Self> {
        ObddManager::new(order).literal(tuple)
    }

    /// The diagram of a conjunction of positive literals (fresh manager; see
    /// [`ObddManager::clause`] for the shared-arena variant).
    pub fn clause(order: Arc<VarOrder>, clause: &[TupleId]) -> Result<Self> {
        ObddManager::new(order).clause(clause)
    }

    /// The manager this handle lives in.
    pub fn manager(&self) -> &ObddManager {
        &self.manager
    }

    /// The shared variable order.
    pub fn order(&self) -> &Arc<VarOrder> {
        self.manager.order()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node behind an id (one shared-lock acquisition per call; use
    /// [`Obdd::nodes`] in traversal loops).
    pub fn node(&self, id: NodeId) -> ObddNode {
        self.assert_current_generation();
        self.manager.node_of(id)
    }

    /// A read guard over the manager's arena for tight loops.
    pub fn nodes(&self) -> ObddNodes<'_> {
        self.assert_current_generation();
        self.manager.nodes()
    }

    /// `true` when the id denotes a sink.
    pub fn is_sink(&self, id: NodeId) -> bool {
        id == TRUE || id == FALSE
    }

    /// The tuple variable labelling a node.
    pub fn tuple_of(&self, id: NodeId) -> Option<TupleId> {
        let node = self.node(id);
        if node.level == SINK_LEVEL {
            None
        } else {
            Some(self.order().tuple_at(node.level))
        }
    }

    /// Total number of nodes in the *shared* arena (including the two sinks
    /// and every node of every other diagram in the manager). A capacity
    /// figure, not the size of this diagram — see [`Obdd::size`].
    pub fn store_size(&self) -> usize {
        self.manager.num_nodes()
    }

    /// Number of internal nodes reachable from the root ("the size of the
    /// OBDD" in the paper's terminology).
    pub fn size(&self) -> usize {
        self.reachable_ids()
            .into_iter()
            .filter(|&id| !self.is_sink(id))
            .count()
    }

    /// The width of the diagram: the maximum number of reachable nodes
    /// labelled with the same variable.
    pub fn width(&self) -> usize {
        let ids = self.manager.reachable_of(self.root);
        let nodes = self.nodes();
        let mut per_level: fxhash::FxHashMap<u32, usize> = fxhash::FxHashMap::default();
        for id in ids {
            let level = nodes.level(id);
            if level != SINK_LEVEL {
                *per_level.entry(level).or_default() += 1;
            }
        }
        per_level.values().copied().max().unwrap_or(0)
    }

    /// Ids of all nodes reachable from the root (iterative DFS).
    pub fn reachable_ids(&self) -> Vec<NodeId> {
        self.assert_current_generation();
        self.manager.reachable_of(self.root)
    }

    /// The smallest and largest levels of reachable internal nodes, if any.
    pub fn level_range(&self) -> Option<(u32, u32)> {
        self.assert_current_generation();
        self.manager.level_range_of(self.root)
    }

    /// Resolves `other` into this handle's manager: a no-op when the arena
    /// is shared, an import (the only copy path left) when only the orders
    /// match, an [`ObddError::OrderMismatch`] otherwise.
    fn coresident_root(&self, other: &Obdd) -> Result<NodeId> {
        self.assert_current_generation();
        other.assert_current_generation();
        if self.manager.same_store(&other.manager) {
            return Ok(other.root);
        }
        self.check_same_order(other)?;
        Ok(self.manager.import_root(&other.manager, other.root))
    }

    fn check_same_order(&self, other: &Obdd) -> Result<()> {
        let a = self.order();
        let b = other.order();
        if Arc::ptr_eq(a, b) || a == b {
            Ok(())
        } else {
            Err(ObddError::OrderMismatch)
        }
    }

    /// Synthesis of the disjunction `self ∨ other`.
    pub fn apply_or(&self, other: &Obdd) -> Result<Obdd> {
        let b = self.coresident_root(other)?;
        let root = self.manager.apply_roots(BoolOp::Or, self.root, b);
        Ok(Obdd::from_parts(self.manager.clone(), root))
    }

    /// Synthesis of the conjunction `self ∧ other`.
    pub fn apply_and(&self, other: &Obdd) -> Result<Obdd> {
        let b = self.coresident_root(other)?;
        let root = self.manager.apply_roots(BoolOp::And, self.root, b);
        Ok(Obdd::from_parts(self.manager.clone(), root))
    }

    /// The negation of the diagram (the two sinks are swapped).
    pub fn negate(&self) -> Obdd {
        self.assert_current_generation();
        let root = self.manager.negate_root(self.root);
        Obdd::from_parts(self.manager.clone(), root)
    }

    /// Concatenation for disjunction (Section 4.2): every edge to the
    /// `0`-sink of `self` is redirected to the root of `other`, computing
    /// `self ∨ other` in time linear in `self` (the nodes of `other` are
    /// shared, not copied).
    ///
    /// Requires the two diagrams to live on disjoint level ranges with every
    /// level of `self` smaller than every level of `other`; otherwise the
    /// result would violate the variable order and an [`ObddError`] is
    /// returned. Use [`Obdd::apply_or`] in that case.
    pub fn concat_or(&self, other: &Obdd) -> Result<Obdd> {
        self.concat(other, false)
    }

    /// Concatenation for conjunction: every edge to the `1`-sink of `self`
    /// is redirected to the root of `other`, computing `self ∧ other`.
    pub fn concat_and(&self, other: &Obdd) -> Result<Obdd> {
        self.concat(other, true)
    }

    fn concat(&self, other: &Obdd, and: bool) -> Result<Obdd> {
        if !self.levels_precede(other) {
            return Err(ObddError::OrderMismatch);
        }
        let b = self.coresident_root(other)?;
        let root = self.manager.concat_roots(and, self.root, b);
        Ok(Obdd::from_parts(self.manager.clone(), root))
    }

    /// `true` when every reachable internal level of `self` is strictly less
    /// than every reachable internal level of `other` (or either diagram is
    /// constant).
    pub fn levels_precede(&self, other: &Obdd) -> bool {
        match (self.level_range(), other.level_range()) {
            (Some((_, max_a)), Some((min_b, _))) => max_a < min_b,
            _ => true,
        }
    }

    /// n-ary disjunctive concatenation: combines `parts` (ordered by level
    /// range) into a single diagram in one pass, linear in the sum of the
    /// part sizes. When all parts share one manager the result lives there
    /// and no nodes are copied; otherwise a fresh manager over `order` is
    /// populated by import.
    pub fn concat_many_or(order: Arc<VarOrder>, parts: &[Obdd]) -> Result<Obdd> {
        for part in parts {
            let po = part.order();
            if !(Arc::ptr_eq(po, &order) || **po == *order) {
                return Err(ObddError::OrderMismatch);
            }
        }
        // Level separation must hold across *all* pairs; walking back to
        // front with a running minimum handles constant parts in between.
        let mut min_later = u32::MAX;
        for part in parts.iter().rev() {
            if let Some((lo, hi)) = part.level_range() {
                if hi >= min_later {
                    return Err(ObddError::OrderMismatch);
                }
                min_later = lo;
            }
        }
        let manager = match parts.first() {
            Some(first) if parts.iter().all(|p| first.manager.same_store(&p.manager)) => {
                first.manager.clone()
            }
            _ => ObddManager::new(Arc::clone(&order)),
        };
        let mut tail = FALSE;
        for part in parts.iter().rev() {
            let root = manager.import_root(&part.manager, part.root);
            if root == TRUE {
                // X ∨ true = true, whatever the later parts contributed.
                tail = TRUE;
                continue;
            }
            tail = match concat_trivial(false, root, tail) {
                Some(t) => t,
                None => manager.concat_roots(false, root, tail),
            };
        }
        Ok(Obdd::from_parts(manager, tail))
    }

    /// Evaluates the diagram under a truth assignment of the tuple variables.
    pub fn eval(&self, assignment: impl Fn(TupleId) -> bool) -> bool {
        let nodes = self.nodes();
        let order = self.order();
        let mut id = self.root;
        while id != TRUE && id != FALSE {
            let node = nodes.node(id);
            let tuple = order.tuple_at(node.level);
            id = if assignment(tuple) { node.hi } else { node.lo };
        }
        id == TRUE
    }

    /// The probability of the Boolean function represented by the diagram,
    /// under the given per-tuple probabilities (Shannon expansion,
    /// Section 4.1). Valid for negative probabilities. Computed from
    /// scratch; see [`Obdd::probability_cached`] when `prob_of` is the
    /// database weight function shared by every diagram of the manager.
    pub fn probability(&self, prob_of: impl Fn(TupleId) -> f64) -> f64 {
        self.assert_current_generation();
        self.manager.node_probs_of(self.root, &prob_of)[&self.root]
    }

    /// Like [`Obdd::probability`], but per-node results are served from and
    /// stored into the manager's probability cache for the current weight
    /// epoch. `prob_of` **must** be the weight function the epoch stands
    /// for; call [`ObddManager::bump_weight_epoch`] when weights change.
    /// A root whose value is already cached for the epoch costs a single
    /// array probe.
    pub fn probability_cached(&self, prob_of: impl Fn(TupleId) -> f64) -> f64 {
        self.assert_current_generation();
        self.manager.root_prob_cached_of(self.root, &prob_of)
    }

    /// The probability of the sub-diagram rooted at every reachable node
    /// (`probUnder` in the paper's terminology), sinks included. Sparse:
    /// sized by this diagram, not by the shared arena.
    pub fn node_probabilities(&self, prob_of: impl Fn(TupleId) -> f64) -> NodeProbs {
        self.assert_current_generation();
        NodeProbs::from_map(self.manager.node_probs_of(self.root, &prob_of))
    }

    /// Cached variant of [`Obdd::node_probabilities`]; the same epoch
    /// contract as [`Obdd::probability_cached`] applies.
    pub fn node_probabilities_cached(&self, prob_of: impl Fn(TupleId) -> f64) -> NodeProbs {
        self.assert_current_generation();
        NodeProbs::from_map(self.manager.node_probs_cached_of(self.root, &prob_of))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(n: u32) -> Arc<VarOrder> {
        Arc::new(VarOrder::from_tuples((0..n).map(TupleId)))
    }

    #[test]
    fn constants_and_literals() {
        let ord = order(3);
        let t = Obdd::constant(Arc::clone(&ord), true);
        let f = Obdd::constant(Arc::clone(&ord), false);
        assert_eq!(t.root(), TRUE);
        assert_eq!(f.root(), FALSE);
        assert_eq!(t.size(), 0);
        let x1 = Obdd::literal(Arc::clone(&ord), TupleId(1)).unwrap();
        assert_eq!(x1.size(), 1);
        assert!(x1.eval(|t| t == TupleId(1)));
        assert!(!x1.eval(|_| false));
        assert!(Obdd::literal(ord, TupleId(9)).is_err());
    }

    #[test]
    fn clause_builds_an_and_chain() {
        let ord = order(4);
        let c = Obdd::clause(Arc::clone(&ord), &[TupleId(2), TupleId(0)]).unwrap();
        assert_eq!(c.size(), 2);
        assert!(c.eval(|t| t == TupleId(0) || t == TupleId(2)));
        assert!(!c.eval(|t| t == TupleId(0)));
        let p = c.probability(|_| 0.5);
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn apply_or_and_match_truth_tables() {
        let ord = order(2);
        let x0 = Obdd::literal(Arc::clone(&ord), TupleId(0)).unwrap();
        let x1 = Obdd::literal(Arc::clone(&ord), TupleId(1)).unwrap();
        let or = x0.apply_or(&x1).unwrap();
        let and = x0.apply_and(&x1).unwrap();
        for mask in 0..4u8 {
            let assign = |t: TupleId| mask & (1 << t.0) != 0;
            assert_eq!(or.eval(assign), assign(TupleId(0)) || assign(TupleId(1)));
            assert_eq!(and.eval(assign), assign(TupleId(0)) && assign(TupleId(1)));
        }
        assert!((or.probability(|_| 0.5) - 0.75).abs() < 1e-12);
        assert!((and.probability(|_| 0.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reduction_shares_nodes_and_collapses_redundant_tests() {
        let ord = order(2);
        // x0 ∨ ¬x0 should reduce to the constant true.
        let x0 = Obdd::literal(Arc::clone(&ord), TupleId(0)).unwrap();
        let not_x0 = x0.negate();
        let taut = x0.apply_or(&not_x0).unwrap();
        assert_eq!(taut.root(), TRUE);
        assert_eq!(taut.size(), 0);
    }

    #[test]
    fn negate_swaps_semantics_and_probability() {
        let ord = order(3);
        let c = Obdd::clause(Arc::clone(&ord), &[TupleId(0), TupleId(1)]).unwrap();
        let n = c.negate();
        for mask in 0..8u8 {
            let assign = |t: TupleId| mask & (1 << t.0) != 0;
            assert_eq!(n.eval(assign), !c.eval(assign));
        }
        let p = c.probability(|_| 0.3);
        let np = n.probability(|_| 0.3);
        assert!((p + np - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concatenation_matches_synthesis_on_disjoint_blocks() {
        let ord = order(4);
        let manager = ObddManager::new(Arc::clone(&ord));
        let a = manager.clause(&[TupleId(0), TupleId(1)]).unwrap();
        let b = manager.clause(&[TupleId(2), TupleId(3)]).unwrap();
        let by_concat = a.concat_or(&b).unwrap();
        let by_apply = a.apply_or(&b).unwrap();
        for mask in 0..16u8 {
            let assign = |t: TupleId| mask & (1 << t.0) != 0;
            assert_eq!(by_concat.eval(assign), by_apply.eval(assign));
        }
        assert!((by_concat.probability(|_| 0.5) - by_apply.probability(|_| 0.5)).abs() < 1e-12);
        // Canonicity in a shared arena: both routes reach the same root.
        assert_eq!(by_concat.root(), by_apply.root());
        // Size of a concatenation is the sum of the parts.
        assert_eq!(by_concat.size(), a.size() + b.size());
    }

    #[test]
    fn concat_and_matches_apply_and() {
        let ord = order(4);
        let a = Obdd::clause(Arc::clone(&ord), &[TupleId(0)]).unwrap();
        let b = Obdd::clause(Arc::clone(&ord), &[TupleId(3)]).unwrap();
        let c = a.concat_and(&b).unwrap();
        let d = a.apply_and(&b).unwrap();
        for mask in 0..16u8 {
            let assign = |t: TupleId| mask & (1 << t.0) != 0;
            assert_eq!(c.eval(assign), d.eval(assign));
        }
    }

    #[test]
    fn concatenation_rejects_interleaved_levels() {
        let ord = order(4);
        let a = Obdd::clause(Arc::clone(&ord), &[TupleId(0), TupleId(2)]).unwrap();
        let b = Obdd::clause(Arc::clone(&ord), &[TupleId(1), TupleId(3)]).unwrap();
        assert!(matches!(a.concat_or(&b), Err(ObddError::OrderMismatch)));
    }

    #[test]
    fn concat_many_or_combines_blocks_linearly() {
        let ord = order(6);
        let manager = ObddManager::new(Arc::clone(&ord));
        let parts: Vec<Obdd> = (0..3)
            .map(|i| {
                manager
                    .clause(&[TupleId(2 * i), TupleId(2 * i + 1)])
                    .unwrap()
            })
            .collect();
        let combined = Obdd::concat_many_or(Arc::clone(&ord), &parts).unwrap();
        // All parts share the manager, so no fresh arena was created.
        assert!(combined.manager().same_store(&manager));
        assert_eq!(combined.size(), 6);
        // P = 1 - (1 - 0.25)^3 with p = 0.5 everywhere.
        let p = combined.probability(|_| 0.5);
        assert!((p - (1.0 - 0.75f64.powi(3))).abs() < 1e-12);
        // Width stays 1: this is the hallmark of inversion-free concatenation.
        assert_eq!(combined.width(), 1);
    }

    #[test]
    fn concat_many_or_handles_constants() {
        let ord = order(2);
        let parts = vec![
            Obdd::constant(Arc::clone(&ord), false),
            Obdd::clause(Arc::clone(&ord), &[TupleId(1)]).unwrap(),
        ];
        let combined = Obdd::concat_many_or(Arc::clone(&ord), &parts).unwrap();
        assert_eq!(combined.size(), 1);
        let parts = vec![
            Obdd::constant(Arc::clone(&ord), true),
            Obdd::clause(Arc::clone(&ord), &[TupleId(1)]).unwrap(),
        ];
        let combined = Obdd::concat_many_or(Arc::clone(&ord), &parts).unwrap();
        assert_eq!(combined.root(), TRUE);
    }

    #[test]
    fn concat_many_or_on_empty_and_singleton_lists() {
        // Regression: the n-ary fold must behave on degenerate part lists.
        let ord = order(3);
        let empty = Obdd::concat_many_or(Arc::clone(&ord), &[]).unwrap();
        assert_eq!(empty.root(), FALSE);
        assert_eq!(empty.size(), 0);
        let single = Obdd::clause(Arc::clone(&ord), &[TupleId(0), TupleId(2)]).unwrap();
        let combined =
            Obdd::concat_many_or(Arc::clone(&ord), std::slice::from_ref(&single)).unwrap();
        assert_eq!(combined.size(), single.size());
        for mask in 0..8u8 {
            let assign = |t: TupleId| mask & (1 << t.0) != 0;
            assert_eq!(combined.eval(assign), single.eval(assign));
        }
        // A singleton in its own manager is passed through without copying.
        let same_manager =
            Obdd::concat_many_or(single.order().clone(), std::slice::from_ref(&single)).unwrap();
        assert!(same_manager.manager().same_store(single.manager()));
        assert_eq!(same_manager.root(), single.root());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale Obdd handle")]
    fn unregistered_handles_cannot_be_dereferenced_after_compaction() {
        // Regression for the compact/weight-epoch audit: a handle whose
        // root was never registered survives the compaction as a raw id
        // into a remapped arena — dereferencing it used to silently read
        // whatever node now sits there.
        let ord = order(4);
        let manager = ObddManager::new(Arc::clone(&ord));
        let stale = manager.clause(&[TupleId(0), TupleId(1)]).unwrap();
        manager.compact();
        let _ = stale.probability(|_| 0.5);
    }

    #[test]
    fn registered_handles_rehydrate_across_compaction() {
        let ord = order(4);
        let manager = ObddManager::new(Arc::clone(&ord));
        let diagram = manager.clause(&[TupleId(0), TupleId(1)]).unwrap();
        let before = diagram.probability(|_| 0.5);
        let token = manager.register_root(diagram.root());
        manager.compact();
        // The raw handle is stale; the registered root rehydrates into a
        // current-generation handle with the same semantics.
        let fresh = manager.registered_obdd(token).unwrap();
        assert!((fresh.probability(|_| 0.5) - before).abs() < 1e-12);
    }

    #[test]
    fn order_mismatch_is_detected() {
        let a = Obdd::literal(order(2), TupleId(0)).unwrap();
        let b = Obdd::literal(order(3), TupleId(0)).unwrap();
        assert!(matches!(a.apply_or(&b), Err(ObddError::OrderMismatch)));
    }

    #[test]
    fn cross_manager_apply_imports_the_other_operand() {
        // Equal orders in two different managers: the result is computed in
        // the left operand's manager.
        let ord = order(2);
        let a = Obdd::literal(Arc::clone(&ord), TupleId(0)).unwrap();
        let b = Obdd::literal(Arc::clone(&ord), TupleId(1)).unwrap();
        assert!(!a.manager().same_store(b.manager()));
        let or = a.apply_or(&b).unwrap();
        assert!(or.manager().same_store(a.manager()));
        assert!((or.probability(|_| 0.5) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn figure3_obdd_probability() {
        // Lineage X1Y1 ∨ X1Y2 ∨ X2Y3 ∨ X2Y4 in the order X1,Y1,Y2,X2,Y3,Y4.
        let ord = order(6);
        let manager = ObddManager::new(Arc::clone(&ord));
        let x1 = 0u32;
        let y1 = 1u32;
        let y2 = 2u32;
        let x2 = 3u32;
        let y3 = 4u32;
        let y4 = 5u32;
        let clauses = [
            vec![TupleId(x1), TupleId(y1)],
            vec![TupleId(x1), TupleId(y2)],
            vec![TupleId(x2), TupleId(y3)],
            vec![TupleId(x2), TupleId(y4)],
        ];
        let mut acc = manager.constant(false);
        for c in &clauses {
            let clause = manager.clause(c).unwrap();
            acc = acc.apply_or(&clause).unwrap();
        }
        // P = 1 - (1 - p(1-(1-p)^2))^2 with p = 0.5.
        let inner = 0.5 * (1.0 - 0.25);
        let expected = 1.0 - (1.0 - inner) * (1.0 - inner);
        assert!((acc.probability(|_| 0.5) - expected).abs() < 1e-12);
        // The OBDD of Figure 3 has 6 internal nodes.
        assert_eq!(acc.size(), 6);
        assert_eq!(acc.width(), 1);
    }

    #[test]
    fn negative_probabilities_propagate_through_shannon_expansion() {
        let ord = order(2);
        let x0 = Obdd::literal(Arc::clone(&ord), TupleId(0)).unwrap();
        let x1 = Obdd::literal(Arc::clone(&ord), TupleId(1)).unwrap();
        let both = x0.apply_and(&x1).unwrap();
        let p = both.probability(|t| if t == TupleId(0) { -2.0 } else { 0.5 });
        assert!((p - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn node_probabilities_expose_prob_under() {
        let ord = order(2);
        let x0 = Obdd::literal(Arc::clone(&ord), TupleId(0)).unwrap();
        let x1 = Obdd::literal(Arc::clone(&ord), TupleId(1)).unwrap();
        let or = x0.apply_or(&x1).unwrap();
        let probs = or.node_probabilities(|_| 0.5);
        assert_eq!(probs.get(TRUE), 1.0);
        assert_eq!(probs.get(FALSE), 0.0);
        assert!((probs.get(or.root()) - 0.75).abs() < 1e-12);
        // Sparse: sized by the diagram (2 internal nodes + 2 sinks), not by
        // the arena.
        assert_eq!(probs.len(), or.size() + 2);
    }
}
