//! The shared, hash-consed OBDD node manager.
//!
//! An [`ObddManager`] owns a single append-only arena of `(level, lo, hi)`
//! nodes together with the global *unique table* that hash-conses them: a
//! given `(level, lo, hi)` triple exists at most once per manager, so
//! structurally identical sub-diagrams are shared by **every** diagram built
//! in the manager — across views, across blocks of the MV-index, and across
//! queries. An [`Obdd`](crate::Obdd) is just a cheap `{manager, root}`
//! handle; cloning one never copies nodes.
//!
//! # Cache architecture
//!
//! The arena is append-only with dense `u32` ids, and every hot-path cache
//! exploits that instead of going through a general-purpose hash map:
//!
//! * the **unique table** (`(level, lo, hi) → NodeId`) — the one table that
//!   must stay exact forever (evicting it would break canonicity). It is a
//!   hash map, but keyed with the vendored FxHash mix instead of SipHash;
//! * the **computed table** — a bounded, *lossy*, direct-mapped table shared
//!   by `apply` (∨/∧) and `concat` steps, in the style of mature BDD
//!   packages (CUDD/BuDDy). Exactly one slot is probed per lookup; a
//!   colliding insert overwrites the previous entry and is counted in
//!   [`ManagerStats::cache_evictions`]. Losing an entry only means a later
//!   step may be recomputed — results always flow through the operation's
//!   own explicit stack, so correctness never depends on the table. The
//!   table starts at [`ObddManager::COMPUTED_TABLE_MIN`] slots and doubles
//!   with arena growth up to [`ObddManager::COMPUTED_TABLE_MAX`]
//!   ([`ManagerStats::computed_resizes`] counts the doublings), so memory
//!   stays bounded no matter how long a manager lives;
//! * the **negate memo** — a dense `Vec<NodeId>` side table indexed by node
//!   id (`NONE` = not negated yet). Negation is an involution, so both
//!   directions are recorded; the memo is exact and never evicted;
//! * the **probability cache** — a dense `Vec` side table of
//!   `(epoch stamp, value)` pairs indexed by node id. Entries are valid only
//!   when their stamp matches the manager's current *weight epoch*;
//!   [`ObddManager::bump_weight_epoch`] therefore invalidates the whole
//!   cache in O(1) by bumping a counter — nothing is cleared or freed.
//!
//! # Memory model
//!
//! The arena is **append-only**: nodes are never mutated or freed while the
//! manager is alive, which is what makes handles cheap and lets concurrent
//! readers traverse diagrams lock-free of each other (a [`std::sync::RwLock`]
//! guards growth; read-only operations take a shared guard once per
//! operation, not per node). Unreachable nodes are reclaimed only when the
//! last handle drops the manager. The dense side tables grow in lockstep
//! with the arena (a few bytes per node); the computed table is bounded as
//! described above.
//!
//! # Traversal discipline
//!
//! Every operation — `apply`, `negate`, `concat`, the probability pass, and
//! reachability — runs on an **explicit stack**, never on the call stack, so
//! chain diagrams hundreds of thousands of levels deep (the output of
//! repeated concatenation) cannot overflow the thread stack. The regression
//! suite builds 100 000-level chains and runs all of the above with the
//! default stack size.
//!
//! # Threading
//!
//! `ObddManager` is `Send + Sync`; handles can be shared across threads.
//! Building operations serialise on the manager's write lock, so parallel
//! workloads should give each worker its own manager *shard* (see
//! `MvdbSession` in `mv-core`) and share only read-mostly managers such as
//! the compiled MV-index. Combining diagrams from two different managers
//! with equal variable orders transparently imports one side into the other
//! — correct, but a copy; keep hot paths inside one manager.

use std::fmt;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard};

use fxhash::{FxHashMap, FxHashSet};
use mv_pdb::TupleId;

use crate::error::ObddError;
use crate::obdd::{Obdd, ObddNode, FALSE, SINK_LEVEL, TRUE};
use crate::order::VarOrder;
use crate::{NodeId, Result};

/// Sentinel for "no entry" in dense side tables indexed by [`NodeId`].
const NONE: NodeId = NodeId::MAX;

/// The two Boolean synthesis operators the computed table distinguishes
/// (concatenation adds two more tags internally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BoolOp {
    /// Disjunction.
    Or,
    /// Conjunction.
    And,
}

impl BoolOp {
    fn tag(self) -> u32 {
        match self {
            BoolOp::Or => TAG_OR,
            BoolOp::And => TAG_AND,
        }
    }
}

/// Computed-table operation tags. `TAG_EMPTY` marks a vacant slot.
const TAG_OR: u32 = 0;
const TAG_AND: u32 = 1;
const TAG_CONCAT_OR: u32 = 2;
const TAG_CONCAT_AND: u32 = 3;
const TAG_EMPTY: u32 = u32::MAX;

/// One slot of the direct-mapped computed table: the full key (operation
/// tag + operands) plus the result, 16 bytes per slot.
#[derive(Debug, Clone, Copy)]
struct ComputedSlot {
    tag: u32,
    a: NodeId,
    b: NodeId,
    result: NodeId,
}

const EMPTY_SLOT: ComputedSlot = ComputedSlot {
    tag: TAG_EMPTY,
    a: 0,
    b: 0,
    result: 0,
};

/// The bounded, lossy, direct-mapped computed table shared by apply and
/// concat. Exactly one slot is probed per lookup; collisions overwrite.
#[derive(Debug)]
struct ComputedTable {
    slots: Vec<ComputedSlot>,
    mask: usize,
}

impl ComputedTable {
    fn with_capacity(capacity: usize) -> ComputedTable {
        debug_assert!(capacity.is_power_of_two());
        ComputedTable {
            slots: vec![EMPTY_SLOT; capacity],
            mask: capacity - 1,
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The one slot a key maps to: an FxHash-style multiply-rotate mix of
    /// the packed key, taking the high bits (where the multiply concentrates
    /// entropy).
    #[inline]
    fn slot_of(&self, tag: u32, a: NodeId, b: NodeId) -> usize {
        let key = ((u64::from(a) << 32) | u64::from(b)).rotate_left(5) ^ u64::from(tag);
        let h = key.wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        ((h >> 32) as usize) & self.mask
    }

    #[inline]
    fn lookup(&self, tag: u32, a: NodeId, b: NodeId) -> Option<NodeId> {
        let slot = self.slots[self.slot_of(tag, a, b)];
        (slot.tag == tag && slot.a == a && slot.b == b).then_some(slot.result)
    }

    /// Stores a result, returning `true` when a *different* live entry was
    /// evicted (the lossy part of the design).
    #[inline]
    fn insert(&mut self, tag: u32, a: NodeId, b: NodeId, result: NodeId) -> bool {
        let index = self.slot_of(tag, a, b);
        let previous = self.slots[index];
        self.slots[index] = ComputedSlot { tag, a, b, result };
        previous.tag != TAG_EMPTY && (previous.tag, previous.a, previous.b) != (tag, a, b)
    }

    /// Doubles the table and rehashes the live entries (colliding survivors
    /// are dropped — the table is lossy by contract).
    fn grow_to(&mut self, capacity: usize) {
        debug_assert!(capacity.is_power_of_two() && capacity > self.capacity());
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; capacity]);
        self.mask = capacity - 1;
        for slot in old {
            if slot.tag != TAG_EMPTY {
                let index = self.slot_of(slot.tag, slot.a, slot.b);
                self.slots[index] = slot;
            }
        }
    }
}

/// Why a guarded apply fold gave up (recorded on the guard; the synthesis
/// entry point converts it into the matching [`ObddError`]).
#[derive(Debug)]
enum GuardTrip {
    /// The arena grew past the guard's node cap mid-apply.
    Nodes,
    /// The cooperative budget (deadline / step limit / cancellation)
    /// tripped.
    Budget(mv_query::BudgetError),
}

/// A cooperative abort guard installed around bounded synthesis folds.
/// [`Store::apply`] polls it between frames: the node cap is compared on
/// every frame (one integer compare), the budget every
/// [`ApplyGuard::TICK_MASK`] frames (an `Instant::now` call). A trip makes
/// the in-flight apply return a dummy root and records why; the installing
/// fold checks [`ApplyGuard::tripped`] after every apply and surfaces the
/// typed error. Nodes interned before the trip stay in the arena —
/// hash-consing makes them reusable, never wrong.
#[derive(Debug)]
struct ApplyGuard {
    /// Abort once `nodes.len()` exceeds this (absolute arena size).
    node_cap: usize,
    /// Cooperative deadline/step budget, polled coarsely.
    budget: Option<mv_query::EvalBudget>,
    /// Why the guard tripped, if it did.
    tripped: Option<GuardTrip>,
    /// Frame counter driving the coarse budget poll.
    tick: u32,
}

impl ApplyGuard {
    /// Budget poll period: every 1024 apply frames.
    const TICK_MASK: u32 = 0x3ff;
}

/// One entry of the dense probability cache: the value is valid only when
/// `stamp` equals the current weight epoch's stamp (0 = never written).
#[derive(Debug, Clone, Copy)]
struct ProbSlot {
    stamp: u64,
    value: f64,
}

const EMPTY_PROB: ProbSlot = ProbSlot {
    stamp: 0,
    value: 0.0,
};

/// Counters describing a manager's workload, exposed by
/// [`ObddManager::stats`]. All counters are cumulative since the manager was
/// created; rates are derived through [`ManagerStats::unique_hit_rate`] and
/// [`ManagerStats::apply_cache_hit_rate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Internal nodes ever allocated in the arena (sinks excluded).
    pub nodes_allocated: u64,
    /// Largest arena size observed (sinks included). For a single manager
    /// the arena is append-only, so this equals the current size; aggregated
    /// stats ([`ManagerStats`] addition) keep the **maximum** over the
    /// summed managers — the largest single arena, not a sum of peaks.
    pub peak_nodes: u64,
    /// `mk` calls answered by the unique table (an existing node was reused).
    pub unique_hits: u64,
    /// `mk` calls that allocated a fresh node.
    pub unique_misses: u64,
    /// Apply/negate/concat steps answered by the computed table or the
    /// negate memo.
    pub apply_cache_hits: u64,
    /// Apply/negate/concat steps that had to compute a result node.
    pub apply_cache_misses: u64,
    /// Per-node probabilities served from the weight-epoch cache.
    pub prob_cache_hits: u64,
    /// Per-node probabilities computed and stamped into the cache.
    pub prob_cache_misses: u64,
    /// Live computed-table entries overwritten by a colliding insert. The
    /// apply/concat table is direct-mapped and lossy: an eviction means the
    /// overwritten step may be recomputed later, never that a result is
    /// wrong. A high rate relative to `apply_cache_misses` suggests the
    /// table capped out at [`ObddManager::COMPUTED_TABLE_MAX`] under a
    /// working set larger than the table.
    pub cache_evictions: u64,
    /// Times the computed table doubled to track arena growth (bounded by
    /// `log2(COMPUTED_TABLE_MAX / COMPUTED_TABLE_MIN)` per manager). Live
    /// entries are rehashed on growth; colliding survivors are dropped.
    pub computed_resizes: u64,
    /// Internal nodes copied into this arena from a *different* manager —
    /// the only remaining deep-copy path. Zero on production pipelines,
    /// which keep each diagram family inside one manager.
    pub imported_nodes: u64,
    /// Times the arena was compacted ([`ObddManager::compact`]): all nodes
    /// unreachable from the registered roots dropped, survivors re-interned
    /// into a fresh arena.
    pub compactions: u64,
    /// Nodes reclaimed across all compactions (arena size before minus
    /// after, summed).
    pub reclaimed_nodes: u64,
    /// Gauge: current arena size (sinks included) at the time the snapshot
    /// was taken. Aggregation sums across managers (total resident nodes);
    /// [`ManagerStats::since`] keeps the current value — a gauge has no
    /// meaningful delta.
    pub live_nodes: u64,
    /// Gauge: approximate heap bytes held by the arena and its side tables
    /// (nodes, unique table, computed table, negate memo, probability
    /// cache) at snapshot time. Aggregates and deltas like `live_nodes`.
    pub arena_bytes: u64,
}

impl ManagerStats {
    /// Fraction of `mk` calls that reused an existing node (0 when no `mk`
    /// calls were made).
    pub fn unique_hit_rate(&self) -> f64 {
        rate(self.unique_hits, self.unique_misses)
    }

    /// Fraction of apply/negate/concat steps answered by a memo.
    pub fn apply_cache_hit_rate(&self) -> f64 {
        rate(self.apply_cache_hits, self.apply_cache_misses)
    }

    /// Fraction of per-node probability lookups served from the cache.
    pub fn prob_cache_hit_rate(&self) -> f64 {
        rate(self.prob_cache_hits, self.prob_cache_misses)
    }

    /// The work done since an `earlier` snapshot of the *same* manager:
    /// cumulative counters are subtracted (saturating), while `peak_nodes`
    /// keeps the current value — a high-water mark has no meaningful delta.
    pub fn since(&self, earlier: &ManagerStats) -> ManagerStats {
        ManagerStats {
            nodes_allocated: self.nodes_allocated.saturating_sub(earlier.nodes_allocated),
            peak_nodes: self.peak_nodes,
            unique_hits: self.unique_hits.saturating_sub(earlier.unique_hits),
            unique_misses: self.unique_misses.saturating_sub(earlier.unique_misses),
            apply_cache_hits: self
                .apply_cache_hits
                .saturating_sub(earlier.apply_cache_hits),
            apply_cache_misses: self
                .apply_cache_misses
                .saturating_sub(earlier.apply_cache_misses),
            prob_cache_hits: self.prob_cache_hits.saturating_sub(earlier.prob_cache_hits),
            prob_cache_misses: self
                .prob_cache_misses
                .saturating_sub(earlier.prob_cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            computed_resizes: self
                .computed_resizes
                .saturating_sub(earlier.computed_resizes),
            imported_nodes: self.imported_nodes.saturating_sub(earlier.imported_nodes),
            compactions: self.compactions.saturating_sub(earlier.compactions),
            reclaimed_nodes: self.reclaimed_nodes.saturating_sub(earlier.reclaimed_nodes),
            live_nodes: self.live_nodes,
            arena_bytes: self.arena_bytes,
        }
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

impl std::ops::Add for ManagerStats {
    type Output = ManagerStats;

    /// Aggregates counters across managers. Cumulative counters add;
    /// `peak_nodes` takes the maximum (the largest single arena — summing
    /// high-water marks of independent arenas has no physical meaning).
    fn add(self, rhs: ManagerStats) -> ManagerStats {
        ManagerStats {
            nodes_allocated: self.nodes_allocated + rhs.nodes_allocated,
            peak_nodes: self.peak_nodes.max(rhs.peak_nodes),
            unique_hits: self.unique_hits + rhs.unique_hits,
            unique_misses: self.unique_misses + rhs.unique_misses,
            apply_cache_hits: self.apply_cache_hits + rhs.apply_cache_hits,
            apply_cache_misses: self.apply_cache_misses + rhs.apply_cache_misses,
            prob_cache_hits: self.prob_cache_hits + rhs.prob_cache_hits,
            prob_cache_misses: self.prob_cache_misses + rhs.prob_cache_misses,
            cache_evictions: self.cache_evictions + rhs.cache_evictions,
            computed_resizes: self.computed_resizes + rhs.computed_resizes,
            imported_nodes: self.imported_nodes + rhs.imported_nodes,
            compactions: self.compactions + rhs.compactions,
            reclaimed_nodes: self.reclaimed_nodes + rhs.reclaimed_nodes,
            live_nodes: self.live_nodes + rhs.live_nodes,
            arena_bytes: self.arena_bytes + rhs.arena_bytes,
        }
    }
}

impl std::iter::Sum for ManagerStats {
    fn sum<I: Iterator<Item = ManagerStats>>(iter: I) -> ManagerStats {
        iter.fold(ManagerStats::default(), |a, b| a + b)
    }
}

/// What one arena compaction did, returned by [`ObddManager::compact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Arena size (sinks included) before the compaction.
    pub before_nodes: usize,
    /// Arena size after: the nodes reachable from registered roots.
    pub after_nodes: usize,
    /// Approximate arena + side-table bytes before.
    pub before_bytes: u64,
    /// Approximate bytes after.
    pub after_bytes: u64,
    /// The generation the compaction produced.
    pub generation: u64,
}

impl CompactOutcome {
    /// Nodes reclaimed by this compaction.
    pub fn reclaimed(&self) -> usize {
        self.before_nodes - self.after_nodes
    }
}

/// Everything behind the manager's lock.
struct Store {
    nodes: Vec<ObddNode>,
    /// The exact unique table (FxHash-keyed): canonicity.
    unique: FxHashMap<(u32, NodeId, NodeId), NodeId>,
    /// The lossy, direct-mapped computed table for apply and concat steps.
    computed: ComputedTable,
    /// Dense `node → ¬node` side table (`NONE` = not negated yet; sinks
    /// pre-seeded). Exact and never evicted.
    negate_memo: Vec<NodeId>,
    /// Dense per-node probability cache; entries are valid only for the
    /// current weight epoch's stamp.
    prob_cache: Vec<ProbSlot>,
    weight_epoch: u64,
    stats: ManagerStats,
    /// Abort guard installed only around bounded synthesis folds (`None`
    /// on every other path — one `Option` check per apply frame).
    guard: Option<ApplyGuard>,
    /// Compaction generation: bumped by every [`Store::compact`]. Raw
    /// [`NodeId`]s taken before a compaction are only valid within the
    /// generation they were taken in.
    generation: u64,
    /// Live roots registered against compaction: `token → root`. Compaction
    /// keeps exactly the nodes reachable from these roots (plus the sinks)
    /// and remaps each entry onto the fresh arena.
    registered: FxHashMap<u64, NodeId>,
    /// Next root-registration token.
    next_token: u64,
}

impl Store {
    fn new() -> Store {
        let nodes = vec![
            ObddNode {
                level: SINK_LEVEL,
                lo: FALSE,
                hi: FALSE,
            },
            ObddNode {
                level: SINK_LEVEL,
                lo: TRUE,
                hi: TRUE,
            },
        ];
        Store {
            nodes,
            unique: FxHashMap::default(),
            computed: ComputedTable::with_capacity(ObddManager::COMPUTED_TABLE_MIN),
            // ¬false = true, ¬true = false.
            negate_memo: vec![TRUE, FALSE],
            prob_cache: vec![EMPTY_PROB; 2],
            weight_epoch: 0,
            stats: ManagerStats {
                peak_nodes: 2,
                ..ManagerStats::default()
            },
            guard: None,
            generation: 0,
            registered: FxHashMap::default(),
            next_token: 0,
        }
    }

    /// Approximate heap bytes held by the arena and its side tables.
    fn arena_bytes(&self) -> u64 {
        let nodes = self.nodes.capacity() * std::mem::size_of::<ObddNode>();
        // FxHashMap entry ≈ key + value + one byte of control metadata,
        // over-provisioned by the load factor (≈ 8/7 rounded up to 2× for
        // capacity slack) — an estimate, not an allocator audit.
        let unique =
            self.unique.capacity() * (std::mem::size_of::<((u32, NodeId, NodeId), NodeId)>() + 1);
        let computed = self.computed.capacity() * std::mem::size_of::<ComputedSlot>();
        let negate = self.negate_memo.capacity() * std::mem::size_of::<NodeId>();
        let prob = self.prob_cache.capacity() * std::mem::size_of::<ProbSlot>();
        (nodes + unique + computed + negate + prob) as u64
    }

    /// Compacts the arena: every node unreachable from a registered root is
    /// dropped, survivors are re-interned bottom-up into a fresh store
    /// (fresh unique table, reset computed table / negate memo /
    /// probability cache), registered roots are remapped in place, and the
    /// generation and weight epoch are bumped — so raw pre-compaction
    /// [`NodeId`]s and stale probability stamps can never resurface.
    /// Returns `(before_nodes, after_nodes)`.
    fn compact(&mut self) -> (usize, usize) {
        let before_nodes = self.nodes.len();
        // Mark: everything reachable from a registered root (sinks always
        // survive — `Store::new` seeds them).
        let mut seen = FxHashSet::default();
        let mut live: Vec<NodeId> = Vec::new();
        for &root in self.registered.values() {
            for id in self.reachable(root) {
                if seen.insert(id) {
                    live.push(id);
                }
            }
        }
        // Rebuild bottom-up (children strictly deeper than parents, sinks
        // at SINK_LEVEL = MAX sort first) via `mk`, exactly like `import`.
        live.sort_by_key(|&id| std::cmp::Reverse(self.level(id)));
        let mut fresh = Store::new();
        let mut map: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        map.insert(FALSE, FALSE);
        map.insert(TRUE, TRUE);
        for id in live {
            if id == TRUE || id == FALSE {
                continue;
            }
            let node = self.nodes[id as usize];
            let new_id = fresh.mk(node.level, map[&node.lo], map[&node.hi]);
            map.insert(id, new_id);
        }
        let after_nodes = fresh.nodes.len();
        // Carry the pre-compaction counters (the rebuild's `mk` traffic is
        // bookkeeping, not fresh work) and account the compaction itself.
        fresh.stats = self.stats;
        fresh.stats.compactions += 1;
        fresh.stats.reclaimed_nodes += (before_nodes - after_nodes) as u64;
        fresh.generation = self.generation + 1;
        // New epoch: pre-compaction stamps must not validate entries of the
        // fresh (zeroed) probability cache.
        fresh.weight_epoch = self.weight_epoch + 1;
        fresh.next_token = self.next_token;
        fresh.registered = self
            .registered
            .iter()
            .map(|(&token, &root)| (token, map[&root]))
            .collect();
        *self = fresh;
        (before_nodes, after_nodes)
    }

    /// The stamp marking probability-cache entries of the current epoch
    /// (offset by one so the zero-initialised slots are always invalid).
    #[inline]
    fn epoch_stamp(&self) -> u64 {
        self.weight_epoch + 1
    }

    fn node(&self, id: NodeId) -> ObddNode {
        self.nodes[id as usize]
    }

    fn level(&self, id: NodeId) -> u32 {
        self.nodes[id as usize].level
    }

    /// Creates (or reuses) a node, applying the standard reduction rules.
    /// The dense side tables grow in lockstep with the arena, and the
    /// computed table doubles (up to its cap) when the arena outgrows it.
    fn mk(&mut self, level: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        if let Some(&id) = self.unique.get(&(level, lo, hi)) {
            self.stats.unique_hits += 1;
            return id;
        }
        self.stats.unique_misses += 1;
        self.stats.nodes_allocated += 1;
        let id = self.nodes.len() as NodeId;
        self.nodes.push(ObddNode { level, lo, hi });
        self.negate_memo.push(NONE);
        self.prob_cache.push(EMPTY_PROB);
        self.stats.peak_nodes = self.stats.peak_nodes.max(self.nodes.len() as u64);
        self.unique.insert((level, lo, hi), id);
        // Keep the computed table at ≥ 2× the arena (like CUDD's computed
        // table, sized as a multiple of the unique table): apply generates
        // more subproblems than nodes, and a too-small direct-mapped table
        // turns into an eviction mill.
        let capacity = self.computed.capacity();
        if self.nodes.len() * 2 > capacity && capacity < ObddManager::COMPUTED_TABLE_MAX {
            self.computed.grow_to(capacity * 2);
            self.stats.computed_resizes += 1;
        }
        id
    }

    /// The root of a conjunction chain over sorted, deduplicated levels.
    fn clause_root(&mut self, levels: &[u32]) -> NodeId {
        let mut child = TRUE;
        for &level in levels.iter().rev() {
            child = self.mk(level, FALSE, child);
        }
        child
    }

    /// Ids reachable from `root` (iterative DFS; includes sinks).
    fn reachable(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen = FxHashSet::default();
        let mut stack = vec![root];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            out.push(id);
            if id != TRUE && id != FALSE {
                let node = self.node(id);
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        out
    }

    fn level_range(&self, root: NodeId) -> Option<(u32, u32)> {
        let mut min = None;
        let mut max = None;
        for id in self.reachable(root) {
            let level = self.level(id);
            if level == SINK_LEVEL {
                continue;
            }
            min = Some(min.map_or(level, |m: u32| m.min(level)));
            max = Some(max.map_or(level, |m: u32| m.max(level)));
        }
        Some((min?, max?))
    }

    /// Sink-level shortcuts of `apply`; `None` means both operands need
    /// expansion. Sharing one arena lets non-sink operands short-circuit too
    /// (`x ∨ x = x`).
    fn apply_terminal(op: BoolOp, a: NodeId, b: NodeId) -> Option<NodeId> {
        if a == b {
            return Some(a);
        }
        match op {
            BoolOp::Or => match (a, b) {
                (TRUE, _) | (_, TRUE) => Some(TRUE),
                (FALSE, x) | (x, FALSE) => Some(x),
                _ => None,
            },
            BoolOp::And => match (a, b) {
                (FALSE, _) | (_, FALSE) => Some(FALSE),
                (TRUE, x) | (x, TRUE) => Some(x),
                _ => None,
            },
        }
    }

    /// Classical synthesis inside one arena on an explicit stack, memoised
    /// through the lossy computed table (operands normalised for
    /// commutativity).
    fn apply(&mut self, op: BoolOp, a: NodeId, b: NodeId) -> NodeId {
        enum Frame {
            Expand(NodeId, NodeId),
            Combine(NodeId, NodeId, u32),
        }
        let tag = op.tag();
        let key = |u: NodeId, v: NodeId| (u.min(v), u.max(v));
        let mut stack = vec![Frame::Expand(a, b)];
        let mut results: Vec<NodeId> = Vec::new();
        while let Some(frame) = stack.pop() {
            if let Some(guard) = self.guard.as_mut() {
                if guard.tripped.is_some() {
                    return FALSE;
                }
                if self.nodes.len() > guard.node_cap {
                    guard.tripped = Some(GuardTrip::Nodes);
                    return FALSE;
                }
                guard.tick = guard.tick.wrapping_add(1);
                if guard.tick & ApplyGuard::TICK_MASK == 0 {
                    if let Some(budget) = &guard.budget {
                        if let Err(e) = budget.check() {
                            guard.tripped = Some(GuardTrip::Budget(e));
                            return FALSE;
                        }
                    }
                }
            }
            match frame {
                Frame::Expand(u, v) => {
                    if let Some(r) = Store::apply_terminal(op, u, v) {
                        results.push(r);
                        continue;
                    }
                    let (ka, kb) = key(u, v);
                    if let Some(r) = self.computed.lookup(tag, ka, kb) {
                        self.stats.apply_cache_hits += 1;
                        results.push(r);
                        continue;
                    }
                    let lu = self.level(u);
                    let lv = self.level(v);
                    let m = lu.min(lv);
                    let (u0, u1) = if lu == m {
                        (self.node(u).lo, self.node(u).hi)
                    } else {
                        (u, u)
                    };
                    let (v0, v1) = if lv == m {
                        (self.node(v).lo, self.node(v).hi)
                    } else {
                        (v, v)
                    };
                    stack.push(Frame::Combine(u, v, m));
                    stack.push(Frame::Expand(u1, v1));
                    stack.push(Frame::Expand(u0, v0));
                }
                Frame::Combine(u, v, m) => {
                    let r1 = results.pop().expect("hi result available");
                    let r0 = results.pop().expect("lo result available");
                    let r = self.mk(m, r0, r1);
                    self.stats.apply_cache_misses += 1;
                    let (ka, kb) = key(u, v);
                    if self.computed.insert(tag, ka, kb, r) {
                        self.stats.cache_evictions += 1;
                    }
                    results.push(r);
                }
            }
        }
        results.pop().expect("apply produces a root")
    }

    /// Negation on an explicit stack: rebuilds the reachable part bottom-up
    /// with the dense, exact negate memo (children always have strictly
    /// larger levels, so a node's negation is ready once both children's
    /// are).
    fn negate(&mut self, root: NodeId) -> NodeId {
        if self.negate_memo[root as usize] != NONE {
            self.stats.apply_cache_hits += 1;
            return self.negate_memo[root as usize];
        }
        let mut stack = vec![root];
        while let Some(&id) = stack.last() {
            if self.negate_memo[id as usize] != NONE {
                stack.pop();
                continue;
            }
            let node = self.node(id);
            let lo = self.negate_memo[node.lo as usize];
            let hi = self.negate_memo[node.hi as usize];
            if lo != NONE && hi != NONE {
                let neg = self.mk(node.level, lo, hi);
                self.stats.apply_cache_misses += 1;
                self.negate_memo[id as usize] = neg;
                // Negation is an involution; record both directions.
                if self.negate_memo[neg as usize] == NONE {
                    self.negate_memo[neg as usize] = id;
                }
                stack.pop();
            } else {
                if hi == NONE {
                    stack.push(node.hi);
                }
                if lo == NONE {
                    stack.push(node.lo);
                }
            }
        }
        self.negate_memo[root as usize]
    }

    /// Concatenation (Section 4.2) on an explicit stack: rebuilds the
    /// reachable part of `a`, redirecting its `0`-sink (`and = false`) or
    /// `1`-sink (`and = true`) to `b`. The nodes of `b` are reused as-is —
    /// sharing one arena is what removed the old deep copy of the second
    /// operand. The per-call rebuild map is exact; the computed table only
    /// accelerates repeats across calls.
    fn concat(&mut self, and: bool, a: NodeId, b: NodeId) -> NodeId {
        let tag = if and { TAG_CONCAT_AND } else { TAG_CONCAT_OR };
        let (redirected, kept) = if and { (TRUE, FALSE) } else { (FALSE, TRUE) };
        let mut map: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        map.insert(redirected, b);
        map.insert(kept, kept);
        let mut stack = vec![a];
        while let Some(&id) = stack.last() {
            if map.contains_key(&id) {
                stack.pop();
                continue;
            }
            if let Some(r) = self.computed.lookup(tag, id, b) {
                self.stats.apply_cache_hits += 1;
                map.insert(id, r);
                stack.pop();
                continue;
            }
            let node = self.node(id);
            let lo = map.get(&node.lo).copied();
            let hi = map.get(&node.hi).copied();
            match (lo, hi) {
                (Some(lo), Some(hi)) => {
                    let rebuilt = self.mk(node.level, lo, hi);
                    self.stats.apply_cache_misses += 1;
                    if self.computed.insert(tag, id, b, rebuilt) {
                        self.stats.cache_evictions += 1;
                    }
                    map.insert(id, rebuilt);
                    stack.pop();
                }
                (lo, hi) => {
                    if hi.is_none() {
                        stack.push(node.hi);
                    }
                    if lo.is_none() {
                        stack.push(node.lo);
                    }
                }
            }
        }
        map[&a]
    }

    /// Copies the reachable part of `src_root` (in `src`) into this store.
    /// The only remaining copy path — used when combining diagrams from two
    /// different managers with equal variable orders.
    fn import(&mut self, src: &Store, src_root: NodeId) -> NodeId {
        if src_root == TRUE || src_root == FALSE {
            return src_root;
        }
        let mut ids = src.reachable(src_root);
        ids.sort_by_key(|&id| std::cmp::Reverse(src.level(id)));
        let mut map: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        map.insert(FALSE, FALSE);
        map.insert(TRUE, TRUE);
        for id in ids {
            if id == TRUE || id == FALSE {
                continue;
            }
            let node = src.node(id);
            let lo = map[&node.lo];
            let hi = map[&node.hi];
            let new_id = self.mk(node.level, lo, hi);
            self.stats.imported_nodes += 1;
            map.insert(id, new_id);
        }
        map[&src_root]
    }

    /// Bottom-up Shannon-expansion probabilities of every node reachable
    /// from `root`, computed in one explicit-stack DFS without touching the
    /// epoch cache. The result map is sized by the diagram, not the arena.
    fn node_probs(
        &self,
        order: &VarOrder,
        root: NodeId,
        prob_of: &dyn Fn(TupleId) -> f64,
    ) -> FxHashMap<NodeId, f64> {
        let mut out: FxHashMap<NodeId, f64> = FxHashMap::default();
        out.insert(FALSE, 0.0);
        out.insert(TRUE, 1.0);
        let mut stack = vec![root];
        while let Some(&id) = stack.last() {
            if out.contains_key(&id) {
                stack.pop();
                continue;
            }
            let node = self.node(id);
            let lo = out.get(&node.lo).copied();
            let hi = out.get(&node.hi).copied();
            match (lo, hi) {
                (Some(lo), Some(hi)) => {
                    let p = prob_of(order.tuple_at(node.level));
                    out.insert(id, (1.0 - p) * lo + p * hi);
                    stack.pop();
                }
                (lo, hi) => {
                    if hi.is_none() {
                        stack.push(node.hi);
                    }
                    if lo.is_none() {
                        stack.push(node.lo);
                    }
                }
            }
        }
        out
    }

    /// Like [`Store::node_probs`] but served from / stamped into the dense
    /// weight-epoch probability cache. Callers must pass the probability
    /// function the current epoch stands for. Every reachable node lands in
    /// the returned map (cache hits included — the traversal descends
    /// through hits instead of pruning at them), so the result is a
    /// complete per-diagram annotation.
    fn node_probs_cached(
        &mut self,
        order: &VarOrder,
        root: NodeId,
        prob_of: &dyn Fn(TupleId) -> f64,
    ) -> FxHashMap<NodeId, f64> {
        let stamp = self.epoch_stamp();
        let mut out: FxHashMap<NodeId, f64> = FxHashMap::default();
        out.insert(FALSE, 0.0);
        out.insert(TRUE, 1.0);
        let mut stack = vec![root];
        while let Some(&id) = stack.last() {
            if out.contains_key(&id) {
                stack.pop();
                continue;
            }
            let node = self.node(id);
            let slot = self.prob_cache[id as usize];
            if slot.stamp == stamp {
                self.stats.prob_cache_hits += 1;
                out.insert(id, slot.value);
                stack.pop();
                // Completeness: descendants must appear in the map too.
                // Their slots carry the same stamp (a node is only stamped
                // after its children), so each costs one O(1) cache hit.
                if !out.contains_key(&node.hi) {
                    stack.push(node.hi);
                }
                if !out.contains_key(&node.lo) {
                    stack.push(node.lo);
                }
                continue;
            }
            let lo = out.get(&node.lo).copied();
            let hi = out.get(&node.hi).copied();
            match (lo, hi) {
                (Some(lo), Some(hi)) => {
                    let p = prob_of(order.tuple_at(node.level));
                    let value = (1.0 - p) * lo + p * hi;
                    self.stats.prob_cache_misses += 1;
                    self.prob_cache[id as usize] = ProbSlot { stamp, value };
                    out.insert(id, value);
                    stack.pop();
                }
                (lo, hi) => {
                    if hi.is_none() {
                        stack.push(node.hi);
                    }
                    if lo.is_none() {
                        stack.push(node.lo);
                    }
                }
            }
        }
        out
    }

    /// The cached probability of `id` for the current epoch: `None` when it
    /// has to be computed first. Sinks are constant.
    #[inline]
    fn prob_slot_value(&self, id: NodeId, stamp: u64) -> Option<f64> {
        if id == FALSE {
            return Some(0.0);
        }
        if id == TRUE {
            return Some(1.0);
        }
        let slot = self.prob_cache[id as usize];
        (slot.stamp == stamp).then_some(slot.value)
    }

    /// The probability of the diagram rooted at `root` alone, served from /
    /// stamped into the epoch cache. Unlike [`Store::node_probs_cached`]
    /// this prunes at cache hits and allocates **no per-call map** — the
    /// dense epoch cache itself is the traversal state, so a warm root is a
    /// single array probe and a cold pass is straight `Vec` arithmetic.
    /// This is what makes bulk probability over a cached workload fast.
    fn root_prob_cached(
        &mut self,
        order: &VarOrder,
        root: NodeId,
        prob_of: &dyn Fn(TupleId) -> f64,
    ) -> f64 {
        let stamp = self.epoch_stamp();
        if let Some(value) = self.prob_slot_value(root, stamp) {
            self.stats.prob_cache_hits += 1;
            return value;
        }
        let mut stack = vec![root];
        while let Some(&id) = stack.last() {
            if self.prob_slot_value(id, stamp).is_some() {
                stack.pop();
                continue;
            }
            let node = self.node(id);
            let lo = self.prob_slot_value(node.lo, stamp);
            let hi = self.prob_slot_value(node.hi, stamp);
            match (lo, hi) {
                (Some(lo), Some(hi)) => {
                    let p = prob_of(order.tuple_at(node.level));
                    let value = (1.0 - p) * lo + p * hi;
                    self.stats.prob_cache_misses += 1;
                    self.prob_cache[id as usize] = ProbSlot { stamp, value };
                    stack.pop();
                }
                (lo, hi) => {
                    if hi.is_none() {
                        stack.push(node.hi);
                    }
                    if lo.is_none() {
                        stack.push(node.lo);
                    }
                }
            }
        }
        self.prob_cache[root as usize].value
    }
}

struct Shared {
    order: Arc<VarOrder>,
    store: RwLock<Store>,
    /// Cooperative budget polled by bounded synthesis folds. Installed
    /// per query on private (per-context / per-worker) managers; shared
    /// read-mostly managers such as the compiled MV-index never carry one,
    /// so one worker's deadline cannot cancel a sibling's evaluation.
    budget: RwLock<Option<mv_query::EvalBudget>>,
}

/// A shared, hash-consed OBDD node store over one [`VarOrder`]. Cloning is
/// cheap (an `Arc` bump); all clones address the same arena.
#[derive(Clone)]
pub struct ObddManager {
    shared: Arc<Shared>,
}

impl ObddManager {
    /// Initial slot count of the lossy apply/concat computed table. Small
    /// managers (per-query shards) stay at a few kilobytes.
    pub const COMPUTED_TABLE_MIN: usize = 1 << 10;

    /// Upper bound on the computed-table slot count; the table doubles with
    /// arena growth until it reaches this cap (16 bytes per slot — 16 MiB at
    /// the cap), then stays bounded and lossy forever.
    pub const COMPUTED_TABLE_MAX: usize = 1 << 20;

    /// An empty manager over the given variable order.
    pub fn new(order: Arc<VarOrder>) -> ObddManager {
        ObddManager {
            shared: Arc::new(Shared {
                order,
                store: RwLock::new(Store::new()),
                budget: RwLock::new(None),
            }),
        }
    }

    /// Installs (or clears) the cooperative budget bounded synthesis folds
    /// poll — between clause folds and, coarsely, inside the apply loop.
    /// Only install budgets on *private* managers (per-query or per-worker
    /// shards): the budget is shared by every handle to this arena.
    pub fn set_budget(&self, budget: Option<mv_query::EvalBudget>) {
        *self
            .shared
            .budget
            .write()
            .unwrap_or_else(PoisonError::into_inner) = budget;
    }

    /// The currently installed cooperative budget, if any.
    pub fn budget(&self) -> Option<mv_query::EvalBudget> {
        self.shared
            .budget
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The variable order every diagram of this manager lives on.
    pub fn order(&self) -> &Arc<VarOrder> {
        &self.shared.order
    }

    /// `true` when both handles address the same arena.
    pub fn same_store(&self, other: &ObddManager) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Current arena size (internal nodes plus the two sinks).
    pub fn num_nodes(&self) -> usize {
        self.read().nodes.len()
    }

    /// A snapshot of the manager's counters, with the `live_nodes` /
    /// `arena_bytes` gauges filled in from the current arena.
    pub fn stats(&self) -> ManagerStats {
        let store = self.read();
        let mut stats = store.stats;
        stats.live_nodes = store.nodes.len() as u64;
        stats.arena_bytes = store.arena_bytes();
        stats
    }

    /// Approximate heap bytes held by the arena and its side tables.
    pub fn arena_bytes(&self) -> u64 {
        self.read().arena_bytes()
    }

    /// The compaction generation: 0 for a fresh manager, bumped by every
    /// [`ObddManager::compact`]. Raw [`NodeId`]s (and [`Obdd`] handles not
    /// backed by a registered root) are only valid within the generation
    /// they were created in.
    pub fn generation(&self) -> u64 {
        self.read().generation
    }

    /// Registers `root` as live across compactions and returns a token;
    /// compaction keeps every node reachable from a registered root and
    /// remaps the registration onto the fresh arena
    /// ([`ObddManager::resolve_root`] returns the current id). Panics when
    /// `root` is not a node of this arena.
    pub fn register_root(&self, root: NodeId) -> u64 {
        let mut store = self.write();
        assert!(
            (root as usize) < store.nodes.len(),
            "register_root: {root} is not a node of this arena"
        );
        let token = store.next_token;
        store.next_token += 1;
        store.registered.insert(token, root);
        token
    }

    /// Releases a registration; the root's nodes become reclaimable by the
    /// next compaction (unless another registration still reaches them).
    /// Unknown tokens are ignored.
    pub fn release_root(&self, token: u64) {
        self.write().registered.remove(&token);
    }

    /// The current root id behind a registration token (remapped by any
    /// compactions since [`ObddManager::register_root`]).
    pub fn resolve_root(&self, token: u64) -> Option<NodeId> {
        self.read().registered.get(&token).copied()
    }

    /// A diagram handle for a registered root — the way to rehydrate a
    /// long-lived diagram after a compaction remapped it.
    pub fn registered_obdd(&self, token: u64) -> Option<Obdd> {
        self.resolve_root(token)
            .map(|root| Obdd::from_parts(self.clone(), root))
    }

    /// Number of live root registrations.
    pub fn live_roots(&self) -> usize {
        self.read().registered.len()
    }

    /// Compacts the arena down to the nodes reachable from the registered
    /// roots (see [`Store::compact`]'s contract: fresh unique table, reset
    /// computed / negate / probability caches, generation and weight epoch
    /// bumped, registered roots remapped). Callers must be quiescent: any
    /// raw [`NodeId`] or unregistered [`Obdd`] taken before the call is
    /// invalidated. Registered diagrams survive with probabilities intact —
    /// re-resolve them through [`ObddManager::registered_obdd`].
    pub fn compact(&self) -> CompactOutcome {
        let mut store = self.write();
        let before_bytes = store.arena_bytes();
        let (before_nodes, after_nodes) = store.compact();
        let after_bytes = store.arena_bytes();
        CompactOutcome {
            before_nodes,
            after_nodes,
            before_bytes,
            after_bytes,
            generation: store.generation,
        }
    }

    /// [`ObddManager::compact`] gated on an arena-size watermark: compacts
    /// only when the arena holds at least `watermark_nodes` nodes, so a
    /// long-lived worker can call it after every request for pennies.
    pub fn compact_if_above(&self, watermark_nodes: usize) -> Option<CompactOutcome> {
        if self.num_nodes() < watermark_nodes.max(1) {
            return None;
        }
        Some(self.compact())
    }

    /// Current slot count of the lossy computed table (between
    /// [`ObddManager::COMPUTED_TABLE_MIN`] and
    /// [`ObddManager::COMPUTED_TABLE_MAX`], tracking arena growth).
    pub fn computed_table_capacity(&self) -> usize {
        self.read().computed.capacity()
    }

    /// The current weight epoch of the probability cache.
    pub fn weight_epoch(&self) -> u64 {
        self.read().weight_epoch
    }

    /// Declares that tuple weights changed: starts a new epoch, which
    /// invalidates every probability-cache entry in O(1) (entries are
    /// stamped with their epoch; nothing is cleared or freed). Structural
    /// caches survive — they do not depend on weights.
    pub fn bump_weight_epoch(&self) -> u64 {
        let mut store = self.write();
        store.weight_epoch += 1;
        store.weight_epoch
    }

    /// The constant diagram `true` or `false`.
    pub fn constant(&self, value: bool) -> Obdd {
        Obdd::from_parts(self.clone(), if value { TRUE } else { FALSE })
    }

    /// The diagram of a single positive literal.
    pub fn literal(&self, tuple: TupleId) -> Result<Obdd> {
        let level = self
            .shared
            .order
            .level_of(tuple)
            .ok_or_else(|| ObddError::UnknownVariable(tuple.to_string()))?;
        let root = self.write().mk(level, FALSE, TRUE);
        Ok(Obdd::from_parts(self.clone(), root))
    }

    /// The diagram of a conjunction of positive literals (one DNF clause).
    pub fn clause(&self, clause: &[TupleId]) -> Result<Obdd> {
        let levels = self.clause_levels(clause)?;
        let mut store = self.write();
        let root = store.clause_root(&levels);
        drop(store);
        Ok(Obdd::from_parts(self.clone(), root))
    }

    /// Sorted, deduplicated levels of a clause (order lookups happen outside
    /// the store lock).
    fn clause_levels(&self, clause: &[TupleId]) -> Result<Vec<u32>> {
        let mut levels: Vec<u32> = clause
            .iter()
            .map(|&t| {
                self.shared
                    .order
                    .level_of(t)
                    .ok_or_else(|| ObddError::UnknownVariable(t.to_string()))
            })
            .collect::<Result<_>>()?;
        levels.sort_unstable();
        levels.dedup();
        Ok(levels)
    }

    /// The diagram of a whole DNF — the OR-fold of its clauses — built under
    /// **one** lock acquisition. For lineages of many small clauses (the
    /// per-query hot path), per-clause locking costs more than the fold
    /// itself; batch builders (`SynthesisBuilder::from_lineage`, the
    /// microbenchmark) should prefer this entry point. Produces exactly the
    /// diagram the clause-by-clause fold produces.
    pub fn dnf<C: AsRef<[TupleId]>>(&self, clauses: &[C]) -> Result<Obdd> {
        self.dnf_with_budget(clauses, usize::MAX)
    }

    /// [`ObddManager::dnf`] with a **node budget**: the fold is abandoned
    /// with [`ObddError::NodeBudgetExceeded`] as soon as it has allocated
    /// more than `node_budget` fresh arena nodes. This is how exact
    /// synthesis *refuses* a lineage with no small OBDD under the current
    /// order (instead of exhausting memory), so callers can fall back to
    /// approximate inference. The budget is checked between clause folds;
    /// nodes already interned stay in the arena (hash-consing makes them
    /// reusable, never wrong).
    pub fn dnf_bounded<C: AsRef<[TupleId]>>(
        &self,
        clauses: &[C],
        node_budget: usize,
    ) -> Result<Obdd> {
        self.dnf_with_budget(clauses, node_budget)
    }

    fn dnf_with_budget<C: AsRef<[TupleId]>>(
        &self,
        clauses: &[C],
        node_budget: usize,
    ) -> Result<Obdd> {
        let budget = self.budget();
        if let Some(b) = &budget {
            b.check()?;
        }
        let levels: Vec<Vec<u32>> = clauses
            .iter()
            .map(|c| self.clause_levels(c.as_ref()))
            .collect::<Result<_>>()?;
        let mut store = self.write();
        let start = store.nodes.len();
        // Install the in-apply guard only when something can trip it, so
        // the unbounded hot path stays a `None` check per frame.
        let guarded = node_budget != usize::MAX || budget.is_some();
        if guarded {
            store.guard = Some(ApplyGuard {
                node_cap: start.saturating_add(node_budget),
                budget: budget.clone(),
                tripped: None,
                tick: 0,
            });
        }
        let mut acc = FALSE;
        let mut charged: u64 = 0;
        for clause in &levels {
            let clause_root = store.clause_root(clause);
            acc = match Store::apply_terminal(BoolOp::Or, acc, clause_root) {
                Some(r) => r,
                None => store.apply(BoolOp::Or, acc, clause_root),
            };
            let allocated = store.nodes.len() - start;
            if let Some(trip) = store.guard.as_mut().and_then(|g| g.tripped.take()) {
                store.guard = None;
                return Err(match trip {
                    GuardTrip::Nodes => ObddError::NodeBudgetExceeded {
                        allocated,
                        budget: node_budget,
                    },
                    GuardTrip::Budget(e) => ObddError::Budget(e),
                });
            }
            if allocated > node_budget {
                store.guard = None;
                return Err(ObddError::NodeBudgetExceeded {
                    allocated,
                    budget: node_budget,
                });
            }
            if let Some(b) = &budget {
                // Charge the fresh nodes of this fold as work units and
                // poll the deadline between clause folds.
                let delta = (allocated as u64).saturating_sub(charged);
                charged = allocated as u64;
                if let Err(e) = b.charge(delta) {
                    store.guard = None;
                    return Err(ObddError::Budget(e));
                }
            }
        }
        store.guard = None;
        drop(store);
        Ok(Obdd::from_parts(self.clone(), acc))
    }

    /// Scans the arena for canonicity violations: a duplicate
    /// `(level, lo, hi)` triple, a redundant node with `lo == hi`, a child
    /// whose level does not strictly exceed its parent's, or a unique-table
    /// entry out of sync with the arena. Returns the first violation found.
    pub fn canonicity_violation(&self) -> Option<String> {
        let store = self.read();
        let mut seen: FxHashMap<(u32, NodeId, NodeId), NodeId> = FxHashMap::default();
        for (i, node) in store.nodes.iter().enumerate().skip(2) {
            let id = i as NodeId;
            if node.lo == node.hi {
                return Some(format!("node {id} is redundant (lo == hi == {})", node.lo));
            }
            if let Some(&first) = seen.get(&(node.level, node.lo, node.hi)) {
                return Some(format!(
                    "nodes {first} and {id} duplicate ({}, {}, {})",
                    node.level, node.lo, node.hi
                ));
            }
            seen.insert((node.level, node.lo, node.hi), id);
            for child in [node.lo, node.hi] {
                if child as usize >= store.nodes.len() {
                    return Some(format!("node {id} points past the arena ({child})"));
                }
                let child_level = store.level(child);
                if child_level != SINK_LEVEL && child_level <= node.level {
                    return Some(format!(
                        "node {id} (level {}) has child {child} at level {child_level}",
                        node.level
                    ));
                }
            }
            match store.unique.get(&(node.level, node.lo, node.hi)) {
                Some(&u) if u == id => {}
                other => return Some(format!("unique table maps node {id}'s triple to {other:?}")),
            }
        }
        None
    }

    /// A read guard over the node arena for tight traversal loops; hold it
    /// instead of calling [`Obdd::node`] per step.
    pub fn nodes(&self) -> ObddNodes<'_> {
        ObddNodes { guard: self.read() }
    }

    fn read(&self) -> RwLockReadGuard<'_, Store> {
        self.shared
            .store
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Store> {
        self.shared
            .store
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    // ---- crate-internal operations on roots -------------------------------

    pub(crate) fn node_of(&self, id: NodeId) -> ObddNode {
        self.read().node(id)
    }

    pub(crate) fn reachable_of(&self, root: NodeId) -> Vec<NodeId> {
        self.read().reachable(root)
    }

    pub(crate) fn level_range_of(&self, root: NodeId) -> Option<(u32, u32)> {
        self.read().level_range(root)
    }

    pub(crate) fn apply_roots(&self, op: BoolOp, a: NodeId, b: NodeId) -> NodeId {
        if let Some(r) = Store::apply_terminal(op, a, b) {
            return r;
        }
        self.write().apply(op, a, b)
    }

    pub(crate) fn negate_root(&self, root: NodeId) -> NodeId {
        self.write().negate(root)
    }

    pub(crate) fn concat_roots(&self, and: bool, a: NodeId, b: NodeId) -> NodeId {
        if let Some(r) = concat_trivial(and, a, b) {
            return r;
        }
        self.write().concat(and, a, b)
    }

    /// Imports `root` of `other` into this manager (no-op for sinks or when
    /// both handles share the arena).
    pub(crate) fn import_root(&self, other: &ObddManager, root: NodeId) -> NodeId {
        if self.same_store(other) || root == TRUE || root == FALSE {
            return root;
        }
        // Lock order: write on the destination, then read on the source.
        // Distinct managers, so this cannot self-deadlock; concurrent
        // cross-imports in opposite directions are not supported (imports
        // only happen on cold cross-manager fallbacks).
        let mut dst = self.write();
        let src = other.read();
        dst.import(&src, root)
    }

    pub(crate) fn node_probs_of(
        &self,
        root: NodeId,
        prob_of: &dyn Fn(TupleId) -> f64,
    ) -> FxHashMap<NodeId, f64> {
        self.read().node_probs(&self.shared.order, root, prob_of)
    }

    pub(crate) fn node_probs_cached_of(
        &self,
        root: NodeId,
        prob_of: &dyn Fn(TupleId) -> f64,
    ) -> FxHashMap<NodeId, f64> {
        self.write()
            .node_probs_cached(&self.shared.order, root, prob_of)
    }

    pub(crate) fn root_prob_cached_of(
        &self,
        root: NodeId,
        prob_of: &dyn Fn(TupleId) -> f64,
    ) -> f64 {
        self.write()
            .root_prob_cached(&self.shared.order, root, prob_of)
    }

    /// Cached probabilities of many diagrams of **this** manager under one
    /// lock acquisition (the bulk analogue of
    /// [`Obdd::probability_cached`](crate::Obdd::probability_cached)):
    /// per-diagram locking costs more than the probes themselves once the
    /// epoch cache is warm, so batch evaluators should prefer this entry
    /// point. The same epoch contract applies — `prob_of` must be the
    /// weight function the current epoch stands for.
    ///
    /// # Panics
    ///
    /// Panics when a diagram belongs to a different manager.
    pub fn bulk_probability_cached(
        &self,
        diagrams: &[Obdd],
        prob_of: impl Fn(TupleId) -> f64,
    ) -> Vec<f64> {
        let mut store = self.write();
        diagrams
            .iter()
            .map(|d| {
                assert!(
                    self.same_store(d.manager()),
                    "bulk_probability_cached requires diagrams of this manager"
                );
                store.root_prob_cached(&self.shared.order, d.root(), &prob_of)
            })
            .collect()
    }
}

impl fmt::Debug for ObddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let store = self.read();
        f.debug_struct("ObddManager")
            .field("order_len", &self.shared.order.len())
            .field("nodes", &store.nodes.len())
            .field("weight_epoch", &store.weight_epoch)
            .field("computed_slots", &store.computed.capacity())
            .finish_non_exhaustive()
    }
}

/// The one place the sink special cases of concatenation live (both
/// `concat_or` and `concat_and` route through it): `None` means real
/// rebuilding is required.
pub(crate) fn concat_trivial(and: bool, a: NodeId, b: NodeId) -> Option<NodeId> {
    let (identity, absorbing) = if and { (TRUE, FALSE) } else { (FALSE, TRUE) };
    if a == identity {
        // false ∨ b = b, true ∧ b = b.
        return Some(b);
    }
    if a == absorbing {
        // true ∨ b = true, false ∧ b = false.
        return Some(a);
    }
    if b == identity {
        // a ∨ false = a, a ∧ true = a: nothing to redirect.
        return Some(a);
    }
    None
}

/// A read guard over a manager's arena. Holds the shared lock, so keep its
/// lifetime to one traversal; do not call building operations on the same
/// manager while it is alive.
pub struct ObddNodes<'a> {
    guard: RwLockReadGuard<'a, Store>,
}

impl ObddNodes<'_> {
    /// The node behind an id.
    pub fn node(&self, id: NodeId) -> ObddNode {
        self.guard.node(id)
    }

    /// The level of a node ([`SINK_LEVEL`] for sinks).
    pub fn level(&self, id: NodeId) -> u32 {
        self.guard.level(id)
    }

    /// Current arena size.
    pub fn len(&self) -> usize {
        self.guard.nodes.len()
    }

    /// `true` when the arena holds only the two sinks.
    pub fn is_empty(&self) -> bool {
        self.guard.nodes.len() <= 2
    }
}

/// Sparse per-node Shannon-expansion probabilities for one diagram: every
/// node reachable from the root (sinks included) has an entry. Returned by
/// [`Obdd::node_probabilities`]; sized by the *diagram*, not by the shared
/// arena.
#[derive(Debug, Clone)]
pub struct NodeProbs {
    map: FxHashMap<NodeId, f64>,
}

impl NodeProbs {
    pub(crate) fn from_map(map: FxHashMap<NodeId, f64>) -> NodeProbs {
        NodeProbs { map }
    }

    /// The probability of the sub-diagram rooted at `id`. Panics when `id`
    /// was not reachable from the root the probabilities were computed for.
    pub fn get(&self, id: NodeId) -> f64 {
        self.map[&id]
    }

    /// Like [`NodeProbs::get`] without the reachability requirement.
    pub fn try_get(&self, id: NodeId) -> Option<f64> {
        self.map.get(&id).copied()
    }

    /// Consumes the probabilities as a plain map (keys: reachable nodes plus
    /// the two sinks), for callers that store them long-term.
    pub fn into_map(self) -> FxHashMap<NodeId, f64> {
        self.map
    }

    /// Number of nodes covered (reachable nodes plus the two sinks).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no node is covered (never the case for valid diagrams).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(n: u32) -> Arc<VarOrder> {
        Arc::new(VarOrder::from_tuples((0..n).map(TupleId)))
    }

    #[test]
    fn hash_consing_shares_nodes_across_diagrams() {
        let m = ObddManager::new(order(4));
        let a = m.clause(&[TupleId(1), TupleId(2)]).unwrap();
        let b = m.clause(&[TupleId(1), TupleId(2)]).unwrap();
        assert_eq!(a.root(), b.root());
        let stats = m.stats();
        assert!(stats.unique_hits >= 2, "second clause must hit the table");
        assert_eq!(stats.nodes_allocated, 2);
    }

    #[test]
    fn apply_memo_hits_on_repetition() {
        let m = ObddManager::new(order(4));
        let x = m.literal(TupleId(0)).unwrap();
        let y = m.literal(TupleId(3)).unwrap();
        let first = x.apply_or(&y).unwrap();
        let before = m.stats().apply_cache_hits;
        let second = x.apply_or(&y).unwrap();
        assert_eq!(first.root(), second.root());
        assert!(m.stats().apply_cache_hits > before);
    }

    #[test]
    fn negate_is_a_memoised_involution() {
        let m = ObddManager::new(order(3));
        let c = m.clause(&[TupleId(0), TupleId(2)]).unwrap();
        let n = c.negate();
        let back = n.negate();
        assert_eq!(back.root(), c.root());
        // The involution direction is answered entirely from the memo.
        let before = m.stats().apply_cache_misses;
        let again = c.negate();
        assert_eq!(again.root(), n.root());
        assert_eq!(m.stats().apply_cache_misses, before);
    }

    #[test]
    fn weight_epoch_invalidates_probability_cache() {
        let m = ObddManager::new(order(2));
        let c = m.clause(&[TupleId(0), TupleId(1)]).unwrap();
        let p1 = c.probability_cached(|_| 0.5);
        assert!((p1 - 0.25).abs() < 1e-12);
        // Same epoch: cached value is reused even for a new closure.
        let hits = m.stats().prob_cache_hits;
        let _ = c.probability_cached(|_| 0.5);
        assert!(m.stats().prob_cache_hits > hits);
        // New epoch: the stamps go stale and the new weights take effect.
        m.bump_weight_epoch();
        let p2 = c.probability_cached(|_| 0.1);
        assert!((p2 - 0.01).abs() < 1e-12);
    }

    #[test]
    fn canonicity_holds_after_mixed_operations() {
        let m = ObddManager::new(order(6));
        let a = m.clause(&[TupleId(0), TupleId(1)]).unwrap();
        let b = m.clause(&[TupleId(2), TupleId(3)]).unwrap();
        let c = m.clause(&[TupleId(4), TupleId(5)]).unwrap();
        let ab = a.concat_or(&b).unwrap();
        let abc = ab.apply_or(&c).unwrap();
        let _n = abc.negate();
        assert_eq!(m.canonicity_violation(), None);
    }

    #[test]
    fn concat_trivial_covers_both_operators() {
        // Left identity and absorbing sinks.
        assert_eq!(concat_trivial(false, FALSE, 7), Some(7));
        assert_eq!(concat_trivial(false, TRUE, 7), Some(TRUE));
        assert_eq!(concat_trivial(true, TRUE, 7), Some(7));
        assert_eq!(concat_trivial(true, FALSE, 7), Some(FALSE));
        // Right identity.
        assert_eq!(concat_trivial(false, 7, FALSE), Some(7));
        assert_eq!(concat_trivial(true, 7, TRUE), Some(7));
        // Real work.
        assert_eq!(concat_trivial(false, 7, 9), None);
        assert_eq!(concat_trivial(true, 7, 9), None);
    }

    #[test]
    fn computed_table_is_direct_mapped_and_lossy() {
        let mut table = ComputedTable::with_capacity(8);
        assert!(!table.insert(TAG_OR, 2, 3, 7));
        assert_eq!(table.lookup(TAG_OR, 2, 3), Some(7));
        // Same key, new value: overwrite without an eviction.
        assert!(!table.insert(TAG_OR, 2, 3, 9));
        assert_eq!(table.lookup(TAG_OR, 2, 3), Some(9));
        // A different key mapping to the same slot evicts. Find one by
        // scanning — with 8 slots a collision exists among a few hundred
        // keys.
        let slot = table.slot_of(TAG_OR, 2, 3);
        let colliding = (0..1000u32)
            .map(|i| (100 + i, 200 + i))
            .find(|&(a, b)| table.slot_of(TAG_OR, a, b) == slot)
            .expect("a colliding key exists");
        assert!(table.insert(TAG_OR, colliding.0, colliding.1, 11));
        assert_eq!(table.lookup(TAG_OR, 2, 3), None, "evicted by collision");
        assert_eq!(table.lookup(TAG_OR, colliding.0, colliding.1), Some(11));
    }

    #[test]
    fn computed_table_grows_with_the_arena() {
        let n = (ObddManager::COMPUTED_TABLE_MIN + 8) as u32;
        let m = ObddManager::new(order(n));
        assert_eq!(m.computed_table_capacity(), ObddManager::COMPUTED_TABLE_MIN);
        // A single clause over more variables than the minimum table size
        // allocates one node per level; the table doubles to stay at ≥ 2×
        // the arena.
        let clause: Vec<TupleId> = (0..n).map(TupleId).collect();
        let c = m.clause(&clause).unwrap();
        assert_eq!(c.size(), n as usize);
        assert!(m.computed_table_capacity() >= 2 * m.num_nodes());
        assert_eq!(m.stats().computed_resizes, 2);
        assert!(m.computed_table_capacity() <= ObddManager::COMPUTED_TABLE_MAX);
    }

    #[test]
    fn dnf_fold_matches_clause_by_clause_fold() {
        let m = ObddManager::new(order(8));
        let clauses: Vec<Vec<TupleId>> = vec![
            vec![TupleId(0), TupleId(4)],
            vec![TupleId(1), TupleId(5)],
            vec![TupleId(2), TupleId(6)],
            vec![TupleId(0), TupleId(7)],
        ];
        let folded = m.dnf(&clauses).unwrap();
        let mut acc = m.constant(false);
        for c in &clauses {
            let clause = m.clause(c).unwrap();
            acc = acc.apply_or(&clause).unwrap();
        }
        assert_eq!(folded.root(), acc.root());
        // Degenerate inputs.
        assert_eq!(m.dnf::<Vec<TupleId>>(&[]).unwrap().root(), FALSE);
        assert_eq!(m.dnf(&[Vec::<TupleId>::new()]).unwrap().root(), TRUE);
        assert!(m.dnf(&[vec![TupleId(99)]]).is_err());
    }

    #[test]
    fn compaction_preserves_registered_roots_to_1e9() {
        let m = ObddManager::new(order(16));
        // Two diagrams we keep, plus a pile of garbage we drop.
        let keep_a = m
            .dnf(&[vec![TupleId(0), TupleId(8)], vec![TupleId(1), TupleId(9)]])
            .unwrap();
        let keep_b = m.clause(&[TupleId(2), TupleId(10), TupleId(12)]).unwrap();
        for i in 0..8u32 {
            let g = m
                .dnf(&[
                    vec![TupleId(i), TupleId(15 - i % 4)],
                    vec![TupleId(i % 3), TupleId(7 + i % 8)],
                ])
                .unwrap();
            let _ = g.negate();
        }
        let weight = |t: TupleId| 0.05 + 0.9 * f64::from(t.0) / 16.0;
        let p_a = keep_a.probability_cached(weight);
        let p_b = keep_b.probability_cached(weight);
        let tok_a = m.register_root(keep_a.root());
        let tok_b = m.register_root(keep_b.root());
        let gen_before = m.generation();
        let before = m.num_nodes();
        drop((keep_a, keep_b));

        let outcome = m.compact();
        assert_eq!(outcome.before_nodes, before);
        assert!(outcome.after_nodes < outcome.before_nodes, "{outcome:?}");
        assert!(outcome.after_bytes <= outcome.before_bytes, "{outcome:?}");
        assert_eq!(m.generation(), gen_before + 1);
        assert_eq!(m.canonicity_violation(), None);
        let stats = m.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(
            stats.reclaimed_nodes,
            (outcome.before_nodes - outcome.after_nodes) as u64
        );
        assert_eq!(stats.live_nodes, outcome.after_nodes as u64);

        // Registered roots survive with identical probabilities.
        let a = m.registered_obdd(tok_a).unwrap();
        let b = m.registered_obdd(tok_b).unwrap();
        assert!((a.probability_cached(weight) - p_a).abs() < 1e-9);
        assert!((b.probability_cached(weight) - p_b).abs() < 1e-9);
        m.release_root(tok_a);
        m.release_root(tok_b);
    }

    #[test]
    fn compaction_without_roots_reclaims_everything() {
        let m = ObddManager::new(order(8));
        for i in 0..4u32 {
            let _ = m.clause(&[TupleId(i), TupleId(i + 4)]).unwrap();
        }
        assert!(m.num_nodes() > 2);
        let outcome = m.compact();
        assert_eq!(outcome.after_nodes, 2, "only the sinks survive");
        assert_eq!(m.num_nodes(), 2);
        assert_eq!(m.canonicity_violation(), None);
        // The manager stays fully usable after a total reclaim.
        let c = m.clause(&[TupleId(0), TupleId(1)]).unwrap();
        assert!((c.probability_cached(|_| 0.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn released_roots_become_reclaimable() {
        let m = ObddManager::new(order(8));
        let a = m.clause(&[TupleId(0), TupleId(1)]).unwrap();
        let b = m.clause(&[TupleId(4), TupleId(5), TupleId(6)]).unwrap();
        let tok_a = m.register_root(a.root());
        let tok_b = m.register_root(b.root());
        assert_eq!(m.live_roots(), 2);
        m.release_root(tok_b);
        assert_eq!(m.live_roots(), 1);
        drop((a, b));
        let outcome = m.compact();
        // Only `a`'s two nodes (plus sinks) survive.
        assert_eq!(outcome.after_nodes, 4);
        assert!(m.resolve_root(tok_b).is_none());
        assert!(m.resolve_root(tok_a).is_some());
    }

    #[test]
    fn compaction_bumps_the_weight_epoch() {
        let m = ObddManager::new(order(4));
        let c = m.clause(&[TupleId(0), TupleId(1)]).unwrap();
        let tok = m.register_root(c.root());
        assert!((c.probability_cached(|_| 0.5) - 0.25).abs() < 1e-12);
        let epoch = m.weight_epoch();
        m.compact();
        assert!(m.weight_epoch() > epoch);
        // A different weight function on the fresh epoch takes effect (no
        // stale cache value can leak through the reset + bumped epoch).
        let c = m.registered_obdd(tok).unwrap();
        assert!((c.probability_cached(|_| 0.1) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn compact_if_above_respects_the_watermark() {
        let m = ObddManager::new(order(8));
        let c = m.clause(&[TupleId(0), TupleId(1), TupleId(2)]).unwrap();
        let _tok = m.register_root(c.root());
        assert!(m.compact_if_above(1 << 20).is_none());
        assert!(m.compact_if_above(2).is_some());
    }

    #[test]
    fn dense_side_tables_stay_in_lockstep_with_the_arena() {
        let m = ObddManager::new(order(16));
        let mut diagrams = Vec::new();
        for i in 0..8 {
            diagrams.push(m.clause(&[TupleId(i), TupleId(i + 8)]).unwrap());
        }
        let mut acc = m.constant(false);
        for d in &diagrams {
            acc = acc.apply_or(d).unwrap();
        }
        let negated = acc.negate();
        // Every node (old and new) must be addressable in the side tables:
        // probabilities on the negation exercise the full arena range.
        let p = acc.probability_cached(|_| 0.5);
        let np = negated.probability_cached(|_| 0.5);
        assert!((p + np - 1.0).abs() < 1e-12);
        assert_eq!(m.canonicity_violation(), None);
    }
}
