//! The shared, hash-consed OBDD node manager.
//!
//! An [`ObddManager`] owns a single append-only arena of `(level, lo, hi)`
//! nodes together with the global *unique table* that hash-conses them: a
//! given `(level, lo, hi)` triple exists at most once per manager, so
//! structurally identical sub-diagrams are shared by **every** diagram built
//! in the manager — across views, across blocks of the MV-index, and across
//! queries. An [`Obdd`](crate::Obdd) is just a cheap `{manager, root}`
//! handle; cloning one never copies nodes.
//!
//! Besides the arena the manager keeps four persistent caches:
//!
//! * the **unique table** (`(level, lo, hi) → NodeId`) — canonicity;
//! * the **apply memo** (`(op, a, b) → NodeId`, operands normalised for
//!   commutativity) — repeated synthesis steps are O(1);
//! * the **negate / concat memos** — negation and concatenation rebuild a
//!   node at most once per (node, redirect target);
//! * the **probability cache** (`NodeId → f64`, keyed by the manager's
//!   *weight epoch*) — Shannon-expansion probabilities are computed once per
//!   node and reused by every diagram sharing that node, until
//!   [`ObddManager::bump_weight_epoch`] declares the tuple weights changed.
//!
//! # Memory model
//!
//! The arena is **append-only**: nodes are never mutated or freed while the
//! manager is alive, which is what makes handles cheap and lets concurrent
//! readers traverse diagrams lock-free of each other (a [`std::sync::RwLock`]
//! guards growth; read-only operations take a shared guard once per
//! operation, not per node). Unreachable nodes are reclaimed only when the
//! last handle drops the manager. The unique table grows with the arena and
//! is never evicted (evicting it would break canonicity); the apply/concat
//! memos are bounded — when they exceed [`ObddManager::MEMO_CAPACITY`]
//! entries they are cleared wholesale and the eviction is counted in
//! [`ManagerStats::cache_evictions`]. The probability cache is cleared
//! whenever the weight epoch changes.
//!
//! Structural memo entries (apply/negate/concat) remain valid forever
//! because they only reference immutable arena nodes; clearing them is a
//! pure performance trade, never a correctness one.
//!
//! # Threading
//!
//! `ObddManager` is `Send + Sync`; handles can be shared across threads.
//! Building operations serialise on the manager's write lock, so parallel
//! workloads should give each worker its own manager *shard* (see
//! `MvdbSession` in `mv-core`) and share only read-mostly managers such as
//! the compiled MV-index. Combining diagrams from two different managers
//! with equal variable orders transparently imports one side into the other
//! — correct, but a copy; keep hot paths inside one manager.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard};

use mv_pdb::TupleId;

use crate::error::ObddError;
use crate::obdd::{Obdd, ObddNode, FALSE, SINK_LEVEL, TRUE};
use crate::order::VarOrder;
use crate::{NodeId, Result};

/// The two Boolean synthesis operators the apply memo distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BoolOp {
    /// Disjunction.
    Or,
    /// Conjunction.
    And,
}

impl BoolOp {
    fn tag(self) -> u8 {
        match self {
            BoolOp::Or => 0,
            BoolOp::And => 1,
        }
    }
}

/// Counters describing a manager's workload, exposed by
/// [`ObddManager::stats`]. All counters are cumulative since the manager was
/// created; rates are derived through [`ManagerStats::unique_hit_rate`] and
/// [`ManagerStats::apply_cache_hit_rate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Internal nodes ever allocated in the arena (sinks excluded).
    pub nodes_allocated: u64,
    /// Largest arena size observed (sinks included). For a single manager
    /// the arena is append-only, so this equals the current size; aggregated
    /// stats ([`ManagerStats`] addition) keep the **maximum** over the
    /// summed managers — the largest single arena, not a sum of peaks.
    pub peak_nodes: u64,
    /// `mk` calls answered by the unique table (an existing node was reused).
    pub unique_hits: u64,
    /// `mk` calls that allocated a fresh node.
    pub unique_misses: u64,
    /// Apply/negate/concat steps answered by a structural memo.
    pub apply_cache_hits: u64,
    /// Apply/negate/concat steps that had to compute a result node.
    pub apply_cache_misses: u64,
    /// Per-node probabilities served from the weight-epoch cache.
    pub prob_cache_hits: u64,
    /// Per-node probabilities computed and inserted into the cache.
    pub prob_cache_misses: u64,
    /// Times a structural memo overflowed [`ObddManager::MEMO_CAPACITY`] and
    /// was cleared.
    pub cache_evictions: u64,
    /// Internal nodes copied into this arena from a *different* manager —
    /// the only remaining deep-copy path. Zero on production pipelines,
    /// which keep each diagram family inside one manager.
    pub imported_nodes: u64,
}

impl ManagerStats {
    /// Fraction of `mk` calls that reused an existing node (0 when no `mk`
    /// calls were made).
    pub fn unique_hit_rate(&self) -> f64 {
        rate(self.unique_hits, self.unique_misses)
    }

    /// Fraction of apply/negate/concat steps answered by a memo.
    pub fn apply_cache_hit_rate(&self) -> f64 {
        rate(self.apply_cache_hits, self.apply_cache_misses)
    }

    /// Fraction of per-node probability lookups served from the cache.
    pub fn prob_cache_hit_rate(&self) -> f64 {
        rate(self.prob_cache_hits, self.prob_cache_misses)
    }

    /// The work done since an `earlier` snapshot of the *same* manager:
    /// cumulative counters are subtracted (saturating), while `peak_nodes`
    /// keeps the current value — a high-water mark has no meaningful delta.
    pub fn since(&self, earlier: &ManagerStats) -> ManagerStats {
        ManagerStats {
            nodes_allocated: self.nodes_allocated.saturating_sub(earlier.nodes_allocated),
            peak_nodes: self.peak_nodes,
            unique_hits: self.unique_hits.saturating_sub(earlier.unique_hits),
            unique_misses: self.unique_misses.saturating_sub(earlier.unique_misses),
            apply_cache_hits: self
                .apply_cache_hits
                .saturating_sub(earlier.apply_cache_hits),
            apply_cache_misses: self
                .apply_cache_misses
                .saturating_sub(earlier.apply_cache_misses),
            prob_cache_hits: self.prob_cache_hits.saturating_sub(earlier.prob_cache_hits),
            prob_cache_misses: self
                .prob_cache_misses
                .saturating_sub(earlier.prob_cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            imported_nodes: self.imported_nodes.saturating_sub(earlier.imported_nodes),
        }
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

impl std::ops::Add for ManagerStats {
    type Output = ManagerStats;

    /// Aggregates counters across managers. Cumulative counters add;
    /// `peak_nodes` takes the maximum (the largest single arena — summing
    /// high-water marks of independent arenas has no physical meaning).
    fn add(self, rhs: ManagerStats) -> ManagerStats {
        ManagerStats {
            nodes_allocated: self.nodes_allocated + rhs.nodes_allocated,
            peak_nodes: self.peak_nodes.max(rhs.peak_nodes),
            unique_hits: self.unique_hits + rhs.unique_hits,
            unique_misses: self.unique_misses + rhs.unique_misses,
            apply_cache_hits: self.apply_cache_hits + rhs.apply_cache_hits,
            apply_cache_misses: self.apply_cache_misses + rhs.apply_cache_misses,
            prob_cache_hits: self.prob_cache_hits + rhs.prob_cache_hits,
            prob_cache_misses: self.prob_cache_misses + rhs.prob_cache_misses,
            cache_evictions: self.cache_evictions + rhs.cache_evictions,
            imported_nodes: self.imported_nodes + rhs.imported_nodes,
        }
    }
}

impl std::iter::Sum for ManagerStats {
    fn sum<I: Iterator<Item = ManagerStats>>(iter: I) -> ManagerStats {
        iter.fold(ManagerStats::default(), |a, b| a + b)
    }
}

/// Everything behind the manager's lock.
struct Store {
    nodes: Vec<ObddNode>,
    unique: HashMap<(u32, NodeId, NodeId), NodeId>,
    /// `(op tag, a, b) → result`, operands normalised (`a ≤ b`).
    apply_memo: HashMap<(u8, NodeId, NodeId), NodeId>,
    /// `node → ¬node` (sinks pre-seeded).
    negate_memo: HashMap<NodeId, NodeId>,
    /// `(and?, node, redirected sink target) → rebuilt node`.
    concat_memo: HashMap<(bool, NodeId, NodeId), NodeId>,
    /// Probabilities valid for the current [`Store::weight_epoch`].
    prob_cache: HashMap<NodeId, f64>,
    weight_epoch: u64,
    stats: ManagerStats,
}

impl Store {
    fn new() -> Store {
        let nodes = vec![
            ObddNode {
                level: SINK_LEVEL,
                lo: FALSE,
                hi: FALSE,
            },
            ObddNode {
                level: SINK_LEVEL,
                lo: TRUE,
                hi: TRUE,
            },
        ];
        let mut negate_memo = HashMap::new();
        negate_memo.insert(FALSE, TRUE);
        negate_memo.insert(TRUE, FALSE);
        Store {
            nodes,
            unique: HashMap::new(),
            apply_memo: HashMap::new(),
            negate_memo,
            concat_memo: HashMap::new(),
            prob_cache: HashMap::new(),
            weight_epoch: 0,
            stats: ManagerStats {
                peak_nodes: 2,
                ..ManagerStats::default()
            },
        }
    }

    fn node(&self, id: NodeId) -> ObddNode {
        self.nodes[id as usize]
    }

    fn level(&self, id: NodeId) -> u32 {
        self.nodes[id as usize].level
    }

    /// Creates (or reuses) a node, applying the standard reduction rules.
    fn mk(&mut self, level: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        if let Some(&id) = self.unique.get(&(level, lo, hi)) {
            self.stats.unique_hits += 1;
            return id;
        }
        self.stats.unique_misses += 1;
        self.stats.nodes_allocated += 1;
        let id = self.nodes.len() as NodeId;
        self.nodes.push(ObddNode { level, lo, hi });
        self.stats.peak_nodes = self.stats.peak_nodes.max(self.nodes.len() as u64);
        self.unique.insert((level, lo, hi), id);
        id
    }

    /// Ids reachable from `root` (iterative DFS; includes sinks).
    fn reachable(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            out.push(id);
            if id != TRUE && id != FALSE {
                let node = self.node(id);
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        out
    }

    fn level_range(&self, root: NodeId) -> Option<(u32, u32)> {
        let mut min = None;
        let mut max = None;
        for id in self.reachable(root) {
            let level = self.level(id);
            if level == SINK_LEVEL {
                continue;
            }
            min = Some(min.map_or(level, |m: u32| m.min(level)));
            max = Some(max.map_or(level, |m: u32| m.max(level)));
        }
        Some((min?, max?))
    }

    /// Sink-level shortcuts of `apply`; `None` means both operands need
    /// expansion. Sharing one arena lets non-sink operands short-circuit too
    /// (`x ∨ x = x`).
    fn apply_terminal(op: BoolOp, a: NodeId, b: NodeId) -> Option<NodeId> {
        if a == b {
            return Some(a);
        }
        match op {
            BoolOp::Or => match (a, b) {
                (TRUE, _) | (_, TRUE) => Some(TRUE),
                (FALSE, x) | (x, FALSE) => Some(x),
                _ => None,
            },
            BoolOp::And => match (a, b) {
                (FALSE, _) | (_, FALSE) => Some(FALSE),
                (TRUE, x) | (x, TRUE) => Some(x),
                _ => None,
            },
        }
    }

    /// Classical synthesis inside one arena, memoised persistently.
    fn apply(&mut self, op: BoolOp, a: NodeId, b: NodeId) -> NodeId {
        enum Frame {
            Expand(NodeId, NodeId),
            Combine(NodeId, NodeId, u32),
        }
        let key = |u: NodeId, v: NodeId| (op.tag(), u.min(v), u.max(v));
        let mut stack = vec![Frame::Expand(a, b)];
        let mut results: Vec<NodeId> = Vec::new();
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Expand(u, v) => {
                    if let Some(r) = Store::apply_terminal(op, u, v) {
                        results.push(r);
                        continue;
                    }
                    if let Some(&r) = self.apply_memo.get(&key(u, v)) {
                        self.stats.apply_cache_hits += 1;
                        results.push(r);
                        continue;
                    }
                    let lu = self.level(u);
                    let lv = self.level(v);
                    let m = lu.min(lv);
                    let (u0, u1) = if lu == m {
                        (self.node(u).lo, self.node(u).hi)
                    } else {
                        (u, u)
                    };
                    let (v0, v1) = if lv == m {
                        (self.node(v).lo, self.node(v).hi)
                    } else {
                        (v, v)
                    };
                    stack.push(Frame::Combine(u, v, m));
                    stack.push(Frame::Expand(u1, v1));
                    stack.push(Frame::Expand(u0, v0));
                }
                Frame::Combine(u, v, m) => {
                    let r1 = results.pop().expect("hi result available");
                    let r0 = results.pop().expect("lo result available");
                    let r = self.mk(m, r0, r1);
                    self.stats.apply_cache_misses += 1;
                    self.apply_memo.insert(key(u, v), r);
                    results.push(r);
                }
            }
        }
        self.maybe_evict();
        results.pop().expect("apply produces a root")
    }

    /// Negation: rebuilds the reachable part bottom-up with the persistent
    /// negate memo (children always have strictly larger levels).
    fn negate(&mut self, root: NodeId) -> NodeId {
        if let Some(&r) = self.negate_memo.get(&root) {
            self.stats.apply_cache_hits += 1;
            return r;
        }
        let mut ids = self.reachable(root);
        ids.sort_by_key(|&id| std::cmp::Reverse(self.level(id)));
        for id in ids {
            if self.negate_memo.contains_key(&id) {
                self.stats.apply_cache_hits += 1;
                continue;
            }
            let node = self.node(id);
            let lo = self.negate_memo[&node.lo];
            let hi = self.negate_memo[&node.hi];
            let neg = self.mk(node.level, lo, hi);
            self.stats.apply_cache_misses += 1;
            self.negate_memo.insert(id, neg);
            // Negation is an involution; record both directions.
            self.negate_memo.entry(neg).or_insert(id);
        }
        self.negate_memo[&root]
    }

    /// Concatenation (Section 4.2): rebuilds the reachable part of `a`,
    /// redirecting its `0`-sink (`and = false`) or `1`-sink (`and = true`)
    /// to `b`. The nodes of `b` are reused as-is — sharing one arena is what
    /// removed the old deep copy of the second operand.
    fn concat(&mut self, and: bool, a: NodeId, b: NodeId) -> NodeId {
        let (redirected, kept) = if and { (TRUE, FALSE) } else { (FALSE, TRUE) };
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        map.insert(redirected, b);
        map.insert(kept, kept);
        let mut ids = self.reachable(a);
        ids.sort_by_key(|&id| std::cmp::Reverse(self.level(id)));
        for id in ids {
            if id == TRUE || id == FALSE {
                continue;
            }
            if let Some(&r) = self.concat_memo.get(&(and, id, b)) {
                self.stats.apply_cache_hits += 1;
                map.insert(id, r);
                continue;
            }
            let node = self.node(id);
            let lo = map[&node.lo];
            let hi = map[&node.hi];
            let rebuilt = self.mk(node.level, lo, hi);
            self.stats.apply_cache_misses += 1;
            self.concat_memo.insert((and, id, b), rebuilt);
            map.insert(id, rebuilt);
        }
        self.maybe_evict();
        map[&a]
    }

    /// Copies the reachable part of `src_root` (in `src`) into this store.
    /// The only remaining copy path — used when combining diagrams from two
    /// different managers with equal variable orders.
    fn import(&mut self, src: &Store, src_root: NodeId) -> NodeId {
        if src_root == TRUE || src_root == FALSE {
            return src_root;
        }
        let mut ids = src.reachable(src_root);
        ids.sort_by_key(|&id| std::cmp::Reverse(src.level(id)));
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        map.insert(FALSE, FALSE);
        map.insert(TRUE, TRUE);
        for id in ids {
            if id == TRUE || id == FALSE {
                continue;
            }
            let node = src.node(id);
            let lo = map[&node.lo];
            let hi = map[&node.hi];
            let new_id = self.mk(node.level, lo, hi);
            self.stats.imported_nodes += 1;
            map.insert(id, new_id);
        }
        map[&src_root]
    }

    /// Bottom-up Shannon-expansion probabilities of every node reachable
    /// from `root`, without touching the cache.
    fn node_probs(
        &self,
        order: &VarOrder,
        root: NodeId,
        prob_of: &dyn Fn(TupleId) -> f64,
    ) -> HashMap<NodeId, f64> {
        let mut ids = self.reachable(root);
        ids.sort_by_key(|&id| std::cmp::Reverse(self.level(id)));
        let mut out: HashMap<NodeId, f64> = HashMap::with_capacity(ids.len() + 2);
        out.insert(FALSE, 0.0);
        out.insert(TRUE, 1.0);
        for id in ids {
            if id == TRUE || id == FALSE {
                continue;
            }
            let node = self.node(id);
            let p = prob_of(order.tuple_at(node.level));
            let value = (1.0 - p) * out[&node.lo] + p * out[&node.hi];
            out.insert(id, value);
        }
        out
    }

    /// Like [`Store::node_probs`] but served from / stored into the
    /// weight-epoch probability cache. Callers must pass the probability
    /// function the current epoch stands for.
    fn node_probs_cached(
        &mut self,
        order: &VarOrder,
        root: NodeId,
        prob_of: &dyn Fn(TupleId) -> f64,
    ) -> HashMap<NodeId, f64> {
        let mut ids = self.reachable(root);
        ids.sort_by_key(|&id| std::cmp::Reverse(self.level(id)));
        let mut out: HashMap<NodeId, f64> = HashMap::with_capacity(ids.len() + 2);
        out.insert(FALSE, 0.0);
        out.insert(TRUE, 1.0);
        for id in ids {
            if id == TRUE || id == FALSE {
                continue;
            }
            if let Some(&p) = self.prob_cache.get(&id) {
                self.stats.prob_cache_hits += 1;
                out.insert(id, p);
                continue;
            }
            let node = self.node(id);
            let p = prob_of(order.tuple_at(node.level));
            let value = (1.0 - p) * out[&node.lo] + p * out[&node.hi];
            self.stats.prob_cache_misses += 1;
            self.prob_cache.insert(id, value);
            out.insert(id, value);
        }
        out
    }

    /// Clears the bounded structural memos once they outgrow the cap.
    fn maybe_evict(&mut self) {
        if self.apply_memo.len() > ObddManager::MEMO_CAPACITY {
            self.apply_memo = HashMap::new();
            self.stats.cache_evictions += 1;
        }
        if self.concat_memo.len() > ObddManager::MEMO_CAPACITY {
            self.concat_memo = HashMap::new();
            self.stats.cache_evictions += 1;
        }
    }
}

struct Shared {
    order: Arc<VarOrder>,
    store: RwLock<Store>,
}

/// A shared, hash-consed OBDD node store over one [`VarOrder`]. Cloning is
/// cheap (an `Arc` bump); all clones address the same arena.
#[derive(Clone)]
pub struct ObddManager {
    shared: Arc<Shared>,
}

impl ObddManager {
    /// Upper bound on the apply/concat memo sizes before they are cleared
    /// (see the module-level memory model).
    pub const MEMO_CAPACITY: usize = 1 << 20;

    /// An empty manager over the given variable order.
    pub fn new(order: Arc<VarOrder>) -> ObddManager {
        ObddManager {
            shared: Arc::new(Shared {
                order,
                store: RwLock::new(Store::new()),
            }),
        }
    }

    /// The variable order every diagram of this manager lives on.
    pub fn order(&self) -> &Arc<VarOrder> {
        &self.shared.order
    }

    /// `true` when both handles address the same arena.
    pub fn same_store(&self, other: &ObddManager) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Current arena size (internal nodes plus the two sinks).
    pub fn num_nodes(&self) -> usize {
        self.read().nodes.len()
    }

    /// A snapshot of the manager's counters.
    pub fn stats(&self) -> ManagerStats {
        self.read().stats
    }

    /// The current weight epoch of the probability cache.
    pub fn weight_epoch(&self) -> u64 {
        self.read().weight_epoch
    }

    /// Declares that tuple weights changed: clears the per-node probability
    /// cache and starts a new epoch. Structural caches survive (they do not
    /// depend on weights).
    pub fn bump_weight_epoch(&self) -> u64 {
        let mut store = self.write();
        store.prob_cache.clear();
        store.weight_epoch += 1;
        store.weight_epoch
    }

    /// The constant diagram `true` or `false`.
    pub fn constant(&self, value: bool) -> Obdd {
        Obdd::from_parts(self.clone(), if value { TRUE } else { FALSE })
    }

    /// The diagram of a single positive literal.
    pub fn literal(&self, tuple: TupleId) -> Result<Obdd> {
        let level = self
            .shared
            .order
            .level_of(tuple)
            .ok_or_else(|| ObddError::UnknownVariable(tuple.to_string()))?;
        let root = self.write().mk(level, FALSE, TRUE);
        Ok(Obdd::from_parts(self.clone(), root))
    }

    /// The diagram of a conjunction of positive literals (one DNF clause).
    pub fn clause(&self, clause: &[TupleId]) -> Result<Obdd> {
        let mut levels: Vec<u32> = clause
            .iter()
            .map(|&t| {
                self.shared
                    .order
                    .level_of(t)
                    .ok_or_else(|| ObddError::UnknownVariable(t.to_string()))
            })
            .collect::<Result<_>>()?;
        levels.sort_unstable();
        levels.dedup();
        let mut store = self.write();
        let mut child = TRUE;
        for &level in levels.iter().rev() {
            child = store.mk(level, FALSE, child);
        }
        drop(store);
        Ok(Obdd::from_parts(self.clone(), child))
    }

    /// Scans the arena for canonicity violations: a duplicate
    /// `(level, lo, hi)` triple, a redundant node with `lo == hi`, a child
    /// whose level does not strictly exceed its parent's, or a unique-table
    /// entry out of sync with the arena. Returns the first violation found.
    pub fn canonicity_violation(&self) -> Option<String> {
        let store = self.read();
        let mut seen: HashMap<(u32, NodeId, NodeId), NodeId> = HashMap::new();
        for (i, node) in store.nodes.iter().enumerate().skip(2) {
            let id = i as NodeId;
            if node.lo == node.hi {
                return Some(format!("node {id} is redundant (lo == hi == {})", node.lo));
            }
            if let Some(&first) = seen.get(&(node.level, node.lo, node.hi)) {
                return Some(format!(
                    "nodes {first} and {id} duplicate ({}, {}, {})",
                    node.level, node.lo, node.hi
                ));
            }
            seen.insert((node.level, node.lo, node.hi), id);
            for child in [node.lo, node.hi] {
                if child as usize >= store.nodes.len() {
                    return Some(format!("node {id} points past the arena ({child})"));
                }
                let child_level = store.level(child);
                if child_level != SINK_LEVEL && child_level <= node.level {
                    return Some(format!(
                        "node {id} (level {}) has child {child} at level {child_level}",
                        node.level
                    ));
                }
            }
            match store.unique.get(&(node.level, node.lo, node.hi)) {
                Some(&u) if u == id => {}
                other => return Some(format!("unique table maps node {id}'s triple to {other:?}")),
            }
        }
        None
    }

    /// A read guard over the node arena for tight traversal loops; hold it
    /// instead of calling [`Obdd::node`] per step.
    pub fn nodes(&self) -> ObddNodes<'_> {
        ObddNodes { guard: self.read() }
    }

    fn read(&self) -> RwLockReadGuard<'_, Store> {
        self.shared
            .store
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Store> {
        self.shared
            .store
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    // ---- crate-internal operations on roots -------------------------------

    pub(crate) fn node_of(&self, id: NodeId) -> ObddNode {
        self.read().node(id)
    }

    pub(crate) fn reachable_of(&self, root: NodeId) -> Vec<NodeId> {
        self.read().reachable(root)
    }

    pub(crate) fn level_range_of(&self, root: NodeId) -> Option<(u32, u32)> {
        self.read().level_range(root)
    }

    pub(crate) fn apply_roots(&self, op: BoolOp, a: NodeId, b: NodeId) -> NodeId {
        if let Some(r) = Store::apply_terminal(op, a, b) {
            return r;
        }
        self.write().apply(op, a, b)
    }

    pub(crate) fn negate_root(&self, root: NodeId) -> NodeId {
        self.write().negate(root)
    }

    pub(crate) fn concat_roots(&self, and: bool, a: NodeId, b: NodeId) -> NodeId {
        if let Some(r) = concat_trivial(and, a, b) {
            return r;
        }
        self.write().concat(and, a, b)
    }

    /// Imports `root` of `other` into this manager (no-op for sinks or when
    /// both handles share the arena).
    pub(crate) fn import_root(&self, other: &ObddManager, root: NodeId) -> NodeId {
        if self.same_store(other) || root == TRUE || root == FALSE {
            return root;
        }
        // Lock order: write on the destination, then read on the source.
        // Distinct managers, so this cannot self-deadlock; concurrent
        // cross-imports in opposite directions are not supported (imports
        // only happen on cold cross-manager fallbacks).
        let mut dst = self.write();
        let src = other.read();
        dst.import(&src, root)
    }

    pub(crate) fn node_probs_of(
        &self,
        root: NodeId,
        prob_of: &dyn Fn(TupleId) -> f64,
    ) -> HashMap<NodeId, f64> {
        self.read().node_probs(&self.shared.order, root, prob_of)
    }

    pub(crate) fn node_probs_cached_of(
        &self,
        root: NodeId,
        prob_of: &dyn Fn(TupleId) -> f64,
    ) -> HashMap<NodeId, f64> {
        self.write()
            .node_probs_cached(&self.shared.order, root, prob_of)
    }
}

impl fmt::Debug for ObddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let store = self.read();
        f.debug_struct("ObddManager")
            .field("order_len", &self.shared.order.len())
            .field("nodes", &store.nodes.len())
            .field("weight_epoch", &store.weight_epoch)
            .finish_non_exhaustive()
    }
}

/// The one place the sink special cases of concatenation live (both
/// `concat_or` and `concat_and` route through it): `None` means real
/// rebuilding is required.
pub(crate) fn concat_trivial(and: bool, a: NodeId, b: NodeId) -> Option<NodeId> {
    let (identity, absorbing) = if and { (TRUE, FALSE) } else { (FALSE, TRUE) };
    if a == identity {
        // false ∨ b = b, true ∧ b = b.
        return Some(b);
    }
    if a == absorbing {
        // true ∨ b = true, false ∧ b = false.
        return Some(a);
    }
    if b == identity {
        // a ∨ false = a, a ∧ true = a: nothing to redirect.
        return Some(a);
    }
    None
}

/// A read guard over a manager's arena. Holds the shared lock, so keep its
/// lifetime to one traversal; do not call building operations on the same
/// manager while it is alive.
pub struct ObddNodes<'a> {
    guard: RwLockReadGuard<'a, Store>,
}

impl ObddNodes<'_> {
    /// The node behind an id.
    pub fn node(&self, id: NodeId) -> ObddNode {
        self.guard.node(id)
    }

    /// The level of a node ([`SINK_LEVEL`] for sinks).
    pub fn level(&self, id: NodeId) -> u32 {
        self.guard.level(id)
    }

    /// Current arena size.
    pub fn len(&self) -> usize {
        self.guard.nodes.len()
    }

    /// `true` when the arena holds only the two sinks.
    pub fn is_empty(&self) -> bool {
        self.guard.nodes.len() <= 2
    }
}

/// Sparse per-node Shannon-expansion probabilities for one diagram: every
/// node reachable from the root (sinks included) has an entry. Returned by
/// [`Obdd::node_probabilities`]; sized by the *diagram*, not by the shared
/// arena.
#[derive(Debug, Clone)]
pub struct NodeProbs {
    map: HashMap<NodeId, f64>,
}

impl NodeProbs {
    pub(crate) fn from_map(map: HashMap<NodeId, f64>) -> NodeProbs {
        NodeProbs { map }
    }

    /// The probability of the sub-diagram rooted at `id`. Panics when `id`
    /// was not reachable from the root the probabilities were computed for.
    pub fn get(&self, id: NodeId) -> f64 {
        self.map[&id]
    }

    /// Like [`NodeProbs::get`] without the reachability requirement.
    pub fn try_get(&self, id: NodeId) -> Option<f64> {
        self.map.get(&id).copied()
    }

    /// Consumes the probabilities as a plain map (keys: reachable nodes plus
    /// the two sinks), for callers that store them long-term.
    pub fn into_map(self) -> HashMap<NodeId, f64> {
        self.map
    }

    /// Number of nodes covered (reachable nodes plus the two sinks).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no node is covered (never the case for valid diagrams).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(n: u32) -> Arc<VarOrder> {
        Arc::new(VarOrder::from_tuples((0..n).map(TupleId)))
    }

    #[test]
    fn hash_consing_shares_nodes_across_diagrams() {
        let m = ObddManager::new(order(4));
        let a = m.clause(&[TupleId(1), TupleId(2)]).unwrap();
        let b = m.clause(&[TupleId(1), TupleId(2)]).unwrap();
        assert_eq!(a.root(), b.root());
        let stats = m.stats();
        assert!(stats.unique_hits >= 2, "second clause must hit the table");
        assert_eq!(stats.nodes_allocated, 2);
    }

    #[test]
    fn apply_memo_hits_on_repetition() {
        let m = ObddManager::new(order(4));
        let x = m.literal(TupleId(0)).unwrap();
        let y = m.literal(TupleId(3)).unwrap();
        let first = x.apply_or(&y).unwrap();
        let before = m.stats().apply_cache_hits;
        let second = x.apply_or(&y).unwrap();
        assert_eq!(first.root(), second.root());
        assert!(m.stats().apply_cache_hits > before);
    }

    #[test]
    fn negate_is_a_memoised_involution() {
        let m = ObddManager::new(order(3));
        let c = m.clause(&[TupleId(0), TupleId(2)]).unwrap();
        let n = c.negate();
        let back = n.negate();
        assert_eq!(back.root(), c.root());
        // The involution direction is answered entirely from the memo.
        let before = m.stats().apply_cache_misses;
        let again = c.negate();
        assert_eq!(again.root(), n.root());
        assert_eq!(m.stats().apply_cache_misses, before);
    }

    #[test]
    fn weight_epoch_invalidates_probability_cache() {
        let m = ObddManager::new(order(2));
        let c = m.clause(&[TupleId(0), TupleId(1)]).unwrap();
        let p1 = c.probability_cached(|_| 0.5);
        assert!((p1 - 0.25).abs() < 1e-12);
        // Same epoch: cached value is reused even for a new closure.
        let hits = m.stats().prob_cache_hits;
        let _ = c.probability_cached(|_| 0.5);
        assert!(m.stats().prob_cache_hits > hits);
        // New epoch: the cache is dropped and the new weights take effect.
        m.bump_weight_epoch();
        let p2 = c.probability_cached(|_| 0.1);
        assert!((p2 - 0.01).abs() < 1e-12);
    }

    #[test]
    fn canonicity_holds_after_mixed_operations() {
        let m = ObddManager::new(order(6));
        let a = m.clause(&[TupleId(0), TupleId(1)]).unwrap();
        let b = m.clause(&[TupleId(2), TupleId(3)]).unwrap();
        let c = m.clause(&[TupleId(4), TupleId(5)]).unwrap();
        let ab = a.concat_or(&b).unwrap();
        let abc = ab.apply_or(&c).unwrap();
        let _n = abc.negate();
        assert_eq!(m.canonicity_violation(), None);
    }

    #[test]
    fn concat_trivial_covers_both_operators() {
        // Left identity and absorbing sinks.
        assert_eq!(concat_trivial(false, FALSE, 7), Some(7));
        assert_eq!(concat_trivial(false, TRUE, 7), Some(TRUE));
        assert_eq!(concat_trivial(true, TRUE, 7), Some(7));
        assert_eq!(concat_trivial(true, FALSE, 7), Some(FALSE));
        // Right identity.
        assert_eq!(concat_trivial(false, 7, FALSE), Some(7));
        assert_eq!(concat_trivial(true, 7, TRUE), Some(7));
        // Real work.
        assert_eq!(concat_trivial(false, 7, 9), None);
        assert_eq!(concat_trivial(true, 7, 9), None);
    }
}
