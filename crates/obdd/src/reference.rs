//! A deliberately unoptimised reference OBDD implementation.
//!
//! [`RefManager`] mirrors the manager *before* the cache-conscious rework:
//! every cache is a SipHash-keyed [`std::collections::HashMap`]
//! (unique table, exact apply memo, negate memo, probability cache),
//! `apply` recurses on the call stack, and — like the pre-rework code —
//! `negate` and `probability` run a `reachable()` enumeration plus a
//! level-sort plus a fresh per-call result map on **every** call, even when
//! every per-node value is already cached. It exists for two reasons:
//!
//! * **oracle** — property tests assert that the production manager's
//!   iterative, lossy-table hot paths compute exactly the same reduced
//!   diagrams and probabilities as this straightforward recursive
//!   implementation;
//! * **baseline** — the `manager_hotpath` microbenchmark in `mv-bench`
//!   measures the production manager against it, so the speedup of the
//!   dense-table design over the hash-map design is a recorded number in
//!   `BENCH_figures.json`, not a claim.
//!
//! Keep it boring. Do **not** optimise this module; its value is that it is
//! obviously correct and representative of the pre-rework implementation.
//! Because it recurses, it is limited to diagrams a few thousand levels deep
//! — the production manager's explicit-stack traversals exist precisely to
//! remove that limit.

use std::collections::HashMap;
use std::sync::Arc;

use mv_pdb::TupleId;

use crate::error::ObddError;
use crate::obdd::{ObddNode, FALSE, SINK_LEVEL, TRUE};
use crate::order::VarOrder;
use crate::{NodeId, Result};

/// A self-contained recursive OBDD manager with SipHash `HashMap` caches.
/// Roots are plain [`NodeId`]s into the manager's own arena.
#[derive(Debug)]
pub struct RefManager {
    order: Arc<VarOrder>,
    nodes: Vec<ObddNode>,
    unique: HashMap<(u32, NodeId, NodeId), NodeId>,
    apply_memo: HashMap<(bool, NodeId, NodeId), NodeId>,
    negate_memo: HashMap<NodeId, NodeId>,
    prob_cache: HashMap<NodeId, f64>,
}

impl RefManager {
    /// An empty reference manager over the given variable order.
    pub fn new(order: Arc<VarOrder>) -> RefManager {
        let mut negate_memo = HashMap::new();
        negate_memo.insert(FALSE, TRUE);
        negate_memo.insert(TRUE, FALSE);
        RefManager {
            order,
            nodes: vec![
                ObddNode {
                    level: SINK_LEVEL,
                    lo: FALSE,
                    hi: FALSE,
                },
                ObddNode {
                    level: SINK_LEVEL,
                    lo: TRUE,
                    hi: TRUE,
                },
            ],
            unique: HashMap::new(),
            apply_memo: HashMap::new(),
            negate_memo,
            prob_cache: HashMap::new(),
        }
    }

    /// The variable order of this manager.
    pub fn order(&self) -> &Arc<VarOrder> {
        &self.order
    }

    /// Number of nodes in the arena (sinks included).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The constant root `true` or `false`.
    pub fn constant(value: bool) -> NodeId {
        if value {
            TRUE
        } else {
            FALSE
        }
    }

    fn node(&self, id: NodeId) -> ObddNode {
        self.nodes[id as usize]
    }

    fn mk(&mut self, level: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        if let Some(&id) = self.unique.get(&(level, lo, hi)) {
            return id;
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(ObddNode { level, lo, hi });
        self.unique.insert((level, lo, hi), id);
        id
    }

    /// The root of a conjunction of positive literals (one DNF clause).
    pub fn clause(&mut self, clause: &[TupleId]) -> Result<NodeId> {
        let mut levels: Vec<u32> = clause
            .iter()
            .map(|&t| {
                self.order
                    .level_of(t)
                    .ok_or_else(|| ObddError::UnknownVariable(t.to_string()))
            })
            .collect::<Result<_>>()?;
        levels.sort_unstable();
        levels.dedup();
        let mut child = TRUE;
        for &level in levels.iter().rev() {
            child = self.mk(level, FALSE, child);
        }
        Ok(child)
    }

    /// Recursive synthesis of `a ∨ b`.
    pub fn apply_or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(false, a, b)
    }

    /// Recursive synthesis of `a ∧ b`.
    pub fn apply_and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(true, a, b)
    }

    fn apply(&mut self, and: bool, a: NodeId, b: NodeId) -> NodeId {
        if a == b {
            return a;
        }
        let (absorbing, identity) = if and { (FALSE, TRUE) } else { (TRUE, FALSE) };
        if a == absorbing || b == absorbing {
            return absorbing;
        }
        if a == identity {
            return b;
        }
        if b == identity {
            return a;
        }
        let key = (and, a.min(b), a.max(b));
        if let Some(&r) = self.apply_memo.get(&key) {
            return r;
        }
        let na = self.node(a);
        let nb = self.node(b);
        let m = na.level.min(nb.level);
        let (a0, a1) = if na.level == m {
            (na.lo, na.hi)
        } else {
            (a, a)
        };
        let (b0, b1) = if nb.level == m {
            (nb.lo, nb.hi)
        } else {
            (b, b)
        };
        let lo = self.apply(and, a0, b0);
        let hi = self.apply(and, a1, b1);
        let r = self.mk(m, lo, hi);
        self.apply_memo.insert(key, r);
        r
    }

    /// Ids reachable from `root` (sinks included), the way the pre-rework
    /// manager enumerated them before every negate/probability pass.
    fn reachable(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            out.push(id);
            if id != TRUE && id != FALSE {
                let node = self.node(id);
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        out
    }

    /// Negation the pre-rework way: enumerate the reachable nodes, sort them
    /// bottom-up by level, and rebuild through the hash-map memo.
    pub fn negate(&mut self, root: NodeId) -> NodeId {
        if let Some(&r) = self.negate_memo.get(&root) {
            return r;
        }
        let mut ids = self.reachable(root);
        ids.sort_by_key(|&id| std::cmp::Reverse(self.node(id).level));
        for id in ids {
            if self.negate_memo.contains_key(&id) {
                continue;
            }
            let node = self.node(id);
            let lo = self.negate_memo[&node.lo];
            let hi = self.negate_memo[&node.hi];
            let neg = self.mk(node.level, lo, hi);
            self.negate_memo.insert(id, neg);
            self.negate_memo.entry(neg).or_insert(id);
        }
        self.negate_memo[&root]
    }

    /// Shannon-expansion probability the pre-rework way: every call
    /// enumerates the reachable nodes, sorts them bottom-up, and fills a
    /// fresh per-call hash map, consulting the persistent per-node hash-map
    /// cache entry by entry — even when the whole diagram is already
    /// cached. The cache is keyed by node alone, so it is only valid for
    /// one weight function; call [`RefManager::clear_prob_cache`] when
    /// weights change (the hash-map analogue of an epoch bump).
    pub fn probability(&mut self, root: NodeId, prob_of: &impl Fn(TupleId) -> f64) -> f64 {
        let mut ids = self.reachable(root);
        ids.sort_by_key(|&id| std::cmp::Reverse(self.node(id).level));
        let mut out: HashMap<NodeId, f64> = HashMap::with_capacity(ids.len() + 2);
        out.insert(FALSE, 0.0);
        out.insert(TRUE, 1.0);
        for id in ids {
            if id == TRUE || id == FALSE {
                continue;
            }
            if let Some(&p) = self.prob_cache.get(&id) {
                out.insert(id, p);
                continue;
            }
            let node = self.node(id);
            let p = prob_of(self.order.tuple_at(node.level));
            let value = (1.0 - p) * out[&node.lo] + p * out[&node.hi];
            self.prob_cache.insert(id, value);
            out.insert(id, value);
        }
        out[&root]
    }

    /// Drops every cached per-node probability (weights changed).
    pub fn clear_prob_cache(&mut self) {
        self.prob_cache.clear();
    }

    /// Evaluates the diagram under a truth assignment.
    pub fn eval(&self, root: NodeId, assignment: impl Fn(TupleId) -> bool) -> bool {
        let mut id = root;
        while id != TRUE && id != FALSE {
            let node = self.node(id);
            let tuple = self.order.tuple_at(node.level);
            id = if assignment(tuple) { node.hi } else { node.lo };
        }
        id == TRUE
    }

    /// Number of internal nodes reachable from `root` (the diagram size).
    pub fn size(&self, root: NodeId) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if id == TRUE || id == FALSE || !seen.insert(id) {
                continue;
            }
            count += 1;
            let node = self.node(id);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(n: u32) -> Arc<VarOrder> {
        Arc::new(VarOrder::from_tuples((0..n).map(TupleId)))
    }

    #[test]
    fn reference_reproduces_textbook_identities() {
        let mut m = RefManager::new(order(3));
        let a = m.clause(&[TupleId(0), TupleId(1)]).unwrap();
        let b = m.clause(&[TupleId(2)]).unwrap();
        let or = m.apply_or(a, b);
        let and = m.apply_and(a, b);
        assert!((m.probability(or, &|_| 0.5) - 0.625).abs() < 1e-12);
        m.clear_prob_cache();
        assert!((m.probability(and, &|_| 0.5) - 0.125).abs() < 1e-12);
        let neg = m.negate(or);
        m.clear_prob_cache();
        let p = m.probability(or, &|_| 0.5) + m.probability(neg, &|_| 0.5);
        assert!((p - 1.0).abs() < 1e-12);
        // Involution returns the original root.
        assert_eq!(m.negate(neg), or);
    }

    #[test]
    fn reference_agrees_with_the_production_manager_on_a_sample() {
        let ord = order(6);
        let mut r = RefManager::new(Arc::clone(&ord));
        let m = crate::ObddManager::new(Arc::clone(&ord));
        let clauses: Vec<Vec<TupleId>> = vec![
            vec![TupleId(0), TupleId(3)],
            vec![TupleId(1), TupleId(4)],
            vec![TupleId(2), TupleId(5)],
            vec![TupleId(0), TupleId(5)],
        ];
        let mut ref_acc = RefManager::constant(false);
        let mut acc = m.constant(false);
        for c in &clauses {
            let rc = r.clause(c).unwrap();
            ref_acc = r.apply_or(ref_acc, rc);
            let mc = m.clause(c).unwrap();
            acc = acc.apply_or(&mc).unwrap();
        }
        let prob = |t: TupleId| 0.1 + 0.1 * f64::from(t.0);
        assert!((r.probability(ref_acc, &prob) - acc.probability(prob)).abs() < 1e-12);
        assert_eq!(r.size(ref_acc), acc.size());
    }
}
