//! Error type of the OBDD layer.

use std::fmt;

/// Errors raised while constructing or combining OBDDs.
#[derive(Debug, Clone, PartialEq)]
pub enum ObddError {
    /// Two diagrams built over different variable orders were combined.
    OrderMismatch,
    /// A tuple variable is missing from the variable order.
    UnknownVariable(String),
    /// A query-level error surfaced during construction.
    Query(mv_query::QueryError),
}

impl fmt::Display for ObddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObddError::OrderMismatch => {
                write!(
                    f,
                    "cannot combine OBDDs built over different variable orders"
                )
            }
            ObddError::UnknownVariable(v) => {
                write!(f, "tuple variable {v} is not part of the variable order")
            }
            ObddError::Query(e) => write!(f, "query error during OBDD construction: {e}"),
        }
    }
}

impl std::error::Error for ObddError {}

impl From<mv_query::QueryError> for ObddError {
    fn from(e: mv_query::QueryError) -> Self {
        ObddError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ObddError::OrderMismatch
            .to_string()
            .contains("variable orders"));
        assert!(ObddError::UnknownVariable("X7".into())
            .to_string()
            .contains("X7"));
    }
}
