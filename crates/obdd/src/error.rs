//! Error type of the OBDD layer.

use std::fmt;

/// Errors raised while constructing or combining OBDDs.
#[derive(Debug, Clone, PartialEq)]
pub enum ObddError {
    /// Two diagrams built over different variable orders were combined.
    OrderMismatch,
    /// A tuple variable is missing from the variable order.
    UnknownVariable(String),
    /// A bounded synthesis allocated more nodes than its budget allowed:
    /// the lineage has no small OBDD under the current variable order, and
    /// the caller asked for refusal instead of a blow-up. Approximate
    /// backends (Monte Carlo) remain available for such queries.
    NodeBudgetExceeded {
        /// Arena nodes allocated by the abandoned synthesis.
        allocated: usize,
        /// The budget it exceeded.
        budget: usize,
    },
    /// The synthesis was cut short by its cooperative budget (deadline,
    /// step limit, or cancellation) — see [`mv_query::EvalBudget`].
    Budget(mv_query::BudgetError),
    /// A query-level error surfaced during construction.
    Query(mv_query::QueryError),
}

impl fmt::Display for ObddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObddError::OrderMismatch => {
                write!(
                    f,
                    "cannot combine OBDDs built over different variable orders"
                )
            }
            ObddError::UnknownVariable(v) => {
                write!(f, "tuple variable {v} is not part of the variable order")
            }
            ObddError::NodeBudgetExceeded { allocated, budget } => write!(
                f,
                "OBDD synthesis refused: allocated {allocated} nodes, exceeding the budget of \
                 {budget} (no small diagram under this variable order; use an approximate backend)"
            ),
            ObddError::Budget(e) => write!(f, "OBDD synthesis abandoned: {e}"),
            ObddError::Query(e) => write!(f, "query error during OBDD construction: {e}"),
        }
    }
}

impl std::error::Error for ObddError {}

impl From<mv_query::QueryError> for ObddError {
    fn from(e: mv_query::QueryError) -> Self {
        ObddError::Query(e)
    }
}

impl From<mv_query::BudgetError> for ObddError {
    fn from(e: mv_query::BudgetError) -> Self {
        ObddError::Budget(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ObddError::OrderMismatch
            .to_string()
            .contains("variable orders"));
        assert!(ObddError::UnknownVariable("X7".into())
            .to_string()
            .contains("X7"));
        let refusal = ObddError::NodeBudgetExceeded {
            allocated: 4096,
            budget: 1000,
        };
        assert!(refusal.to_string().contains("4096"));
        assert!(refusal.to_string().contains("refused"));
    }
}
