//! The generic, synthesis-only OBDD builder (the "native CUDD" baseline).
//!
//! [`SynthesisBuilder`] constructs the OBDD of a query by computing its DNF
//! lineage and folding the clauses together with the classical `apply`
//! synthesis — exactly what a generic OBDD package does when handed a Boolean
//! formula. It produces the same reduced diagram as the ConOBDD construction
//! (canonicity of reduced OBDDs under a fixed order), but each `apply` step
//! costs `O(|G1| · |G2|)`, which is what Figure 8 of the paper measures
//! against the concatenation-based construction.

use std::sync::Arc;

use mv_pdb::InDb;
use mv_query::lineage::{lineage, Lineage};
use mv_query::Ucq;

use crate::manager::ObddManager;
use crate::obdd::Obdd;
use crate::order::VarOrder;
use crate::Result;

/// Builds OBDDs from lineage by pairwise synthesis. All diagrams a builder
/// produces live in one shared [`ObddManager`], so clause diagrams and
/// intermediate synthesis results are hash-consed against each other and
/// repeated apply steps hit the manager's persistent memo.
#[derive(Debug, Clone)]
pub struct SynthesisBuilder {
    manager: ObddManager,
}

impl SynthesisBuilder {
    /// Creates a builder over the given variable order (with a fresh
    /// manager).
    pub fn new(order: Arc<VarOrder>) -> Self {
        SynthesisBuilder {
            manager: ObddManager::new(order),
        }
    }

    /// Creates a builder that synthesises into an existing manager — the way
    /// to share query-side diagrams across many lineages (e.g. the
    /// per-answer loop of the MV-index backend).
    pub fn with_manager(manager: ObddManager) -> Self {
        SynthesisBuilder { manager }
    }

    /// The variable order used by this builder.
    pub fn order(&self) -> &Arc<VarOrder> {
        self.manager.order()
    }

    /// The shared manager diagrams are built into.
    pub fn manager(&self) -> &ObddManager {
        &self.manager
    }

    /// Builds the OBDD of a DNF lineage by synthesising one clause at a
    /// time — through [`ObddManager::dnf`], so the whole fold runs under a
    /// single manager-lock acquisition.
    pub fn from_lineage(&self, lineage: &Lineage) -> Result<Obdd> {
        if lineage.is_true() {
            return Ok(self.manager.constant(true));
        }
        self.manager.dnf(lineage.clauses())
    }

    /// Like [`SynthesisBuilder::from_lineage`] but **refuses** lineages
    /// whose synthesis allocates more than `node_budget` fresh nodes
    /// (returns [`crate::ObddError::NodeBudgetExceeded`]). This is the
    /// exact-inference entry point for callers with an approximate
    /// fallback: a lineage with no small OBDD under this order fails fast
    /// instead of exhausting memory.
    pub fn from_lineage_bounded(&self, lineage: &Lineage, node_budget: usize) -> Result<Obdd> {
        if lineage.is_true() {
            return Ok(self.manager.constant(true));
        }
        self.manager.dnf_bounded(lineage.clauses(), node_budget)
    }

    /// Computes the lineage of a Boolean UCQ and builds its OBDD.
    pub fn from_query(&self, ucq: &Ucq, indb: &InDb) -> Result<Obdd> {
        let lin = lineage(ucq, indb)?;
        self.from_lineage(&lin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_pdb::value::row;
    use mv_pdb::{InDbBuilder, TupleId, Weight};
    use mv_query::brute::brute_force_lineage_probability;
    use mv_query::parse_ucq;

    use crate::order::PiOrder;

    fn fig3() -> InDb {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
        b.insert_weighted(r, row(["a1"]), Weight::new(3.0)).unwrap();
        b.insert_weighted(r, row(["a2"]), Weight::new(0.5)).unwrap();
        b.insert_weighted(s, row(["a1", "b1"]), Weight::new(1.0))
            .unwrap();
        b.insert_weighted(s, row(["a1", "b2"]), Weight::new(2.0))
            .unwrap();
        b.insert_weighted(s, row(["a2", "b3"]), Weight::new(1.0))
            .unwrap();
        b.insert_weighted(s, row(["a2", "b4"]), Weight::new(4.0))
            .unwrap();
        b.build()
    }

    #[test]
    fn synthesised_obdd_matches_brute_force_probability() {
        let indb = fig3();
        let order = Arc::new(PiOrder::identity().tuple_order(&indb));
        let builder = SynthesisBuilder::new(order);
        let q = parse_ucq("Q() :- R(x), S(x, y)").unwrap();
        let obdd = builder.from_query(&q, &indb).unwrap();
        let lin = lineage(&q, &indb).unwrap();
        let expected = brute_force_lineage_probability(&lin, &indb);
        let actual = obdd.probability(|t| indb.probability(t));
        assert!((actual - expected).abs() < 1e-12);
        // In the Figure 3 order the OBDD has width 1 and six nodes.
        assert_eq!(obdd.size(), 6);
        assert_eq!(obdd.width(), 1);
    }

    #[test]
    fn constant_lineages_produce_constant_diagrams() {
        let indb = fig3();
        let order = Arc::new(VarOrder::natural(&indb));
        let builder = SynthesisBuilder::new(order);
        let t = builder.from_lineage(&Lineage::constant_true()).unwrap();
        assert_eq!(t.size(), 0);
        assert!(t.eval(|_| false));
        let f = builder.from_lineage(&Lineage::constant_false()).unwrap();
        assert!(!f.eval(|_| true));
    }

    #[test]
    fn lineage_variables_all_appear_in_the_diagram() {
        let indb = fig3();
        let order = Arc::new(PiOrder::identity().tuple_order(&indb));
        let builder = SynthesisBuilder::new(order);
        let q = parse_ucq("Q() :- S(x, y)").unwrap();
        let obdd = builder.from_query(&q, &indb).unwrap();
        // One node per S tuple: the diagram is a chain of 4 variables.
        assert_eq!(obdd.size(), 4);
        let p = obdd.probability(|t| indb.probability(t));
        let expected = 1.0 - (1.0 - 0.5) * (1.0 - 2.0 / 3.0) * (1.0 - 0.5) * (1.0 - 0.8);
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn bounded_synthesis_refuses_pairing_blowups() {
        // f = ∨_i xᵢ ∧ yᵢ with every x-variable ordered before every
        // y-variable: after the x-levels the diagram must remember the set
        // of matched partners, so the reduced OBDD has ~2ⁿ nodes. The
        // bounded entry point refuses fast instead of exhausting memory.
        let n = 14u32;
        let order = Arc::new(VarOrder::from_tuples((0..2 * n).map(TupleId)));
        let builder = SynthesisBuilder::new(order);
        let lin = Lineage::from_clauses(
            (0..n)
                .map(|i| vec![TupleId(i), TupleId(n + i)])
                .collect::<Vec<_>>(),
        );
        match builder.from_lineage_bounded(&lin, 2_000) {
            Err(crate::ObddError::NodeBudgetExceeded { allocated, budget }) => {
                assert!(allocated > budget);
                assert_eq!(budget, 2_000);
            }
            other => panic!("expected a node-budget refusal, got {other:?}"),
        }
        // A generous budget admits the same lineage and confirms the size.
        let obdd = builder.from_lineage_bounded(&lin, usize::MAX).unwrap();
        assert!(obdd.size() > 2_000, "diagram size {}", obdd.size());
        // Easy lineages pass untouched under tight budgets.
        let easy = Lineage::from_clauses(vec![vec![TupleId(0)], vec![TupleId(1)]]);
        let small = builder.from_lineage_bounded(&easy, 16).unwrap();
        assert!(small.size() <= 2);
    }

    #[test]
    fn unknown_variables_are_reported() {
        let indb = fig3();
        // An order that misses tuples of the lineage.
        let order = Arc::new(VarOrder::from_tuples(vec![TupleId(0)]));
        let builder = SynthesisBuilder::new(order);
        let lin = Lineage::from_clauses(vec![vec![TupleId(0), TupleId(3)]]);
        assert!(builder.from_lineage(&lin).is_err());
        let _ = indb;
    }
}
