//! # `mv-obdd` — Ordered Binary Decision Diagrams for probabilistic databases
//!
//! This crate implements the OBDD machinery of Section 4 of the MarkoViews
//! paper:
//!
//! * [`order`] — variable orders over tuple variables. [`PiOrder`] captures
//!   the per-relation attribute permutations `π` of Section 4.2 and derives
//!   the total order `Π` over the probabilistic tuples of an
//!   [`mv_pdb::InDb`] (recursive grouping by the first attribute of each
//!   relation over the ordered active domain).
//! * [`manager`] — [`ObddManager`], the shared, hash-consed, append-only
//!   node arena every diagram lives in: one global unique table, persistent
//!   apply/negate/concat memos, and a per-node probability cache keyed by a
//!   *weight epoch*. See the module docs for the memory model (arena
//!   growth, cache eviction) and the threading contract.
//! * [`obdd`] — [`Obdd`], a cheap `{manager, root}` handle: reduction,
//!   Boolean synthesis (`apply`), negation, concatenation of
//!   level-disjoint diagrams, and probability computation by Shannon
//!   expansion (valid for negative probabilities, Section 3.3). Combining
//!   handles never deep-copies node stores when they share a manager.
//! * [`synthesis`] — [`SynthesisBuilder`], the generic bottom-up builder that
//!   synthesises an OBDD from a DNF lineage clause by clause. This is the
//!   stand-in for native CUDD used as the baseline of Figure 8.
//! * [`reference`] — [`RefManager`], a deliberately unoptimised recursive
//!   implementation with SipHash hash-map caches: the agreement oracle for
//!   the manager's iterative hot paths and the baseline the
//!   `manager_hotpath` microbenchmark measures speedups against.
//! * [`conobdd`] — [`ConObddBuilder`], the `ConOBDD(π, Q)` construction of
//!   Section 4.2 (rules R1–R4): it recurses over the query structure,
//!   expands separator variables over the active domain and *concatenates*
//!   the resulting independent OBDDs, falling back to synthesis only when
//!   necessary. For inversion-free queries the result has constant width
//!   (Proposition 2). Every diagram a builder produces shares the builder's
//!   manager.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conobdd;
pub mod error;
pub mod manager;
pub mod obdd;
pub mod order;
pub mod reference;
pub mod synthesis;

pub use conobdd::{ConObddBuilder, ConstructionStats};
pub use error::ObddError;
pub use manager::{CompactOutcome, ManagerStats, NodeProbs, ObddManager, ObddNodes};
pub use obdd::{NodeId, Obdd, ObddNode};
pub use order::{PiOrder, VarOrder};
pub use reference::RefManager;
pub use synthesis::SynthesisBuilder;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ObddError>;
