//! Variable orders over tuple variables.
//!
//! Section 4.2 defines the OBDD variable order `Π` through a family
//! `π = {π_R1, …, π_Rk}` of attribute permutations, one per relation: tuples
//! are grouped recursively by the value of their first attribute (according
//! to `π`) over the *ordered* active domain, which yields a total order over
//! all tuples. Equivalently, each tuple is keyed by the sequence of its
//! attribute values in `π`-order and tuples are sorted lexicographically,
//! shorter keys (prefixes) first, ties broken by relation arity and id.
//!
//! For the running example (`R(A)`, `S(A,B)`, `π_R = (A)`, `π_S = (A,B)`,
//! database of Figure 3) this produces `Π = X1, Y1, Y2, X2, Y3, Y4`.

use std::collections::HashMap;

use fxhash::FxHashMap;
use mv_pdb::{InDb, RelId, TupleId, Value};

/// The per-relation attribute permutations `π`.
#[derive(Debug, Clone, Default)]
pub struct PiOrder {
    /// For each relation name, the permutation of its attribute positions.
    /// Relations without an entry use the identity permutation.
    permutations: HashMap<String, Vec<usize>>,
}

impl PiOrder {
    /// The identity `π`: every relation keeps its declared attribute order.
    pub fn identity() -> Self {
        PiOrder::default()
    }

    /// Sets the attribute permutation of one relation.
    ///
    /// `permutation[i]` is the attribute position visited at step `i`.
    pub fn set_permutation(&mut self, relation: impl Into<String>, permutation: Vec<usize>) {
        self.permutations.insert(relation.into(), permutation);
    }

    /// Moves the given attribute position to the front of the relation's
    /// permutation (used to place separator attributes first, Section 4.2).
    pub fn put_attribute_first(&mut self, relation: &str, position: usize, arity: usize) {
        let mut perm: Vec<usize> = vec![position];
        perm.extend((0..arity).filter(|&p| p != position));
        self.permutations.insert(relation.to_string(), perm);
    }

    /// The permutation of a relation with the given arity.
    pub fn permutation(&self, relation: &str, arity: usize) -> Vec<usize> {
        match self.permutations.get(relation) {
            Some(p) => p.clone(),
            None => (0..arity).collect(),
        }
    }

    /// Derives the total order `Π` over all probabilistic tuples of the
    /// database.
    pub fn tuple_order(&self, indb: &InDb) -> VarOrder {
        // Key every probabilistic tuple by its values in π-order; sort
        // lexicographically with shorter keys first, then by relation arity,
        // then by relation id for stability.
        let mut keyed: Vec<(Vec<Value>, usize, RelId, TupleId)> = indb
            .tuples()
            .map(|(id, t)| {
                let schema = indb.schema().relation(t.rel);
                let row = indb.database().relation(t.rel).row(t.row_index);
                let perm = self.permutation(schema.name(), schema.arity());
                let key: Vec<Value> = perm.iter().map(|&p| row[p].clone()).collect();
                (key, schema.arity(), t.rel, id)
            })
            .collect();
        keyed.sort_by(|a, b| {
            lex_prefix_cmp(&a.0, &b.0)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });
        VarOrder::from_tuples(keyed.into_iter().map(|(_, _, _, id)| id))
    }
}

/// Lexicographic comparison where a strict prefix sorts before its
/// extensions.
fn lex_prefix_cmp(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

/// A total order over tuple variables: the mapping between OBDD levels and
/// [`TupleId`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarOrder {
    by_level: Vec<TupleId>,
    /// `tuple → level`; FxHash-keyed because clause construction probes it
    /// once per literal.
    level_of: FxHashMap<TupleId, u32>,
}

impl VarOrder {
    /// Builds an order from tuples listed from the first (top) level to the
    /// last.
    pub fn from_tuples(tuples: impl IntoIterator<Item = TupleId>) -> Self {
        let by_level: Vec<TupleId> = tuples.into_iter().collect();
        let level_of = by_level
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        VarOrder { by_level, level_of }
    }

    /// Natural order: tuple ids in increasing order.
    pub fn natural(indb: &InDb) -> Self {
        VarOrder::from_tuples((0..indb.num_tuples() as u32).map(TupleId))
    }

    /// Number of variables in the order.
    pub fn len(&self) -> usize {
        self.by_level.len()
    }

    /// `true` when the order is empty.
    pub fn is_empty(&self) -> bool {
        self.by_level.is_empty()
    }

    /// The tuple at the given level.
    pub fn tuple_at(&self, level: u32) -> TupleId {
        self.by_level[level as usize]
    }

    /// The level of a tuple, if it is part of the order.
    pub fn level_of(&self, tuple: TupleId) -> Option<u32> {
        self.level_of.get(&tuple).copied()
    }

    /// All tuples from the top level down.
    pub fn tuples(&self) -> &[TupleId] {
        &self.by_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_pdb::value::row;
    use mv_pdb::{InDbBuilder, Weight};

    /// The database of Figure 3.
    fn fig3() -> InDb {
        let mut b = InDbBuilder::new();
        let r = b.probabilistic_relation("R", &["a"]).unwrap();
        let s = b.probabilistic_relation("S", &["a", "b"]).unwrap();
        // Insert S rows first to show the order does not depend on insertion.
        b.insert_weighted(s, row(["a1", "b1"]), Weight::ONE)
            .unwrap(); // id 0 (Y1)
        b.insert_weighted(s, row(["a1", "b2"]), Weight::ONE)
            .unwrap(); // id 1 (Y2)
        b.insert_weighted(s, row(["a2", "b3"]), Weight::ONE)
            .unwrap(); // id 2 (Y3)
        b.insert_weighted(s, row(["a2", "b4"]), Weight::ONE)
            .unwrap(); // id 3 (Y4)
        b.insert_weighted(r, row(["a1"]), Weight::ONE).unwrap(); // id 4 (X1)
        b.insert_weighted(r, row(["a2"]), Weight::ONE).unwrap(); // id 5 (X2)
        b.build()
    }

    #[test]
    fn figure3_order_interleaves_r_and_s_by_first_attribute() {
        let indb = fig3();
        let order = PiOrder::identity().tuple_order(&indb);
        // Expected Π = X1, Y1, Y2, X2, Y3, Y4 = ids 4, 0, 1, 5, 2, 3.
        assert_eq!(
            order.tuples(),
            &[
                TupleId(4),
                TupleId(0),
                TupleId(1),
                TupleId(5),
                TupleId(2),
                TupleId(3)
            ]
        );
        assert_eq!(order.level_of(TupleId(4)), Some(0));
        assert_eq!(order.level_of(TupleId(3)), Some(5));
        assert_eq!(order.tuple_at(1), TupleId(0));
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn permutations_change_the_grouping_attribute() {
        let indb = fig3();
        let mut pi = PiOrder::identity();
        // Group S by its second attribute instead: S tuples then sort by b.
        pi.put_attribute_first("S", 1, 2);
        let order = pi.tuple_order(&indb);
        // Keys: R(a1)->[a1], R(a2)->[a2], S(a1,b1)->[b1,a1], ... so all R
        // tuples (keys a1 < a2 < b1 < …) come first.
        assert_eq!(order.tuples()[0], TupleId(4));
        assert_eq!(order.tuples()[1], TupleId(5));
        assert_eq!(order.level_of(TupleId(0)), Some(2));
    }

    #[test]
    fn natural_order_is_by_tuple_id() {
        let indb = fig3();
        let order = VarOrder::natural(&indb);
        assert_eq!(order.tuples().len(), 6);
        assert_eq!(order.tuple_at(0), TupleId(0));
        assert_eq!(order.level_of(TupleId(5)), Some(5));
    }

    #[test]
    fn unknown_tuples_have_no_level() {
        let indb = fig3();
        let order = PiOrder::identity().tuple_order(&indb);
        assert_eq!(order.level_of(TupleId(99)), None);
        assert!(!order.is_empty());
    }

    #[test]
    fn prefix_sorts_before_extension() {
        use std::cmp::Ordering;
        let a1 = Value::str("a1");
        let b1 = Value::str("b1");
        assert_eq!(
            lex_prefix_cmp(std::slice::from_ref(&a1), &[a1.clone(), b1.clone()]),
            Ordering::Less
        );
        assert_eq!(
            lex_prefix_cmp(&[a1.clone(), b1], std::slice::from_ref(&a1)),
            Ordering::Greater
        );
        assert_eq!(
            lex_prefix_cmp(std::slice::from_ref(&a1), std::slice::from_ref(&a1)),
            Ordering::Equal
        );
    }

    #[test]
    fn explicit_permutation_is_used() {
        let mut pi = PiOrder::identity();
        pi.set_permutation("S", vec![1, 0]);
        assert_eq!(pi.permutation("S", 2), vec![1, 0]);
        assert_eq!(pi.permutation("R", 3), vec![0, 1, 2]);
    }
}
