//! Regression: the manager's hot paths are iterative (explicit stacks), so
//! chain diagrams with 100 000 levels — the shape produced by repeated
//! concatenation over a large database — must build, negate, combine, and
//! evaluate probabilities **with the default stack size**. A recursive
//! implementation dies here: Rust test threads get 2 MiB of stack, and
//! 100 000 frames of even a tiny recursive `apply` blow well past that
//! (`mv_obdd::reference::RefManager` exists to show what that code looks
//! like; do not run it at this depth).

use std::sync::Arc;

use mv_obdd::{ObddManager, VarOrder};
use mv_pdb::TupleId;

const LEVELS: u32 = 100_000;

fn chain_manager() -> ObddManager {
    let order = Arc::new(VarOrder::from_tuples((0..LEVELS).map(TupleId)));
    ObddManager::new(order)
}

#[test]
fn deep_chain_builds_negates_and_evaluates_probability() {
    let m = chain_manager();
    let clause: Vec<TupleId> = (0..LEVELS).map(TupleId).collect();
    let chain = m.clause(&clause).expect("chain builds");
    assert_eq!(chain.size(), LEVELS as usize);

    // Probability passes (uncached and cached) walk all 100k levels.
    let p = chain.probability(|_| 1.0);
    assert_eq!(p, 1.0);
    let p_cached = chain.probability_cached(|_| 1.0);
    assert_eq!(p_cached, 1.0);
    // A non-degenerate weight stays finite and positive.
    let p_small = chain.probability(|_| 0.9999);
    assert!(p_small.is_finite() && p_small > 0.0 && p_small < 1.0);

    // Negation rebuilds the whole chain iteratively.
    let negated = chain.negate();
    assert_eq!(negated.size(), LEVELS as usize);
    assert_eq!(negated.probability(|_| 1.0), 0.0);
    // The involution direction is answered from the dense memo.
    assert_eq!(negated.negate().root(), chain.root());

    // Point evaluation follows one root-to-sink path of length 100k.
    assert!(chain.eval(|_| true));
    assert!(!chain.eval(|t| t.0 != LEVELS / 2));
}

#[test]
fn deep_chain_apply_combines_interleaved_operands() {
    // apply(∧) over two 50k-level chains on interleaved levels walks the
    // full 100k-level result depth on an explicit stack.
    let m = chain_manager();
    let evens: Vec<TupleId> = (0..LEVELS).step_by(2).map(TupleId).collect();
    let odds: Vec<TupleId> = (1..LEVELS).step_by(2).map(TupleId).collect();
    let even_chain = m.clause(&evens).expect("even chain");
    let odd_chain = m.clause(&odds).expect("odd chain");
    let combined = even_chain.apply_and(&odd_chain).expect("apply");
    // x0 ∧ x1 ∧ … over all levels: identical to the full clause.
    let full = m
        .clause(&(0..LEVELS).map(TupleId).collect::<Vec<_>>())
        .expect("full chain");
    assert_eq!(combined.root(), full.root());
    assert_eq!(combined.probability(|_| 1.0), 1.0);

    // The cached bulk-probability path across several deep diagrams.
    let total: f64 = [&even_chain, &odd_chain, &combined]
        .iter()
        .map(|d| d.probability_cached(|_| 1.0))
        .sum();
    assert_eq!(total, 3.0);
}
