//! Property tests: the production manager's iterative, lossy-computed-table
//! hot paths (`apply`, `negate`, probability) must agree exactly with the
//! straightforward recursive reference implementation
//! ([`mv_obdd::reference::RefManager`]) on random DNF diagrams — same
//! probabilities, same truth tables, same reduced-diagram sizes.

use std::sync::Arc;

use mv_obdd::{ObddManager, RefManager, VarOrder};
use mv_pdb::TupleId;
use proptest::prelude::*;

const VARS: u32 = 10;

fn order() -> Arc<VarOrder> {
    Arc::new(VarOrder::from_tuples((0..VARS).map(TupleId)))
}

/// A weight function that gives every variable a distinct probability (so a
/// structural disagreement cannot hide behind symmetric weights).
fn prob_of(t: TupleId) -> f64 {
    0.05 + 0.08 * f64::from(t.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// OR-folding random clauses through the manager's iterative apply
    /// produces the same diagram (probability, size, truth table) as the
    /// recursive reference.
    #[test]
    fn iterative_apply_agrees_with_recursive_reference(
        clauses in proptest::collection::vec(
            proptest::collection::vec(0u32..VARS, 1..4),
            1..8,
        ),
    ) {
        let ord = order();
        let manager = ObddManager::new(Arc::clone(&ord));
        let mut reference = RefManager::new(Arc::clone(&ord));
        let mut acc = manager.constant(false);
        let mut ref_acc = RefManager::constant(false);
        for clause in &clauses {
            let tuples: Vec<TupleId> = clause.iter().copied().map(TupleId).collect();
            let c = manager.clause(&tuples).unwrap();
            acc = acc.apply_or(&c).unwrap();
            let rc = reference.clause(&tuples).unwrap();
            ref_acc = reference.apply_or(ref_acc, rc);
        }
        let p = acc.probability(prob_of);
        let rp = reference.probability(ref_acc, &prob_of);
        prop_assert!((p - rp).abs() < 1e-12, "probability {p} vs reference {rp}");
        prop_assert_eq!(acc.size(), reference.size(ref_acc));
        // Full truth table (2^10 assignments).
        for mask in 0..(1u32 << VARS) {
            let assign = |t: TupleId| mask & (1 << t.0) != 0;
            prop_assert_eq!(acc.eval(assign), reference.eval(ref_acc, assign));
        }
        prop_assert_eq!(manager.canonicity_violation(), None);
    }

    /// Conjunction and negation agree as well: `¬(A ∧ B)` through both
    /// implementations, with the cached probability path exercised twice so
    /// warm epoch-cache hits are also checked against the reference.
    #[test]
    fn apply_and_negate_agree_with_reference(
        left in proptest::collection::vec(
            proptest::collection::vec(0u32..VARS, 1..3),
            1..5,
        ),
        right in proptest::collection::vec(
            proptest::collection::vec(0u32..VARS, 1..3),
            1..5,
        ),
    ) {
        let ord = order();
        let manager = ObddManager::new(Arc::clone(&ord));
        let mut reference = RefManager::new(Arc::clone(&ord));
        let build = |clauses: &[Vec<u32>],
                     manager: &ObddManager,
                     reference: &mut RefManager| {
            let mut acc = manager.constant(false);
            let mut ref_acc = RefManager::constant(false);
            for clause in clauses {
                let tuples: Vec<TupleId> = clause.iter().copied().map(TupleId).collect();
                let c = manager.clause(&tuples).unwrap();
                acc = acc.apply_or(&c).unwrap();
                let rc = reference.clause(&tuples).unwrap();
                ref_acc = reference.apply_or(ref_acc, rc);
            }
            (acc, ref_acc)
        };
        let (a, ra) = build(&left, &manager, &mut reference);
        let (b, rb) = build(&right, &manager, &mut reference);
        let both = a.apply_and(&b).unwrap().negate();
        let ref_and = reference.apply_and(ra, rb);
        let ref_both = reference.negate(ref_and);
        let p1 = both.probability_cached(prob_of);
        let p2 = both.probability_cached(prob_of); // warm epoch-cache path
        let rp = reference.probability(ref_both, &prob_of);
        prop_assert!((p1 - rp).abs() < 1e-12, "cold {p1} vs reference {rp}");
        prop_assert!((p2 - rp).abs() < 1e-12, "warm {p2} vs reference {rp}");
        prop_assert_eq!(both.size(), reference.size(ref_both));
    }
}
