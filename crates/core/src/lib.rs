//! # `mv-core` — MarkoViews and MVDBs
//!
//! This crate implements the paper's primary contribution:
//!
//! * [`view`] — [`MarkoView`]: a weighted view over the probabilistic tables
//!   (Definition 3). Weights can be constants (parsed from the
//!   `V(x̄)[w] :- …` syntax) or arbitrary per-output-tuple functions (the
//!   parameterised weights of Figure 1, e.g. `exp(0.25·count(pid))`,
//!   computed against the deterministic data).
//! * [`mvdb`] — [`Mvdb`] and [`MvdbBuilder`]: a probabilistic database with
//!   MarkoViews (Definition 3/4), its MLN semantics
//!   ([`Mvdb::to_ground_mln`]), and exact reference inference for small
//!   instances ([`Mvdb::exact_probability`]).
//! * [`translate`] — [`TranslatedIndb`]: the translation of Definition 5 and
//!   Theorem 1 from an MVDB to a tuple-independent database with the new
//!   `NV` relations (whose weights `(1 − w)/w` may be negative) and the
//!   helper query `W`.
//! * [`backend`] — the pluggable [`Backend`] trait and its implementations:
//!   the MV-index (the paper's proposal), the per-query augmented-OBDD
//!   baseline, Shannon expansion, safe plans, brute-force enumeration, and
//!   seedable Monte Carlo world sampling with confidence intervals (the
//!   approximate fallback for queries exact synthesis refuses). Each
//!   strategy lives in its own module; adding one is a drop-in.
//! * [`engine`] — [`MvdbEngine`]: the end-to-end query processor. It
//!   compiles `W` into an MV-index offline and answers queries online via
//!   `P(Q) = (P0(Q ∨ W) − P0(W)) / (1 − P0(W))`, dispatching every
//!   evaluation through the [`Backend`] trait.
//! * [`session`] — [`MvdbSession`]: batch evaluation of many queries over
//!   one engine, sequentially through a shared evaluation context (query
//!   diagrams hash-consed across the batch) or in parallel with scoped
//!   threads and per-worker OBDD-manager shards.
//! * [`sharded`] — [`ShardedEngine`] and [`ShardedSession`]: scale-out
//!   evaluation over component-partitioned sub-stores. Tuples are sharded
//!   along the connected components of `W`'s lineage, each shard owns its
//!   own MV-index and OBDD manager, and per-shard conditionals are
//!   combined exactly by independence (`1 − ∏ (1 − q_s)`); queries whose
//!   lineage spans shards fall back to the unsharded oracle.
//! * [`update`] — [`UpdateBatch`] and [`MvdbEngine::apply`]
//!   (`crate::MvdbEngine::apply`): live updates under snapshot semantics.
//!   Weighted-tuple inserts/deletes and MLN weight changes mutate a
//!   compiled engine in place; weight-only batches ride the
//!   `bump_weight_epoch` fast path (no re-translation or re-synthesis),
//!   structural batches re-translate and recompile, and sharded engines
//!   rebuild only the shards whose `W`-clauses changed.
//! * [`serve`] — [`MvdbServer`]: the always-on serving layer. Bounded
//!   admission with explicit backpressure, per-request deadlines, an
//!   overload controller that degrades onto cheaper resilience rungs
//!   before shedding, heartbeat-supervised workers (dead or wedged
//!   workers are replaced without losing admitted queries), and
//!   watermark-triggered compaction of per-worker OBDD arenas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod chaos;
pub mod engine;
pub mod error;
pub mod mvdb;
pub mod serve;
pub mod session;
pub mod sharded;
pub mod translate;
pub mod update;
pub mod view;

pub use backend::{
    ApproxAnswer, ApproxConfig, Backend, EngineBackend, EvalContext, FaultKind, IntervalMethod,
    MonteCarlo, MonteCarloParams, QueryFault, QueryOutcome, ResilienceConfig, ResilientBackend,
    Rung,
};
pub use engine::MvdbEngine;
pub use error::{CoreError, EvalError};
pub use mvdb::{Mvdb, MvdbBuilder};
pub use serve::{MvdbServer, ServeConfig, ServeOutcome, ServerStats, Ticket};
pub use session::{MvdbSession, QueryStats};
pub use sharded::{ShardedEngine, ShardedSession};
pub use translate::TranslatedIndb;
pub use update::{UpdateBatch, UpdateKind, UpdateOp, UpdateOutcome};
pub use view::{MarkoView, WeightExpr};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
