//! The brute-force backend: exhaustive enumeration as the ground truth.
//!
//! Wraps `mv_query::brute` — the truth-table evaluator over the lineage
//! variables — behind the [`Backend`] trait, so the validator participates
//! in the same comparison harnesses and agreement tests as the production
//! strategies. Exponential in the number of distinct lineage variables;
//! only usable on small instances.

use mv_query::brute::brute_force_lineage_probability;
use mv_query::lineage::Lineage;
use mv_query::Ucq;

use crate::backend::{theorem1, Backend, EvalContext};
use crate::Result;

/// Exhaustive truth-table enumeration over the lineage of `Q ∨ W`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BruteForce;

impl Backend for BruteForce {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn probability(&self, q: &Ucq, ctx: &EvalContext<'_>) -> Result<f64> {
        ctx.require_boolean(q)?;
        let lin_q = ctx.lineage(q)?;
        self.lineage_probability(&lin_q, ctx)
            .expect("brute-force backend evaluates lineages")
    }

    fn lineage_probability(&self, lineage: &Lineage, ctx: &EvalContext<'_>) -> Option<Result<f64>> {
        let indb = ctx.indb();
        let (p_q_or_w, p_w) = match ctx.w_lineage() {
            Ok(Some(lin_w)) => (
                brute_force_lineage_probability(&lineage.or(lin_w), indb),
                ctx.cached_scalar("brute:p_w", || brute_force_lineage_probability(lin_w, indb)),
            ),
            Ok(None) => (brute_force_lineage_probability(lineage, indb), 0.0),
            Err(e) => return Some(Err(e)),
        };
        Some(theorem1(p_q_or_w, p_w))
    }
}
