//! The per-query augmented-OBDD baseline of Figures 5–6.
//!
//! No offline phase: for every query, an OBDD for `Q ∨ W` (and one for `W`)
//! is built from scratch with the ConOBDD construction, and Theorem 1 is
//! applied to the two Shannon-expansion probabilities. This is what the
//! MV-index amortises away; the backend exists for the paper's baseline
//! comparison and as an exact cross-check.

use mv_obdd::ConObddBuilder;
use mv_query::Ucq;

use crate::backend::{theorem1, Backend, EvalContext};
use crate::Result;

/// Builds the OBDD of `Q ∨ W` from scratch for every query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObddPerQuery;

impl Backend for ObddPerQuery {
    fn name(&self) -> &'static str {
        "augmented-obdd"
    }

    fn probability(&self, q: &Ucq, ctx: &EvalContext<'_>) -> Result<f64> {
        ctx.require_boolean(q)?;
        let indb = ctx.indb();
        // Both diagrams live in the builder's shared manager: `W` is largely
        // a sub-structure of `Q ∨ W`, so the cached Shannon expansion pays
        // for most of the second probability.
        let (p_q_or_w, p_w) = match ctx.w() {
            Some(w) => {
                let q_or_w = q.boolean().union(w);
                let mut builder = ConObddBuilder::for_query(indb, &q_or_w);
                let obdd_q_or_w = builder.build(&q_or_w)?;
                let obdd_w = builder.build(w)?;
                (
                    obdd_q_or_w.probability_cached(|t| indb.probability(t)),
                    obdd_w.probability_cached(|t| indb.probability(t)),
                )
            }
            None => {
                let mut builder = ConObddBuilder::for_query(indb, q);
                let obdd_q = builder.build(q)?;
                (obdd_q.probability_cached(|t| indb.probability(t)), 0.0)
            }
        };
        theorem1(p_q_or_w, p_w)
    }
}
