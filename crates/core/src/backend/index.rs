//! The MV-index backend — the paper's proposal (Section 4).
//!
//! Offline, `W` is compiled into a set of augmented OBDD blocks (done by
//! [`MvdbEngine::compile`](crate::MvdbEngine::compile), which then passes
//! the index to every [`EvalContext`] it creates). Online, the probability
//! of a query reduces to intersecting the query's small lineage OBDD with
//! only the index blocks the lineage touches.

use mv_index::IntersectAlgorithm;
use mv_query::lineage::Lineage;
use mv_query::Ucq;

use crate::backend::{Backend, EvalContext};
use crate::error::CoreError;
use crate::Result;

/// Evaluates queries through the precompiled MV-index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvIndexBackend {
    algorithm: IntersectAlgorithm,
}

impl MvIndexBackend {
    /// A backend using the given intersection algorithm.
    pub fn new(algorithm: IntersectAlgorithm) -> Self {
        MvIndexBackend { algorithm }
    }

    /// The intersection algorithm in use.
    pub fn algorithm(&self) -> IntersectAlgorithm {
        self.algorithm
    }
}

impl Default for MvIndexBackend {
    /// The cache-conscious intersection, as recommended by Section 4.3.
    fn default() -> Self {
        MvIndexBackend::new(IntersectAlgorithm::CcMvIntersect)
    }
}

impl Backend for MvIndexBackend {
    fn name(&self) -> &'static str {
        match self.algorithm {
            IntersectAlgorithm::MvIntersect => "mv-index/mv-intersect",
            IntersectAlgorithm::CcMvIntersect => "mv-index/cc-mv-intersect",
        }
    }

    fn probability(&self, q: &Ucq, ctx: &EvalContext<'_>) -> Result<f64> {
        ctx.require_boolean(q)?;
        let lineage = ctx.lineage(q)?;
        self.lineage_probability(&lineage, ctx)
            .expect("index backend evaluates lineages")
    }

    /// One intersection per lineage — this is what makes `answers` a fast
    /// path: no per-answer query re-evaluation. Query diagrams are built in
    /// the context's manager shard, so the per-answer loop (and any batch
    /// session reusing the context) shares nodes and memo entries across
    /// lineages.
    fn lineage_probability(&self, lineage: &Lineage, ctx: &EvalContext<'_>) -> Option<Result<f64>> {
        Some(match ctx.index().ok_or(CoreError::MissingIndex) {
            Ok(index) => index
                .conditional_probability_in(
                    ctx.query_manager(),
                    lineage,
                    ctx.indb(),
                    self.algorithm,
                )
                .map_err(Into::into),
            Err(e) => Err(e),
        })
    }
}
