//! The Shannon-expansion backend: exact inference on the raw lineage.
//!
//! Computes `P0(Q ∨ W)` and `P0(W)` by recursive Shannon expansion with
//! independent-component decomposition (`mv_query::shannon`), then applies
//! Theorem 1. Exponential in the worst case but correct for every query and
//! for the negative probabilities of translated databases — the generic
//! exact fallback the engine's faster strategies are validated against.

use mv_query::lineage::Lineage;
use mv_query::Ucq;

use crate::backend::{theorem1, Backend, EvalContext};
use crate::Result;

/// Shannon expansion on the lineage of `Q ∨ W`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Shannon;

impl Backend for Shannon {
    fn name(&self) -> &'static str {
        "shannon"
    }

    fn probability(&self, q: &Ucq, ctx: &EvalContext<'_>) -> Result<f64> {
        ctx.require_boolean(q)?;
        let lin_q = ctx.lineage(q)?;
        self.lineage_probability(&lin_q, ctx)
            .expect("shannon backend evaluates lineages")
    }

    fn lineage_probability(&self, lineage: &Lineage, ctx: &EvalContext<'_>) -> Option<Result<f64>> {
        let indb = ctx.indb();
        let (p_q_or_w, p_w) = match ctx.w_lineage() {
            Ok(Some(lin_w)) => (
                mv_query::shannon_probability(&lineage.or(lin_w), indb),
                ctx.cached_scalar("shannon:p_w", || mv_query::shannon_probability(lin_w, indb)),
            ),
            Ok(None) => (mv_query::shannon_probability(lineage, indb), 0.0),
            Err(e) => return Some(Err(e)),
        };
        Some(theorem1(p_q_or_w, p_w))
    }
}
