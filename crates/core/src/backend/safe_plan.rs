//! The safe-plan (lifted inference) backend.
//!
//! Evaluates `P0(Q ∨ W)` and `P0(W)` with the polynomial-time safe-plan
//! evaluator when the queries are safe, then applies Theorem 1. Fails with
//! a query error on unsafe queries — translated helper queries are often
//! unsafe, which is precisely the paper's motivation for the MV-index.

use mv_query::Ucq;

use crate::backend::{theorem1, Backend, EvalContext};
use crate::error::CoreError;
use crate::Result;

/// Lifted inference through safe plans; fails on unsafe queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SafePlan;

impl Backend for SafePlan {
    fn name(&self) -> &'static str {
        "safe-plan"
    }

    fn probability(&self, q: &Ucq, ctx: &EvalContext<'_>) -> Result<f64> {
        ctx.require_boolean(q)?;
        let indb = ctx.indb();
        let safe = |query: &Ucq| {
            mv_query::safe_probability(query, indb).map_err(|e| CoreError::Query(to_query_error(e)))
        };
        let (p_q_or_w, p_w) = match ctx.w() {
            Some(w) => {
                let q_or_w = q.boolean().union(w);
                (safe(&q_or_w)?, safe(w)?)
            }
            None => (safe(&q.boolean())?, 0.0),
        };
        theorem1(p_q_or_w, p_w)
    }
}

/// Converts a safe-plan failure into a query error preserving the message.
fn to_query_error(e: mv_query::SafePlanError) -> mv_query::QueryError {
    match e {
        mv_query::SafePlanError::Query(q) => q,
        mv_query::SafePlanError::Unsafe(msg) => mv_query::QueryError::Parse {
            message: format!("query has no safe plan: {msg}"),
            position: 0,
        },
    }
}
