//! The pluggable evaluation-backend layer.
//!
//! Every way of computing MVDB probabilities — the paper's MV-index, the
//! per-query augmented-OBDD baseline, Shannon expansion, safe plans, and
//! brute-force enumeration — implements the [`Backend`] trait: given a
//! Boolean query and an [`EvalContext`] (the translated database, the helper
//! query `W`, and optionally the compiled MV-index), it returns the query
//! probability under the MVDB semantics via Theorem 1,
//!
//! ```text
//! P(Q) = (P0(Q ∨ W) − P0(W)) / (1 − P0(W))
//! ```
//!
//! [`MvdbEngine`](crate::MvdbEngine), the brute-force validator and the
//! `mv-bench` figure harness all dispatch through this trait, so adding an
//! evaluation strategy is a one-module drop-in: implement [`Backend`], and
//! every comparison harness and agreement test picks it up through
//! [`EngineBackend::comparison_suite`].

use std::cell::{OnceCell, RefCell};
use std::fmt;
use std::sync::Arc;

use fxhash::FxHashMap;
use mv_index::{IntersectAlgorithm, MvIndex};
use mv_obdd::{ManagerStats, ObddManager, PiOrder};
use mv_pdb::{InDb, Row};
use mv_query::eval::EvalContext as QueryEvalContext;
use mv_query::lineage::{answer_lineages_with, lineage_with, Lineage};
use mv_query::Ucq;

use crate::error::CoreError;
use crate::translate::TranslatedIndb;
use crate::Result;

pub mod brute;
pub mod index;
pub mod monte_carlo;
pub mod obdd;
pub mod resilient;
pub mod safe_plan;
pub mod shannon;

pub use brute::BruteForce;
pub use index::MvIndexBackend;
pub use monte_carlo::{MonteCarlo, MonteCarloParams};
pub use obdd::ObddPerQuery;
pub use resilient::{
    FaultKind, QueryFault, QueryOutcome, ResilienceConfig, ResilientBackend, Rung,
};
pub use safe_plan::SafePlan;
pub use shannon::Shannon;

pub use mv_query::approx::{ApproxAccumulator, ApproxAnswer, ApproxConfig, IntervalMethod};

/// Smallest `P0(¬W)` treated as consistent.
const MIN_NOT_W: f64 = 1e-300;

/// Everything a [`Backend`] may need to evaluate queries against a compiled
/// MVDB: the translated tuple-independent database, the helper query `W`,
/// and — when the offline phase ran — the compiled MV-index.
///
/// The context owns a per-database [`mv_query::eval::EvalContext`], so the
/// lazily built column indexes are shared by every lineage computation made
/// through it.
pub struct EvalContext<'a> {
    translated: &'a TranslatedIndb,
    index: Option<&'a MvIndex>,
    query_ctx: QueryEvalContext<'a>,
    w_lineage: OnceCell<Lineage>,
    scalars: RefCell<FxHashMap<&'static str, f64>>,
    query_manager: OnceCell<ObddManager>,
    budget: RefCell<Option<mv_query::EvalBudget>>,
}

impl<'a> EvalContext<'a> {
    /// A context without a compiled index (index-free backends only).
    pub fn new(translated: &'a TranslatedIndb) -> Self {
        EvalContext {
            translated,
            index: None,
            query_ctx: QueryEvalContext::new(translated.indb().database()),
            w_lineage: OnceCell::new(),
            scalars: RefCell::new(FxHashMap::default()),
            query_manager: OnceCell::new(),
            budget: RefCell::new(None),
        }
    }

    /// Installs (or clears) a cooperative [`mv_query::EvalBudget`] on this
    /// context. The budget propagates to every layer the context drives:
    /// the vectorized lineage executor polls it at batch boundaries, the
    /// lazy query-side [`ObddManager`] polls it in its synthesis/apply
    /// folds, and sampling backends poll it between batches. Budgets are
    /// per-query in session use — install a fresh one before each query.
    /// The shared index manager is never budgeted, so one worker's
    /// deadline cannot cancel a sibling's evaluation.
    pub fn set_budget(&self, budget: Option<mv_query::EvalBudget>) {
        self.query_ctx.set_budget(budget.clone());
        if let Some(manager) = self.query_manager.get() {
            manager.set_budget(budget.clone());
        }
        *self.budget.borrow_mut() = budget;
    }

    /// The currently installed budget, if any (cheap clone of the shared
    /// handle).
    pub fn budget(&self) -> Option<mv_query::EvalBudget> {
        self.budget.borrow().clone()
    }

    /// Polls the installed budget, surfacing a trip as the matching typed
    /// [`CoreError`] (`DeadlineExceeded` / `BudgetExceeded` / `Cancelled`).
    /// A no-op without a budget.
    pub fn check_budget(&self) -> Result<()> {
        match self.budget.borrow().as_ref() {
            Some(b) => b.check().map_err(CoreError::from),
            None => Ok(()),
        }
    }

    /// A context carrying the compiled MV-index.
    pub fn with_index(translated: &'a TranslatedIndb, index: &'a MvIndex) -> Self {
        EvalContext {
            index: Some(index),
            ..Self::new(translated)
        }
    }

    /// The translated tuple-independent database.
    pub fn translated(&self) -> &'a TranslatedIndb {
        self.translated
    }

    /// The translated database's possible-tuple store.
    pub fn indb(&self) -> &'a InDb {
        self.translated.indb()
    }

    /// The helper query `W` of Theorem 1, if the MVDB has any views.
    pub fn w(&self) -> Option<&'a Ucq> {
        self.translated.w()
    }

    /// The compiled MV-index, if the context was built from an engine.
    pub fn index(&self) -> Option<&'a MvIndex> {
        self.index
    }

    /// The lineage of `query` over the translated database, computed by the
    /// compiled slot-based matcher. Physical plans and the column indexes
    /// they probe are cached in this context, so a workload query is
    /// compiled once per context no matter how many times the harnesses or
    /// a batch session evaluate it.
    pub fn lineage(&self, query: &Ucq) -> Result<Lineage> {
        Ok(lineage_with(query, self.indb(), &self.query_ctx)?)
    }

    /// The per-answer lineages of a non-Boolean query, through this
    /// context's compiled-plan cache (one compilation per distinct query).
    pub fn answer_lineages(&self, query: &Ucq) -> Result<std::collections::BTreeMap<Row, Lineage>> {
        Ok(answer_lineages_with(query, self.indb(), &self.query_ctx)?)
    }

    /// The lineage of the helper query `W`, computed once per context
    /// (`None` when the MVDB has no views). Backends that evaluate many
    /// lineages against the same context — the per-answer loop of
    /// [`Backend::answers`] — must not recompute this join every time.
    pub fn w_lineage(&self) -> Result<Option<&Lineage>> {
        let Some(w) = self.w() else {
            return Ok(None);
        };
        if self.w_lineage.get().is_none() {
            let lineage = self.lineage(w)?;
            let _ = self.w_lineage.set(lineage);
        }
        Ok(self.w_lineage.get())
    }

    /// The context's query-side [`ObddManager`] *shard*, created lazily over
    /// the index's variable order (or the identity `π` order when no index
    /// was compiled). Every query diagram built through this context shares
    /// it, so repeated lineages hit the unique table and apply memo instead
    /// of rebuilding — and each context (hence each session worker thread)
    /// owns its own shard, so parallel evaluation never contends on
    /// query-side writes.
    pub fn query_manager(&self) -> &ObddManager {
        self.query_manager.get_or_init(|| {
            let manager = match self.index {
                Some(index) => index.query_manager(),
                None => ObddManager::new(Arc::new(PiOrder::identity().tuple_order(self.indb()))),
            };
            // A budget installed before the first query diagram must bound
            // the manager's folds too.
            manager.set_budget(self.budget.borrow().clone());
            manager
        })
    }

    /// Counters of this context's query-side manager shard alone (zero when
    /// no query diagram was built yet).
    pub fn query_manager_stats(&self) -> ManagerStats {
        self.query_manager
            .get()
            .map(ObddManager::stats)
            .unwrap_or_default()
    }

    /// Combined manager counters attributable to this context: its own
    /// query-shard stats, plus the shared index manager's stats when an
    /// index is attached.
    pub fn manager_stats(&self) -> ManagerStats {
        let index = self.index.map(|i| i.manager_stats()).unwrap_or_default();
        self.query_manager_stats() + index
    }

    /// Shape statistics of every query plan compiled through this context
    /// (disjuncts, scan/probe steps, slots).
    pub fn query_plan_stats(&self) -> mv_query::PlanStats {
        self.query_ctx.plan_stats()
    }

    /// Counters of the vectorized batch executor accumulated on this
    /// context: zone-map blocks scanned and skipped, CSR probes, batches.
    /// Every lineage and answer computation made through this context —
    /// including the `W`-lineage join — contributes.
    pub fn query_exec_stats(&self) -> mv_query::ExecStats {
        self.query_ctx.exec_stats()
    }

    /// Computes a scalar once per context under a caller-chosen key
    /// (backends use it to cache their answer-independent `P0(W)` across
    /// the per-answer loop of [`Backend::answers`]).
    pub fn cached_scalar(&self, key: &'static str, compute: impl FnOnce() -> f64) -> f64 {
        if let Some(v) = self.scalars.borrow().get(key) {
            return *v;
        }
        let v = compute();
        self.scalars.borrow_mut().insert(key, v);
        v
    }

    /// Rejects queries with head variables (backends compute probabilities
    /// of Boolean queries only; use [`Backend::answers`] otherwise).
    pub fn require_boolean(&self, query: &Ucq) -> Result<()> {
        if query.is_boolean() {
            Ok(())
        } else {
            Err(CoreError::NotBoolean(query.name.clone()))
        }
    }
}

impl fmt::Debug for EvalContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalContext")
            .field("num_tuples", &self.translated.num_tuples())
            .field("has_index", &self.index.is_some())
            .finish_non_exhaustive()
    }
}

/// One way of computing MVDB query probabilities.
///
/// Implementations are cheap, stateless descriptions of a strategy; all
/// per-database state lives in the [`EvalContext`]. That keeps backends
/// trivially constructible by harnesses and lets one context be shared
/// across strategies when comparing them.
pub trait Backend: fmt::Debug {
    /// Stable, human-readable identifier (used by benches and reports).
    fn name(&self) -> &'static str;

    /// The probability of the Boolean query `q` under the MVDB semantics.
    fn probability(&self, q: &Ucq, ctx: &EvalContext<'_>) -> Result<f64>;

    /// The MVDB probability of a precomputed lineage (the conditional
    /// `P0(lineage ∧ ¬W) / P0(¬W)` of Theorem 1), for backends that can
    /// evaluate a Boolean provenance formula directly — the MV-index,
    /// Shannon expansion, brute force. Structural backends (safe plans,
    /// per-query OBDD construction) return `None` and [`Backend::answers`]
    /// falls back to re-evaluating the bound query.
    fn lineage_probability(&self, lineage: &Lineage, ctx: &EvalContext<'_>) -> Option<Result<f64>> {
        let _ = (lineage, ctx);
        None
    }

    /// Every answer of a non-Boolean query with its probability.
    ///
    /// The default implementation feeds each answer's lineage to
    /// [`Backend::lineage_probability`]; for backends that cannot consume a
    /// lineage it binds the head to the answer tuple and evaluates the
    /// resulting Boolean query through [`Backend::probability`].
    fn answers(&self, q: &Ucq, ctx: &EvalContext<'_>) -> Result<Vec<(Row, f64)>> {
        let per_answer = ctx.answer_lineages(q)?;
        let mut out = Vec::with_capacity(per_answer.len());
        for (row, lineage) in per_answer {
            let p = match self.lineage_probability(&lineage, ctx) {
                Some(p) => p?,
                None => {
                    let bound = q.bind_head(&row);
                    self.probability(&bound, ctx)?
                }
            };
            out.push((row, p));
        }
        Ok(out)
    }
}

/// Applies the right-hand side of Theorem 1,
/// `P(Q) = (P0(Q ∨ W) − P0(W)) / (1 − P0(W))`.
pub fn theorem1(p_q_or_w: f64, p_w: f64) -> Result<f64> {
    let not_w = 1.0 - p_w;
    if not_w.abs() < MIN_NOT_W {
        return Err(CoreError::InconsistentViews);
    }
    Ok((p_q_or_w - p_w) / not_w)
}

/// Value-level backend selector (the stable, copyable API of
/// [`MvdbEngine::probability_with_backend`](crate::MvdbEngine::probability_with_backend)).
///
/// Each variant instantiates one [`Backend`] implementation; harnesses that
/// want to construct backends directly can skip the enum entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineBackend {
    /// Use the precompiled MV-index (the paper's proposal).
    MvIndex(IntersectAlgorithm),
    /// Build an OBDD for `Q ∨ W` from scratch for every query (the
    /// "augmented OBDD" baseline of Figures 5–6).
    ObddPerQuery,
    /// Shannon expansion on the lineage of `Q ∨ W` (generic exact inference).
    Shannon,
    /// Lifted inference (safe plans); fails on unsafe queries.
    SafePlan,
    /// Exhaustive truth-table enumeration over the lineage variables (the
    /// ground-truth validator; exponential, small inputs only).
    BruteForce,
    /// Seedable Monte Carlo world sampling with confidence intervals — the
    /// *approximate* backend for queries the exact strategies refuse. The
    /// point estimate flows through [`Backend::probability`]; use
    /// [`MonteCarlo::approx`] (or the engine/session `approx_*` entry
    /// points) for the interval.
    MonteCarlo(MonteCarloParams),
}

impl EngineBackend {
    /// Builds the [`Backend`] implementation this selector names.
    pub fn instantiate(self) -> Box<dyn Backend> {
        match self {
            EngineBackend::MvIndex(algorithm) => Box::new(MvIndexBackend::new(algorithm)),
            EngineBackend::ObddPerQuery => Box::new(ObddPerQuery),
            EngineBackend::Shannon => Box::new(Shannon),
            EngineBackend::SafePlan => Box::new(SafePlan),
            EngineBackend::BruteForce => Box::new(BruteForce),
            EngineBackend::MonteCarlo(params) => Box::new(MonteCarlo::with_params(params)),
        }
    }

    /// Whether the named backend implements [`Backend::lineage_probability`]
    /// — i.e. can evaluate a precomputed lineage directly instead of
    /// re-deriving it from the bound query. The sharded session routes on
    /// this: lineage-capable backends receive per-shard localized lineages,
    /// the others are dispatched syntactically per shard (kept in sync by
    /// `sharded::tests::evaluates_lineage_matches_backend_behaviour`).
    pub fn evaluates_lineage(&self) -> bool {
        !matches!(self, EngineBackend::ObddPerQuery | EngineBackend::SafePlan)
    }

    /// The backends expected to agree on *every* query: both intersection
    /// algorithms of the MV-index, the per-query OBDD baseline, Shannon
    /// expansion, and brute-force enumeration. (Safe plans are excluded —
    /// they legitimately fail on unsafe queries; Monte Carlo is excluded —
    /// it agrees only up to its confidence interval, which the statistical
    /// agreement suite checks separately.)
    pub fn comparison_suite() -> Vec<EngineBackend> {
        vec![
            EngineBackend::MvIndex(IntersectAlgorithm::MvIntersect),
            EngineBackend::MvIndex(IntersectAlgorithm::CcMvIntersect),
            EngineBackend::ObddPerQuery,
            EngineBackend::Shannon,
            EngineBackend::BruteForce,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_matches_the_paper_identity() {
        // P0(Q ∨ W) = 0.6, P0(W) = 0.2 → P = 0.4 / 0.8.
        assert!((theorem1(0.6, 0.2).unwrap() - 0.5).abs() < 1e-12);
        // P0(W) = 1 means no world satisfies ¬W.
        assert!(matches!(
            theorem1(1.0, 1.0),
            Err(CoreError::InconsistentViews)
        ));
    }

    #[test]
    fn every_selector_instantiates_a_named_backend() {
        let mut names = std::collections::BTreeSet::new();
        for selector in EngineBackend::comparison_suite().into_iter().chain([
            EngineBackend::SafePlan,
            EngineBackend::MonteCarlo(MonteCarloParams::default()),
        ]) {
            let backend = selector.instantiate();
            assert!(!backend.name().is_empty());
            names.insert(backend.name());
        }
        // Both intersection algorithms share the index backend name family.
        assert_eq!(names.len(), 7);
    }
}
