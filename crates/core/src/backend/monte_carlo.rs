//! The Monte Carlo approximate-inference backend.
//!
//! Exact OBDD synthesis blows up on queries whose lineage has no small
//! diagram under the index order (see
//! [`SynthesisBuilder::from_lineage_bounded`](mv_obdd::SynthesisBuilder::from_lineage_bounded),
//! which turns the blow-up into a refusal). Sampling, by contrast, is
//! *always* available on the tuple-independent translation: this backend
//! draws possible worlds from a seeded ChaCha stream and estimates the
//! Theorem 1 conditional `P0(Q ∧ ¬W) / P0(¬W)` directly, returning
//! `(estimate, half_width)` confidence intervals with early stopping at a
//! target `±ε`.
//!
//! The estimator ([`mv_query::approx::ConditionalSampler`]) integrates the
//! translation's `NV` variables out of every world analytically — their
//! residual factors are exactly the MarkoView weights, so negative
//! translated probabilities never have to be "sampled" — and prunes `W`'s
//! lineage to the connected component of the query, the sampling analogue
//! of the MV-index's block partitioning. See the `mv_query::approx` module
//! docs for the statistics.
//!
//! Through the [`Backend`] trait the point estimate participates in every
//! harness; [`MonteCarlo::approx`] exposes the full [`ApproxAnswer`] (the
//! engine's [`MvdbEngine::approx_probability`](crate::MvdbEngine::approx_probability)
//! and the session's batch/parallel entry points build on it).

use mv_query::approx::{ApproxAnswer, ApproxConfig, ConditionalSampler};
use mv_query::lineage::Lineage;
use mv_query::Ucq;

use crate::backend::{Backend, EvalContext};
use crate::Result;

/// The copyable, `Eq`-able selector payload of
/// [`EngineBackend::MonteCarlo`](crate::EngineBackend::MonteCarlo): the seed
/// and the sample budget (every other knob takes its [`ApproxConfig`]
/// default). Construct a [`MonteCarlo`] directly for full control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MonteCarloParams {
    /// Seed of the ChaCha world stream.
    pub seed: u64,
    /// Hard sample budget per query.
    pub samples: u32,
}

impl Default for MonteCarloParams {
    fn default() -> Self {
        MonteCarloParams {
            seed: 0x5eed_ca57,
            samples: 65_536,
        }
    }
}

impl From<MonteCarloParams> for ApproxConfig {
    fn from(params: MonteCarloParams) -> ApproxConfig {
        ApproxConfig {
            seed: params.seed,
            max_samples: u64::from(params.samples),
            ..ApproxConfig::default()
        }
    }
}

/// Seedable Monte Carlo estimation of query probabilities by possible-world
/// sampling over the tuple-independent translation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MonteCarlo {
    config: ApproxConfig,
    plan_eval: bool,
}

impl MonteCarlo {
    /// A backend running under the given estimation configuration.
    pub fn new(config: ApproxConfig) -> Self {
        MonteCarlo {
            config,
            plan_eval: false,
        }
    }

    /// A backend from the compact selector parameters.
    pub fn with_params(params: MonteCarloParams) -> Self {
        Self::new(params.into())
    }

    /// Evaluate each sampled world by materialising it and running the
    /// query's compiled physical plan over it, instead of scanning the
    /// collected lineage clauses. Slower, but independent of lineage
    /// collection — the two modes must produce bit-identical estimates
    /// under one seed, which the differential suite asserts.
    pub fn with_plan_evaluation(mut self) -> Self {
        self.plan_eval = true;
        self
    }

    /// The estimation configuration.
    pub fn config(&self) -> &ApproxConfig {
        &self.config
    }

    /// The full interval-carrying estimate for a Boolean query. Polls the
    /// context's cooperative budget between sample batches: sampling is an
    /// anytime algorithm, so a deadline trip mid-run returns the partial
    /// (wider) interval, and only a budget that leaves no statistically
    /// usable sample count errors out.
    pub fn approx(&self, q: &Ucq, ctx: &EvalContext<'_>) -> Result<ApproxAnswer> {
        ctx.require_boolean(q)?;
        let lin_q = ctx.lineage(q)?;
        let sampler = self.sampler(&lin_q, q, ctx)?;
        let budget = ctx.budget();
        Ok(sampler.estimate_budgeted(&self.config, budget.as_ref())?)
    }

    /// The full interval-carrying estimate for a precomputed lineage.
    pub fn approx_lineage(&self, lineage: &Lineage, ctx: &EvalContext<'_>) -> Result<ApproxAnswer> {
        let lin_w = ctx.w_lineage()?;
        let translated = ctx.translated();
        let sampler =
            ConditionalSampler::new(lineage, lin_w, ctx.indb(), |t| translated.is_nv_tuple(t))?;
        let budget = ctx.budget();
        Ok(sampler.estimate_budgeted(&self.config, budget.as_ref())?)
    }

    /// Compiles the world sampler for a query's lineage against this
    /// context (callers that need partial accumulators — the parallel
    /// session merge — drive [`ConditionalSampler::collect`] themselves).
    pub fn sampler<'a>(
        &self,
        lin_q: &Lineage,
        q: &Ucq,
        ctx: &EvalContext<'a>,
    ) -> Result<ConditionalSampler<'a>> {
        let lin_w = ctx.w_lineage()?;
        let translated = ctx.translated();
        let sampler =
            ConditionalSampler::new(lin_q, lin_w, ctx.indb(), |t| translated.is_nv_tuple(t))?;
        Ok(if self.plan_eval {
            sampler.with_plan_query(q)
        } else {
            sampler
        })
    }
}

impl Backend for MonteCarlo {
    fn name(&self) -> &'static str {
        "monte-carlo"
    }

    /// The clamped point estimate (the interval is available through
    /// [`MonteCarlo::approx`]).
    fn probability(&self, q: &Ucq, ctx: &EvalContext<'_>) -> Result<f64> {
        Ok(self.approx(q, ctx)?.clamped())
    }

    fn lineage_probability(&self, lineage: &Lineage, ctx: &EvalContext<'_>) -> Option<Result<f64>> {
        Some(self.approx_lineage(lineage, ctx).map(|a| a.clamped()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::IntervalMethod;
    use crate::engine::MvdbEngine;
    use crate::mvdb::{Mvdb, MvdbBuilder};
    use crate::EngineBackend;
    use mv_query::parse_ucq;

    fn example1(view_weight: f64) -> Mvdb {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.relation("S", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 3.0).unwrap();
        b.weighted_tuple("S", &["a"], 4.0).unwrap();
        b.marko_view(&format!("V(x)[{view_weight}] :- R(x), S(x)"))
            .unwrap();
        b.build().unwrap()
    }

    fn test_config(seed: u64) -> ApproxConfig {
        ApproxConfig {
            seed,
            target_half_width: 0.0,
            max_samples: 40_000,
            ..ApproxConfig::default()
        }
    }

    #[test]
    fn intervals_cover_the_exact_probability_for_all_view_weights() {
        // Weights > 1 exercise the negative translated NV probabilities:
        // the sampler must integrate them out, never draw them.
        for view_weight in [0.0, 0.25, 0.5, 2.0, 4.0] {
            let mvdb = example1(view_weight);
            let engine = MvdbEngine::compile(&mvdb).unwrap();
            for q_text in [
                "Q() :- R(x), S(x)",
                "Q() :- R(x)",
                "Q() :- R(x) ; Q() :- S(x)",
            ] {
                let q = parse_ucq(q_text).unwrap();
                let exact = mvdb.exact_probability(&q).unwrap();
                let answer = engine.approx_probability(&q, &test_config(1)).unwrap();
                assert!(
                    answer.contains(exact),
                    "w = {view_weight}, {q_text}: CI [{}, {}] misses exact {exact}",
                    answer.lower(),
                    answer.upper()
                );
                assert!(
                    (answer.clamped() - exact).abs() < 0.05,
                    "w = {view_weight}, {q_text}: estimate {} vs exact {exact}",
                    answer.estimate
                );
            }
        }
    }

    #[test]
    fn plan_evaluation_mode_is_bit_identical_to_clause_mode() {
        let mvdb = example1(2.0);
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let q = parse_ucq("Q() :- R(x), S(x)").unwrap();
        let config = ApproxConfig {
            max_samples: 2_048,
            ..test_config(7)
        };
        let by_clauses = MonteCarlo::new(config)
            .approx(&q, &engine.context())
            .unwrap();
        let by_plans = MonteCarlo::new(config)
            .with_plan_evaluation()
            .approx(&q, &engine.context())
            .unwrap();
        // Same seed, same worlds; the clause scan and the per-world
        // compiled-plan run must agree on every single indicator.
        assert_eq!(by_clauses.estimate.to_bits(), by_plans.estimate.to_bits());
        assert_eq!(
            by_clauses.half_width.to_bits(),
            by_plans.half_width.to_bits()
        );
    }

    #[test]
    fn the_backend_selector_returns_clamped_point_estimates() {
        let mvdb = example1(0.5);
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let q = parse_ucq("Q() :- R(x), S(x)").unwrap();
        let exact = mvdb.exact_probability(&q).unwrap();
        let params = MonteCarloParams {
            seed: 3,
            samples: 30_000,
        };
        let p = engine
            .probability_with_backend(&q, EngineBackend::MonteCarlo(params))
            .unwrap();
        assert!((0.0..=1.0).contains(&p));
        assert!((p - exact).abs() < 0.05, "{p} vs {exact}");
    }

    #[test]
    fn answers_flow_through_the_lineage_path() {
        let mvdb = example1(0.5);
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let q = parse_ucq("Q(x) :- R(x), S(x)").unwrap();
        let backend = MonteCarlo::new(test_config(9));
        let answers = engine.answers_with(&q, &backend).unwrap();
        assert_eq!(answers.len(), 1);
        let exact = engine.answers(&q).unwrap();
        assert!((answers[0].1 - exact[0].1).abs() < 0.05);
    }

    #[test]
    fn mvdbs_without_views_sample_in_direct_mode() {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 3.0).unwrap();
        b.weighted_tuple("R", &["b"], 1.0).unwrap();
        let mvdb = b.build().unwrap();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let q = parse_ucq("Q() :- R(x)").unwrap();
        let answer = engine.approx_probability(&q, &test_config(4)).unwrap();
        assert_eq!(answer.method, IntervalMethod::Wilson);
        let exact = mvdb.exact_probability(&q).unwrap();
        assert!(answer.contains(exact));
    }
}
