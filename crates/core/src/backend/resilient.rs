//! The graceful-degradation ladder: exact → bounded-exact → Monte Carlo.
//!
//! [`ResilientBackend`] wraps any [`EngineBackend`] selector and guarantees
//! an answer-or-typed-outcome for every query: rung 1 runs the inner exact
//! backend under the configured deadline/step budget and a per-rung panic
//! trap; on a *degradable* failure (deadline, budget, caught panic,
//! bounded-synthesis refusal — see [`CoreError::is_degradable`]) it
//! escalates to rung 2, bounded-exact synthesis
//! ([`SynthesisBuilder::from_lineage_bounded`] on `Q ∨ W` and `W`, combined
//! by Theorem 1), and finally to rung 3, seeded Monte Carlo with the
//! requested target `±ε`. Semantic errors (unknown relation, arity
//! mismatch, …) stop the ladder immediately — no cheaper rung can answer
//! those either.
//!
//! Every evaluation produces a [`QueryOutcome`] recording which rung
//! answered, why degradation happened (the first degradable fault), the
//! achieved interval half-width on the sampling rung, retries, and elapsed
//! wall-clock — the per-query record the resilience bench campaign and the
//! chaos CI gates aggregate.
//!
//! Each rung gets a *fresh* budget window (deadline measured from rung
//! entry), so an exact rung that burns its whole deadline cannot starve
//! the sampling rung that is supposed to rescue the query; the worst-case
//! wall-clock per query is `rungs × deadline`.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use mv_index::IntersectAlgorithm;
use mv_obdd::{Obdd, ObddError, ObddManager, SynthesisBuilder};
use mv_query::approx::ApproxConfig;
use mv_query::lineage::Lineage;
use mv_query::{EvalBudget, Ucq};

use crate::backend::{theorem1, EngineBackend, EvalContext, MonteCarlo};
use crate::chaos::{self, sites};
use crate::error::CoreError;
use crate::Result;

/// The ladder rungs, cheapest-guarantee last. `Ord` follows degradation
/// order, so the worst rung across a sharded combination is the `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rung {
    /// The inner exact backend answered.
    Exact,
    /// Bounded-exact synthesis answered (still exact — the node budget
    /// refused nothing); reached only because rung 1 failed.
    BoundedExact,
    /// Monte Carlo answered with a confidence interval.
    MonteCarlo,
}

impl Rung {
    /// Stable label for metrics and JSON series.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Exact => "exact",
            Rung::BoundedExact => "bounded_exact",
            Rung::MonteCarlo => "monte_carlo",
        }
    }
}

/// Classification of the failure that caused degradation (or loss).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A caught panic — transient: retried on the oracle.
    Panic,
    /// A wall-clock deadline trip.
    Deadline,
    /// A work-budget trip (steps, arena nodes, or samples).
    Budget,
    /// Cooperative cancellation.
    Cancelled,
    /// A semantic error no rung can answer (stops the ladder).
    Semantic,
}

impl FaultKind {
    fn of(e: &CoreError) -> FaultKind {
        match e {
            CoreError::WorkerPanicked { .. } => FaultKind::Panic,
            CoreError::DeadlineExceeded { .. } => FaultKind::Deadline,
            CoreError::Cancelled => FaultKind::Cancelled,
            CoreError::BudgetExceeded { .. } => FaultKind::Budget,
            CoreError::Obdd(mv_obdd::ObddError::NodeBudgetExceeded { .. }) => FaultKind::Budget,
            CoreError::Obdd(mv_obdd::ObddError::Budget(b))
            | CoreError::Query(mv_query::QueryError::Budget(b)) => match b {
                mv_query::BudgetError::DeadlineExceeded { .. } => FaultKind::Deadline,
                mv_query::BudgetError::StepBudgetExceeded { .. } => FaultKind::Budget,
                mv_query::BudgetError::Cancelled => FaultKind::Cancelled,
            },
            _ => FaultKind::Semantic,
        }
    }

    /// Stable label for metrics.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Deadline => "deadline",
            FaultKind::Budget => "budget",
            FaultKind::Cancelled => "cancelled",
            FaultKind::Semantic => "semantic",
        }
    }
}

/// A classified failure carried by a [`QueryOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryFault {
    /// What kind of failure it was.
    pub kind: FaultKind,
    /// The rendered error.
    pub message: String,
}

impl QueryFault {
    pub(crate) fn of(e: &CoreError) -> QueryFault {
        QueryFault {
            kind: FaultKind::of(e),
            message: e.to_string(),
        }
    }
}

/// The per-query record of a resilient evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The answer, when some rung produced one; `None` means the query is
    /// *lost* — every rung failed (the campaign gates require this to
    /// never happen for degradable faults).
    pub probability: Option<f64>,
    /// The rung that answered.
    pub rung: Option<Rung>,
    /// Achieved interval half-width when the Monte Carlo rung answered.
    pub epsilon: Option<f64>,
    /// Retries spent before this outcome (oracle retry-with-backoff).
    pub retries: u32,
    /// `true` when the query was answered by the unsharded oracle after
    /// its sharded evaluation failed or spanned shards.
    pub fallback: bool,
    /// Wall-clock from ladder entry to this outcome.
    pub elapsed: Duration,
    /// Why degradation (or loss) happened: the *first* failure on the way
    /// down the ladder, or the terminal error for lost queries.
    pub fault: Option<QueryFault>,
}

impl QueryOutcome {
    /// `true` when some rung produced an answer.
    pub fn answered(&self) -> bool {
        self.probability.is_some()
    }

    /// `true` when the query was answered below the exact rung (the
    /// "degraded fraction" numerator of the chaos campaign).
    pub fn degraded(&self) -> bool {
        self.answered() && self.rung != Some(Rung::Exact)
    }

    /// `true` for lost outcomes whose fault is worth retrying (panics are
    /// transient under fault injection; budget/deadline trips are not —
    /// they would trip identically again).
    pub fn transient(&self) -> bool {
        !self.answered()
            && matches!(
                self.fault,
                Some(QueryFault {
                    kind: FaultKind::Panic,
                    ..
                })
            )
    }

    fn answered_on(rung: Rung, p: f64, started: Instant, fault: Option<QueryFault>) -> Self {
        QueryOutcome {
            probability: Some(p),
            rung: Some(rung),
            epsilon: None,
            retries: 0,
            fallback: false,
            elapsed: started.elapsed(),
            fault,
        }
    }

    /// A lost outcome carrying the terminal (or first degradable) fault.
    pub(crate) fn lost(fault: QueryFault, started: Instant) -> Self {
        QueryOutcome {
            probability: None,
            rung: None,
            epsilon: None,
            retries: 0,
            fallback: false,
            elapsed: started.elapsed(),
            fault: Some(fault),
        }
    }

    /// The outcome of a worker-level panic caught at a join boundary.
    pub(crate) fn poisoned(site: &'static str) -> Self {
        QueryOutcome {
            probability: None,
            rung: None,
            epsilon: None,
            retries: 0,
            fallback: false,
            elapsed: Duration::ZERO,
            fault: Some(QueryFault {
                kind: FaultKind::Panic,
                message: format!("worker panicked at isolation site `{site}`"),
            }),
        }
    }
}

/// Configuration of the degradation ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// The exact backend tried on rung 1.
    pub inner: EngineBackend,
    /// The first rung the ladder tries. [`Rung::Exact`] (the default) is
    /// the full ladder; an overload controller (the serving layer's
    /// degrade-before-drop policy) lowers admitted queries onto
    /// [`Rung::BoundedExact`] or straight to [`Rung::MonteCarlo`] under
    /// queue pressure, skipping the rungs it cannot afford.
    pub entry: Rung,
    /// Per-rung wall-clock deadline (`None` = unlimited).
    pub deadline: Option<Duration>,
    /// Per-rung cooperative step limit (batch rows / arena nodes /
    /// samples charged against one counter; `None` = unlimited).
    pub step_limit: Option<u64>,
    /// Node budget of the bounded-exact rung's synthesis.
    pub node_budget: usize,
    /// Target half-width `ε` of the Monte Carlo rung.
    pub epsilon: f64,
    /// Seed of the Monte Carlo rung's world stream.
    pub mc_seed: u64,
    /// Hard sample cap of the Monte Carlo rung (stops earlier at `±ε`).
    pub mc_max_samples: u64,
    /// Oracle retry attempts for transient (panic) losses.
    pub max_retries: u32,
    /// Base backoff between retries (attempt `k` sleeps `k × backoff`).
    pub retry_backoff: Duration,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            inner: EngineBackend::MvIndex(IntersectAlgorithm::CcMvIntersect),
            entry: Rung::Exact,
            deadline: None,
            step_limit: None,
            node_budget: 1 << 18,
            epsilon: 0.01,
            mc_seed: 0x0d15_ea5e,
            mc_max_samples: 1 << 18,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
        }
    }
}

impl ResilienceConfig {
    /// The default ladder over the given exact backend.
    pub fn with_inner(inner: EngineBackend) -> Self {
        ResilienceConfig {
            inner,
            ..ResilienceConfig::default()
        }
    }

    /// A fresh budget window for one rung, or `None` when unlimited.
    fn rung_budget(&self) -> Option<EvalBudget> {
        let budget = match self.deadline {
            Some(d) => EvalBudget::with_deadline(d),
            None if self.step_limit.is_some() => EvalBudget::unlimited(),
            None => return None,
        };
        Some(match self.step_limit {
            Some(limit) => budget.with_step_limit(limit),
            None => budget,
        })
    }
}

/// What a ladder run evaluates.
#[derive(Clone, Copy)]
enum Target<'q> {
    Query(&'q Ucq),
    Lineage(&'q Lineage),
}

/// The memoized bounded-synthesis build of the hard-constraint lineage
/// `W`: `W` is fixed per translated database, so a ladder that degrades
/// many queries against the same context must not re-synthesize it (or
/// re-discover that it exceeds the node budget) on every bounded attempt.
#[derive(Debug, Clone)]
struct WBuild {
    /// The query-side manager the diagram was built into (cache key).
    manager: ObddManager,
    /// The manager's compaction generation at build time (cache key): a
    /// compaction remaps every root, so a memoized diagram from an earlier
    /// generation must be rebuilt, never dereferenced.
    generation: u64,
    /// The node budget the build ran under (cache key).
    node_budget: usize,
    /// The diagram and its prior probability `P0(W)`, or `None` when the
    /// synthesis refused at the node budget.
    built: Option<(Obdd, f64)>,
    /// Registration token of the diagram's root in the manager's live-root
    /// table: compaction keeps registered roots alive and remaps them, so
    /// after a generation bump the memoized `W` rehydrates from the token
    /// instead of paying a full re-synthesis.
    token: Option<u64>,
}

/// The degradation ladder over an inner exact backend. Cheap to construct
/// per worker; see the module docs for the rung semantics.
#[derive(Debug, Clone)]
pub struct ResilientBackend {
    config: ResilienceConfig,
    /// See [`WBuild`]. Per-ladder (not shared): each session worker owns
    /// its ladder, so a plain `RefCell` suffices.
    w_build: RefCell<Option<WBuild>>,
}

impl ResilientBackend {
    /// A ladder under the given configuration.
    pub fn new(config: ResilienceConfig) -> Self {
        ResilientBackend {
            config,
            w_build: RefCell::new(None),
        }
    }

    /// The ladder configuration.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// Replaces the ladder configuration in place. The serving layer's
    /// overload controller retunes `entry` / `deadline` / `epsilon` per
    /// request on a long-lived per-worker ladder; the memoized `W` build
    /// survives as long as its own cache keys (manager, generation, node
    /// budget) are unchanged.
    pub fn set_config(&mut self, config: ResilienceConfig) {
        self.config = config;
    }

    /// Runs the ladder for a Boolean query. Never panics; always returns
    /// a [`QueryOutcome`].
    pub fn evaluate(&self, q: &Ucq, ctx: &EvalContext<'_>) -> QueryOutcome {
        self.run(ctx, Target::Query(q))
    }

    /// Runs the ladder for a precomputed (e.g. per-shard localized)
    /// lineage. When the inner backend cannot evaluate lineages directly,
    /// the ladder starts at the bounded-exact rung.
    pub fn evaluate_lineage(&self, lineage: &Lineage, ctx: &EvalContext<'_>) -> QueryOutcome {
        self.run(ctx, Target::Lineage(lineage))
    }

    /// [`ResilientBackend::evaluate`] plus retry-with-backoff for
    /// transient (panic) losses — the oracle entry point the sessions use
    /// for quarantined queries.
    pub fn evaluate_with_retries(&self, q: &Ucq, ctx: &EvalContext<'_>) -> QueryOutcome {
        let mut outcome = self.evaluate(q, ctx);
        let mut retries = 0;
        while outcome.transient() && retries < self.config.max_retries {
            retries += 1;
            std::thread::sleep(self.config.retry_backoff * retries);
            outcome = self.evaluate(q, ctx);
        }
        outcome.retries = retries;
        outcome
    }

    fn run(&self, ctx: &EvalContext<'_>, target: Target<'_>) -> QueryOutcome {
        let started = Instant::now();
        let mut fault: Option<QueryFault> = None;

        // Rung 1: the inner exact backend. Skipped for lineage targets
        // when the backend cannot evaluate lineages directly, and when the
        // configured entry rung starts the ladder lower.
        let try_exact = self.config.entry == Rung::Exact
            && match target {
                Target::Query(_) => true,
                Target::Lineage(_) => self.config.inner.evaluates_lineage(),
            };
        if try_exact {
            let inner = self.config.inner.instantiate();
            let exact = self.rung(ctx, sites::EXACT_RUNG, || match target {
                Target::Query(q) => inner.probability(q, ctx),
                Target::Lineage(l) => inner
                    .lineage_probability(l, ctx)
                    .expect("evaluates_lineage() admitted this backend"),
            });
            match exact {
                Ok(p) => return QueryOutcome::answered_on(Rung::Exact, p, started, None),
                Err(e) if e.is_degradable() => fault = Some(QueryFault::of(&e)),
                Err(e) => return QueryOutcome::lost(QueryFault::of(&e), started),
            }
        }

        // Rung 2: bounded-exact synthesis via Theorem 1. Skipped when the
        // entry rung is the sampler itself.
        if self.config.entry <= Rung::BoundedExact {
            let bounded = self.rung(ctx, sites::BOUNDED_RUNG, || {
                let own;
                let lin_q = match target {
                    Target::Query(q) => {
                        own = ctx.lineage(q)?;
                        &own
                    }
                    Target::Lineage(l) => l,
                };
                self.bounded_lineage_probability(lin_q, ctx)
            });
            match bounded {
                Ok(p) => {
                    return QueryOutcome::answered_on(Rung::BoundedExact, p, started, fault);
                }
                Err(e) if e.is_degradable() => {
                    fault.get_or_insert_with(|| QueryFault::of(&e));
                }
                Err(e) => return QueryOutcome::lost(QueryFault::of(&e), started),
            }
        }

        // Rung 3: Monte Carlo at the requested ±ε.
        let mc_config = ApproxConfig {
            seed: self.config.mc_seed,
            target_half_width: self.config.epsilon,
            max_samples: self.config.mc_max_samples,
            ..ApproxConfig::default()
        };
        let sampler = MonteCarlo::new(mc_config);
        let approx = self.rung(ctx, sites::MC_RUNG, || match target {
            Target::Query(q) => sampler.approx(q, ctx),
            Target::Lineage(l) => sampler.approx_lineage(l, ctx),
        });
        match approx {
            Ok(answer) => {
                let mut outcome =
                    QueryOutcome::answered_on(Rung::MonteCarlo, answer.clamped(), started, fault);
                outcome.epsilon = Some(answer.half_width);
                outcome
            }
            Err(e) => {
                let terminal = QueryFault::of(&e);
                QueryOutcome::lost(fault.unwrap_or(terminal), started)
            }
        }
    }

    /// One rung: fresh budget window, chaos draw, panic trap. The budget
    /// is cleared before returning so a tripped rung cannot leak pressure
    /// into the next one.
    fn rung<T>(
        &self,
        ctx: &EvalContext<'_>,
        site: &'static str,
        body: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        ctx.set_budget(self.config.rung_budget());
        let out = catch_unwind(AssertUnwindSafe(|| {
            chaos::apply(site)?;
            body()
        }));
        ctx.set_budget(None);
        match out {
            Ok(result) => result,
            Err(payload) => Err(CoreError::from_panic(site, payload.as_ref())),
        }
    }

    /// Theorem 1 over bounded synthesis: builds `Q ∨ W` and `W` diagrams
    /// in the context's private manager, refusing past the node budget.
    fn bounded_lineage_probability(&self, lin_q: &Lineage, ctx: &EvalContext<'_>) -> Result<f64> {
        let indb = ctx.indb();
        let builder = SynthesisBuilder::with_manager(ctx.query_manager().clone());
        let node_budget = self.config.node_budget;
        match ctx.w_lineage()? {
            Some(w) => {
                let Some((obdd_w, p_w)) = self.w_obdd(w, ctx, &builder)? else {
                    // `W` refused at the node budget in an earlier attempt
                    // (or just now): replay the refusal without paying the
                    // doomed synthesis again.
                    return Err(ObddError::NodeBudgetExceeded {
                        allocated: node_budget,
                        budget: node_budget,
                    }
                    .into());
                };
                // `Q ∨ W` as an OBDD-level apply against the memoized `W`
                // diagram: only the (typically small) query lineage is
                // synthesized per call, and the manager's apply cache
                // carries the repeated `∨ W` work across queries.
                let obdd_q = builder.from_lineage_bounded(lin_q, node_budget)?;
                let obdd_q_or_w = obdd_q.apply_or(&obdd_w)?;
                theorem1(obdd_q_or_w.probability_cached(|t| indb.probability(t)), p_w)
            }
            None => {
                let obdd = builder.from_lineage_bounded(lin_q, node_budget)?;
                Ok(obdd.probability_cached(|t| indb.probability(t)))
            }
        }
    }

    /// The `W` diagram and `P0(W)` through the memoized bounded build:
    /// `Ok(Some(..))` when the synthesis fits the node budget, `Ok(None)`
    /// when it refuses at the budget (memoized either way), `Err` for
    /// genuine failures.
    fn w_obdd(
        &self,
        w: &Lineage,
        ctx: &EvalContext<'_>,
        builder: &SynthesisBuilder,
    ) -> Result<Option<(Obdd, f64)>> {
        let manager = ctx.query_manager();
        let node_budget = self.config.node_budget;
        {
            let mut slot = self.w_build.borrow_mut();
            if let Some(cached) = slot.as_mut() {
                if cached.manager.same_store(manager) && cached.node_budget == node_budget {
                    if cached.generation == manager.generation() {
                        return Ok(cached.built.clone());
                    }
                    // A compaction remapped every root since the build.
                    // The registered token still resolves (registration
                    // keeps `W` alive through compaction), so rehydrate
                    // the memo instead of re-synthesizing; `P0(W)` is
                    // unchanged by construction.
                    if let (Some(token), Some(p)) =
                        (cached.token, cached.built.as_ref().map(|(_, p)| *p))
                    {
                        if let Some(obdd) = manager.registered_obdd(token) {
                            cached.built = Some((obdd.clone(), p));
                            cached.generation = manager.generation();
                            return Ok(Some((obdd, p)));
                        }
                    }
                }
            }
        }
        let built = match builder.from_lineage_bounded(w, node_budget) {
            Ok(obdd) => {
                let p = obdd.probability_cached(|t| ctx.indb().probability(t));
                Some((obdd, p))
            }
            Err(ObddError::NodeBudgetExceeded { .. }) => None,
            Err(e) => return Err(e.into()),
        };
        // Pin the diagram against arena compaction (the serving layer
        // compacts per-worker query managers between requests), releasing
        // any stale registration the replaced memo held.
        let token = built
            .as_ref()
            .map(|(obdd, _)| manager.register_root(obdd.root()));
        if let Some(old) = self.w_build.borrow_mut().take() {
            if let Some(old_token) = old.token {
                old.manager.release_root(old_token);
            }
        }
        *self.w_build.borrow_mut() = Some(WBuild {
            manager: manager.clone(),
            generation: manager.generation(),
            node_budget,
            built: built.clone(),
            token,
        });
        Ok(built)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosConfig, Fault};
    use crate::engine::MvdbEngine;
    use crate::mvdb::MvdbBuilder;
    use mv_query::parse_ucq;

    fn engine() -> MvdbEngine {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.relation("S", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 3.0).unwrap();
        b.weighted_tuple("S", &["a"], 4.0).unwrap();
        b.marko_view("V(x)[0.5] :- R(x), S(x)").unwrap();
        MvdbEngine::compile(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn clean_runs_answer_on_the_exact_rung() {
        let engine = engine();
        let ctx = engine.context();
        let q = parse_ucq("Q() :- R(x), S(x)").unwrap();
        let ladder = ResilientBackend::new(ResilienceConfig::default());
        let outcome = ladder.evaluate(&q, &ctx);
        assert_eq!(outcome.rung, Some(Rung::Exact));
        assert!(!outcome.degraded());
        assert!(outcome.fault.is_none());
        let exact = engine.probability(&q).unwrap();
        assert!((outcome.probability.unwrap() - exact).abs() < 1e-12);
    }

    #[test]
    fn exact_rung_panic_degrades_to_bounded_exact() {
        let engine = engine();
        let ctx = engine.context();
        let q = parse_ucq("Q() :- R(x), S(x)").unwrap();
        let exact = engine.probability(&q).unwrap();
        let _guard =
            chaos::install(ChaosConfig::new(11).rule(sites::EXACT_RUNG, Fault::Panic, 1.0));
        let ladder = ResilientBackend::new(ResilienceConfig::default());
        let outcome = ladder.evaluate(&q, &ctx);
        assert_eq!(outcome.rung, Some(Rung::BoundedExact));
        assert!(outcome.degraded());
        assert_eq!(outcome.fault.as_ref().unwrap().kind, FaultKind::Panic);
        // Bounded-exact is still exact when nothing is refused.
        assert!((outcome.probability.unwrap() - exact).abs() < 1e-9);
    }

    #[test]
    fn double_fault_reaches_the_sampling_rung_within_epsilon() {
        let engine = engine();
        let ctx = engine.context();
        let q = parse_ucq("Q() :- R(x), S(x)").unwrap();
        let exact = engine.probability(&q).unwrap();
        let _guard = chaos::install(
            ChaosConfig::new(12)
                .rule(sites::EXACT_RUNG, Fault::Budget, 1.0)
                .rule(sites::BOUNDED_RUNG, Fault::Deadline, 1.0),
        );
        let config = ResilienceConfig {
            epsilon: 0.02,
            ..ResilienceConfig::default()
        };
        let ladder = ResilientBackend::new(config);
        let outcome = ladder.evaluate(&q, &ctx);
        assert_eq!(outcome.rung, Some(Rung::MonteCarlo));
        // The recorded fault is the FIRST failure on the way down.
        assert_eq!(outcome.fault.as_ref().unwrap().kind, FaultKind::Budget);
        let eps = outcome.epsilon.unwrap();
        assert!(eps <= 0.021, "half-width {eps} missed the target");
        assert!((outcome.probability.unwrap() - exact).abs() < 5.0 * eps + 0.02);
    }

    #[test]
    fn entry_rung_starts_the_ladder_lower() {
        let engine = engine();
        let ctx = engine.context();
        let q = parse_ucq("Q() :- R(x), S(x)").unwrap();
        let exact = engine.probability(&q).unwrap();
        // BoundedExact entry: rung 1 is never tried, the answer is still
        // exact (the node budget refuses nothing on this tiny database).
        let ladder = ResilientBackend::new(ResilienceConfig {
            entry: Rung::BoundedExact,
            ..ResilienceConfig::default()
        });
        let outcome = ladder.evaluate(&q, &ctx);
        assert_eq!(outcome.rung, Some(Rung::BoundedExact));
        assert!(outcome.fault.is_none(), "skipping a rung is not a fault");
        assert!((outcome.probability.unwrap() - exact).abs() < 1e-9);
        // MonteCarlo entry: straight to the sampler at the requested ε.
        let ladder = ResilientBackend::new(ResilienceConfig {
            entry: Rung::MonteCarlo,
            epsilon: 0.02,
            ..ResilienceConfig::default()
        });
        let outcome = ladder.evaluate(&q, &ctx);
        assert_eq!(outcome.rung, Some(Rung::MonteCarlo));
        let eps = outcome.epsilon.unwrap();
        assert!((outcome.probability.unwrap() - exact).abs() < 5.0 * eps + 0.02);
    }

    #[test]
    fn semantic_errors_stop_the_ladder() {
        let engine = engine();
        let ctx = engine.context();
        let q = parse_ucq("Q() :- Unknown(x)").unwrap();
        let ladder = ResilientBackend::new(ResilienceConfig::default());
        let outcome = ladder.evaluate(&q, &ctx);
        assert!(!outcome.answered());
        assert_eq!(outcome.fault.as_ref().unwrap().kind, FaultKind::Semantic);
    }

    #[test]
    fn transient_losses_retry_and_recover() {
        let engine = engine();
        let ctx = engine.context();
        let q = parse_ucq("Q() :- R(x)").unwrap();
        // All three rungs panic on (deterministically) most draws; with
        // retries the ladder eventually lands a clean pass or reports a
        // lost outcome with the panic fault — never aborts.
        let _guard = chaos::install(
            ChaosConfig::new(13)
                .rule(sites::EXACT_RUNG, Fault::Panic, 0.8)
                .rule(sites::BOUNDED_RUNG, Fault::Panic, 0.8)
                .rule(sites::MC_RUNG, Fault::Panic, 0.8),
        );
        let config = ResilienceConfig {
            max_retries: 8,
            retry_backoff: Duration::ZERO,
            ..ResilienceConfig::default()
        };
        let ladder = ResilientBackend::new(config);
        let outcome = ladder.evaluate_with_retries(&q, &ctx);
        if let Some(p) = outcome.probability {
            let exact = engine.probability(&q).unwrap();
            assert!((p - exact).abs() < 0.05, "{p} vs {exact}");
        } else {
            assert_eq!(outcome.fault.as_ref().unwrap().kind, FaultKind::Panic);
        }
    }

    #[test]
    fn tiny_deadlines_degrade_instead_of_hanging() {
        let engine = engine();
        let ctx = engine.context();
        let q = parse_ucq("Q() :- R(x), S(x)").unwrap();
        let config = ResilienceConfig {
            deadline: Some(Duration::ZERO),
            ..ResilienceConfig::default()
        };
        let ladder = ResilientBackend::new(config);
        let outcome = ladder.evaluate(&q, &ctx);
        // Every rung gets a zero-length window; whichever rung still
        // manages to answer between polls is fine — the invariant is a
        // typed outcome, not an abort or a hang.
        if !outcome.answered() {
            let kind = outcome.fault.as_ref().unwrap().kind;
            assert!(matches!(kind, FaultKind::Deadline | FaultKind::Budget));
        }
    }
}
