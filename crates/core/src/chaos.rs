//! Seeded, deterministic fault injection for resilience testing.
//!
//! A [`ChaosConfig`] names *sites* (stable string labels compiled into the
//! evaluation paths — see [`sites`]) and attaches per-site fault rules:
//! inject a panic, artificial deadline pressure, or forced budget
//! exhaustion with a given rate. Whether call `n` at a site injects is a
//! pure function of `(seed, site, fault, n)` — a splitmix-style hash
//! compared against the rate — so a campaign with a fixed seed injects a
//! reproducible *number* of faults regardless of thread interleaving (the
//! set of per-site draw indices is always `0..N`; only their assignment to
//! queries varies).
//!
//! Chaos is process-global but scoped: [`chaos::install`](install) returns
//! a guard that holds a static mutex for its lifetime (serialising chaos
//! tests against each other) and uninstalls the config on drop. With no
//! config installed, [`inject`] is a single relaxed atomic load — the
//! production fast path stays unmeasurable.
//!
//! Configs also parse from the `MV_CHAOS` environment variable
//! (`seed=42;route:panic=0.01;exact_rung:budget=0.05`), which is how the
//! bench harness and CI chaos job switch campaigns on without code changes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock};

/// The stable site labels compiled into the evaluation paths.
pub mod sites {
    /// Sharded phase 1: per-query routing (lineage + partition lookup).
    pub const ROUTE: &str = "route";
    /// Sharded phase 2: per-item evaluation on a shard worker.
    pub const SHARD_EVAL: &str = "shard_eval";
    /// Unsharded session: per-query evaluation on a stripe worker.
    pub const SESSION_EVAL: &str = "session_eval";
    /// Resilience ladder rung 1: the exact inner backend.
    pub const EXACT_RUNG: &str = "exact_rung";
    /// Resilience ladder rung 2: bounded-exact synthesis.
    pub const BOUNDED_RUNG: &str = "bounded_rung";
    /// Resilience ladder rung 3: Monte Carlo estimation.
    pub const MC_RUNG: &str = "mc_rung";
    /// Cross-shard/quarantine fallback on the unsharded oracle.
    pub const ORACLE: &str = "oracle";
    /// Serving layer: admission control (`MvdbServer::submit`).
    pub const ADMIT: &str = "admit";
    /// Serving layer: a worker dispatching an admitted request.
    pub const DISPATCH: &str = "dispatch";
    /// Serving layer: a worker's heartbeat tick. `panic` kills the worker
    /// thread (supervision respawns it); `deadline` stalls it past the
    /// heartbeat timeout (supervision quarantines it as wedged).
    pub const HEARTBEAT: &str = "heartbeat";
    /// Serving layer: the per-worker arena compaction pass.
    pub const COMPACT: &str = "compact";
    /// Serving layer: applying an update batch to the writer's engine
    /// clone (`MvdbServer::submit_update`, before the apply runs).
    pub const UPDATE_APPLY: &str = "update_apply";
    /// Serving layer: publishing an updated engine snapshot (after the
    /// apply succeeded, before readers can see the new snapshot).
    pub const UPDATE_SWAP: &str = "update_swap";

    /// Every site, for sweeps ("inject at each site in turn").
    pub const ALL: &[&str] = &[
        ROUTE,
        SHARD_EVAL,
        SESSION_EVAL,
        EXACT_RUNG,
        BOUNDED_RUNG,
        MC_RUNG,
        ORACLE,
        ADMIT,
        DISPATCH,
        HEARTBEAT,
        COMPACT,
        UPDATE_APPLY,
        UPDATE_SWAP,
    ];
}

/// The kinds of fault a chaos rule can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fault {
    /// Panic at the site (must be caught by an isolation boundary).
    Panic,
    /// Behave as if the wall-clock deadline just passed.
    Deadline,
    /// Behave as if the work budget just ran out.
    Budget,
}

impl Fault {
    fn tag(self) -> u64 {
        match self {
            Fault::Panic => 1,
            Fault::Deadline => 2,
            Fault::Budget => 3,
        }
    }

    /// The spec keyword (`panic`/`deadline`/`budget`).
    pub fn name(self) -> &'static str {
        match self {
            Fault::Panic => "panic",
            Fault::Deadline => "deadline",
            Fault::Budget => "budget",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "panic" => Ok(Fault::Panic),
            "deadline" => Ok(Fault::Deadline),
            "budget" => Ok(Fault::Budget),
            other => Err(format!(
                "unknown fault kind `{other}` (expected panic, deadline or budget)"
            )),
        }
    }
}

/// One fault rule: at `site`, inject `fault` on a `rate` fraction of calls.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRule {
    /// The site label (see [`sites`]).
    pub site: String,
    /// What to inject.
    pub fault: Fault,
    /// Injection probability per draw, in `[0, 1]`.
    pub rate: f64,
}

/// A seeded fault-injection campaign: a seed plus a set of site rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the deterministic injection stream.
    pub seed: u64,
    /// The active rules.
    pub rules: Vec<ChaosRule>,
}

impl ChaosConfig {
    /// An empty campaign under the given seed.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn rule(mut self, site: &str, fault: Fault, rate: f64) -> Self {
        self.rules.push(ChaosRule {
            site: site.to_string(),
            fault,
            rate,
        });
        self
    }

    /// Parses a spec of the form
    /// `seed=42;route:panic=0.01;exact_rung:budget=0.05`. Entries are
    /// `;`-separated; `seed=N` may appear anywhere (default 0); every other
    /// entry is `site:fault=rate`. Malformed entries — a missing `=`, an
    /// unknown site or fault keyword, a rate outside `[0, 1]` — are hard
    /// errors, never silently dropped: a typo'd campaign must not let a
    /// "chaos" run pass without injecting anything.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut config = ChaosConfig::new(0);
        for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("chaos entry `{entry}` has no `=`"))?;
            if key.trim() == "seed" {
                config.seed = value
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad chaos seed `{value}`: {e}"))?;
                continue;
            }
            let (site, fault) = key
                .trim()
                .split_once(':')
                .ok_or_else(|| format!("chaos entry `{entry}` is not `site:fault=rate`"))?;
            let site = site.trim();
            if !sites::ALL.contains(&site) {
                return Err(format!(
                    "unknown chaos site `{site}` (known sites: {})",
                    sites::ALL.join(", ")
                ));
            }
            let fault = Fault::parse(fault.trim())?;
            let rate: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("bad chaos rate `{value}`: {e}"))?;
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("chaos rate {rate} is outside [0, 1]"));
            }
            config.rules.push(ChaosRule {
                site: site.to_string(),
                fault,
                rate,
            });
        }
        Ok(config)
    }

    /// Reads a campaign from the `MV_CHAOS` environment variable, if set.
    /// A malformed spec is an error (silently ignoring a typo'd campaign
    /// would let a "chaos" CI job pass without injecting anything).
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var("MV_CHAOS") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }
}

struct ActiveRule {
    fault: Fault,
    rate: f64,
    /// Per-rule draw counter — the `n` in `hash(seed, site, fault, n)`.
    draws: AtomicU64,
    injected: AtomicU64,
}

struct ChaosState {
    seed: u64,
    /// site → its rules, checked in config order.
    rules: BTreeMap<String, Vec<ActiveRule>>,
}

/// `true` iff some chaos config is installed (the production fast path).
static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: RwLock<Option<ChaosState>> = RwLock::new(None);
/// Serialises campaigns: held by the [`ChaosGuard`] for its whole lifetime
/// so concurrent tests cannot see each other's faults.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

/// A process-wide panic hook, as accepted by [`std::panic::set_hook`].
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// Uninstalls the chaos config (and releases the campaign lock) on drop.
#[must_use = "chaos uninstalls when the guard drops"]
pub struct ChaosGuard {
    _lock: MutexGuard<'static, ()>,
    previous_hook: Option<PanicHook>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
        *STATE.write().unwrap_or_else(PoisonError::into_inner) = None;
        if let Some(hook) = self.previous_hook.take() {
            std::panic::set_hook(hook);
        }
    }
}

impl std::fmt::Debug for ChaosGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ChaosGuard")
    }
}

/// Installs a campaign process-wide and returns the scope guard. Blocks
/// until any previous campaign's guard has dropped.
pub fn install(config: ChaosConfig) -> ChaosGuard {
    // A previous guard-holder panicking mid-campaign must not wedge every
    // later chaos test: the poison is benign because we overwrite the state.
    let lock = INSTALL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let mut rules: BTreeMap<String, Vec<ActiveRule>> = BTreeMap::new();
    for rule in &config.rules {
        rules
            .entry(rule.site.clone())
            .or_default()
            .push(ActiveRule {
                fault: rule.fault,
                rate: rule.rate,
                draws: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            });
    }
    *STATE.write().unwrap_or_else(PoisonError::into_inner) = Some(ChaosState {
        seed: config.seed,
        rules,
    });
    ACTIVE.store(true, Ordering::SeqCst);
    // Injected panics are caught at the isolation boundaries by design;
    // letting each one run the default hook would bury real output under
    // thousands of backtraces. Forward everything else unchanged.
    let previous_hook = std::panic::take_hook();
    let forward = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with(PANIC_PREFIX));
        if !injected {
            forward(info);
        }
    }));
    ChaosGuard {
        _lock: lock,
        previous_hook: Some(previous_hook),
    }
}

/// Message prefix of every chaos-injected panic; the install-scoped panic
/// hook uses it to keep injected panics out of stderr.
const PANIC_PREFIX: &str = "chaos: injected panic";

/// `true` while a campaign is installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// splitmix64-style finalizer: decorrelates the structured input words.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a, matching the repo's other stable string hashes.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Uniform in `[0, 1)` from the top 53 bits.
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draws the site's rules once and returns the first fault that fires.
/// With no campaign installed this is one relaxed load.
pub fn inject(site: &str) -> Option<Fault> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let state = STATE.read().unwrap_or_else(PoisonError::into_inner);
    let state = state.as_ref()?;
    let rules = state.rules.get(site)?;
    for rule in rules {
        let n = rule.draws.fetch_add(1, Ordering::Relaxed);
        let h = mix(state.seed ^ site_hash(site).rotate_left(17) ^ rule.fault.tag() << 56)
            .wrapping_add(mix(n));
        if u01(mix(h)) < rule.rate {
            rule.injected.fetch_add(1, Ordering::Relaxed);
            return Some(rule.fault);
        }
    }
    None
}

/// Draws the site and *applies* the fault: panics for [`Fault::Panic`]
/// (to be caught at the nearest isolation boundary), or returns the
/// matching degradable [`CoreError`](crate::CoreError) for deadline/budget
/// pressure. `Ok(())` when nothing fires.
pub fn apply(site: &'static str) -> crate::Result<()> {
    match inject(site) {
        None => Ok(()),
        Some(Fault::Panic) => panic!("chaos: injected panic at site `{site}`"),
        Some(Fault::Deadline) => Err(crate::CoreError::DeadlineExceeded {
            elapsed: std::time::Duration::ZERO,
        }),
        Some(Fault::Budget) => Err(crate::CoreError::BudgetExceeded { steps: 0, limit: 0 }),
    }
}

/// Per-rule injection counts of the installed campaign:
/// `(site, fault, draws, injected)`, in site order.
pub fn injection_counts() -> Vec<(String, Fault, u64, u64)> {
    let state = STATE.read().unwrap_or_else(PoisonError::into_inner);
    let Some(state) = state.as_ref() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (site, rules) in &state.rules {
        for rule in rules {
            out.push((
                site.clone(),
                rule.fault,
                rule.draws.load(Ordering::Relaxed),
                rule.injected.load(Ordering::Relaxed),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_env_spec() {
        let c = ChaosConfig::parse("seed=42; route:panic=0.01; exact_rung:budget=0.5").unwrap();
        assert_eq!(c.seed, 42);
        assert_eq!(c.rules.len(), 2);
        assert_eq!(c.rules[0].site, "route");
        assert_eq!(c.rules[0].fault, Fault::Panic);
        assert!((c.rules[0].rate - 0.01).abs() < 1e-12);
        assert_eq!(c.rules[1].fault, Fault::Budget);
        assert!(ChaosConfig::parse("route:explode=0.1").is_err());
        assert!(ChaosConfig::parse("route:panic=1.5").is_err());
        assert!(ChaosConfig::parse("gibberish").is_err());
    }

    #[test]
    fn parse_rejects_unknown_sites_with_a_descriptive_error() {
        let err = ChaosConfig::parse("warp_core:panic=0.1").unwrap_err();
        assert!(err.contains("unknown chaos site `warp_core`"), "{err}");
        // The error names the valid sites, so a typo is self-diagnosing.
        assert!(err.contains(sites::ROUTE), "{err}");
        assert!(err.contains(sites::HEARTBEAT), "{err}");
        // A valid rule before the bad one does not rescue the spec.
        assert!(ChaosConfig::parse("route:panic=0.1;warp_core:panic=0.1").is_err());
    }

    #[test]
    fn parse_accepts_every_known_site() {
        for site in sites::ALL {
            let spec = format!("{site}:deadline=0.5");
            let c = ChaosConfig::parse(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(c.rules.len(), 1);
            assert_eq!(c.rules[0].site, *site);
        }
    }

    #[test]
    fn parse_edge_cases_empty_spec_and_rate_bounds() {
        // Empty and whitespace-only specs are valid no-op campaigns.
        let empty = ChaosConfig::parse("").unwrap();
        assert_eq!(empty, ChaosConfig::new(0));
        let blank = ChaosConfig::parse(" ;  ; ").unwrap();
        assert!(blank.rules.is_empty());
        // Rate bounds are inclusive; NaN and out-of-range are rejected.
        assert!(ChaosConfig::parse("route:panic=0.0").is_ok());
        assert!(ChaosConfig::parse("route:panic=1.0").is_ok());
        assert!(ChaosConfig::parse("route:panic=-0.1").is_err());
        assert!(ChaosConfig::parse("route:panic=NaN").is_err());
        assert!(ChaosConfig::parse("route:panic=").is_err());
        // Seed entries parse anywhere; malformed seeds are errors.
        assert!(ChaosConfig::parse("seed=not_a_number").is_err());
        assert_eq!(
            ChaosConfig::parse("oracle:budget=0.2;seed=9").unwrap().seed,
            9
        );
    }

    #[test]
    fn uninstalled_chaos_never_fires() {
        // Hold the campaign lock so no parallel test installs mid-assert.
        let _lock = INSTALL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(inject(sites::ROUTE), None);
        assert!(apply(sites::ORACLE).is_ok());
        assert!(!active());
    }

    #[test]
    fn injection_counts_are_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let _guard = install(ChaosConfig::new(seed).rule(sites::ROUTE, Fault::Panic, 0.25));
            (0..4_000)
                .filter(|_| inject(sites::ROUTE).is_some())
                .count()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must inject identically");
        assert_ne!(a, c, "different seeds should differ");
        // Rate 0.25 over 4000 draws: the count should be near 1000.
        assert!((700..1300).contains(&a), "count {a} far from the rate");
    }

    #[test]
    fn rate_one_always_fires_and_rate_zero_never_does() {
        let _guard = install(
            ChaosConfig::new(1)
                .rule(sites::EXACT_RUNG, Fault::Budget, 1.0)
                .rule(sites::MC_RUNG, Fault::Deadline, 0.0),
        );
        for _ in 0..64 {
            assert_eq!(inject(sites::EXACT_RUNG), Some(Fault::Budget));
            assert_eq!(inject(sites::MC_RUNG), None);
        }
        let counts = injection_counts();
        assert_eq!(counts.len(), 2);
        assert_eq!(
            counts[0],
            (sites::EXACT_RUNG.to_string(), Fault::Budget, 64, 64)
        );
        assert_eq!(
            counts[1],
            (sites::MC_RUNG.to_string(), Fault::Deadline, 64, 0)
        );
    }

    #[test]
    fn apply_maps_faults_to_degradable_errors() {
        let _guard = install(
            ChaosConfig::new(3)
                .rule(sites::BOUNDED_RUNG, Fault::Deadline, 1.0)
                .rule(sites::SHARD_EVAL, Fault::Panic, 1.0),
        );
        let err = apply(sites::BOUNDED_RUNG).unwrap_err();
        assert!(err.is_degradable(), "{err}");
        let panicked = std::panic::catch_unwind(|| apply(sites::SHARD_EVAL)).is_err();
        assert!(panicked);
    }

    #[test]
    fn guard_drop_uninstalls() {
        {
            let _guard = install(ChaosConfig::new(5).rule(sites::ORACLE, Fault::Panic, 1.0));
            assert!(active());
        }
        // Re-acquire the lock: a parallel test may install in the gap.
        let _lock = INSTALL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!active());
        assert_eq!(inject(sites::ORACLE), None);
    }
}
