//! The always-on serving layer: admission control with explicit
//! backpressure, degrade-before-drop load shedding, heartbeat-based worker
//! supervision, and OBDD arena garbage collection.
//!
//! [`MvdbServer`] turns the batch engine into a long-lived service. The
//! request path is a pipeline of pressure valves, each engaging before the
//! next:
//!
//! 1. **Admission** ([`MvdbServer::submit`]): requests enter a *bounded*
//!    queue. A full queue — or an estimated queue wait that already
//!    exceeds the request's deadline, so not even the sampling rung could
//!    answer in time — yields [`CoreError::Rejected`] with a `retry_after`
//!    hint instead of unbounded buffering. The wait estimate is an EWMA of
//!    observed service times scaled by queue depth.
//! 2. **Degradation before shedding**: under queue pressure the overload
//!    controller lowers the *entry rung* of the resilience ladder for new
//!    admissions — past `degrade_depth` requests start at bounded-exact
//!    synthesis, past `shed_depth` they go straight to Monte Carlo at a
//!    widened ε ([`ServeConfig::widened_epsilon`]). Degraded admissions
//!    still answer; every decision is visible in the [`ServeOutcome`].
//! 3. **Per-request deadlines**: each request carries a wall-clock
//!    deadline inherited by the ladder's `EvalBudget`; a request whose
//!    deadline passed while queued replies `DeadlineExceeded` without
//!    evaluating.
//!
//! **Supervision.** Workers tick a heartbeat each loop. A supervisor
//! thread respawns workers whose threads died (panics escape at the
//! `dispatch`/`heartbeat` chaos sites by design) and quarantines *wedged*
//! workers whose heartbeat stalls past [`ServeConfig::heartbeat_timeout`].
//! Either way the in-flight request is recovered from the worker's
//! inflight slot and requeued at the front; a per-request `answered` flag
//! suppresses duplicate replies if a quarantined worker finishes late.
//! Admitted queries are never silently dropped — a request that kills its
//! worker more than [`ServeConfig::max_requeues`] times is *reported* lost
//! with a typed outcome instead of cycling respawns forever.
//!
//! **Arena GC.** Long-lived workers would otherwise grow their append-only
//! query-side [`ObddManager`](mv_obdd::ObddManager) arenas without bound.
//! After each request, a worker whose arena crossed
//! [`ServeConfig::compact_watermark`] compacts it: live registered roots
//! (the ladder registers its memoized `W` diagram) are rebuilt into a
//! fresh arena, the generation and weight epoch are bumped so stale node
//! ids and probability stamps cannot resurface, and the ladder rehydrates
//! `W` from its registration token. Compaction is measured per pass in
//! [`ServerStats`].
//!
//! **Live updates.** [`MvdbServer::submit_update`] applies an
//! [`UpdateBatch`] under snapshot semantics: writers are serialized and
//! work on a private clone of the serving engine, readers keep draining
//! on the snapshot they pinned, and only a fully-applied batch is
//! published (an atomic `Arc` swap plus a version bump workers poll
//! between requests). A failed or faulted update leaves the serving
//! snapshot untouched — its side effects die with the discarded clone.
//!
//! Fault injection hooks at the `admit`, `dispatch`, `heartbeat`,
//! `compact`, `update_apply`, and `update_swap` chaos sites prove the
//! recovery paths; the `figures serve` soak campaign drives a sustained
//! over-capacity mixed workload through them and gates zero lost
//! admitted queries, bounded shed fraction, and bounded arena growth.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mv_obdd::CompactOutcome;
use mv_query::Ucq;

use crate::backend::{
    EvalContext, QueryFault, QueryOutcome, ResilienceConfig, ResilientBackend, Rung,
};
use crate::chaos::{self, sites};
use crate::error::CoreError;
use crate::sharded::ShardedEngine;
use crate::update::{UpdateBatch, UpdateOutcome};
use crate::Result;

/// Tuning of an [`MvdbServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads evaluating admitted requests.
    pub workers: usize,
    /// Capacity of the bounded admission queue; submissions at a full
    /// queue are rejected with backpressure. `0` rejects everything.
    pub queue_capacity: usize,
    /// Default per-request deadline ([`MvdbServer::submit`]).
    pub deadline: Duration,
    /// Queue depth at which new admissions enter the ladder at
    /// [`Rung::BoundedExact`] instead of the configured entry rung.
    pub degrade_depth: usize,
    /// Queue depth at which new admissions go straight to
    /// [`Rung::MonteCarlo`] at [`ServeConfig::widened_epsilon`].
    pub shed_depth: usize,
    /// Monte Carlo target half-width for admissions past `shed_depth`
    /// (wider than the ladder default — cheaper answers under pressure).
    pub widened_epsilon: f64,
    /// Base resilience-ladder configuration; `entry`, `deadline` and
    /// `epsilon` are overridden per request by the overload controller.
    pub resilience: ResilienceConfig,
    /// Cadence of worker heartbeats and supervisor sweeps.
    pub heartbeat_interval: Duration,
    /// A worker whose heartbeat stalls longer than this is quarantined as
    /// wedged and replaced. Must comfortably exceed the worst-case
    /// per-request service time (rungs × deadline), or long evaluations
    /// are false-positive quarantined — correctness survives (the
    /// recovered request is deduplicated) but respawns are wasted.
    pub heartbeat_timeout: Duration,
    /// Node-count watermark of a worker's query-side arena; crossing it
    /// triggers a compaction after the current request. `usize::MAX`
    /// disables compaction.
    pub compact_watermark: usize,
    /// How many times a request recovered from a dead or wedged worker is
    /// requeued before it is reported lost instead of retried.
    pub max_requeues: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            deadline: Duration::from_millis(250),
            degrade_depth: 16,
            shed_depth: 32,
            widened_epsilon: 0.05,
            resilience: ResilienceConfig::default(),
            heartbeat_interval: Duration::from_millis(10),
            heartbeat_timeout: Duration::from_secs(2),
            compact_watermark: 1 << 16,
            max_requeues: 3,
        }
    }
}

/// The per-request record a served query resolves to: the ladder's
/// [`QueryOutcome`] plus the serving-layer decisions around it.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The server-assigned request id ([`Ticket::id`]).
    pub id: u64,
    /// The ladder outcome: probability, answering rung, achieved ε, fault.
    pub outcome: QueryOutcome,
    /// The entry rung the overload controller admitted the request at —
    /// [`Rung::Exact`] when admitted without pressure.
    pub entry: Rung,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Evaluation wall-clock on the answering worker.
    pub service: Duration,
    /// Admission-to-reply wall-clock (includes requeues and recovery).
    pub total: Duration,
    /// Times the request was recovered from a dead/wedged worker.
    pub requeues: u32,
    /// The worker slot that replied, or `None` when the supervisor
    /// reported the request lost without a worker answering.
    pub worker: Option<usize>,
}

impl ServeOutcome {
    /// `true` when some rung produced an answer.
    pub fn answered(&self) -> bool {
        self.outcome.answered()
    }

    /// `true` when the overload controller admitted the request below the
    /// configured entry rung (the "degraded admission" series).
    pub fn degraded_admission(&self) -> bool {
        self.entry != Rung::Exact
    }
}

/// A handle to one admitted request; resolve it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    entry: Rung,
    receiver: Receiver<ServeOutcome>,
}

impl Ticket {
    /// The server-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The entry rung the request was admitted at.
    pub fn admitted_rung(&self) -> Rung {
        self.entry
    }

    /// Blocks until the request resolves. If the server is torn down
    /// without replying (it drains admitted requests on shutdown, so this
    /// is a defensive path), a poisoned outcome is synthesized.
    pub fn wait(self) -> ServeOutcome {
        let id = self.id;
        let entry = self.entry;
        self.receiver
            .recv()
            .unwrap_or_else(|_| Ticket::severed(id, entry))
    }

    /// [`Ticket::wait`] with an upper bound; `Err(self)` when the request
    /// has not resolved yet.
    pub fn wait_timeout(self, timeout: Duration) -> std::result::Result<ServeOutcome, Ticket> {
        match self.receiver.recv_timeout(timeout) {
            Ok(outcome) => Ok(outcome),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                Ok(Ticket::severed(self.id, self.entry))
            }
        }
    }

    fn severed(id: u64, entry: Rung) -> ServeOutcome {
        ServeOutcome {
            id,
            outcome: QueryOutcome::poisoned(sites::DISPATCH),
            entry,
            queue_wait: Duration::ZERO,
            service: Duration::ZERO,
            total: Duration::ZERO,
            requeues: 0,
            worker: None,
        }
    }
}

/// A counter snapshot of a running (or drained) server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests rejected by admission control (backpressure).
    pub rejected: u64,
    /// Requests that resolved to a reply (answered or reported lost).
    pub completed: u64,
    /// Replies with no probability: every rung failed, or the request
    /// expired in the queue, or its requeue budget ran out.
    pub lost: u64,
    /// Admissions the overload controller entered below [`Rung::Exact`].
    pub degraded_admissions: u64,
    /// Replies answered below the exact rung.
    pub degraded_answers: u64,
    /// Requests recovered from a dead/wedged worker and requeued.
    pub requeues: u64,
    /// Worker threads (re)spawned after a death or quarantine.
    pub respawns: u64,
    /// Workers quarantined as wedged by heartbeat staleness.
    pub quarantined: u64,
    /// Query-arena compactions across all workers.
    pub compactions: u64,
    /// Arena nodes reclaimed by those compactions.
    pub reclaimed_nodes: u64,
    /// Arena bytes before the most recent compaction (gauge).
    pub arena_bytes_before: u64,
    /// Arena bytes after the most recent compaction (gauge).
    pub arena_bytes_after: u64,
    /// Update batches applied and published as new serving snapshots.
    pub updates_applied: u64,
    /// Update batches that failed (validation, application, or an
    /// injected fault) and left the serving snapshot unchanged.
    pub update_failures: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Configured worker count.
    pub workers: usize,
}

impl ServerStats {
    /// Fraction of submissions rejected by admission control.
    pub fn shed_fraction(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.rejected as f64 / total as f64
        }
    }
}

/// One admitted request as it travels through the queue and workers.
/// Cloned into the owning worker's inflight slot so the supervisor can
/// recover it if the worker dies; the `answered` flag arbitrates between
/// the original and a recovered duplicate.
#[derive(Debug, Clone)]
struct Request {
    id: u64,
    query: Ucq,
    admitted_at: Instant,
    deadline_at: Instant,
    entry: Rung,
    epsilon: f64,
    requeues: u32,
    answered: Arc<AtomicBool>,
    reply: SyncSender<ServeOutcome>,
}

#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    lost: AtomicU64,
    degraded_admissions: AtomicU64,
    degraded_answers: AtomicU64,
    requeues: AtomicU64,
    respawns: AtomicU64,
    quarantined: AtomicU64,
    compactions: AtomicU64,
    reclaimed_nodes: AtomicU64,
    arena_bytes_before: AtomicU64,
    arena_bytes_after: AtomicU64,
    updates_applied: AtomicU64,
    update_failures: AtomicU64,
}

struct Inbox {
    queue: Mutex<VecDeque<Request>>,
    cv: Condvar,
}

struct ServerShared {
    /// The serving snapshot. `submit_update` swaps the inner `Arc`;
    /// workers pin the snapshot they started with and drain on it, so
    /// readers are never blocked by (or exposed to) a half-applied
    /// update.
    engine: RwLock<Arc<ShardedEngine>>,
    /// Bumped after each published snapshot swap. Workers poll it
    /// between requests to know when to re-pin the engine and rebuild
    /// their per-snapshot evaluation state.
    engine_version: AtomicU64,
    /// Serializes update batches: single writer, many readers.
    writer: Mutex<()>,
    config: ServeConfig,
    inbox: Inbox,
    shutdown: AtomicBool,
    /// EWMA of observed service times (ns); feeds the admission-time
    /// queue-wait estimate. Racy read-modify-write is fine for a gauge.
    ewma_service_ns: AtomicU64,
    counters: Counters,
}

/// The supervisor's view of one worker thread.
struct WorkerSlot {
    worker_id: usize,
    beat: Arc<AtomicU64>,
    /// Supervisor-local: last observed beat and when it last moved.
    last_beat: u64,
    last_change: Instant,
    inflight: Arc<Mutex<Option<Request>>>,
    quarantine: Arc<AtomicBool>,
    /// `None` after a clean drain exit, an abandonment, or a failed spawn.
    handle: Option<JoinHandle<()>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn rlock<T>(rw: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rw.read().unwrap_or_else(PoisonError::into_inner)
}

/// Admission-time estimate of the queue wait ahead of a new request.
/// `None` during cold start: before the first request completes the
/// service-time EWMA carries no signal, and treating it as a zero-wait
/// estimate would admit arbitrarily deep queues regardless of deadline.
fn estimated_wait(ewma_ns: u64, depth: usize, workers: usize) -> Option<Duration> {
    (ewma_ns > 0)
        .then(|| Duration::from_nanos(ewma_ns.saturating_mul(depth as u64) / workers.max(1) as u64))
}

/// Whether the estimated queue wait already forecloses answering within
/// the deadline. A known estimate compares directly; an unknown
/// (cold-start) estimate falls back to queue depth — past the shed
/// threshold the queue is deep enough that blind admission risks the
/// request expiring unanswered, which is worse than an honest rejection.
fn wait_forecloses(
    est_wait: Option<Duration>,
    deadline: Duration,
    depth: usize,
    shed_depth: usize,
) -> bool {
    match est_wait {
        Some(wait) => wait > deadline,
        None => depth > shed_depth,
    }
}

/// A long-lived, supervised thread pool serving probabilistic queries
/// over a [`ShardedEngine`]. See the module docs for the architecture.
pub struct MvdbServer {
    shared: Arc<ServerShared>,
    next_id: AtomicU64,
    supervisor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MvdbServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvdbServer")
            .field("stats", &self.stats())
            .finish()
    }
}

impl MvdbServer {
    /// Starts the worker pool and its supervisor.
    pub fn start(engine: Arc<ShardedEngine>, config: ServeConfig) -> MvdbServer {
        let shared = Arc::new(ServerShared {
            engine: RwLock::new(engine),
            engine_version: AtomicU64::new(0),
            writer: Mutex::new(()),
            config,
            inbox: Inbox {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            },
            shutdown: AtomicBool::new(false),
            ewma_service_ns: AtomicU64::new(0),
            counters: Counters::default(),
        });
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mv-serve-supervisor".into())
                .spawn(move || supervisor_loop(&shared))
                .ok()
        };
        MvdbServer {
            shared,
            next_id: AtomicU64::new(0),
            supervisor,
        }
    }

    /// The engine snapshot the server currently serves. Updates swap
    /// the snapshot, so the returned `Arc` may become stale; it stays
    /// valid (and exact for its version) for as long as it is held.
    pub fn engine(&self) -> Arc<ShardedEngine> {
        Arc::clone(&rlock(&self.shared.engine))
    }

    /// Monotone count of update batches published since start.
    pub fn snapshot_version(&self) -> u64 {
        self.shared.engine_version.load(Ordering::Acquire)
    }

    /// The server configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.inbox.queue).len()
    }

    /// Submits a Boolean query under the default deadline.
    pub fn submit(&self, query: Ucq) -> Result<Ticket> {
        self.submit_with_deadline(query, self.shared.config.deadline)
    }

    /// Submits a Boolean query that must resolve within `deadline`.
    ///
    /// Admission control applies, in order: a draining/dead server or a
    /// full queue rejects outright; an estimated queue wait beyond the
    /// deadline rejects (not even the sampler could answer in time);
    /// otherwise the request is admitted at an entry rung chosen from the
    /// queue depth (degrade before drop). Rejections return
    /// [`CoreError::Rejected`] with a back-off hint — the caller should
    /// retry later rather than buffer.
    pub fn submit_with_deadline(&self, query: Ucq, deadline: Duration) -> Result<Ticket> {
        let shared = &self.shared;
        let reject = |depth: usize, retry_after: Duration| {
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            Err(CoreError::Rejected {
                retry_after: retry_after.max(Duration::from_millis(1)),
                depth,
            })
        };
        if shared.shutdown.load(Ordering::SeqCst) || self.supervisor.is_none() {
            return reject(0, deadline);
        }
        // Admission chaos: injected pressure (or a panic) surfaces as a
        // rejection — it must never tear down the caller.
        let admit = catch_unwind(AssertUnwindSafe(|| chaos::apply(sites::ADMIT)));
        let faulted = !matches!(admit, Ok(Ok(())));
        let now = Instant::now();
        let mut queue = lock(&shared.inbox.queue);
        let depth = queue.len();
        let ewma = shared.ewma_service_ns.load(Ordering::Relaxed);
        let est_wait = estimated_wait(ewma, depth, shared.config.workers);
        let foreclosed = wait_forecloses(est_wait, deadline, depth, shared.config.shed_depth);
        if faulted || depth >= shared.config.queue_capacity || foreclosed {
            drop(queue);
            return reject(depth, est_wait.unwrap_or(Duration::ZERO) / 2);
        }
        // The overload controller: degrade before dropping.
        let (entry, epsilon) = if depth >= shared.config.shed_depth {
            (Rung::MonteCarlo, shared.config.widened_epsilon)
        } else if depth >= shared.config.degrade_depth {
            (
                shared.config.resilience.entry.max(Rung::BoundedExact),
                shared.config.resilience.epsilon,
            )
        } else {
            (
                shared.config.resilience.entry,
                shared.config.resilience.epsilon,
            )
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, receiver) = sync_channel(1);
        queue.push_back(Request {
            id,
            query,
            admitted_at: now,
            deadline_at: now + deadline,
            entry,
            epsilon,
            requeues: 0,
            answered: Arc::new(AtomicBool::new(false)),
            reply,
        });
        drop(queue);
        shared.inbox.cv.notify_one();
        shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
        if entry != shared.config.resilience.entry {
            shared
                .counters
                .degraded_admissions
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(Ticket {
            id,
            entry,
            receiver,
        })
    }

    /// Applies an update batch under snapshot semantics and, on
    /// success, publishes the result as the new serving snapshot.
    ///
    /// Writers are serialized (single-writer / multi-reader): the batch
    /// is applied to a private clone of the current engine, so readers
    /// keep serving the old snapshot untouched while the writer works.
    /// Only a fully-applied batch is published; workers notice the
    /// version bump between requests and re-pin, while in-flight
    /// queries drain on the snapshot they started with. A batch that
    /// fails validation or application — or an injected fault at the
    /// `update_apply`/`update_swap` chaos sites — leaves the serving
    /// snapshot exactly as it was: the side effects die with the
    /// discarded clone.
    pub fn submit_update(&self, batch: &UpdateBatch) -> Result<UpdateOutcome> {
        let shared = &self.shared;
        if shared.shutdown.load(Ordering::SeqCst) || self.supervisor.is_none() {
            return Err(CoreError::Rejected {
                retry_after: Duration::from_millis(1),
                depth: 0,
            });
        }
        let _writer = lock(&shared.writer);
        let current = Arc::clone(&rlock(&shared.engine));
        let applied = catch_unwind(AssertUnwindSafe(
            || -> Result<(ShardedEngine, UpdateOutcome)> {
                chaos::apply(sites::UPDATE_APPLY)?;
                let mut next = (*current).clone();
                let outcome = next.apply(batch)?;
                chaos::apply(sites::UPDATE_SWAP)?;
                Ok((next, outcome))
            },
        ))
        .unwrap_or_else(|panic| Err(CoreError::from_panic(sites::UPDATE_APPLY, panic.as_ref())));
        match applied {
            Ok((next, outcome)) => {
                *shared
                    .engine
                    .write()
                    .unwrap_or_else(PoisonError::into_inner) = Arc::new(next);
                shared.engine_version.fetch_add(1, Ordering::Release);
                shared
                    .counters
                    .updates_applied
                    .fetch_add(1, Ordering::Relaxed);
                // Wake idle workers so they re-pin promptly.
                shared.inbox.cv.notify_all();
                Ok(outcome)
            }
            Err(err) => {
                shared
                    .counters
                    .update_failures
                    .fetch_add(1, Ordering::Relaxed);
                Err(err)
            }
        }
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            lost: c.lost.load(Ordering::Relaxed),
            degraded_admissions: c.degraded_admissions.load(Ordering::Relaxed),
            degraded_answers: c.degraded_answers.load(Ordering::Relaxed),
            requeues: c.requeues.load(Ordering::Relaxed),
            respawns: c.respawns.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            compactions: c.compactions.load(Ordering::Relaxed),
            reclaimed_nodes: c.reclaimed_nodes.load(Ordering::Relaxed),
            arena_bytes_before: c.arena_bytes_before.load(Ordering::Relaxed),
            arena_bytes_after: c.arena_bytes_after.load(Ordering::Relaxed),
            updates_applied: c.updates_applied.load(Ordering::Relaxed),
            update_failures: c.update_failures.load(Ordering::Relaxed),
            queue_depth: self.queue_depth(),
            workers: self.shared.config.workers.max(1),
        }
    }

    /// Stops admission, drains every admitted request, joins the pool,
    /// and returns the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.inbox.cv.notify_all();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MvdbServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn spawn_worker(shared: &Arc<ServerShared>, worker_id: usize) -> WorkerSlot {
    let beat = Arc::new(AtomicU64::new(0));
    let inflight: Arc<Mutex<Option<Request>>> = Arc::new(Mutex::new(None));
    let quarantine = Arc::new(AtomicBool::new(false));
    let handle = {
        let shared = Arc::clone(shared);
        let beat = Arc::clone(&beat);
        let inflight = Arc::clone(&inflight);
        let quarantine = Arc::clone(&quarantine);
        std::thread::Builder::new()
            .name(format!("mv-serve-{worker_id}"))
            .spawn(move || worker_loop(&shared, worker_id, &beat, &inflight, &quarantine))
            .ok()
    };
    WorkerSlot {
        worker_id,
        beat,
        last_beat: 0,
        last_change: Instant::now(),
        inflight,
        quarantine,
        handle,
    }
}

/// Ticks the worker's heartbeat, applying heartbeat chaos: an injected
/// panic kills the thread (the supervisor respawns it); injected
/// deadline/budget pressure stalls the worker well past the supervision
/// timeout (the supervisor quarantines it as wedged). Returns `false`
/// once the slot has been quarantined — the worker must exit.
fn heartbeat(shared: &ServerShared, beat: &AtomicU64, quarantine: &AtomicBool) -> bool {
    beat.fetch_add(1, Ordering::Relaxed);
    if chaos::apply(sites::HEARTBEAT).is_err() {
        std::thread::sleep(shared.config.heartbeat_timeout * 2);
    }
    !quarantine.load(Ordering::SeqCst)
}

fn worker_loop(
    shared: &Arc<ServerShared>,
    worker_id: usize,
    beat: &AtomicU64,
    inflight: &Mutex<Option<Request>>,
    quarantine: &AtomicBool,
) {
    // Every worker owns a private evaluation context (its query-side OBDD
    // manager is fresh per context, which is what makes per-worker arena
    // compaction safe) and a private ladder whose `W` memo persists across
    // requests and compactions. The outer loop pins one engine snapshot;
    // when `submit_update` publishes a new one the worker finishes its
    // current request on the pinned snapshot, then re-pins and rebuilds
    // its context and ladder (the memoized `W` belongs to the old
    // snapshot). The version is read *before* the engine so a swap racing
    // this re-pin costs at most one redundant rebuild, never a stale
    // snapshot served past the next check.
    loop {
        let snapshot = shared.engine_version.load(Ordering::Acquire);
        let engine = Arc::clone(&rlock(&shared.engine));
        let ctx = engine.full().context();
        let mut ladder = ResilientBackend::new(shared.config.resilience.clone());
        loop {
            if !heartbeat(shared, beat, quarantine) {
                return; // quarantined: a replacement owns this slot now
            }
            if shared.engine_version.load(Ordering::Acquire) != snapshot {
                break; // a new snapshot was published: re-pin
            }
            let popped = {
                let mut queue = lock(&shared.inbox.queue);
                match queue.pop_front() {
                    Some(req) => Some(req),
                    None if shared.shutdown.load(Ordering::SeqCst) => return, // drained
                    None => {
                        let (mut queue, _) = shared
                            .inbox
                            .cv
                            .wait_timeout(queue, shared.config.heartbeat_interval)
                            .unwrap_or_else(PoisonError::into_inner);
                        queue.pop_front()
                    }
                }
            };
            let Some(mut req) = popped else { continue };
            *lock(inflight) = Some(req.clone());
            // Dispatch chaos runs OUTSIDE the panic trap on purpose: an
            // injected panic here kills the worker with the request in
            // flight, which is exactly the recovery path supervision must
            // prove. Injected deadline/budget pressure is treated as a
            // transient dispatch failure: requeue (bounded), then evaluate
            // anyway — an admitted query is never dropped for a transient.
            match chaos::apply(sites::DISPATCH) {
                Err(_) if req.requeues < shared.config.max_requeues => {
                    *lock(inflight) = None;
                    req.requeues += 1;
                    shared.counters.requeues.fetch_add(1, Ordering::Relaxed);
                    lock(&shared.inbox.queue).push_front(req);
                    shared.inbox.cv.notify_one();
                    continue;
                }
                _ => {}
            }
            let processed = catch_unwind(AssertUnwindSafe(|| {
                process(shared, worker_id, &ctx, &mut ladder, req)
            }));
            let leftover = lock(inflight).take();
            if processed.is_err() {
                // A non-chaos panic escaped the ladder (which traps per-rung
                // panics): the worker survives and the request is recovered
                // from its own inflight slot.
                if let Some(req) = leftover {
                    recover(shared, req);
                }
            }
            maybe_compact(shared, &ctx);
        }
    }
}

fn process(
    shared: &ServerShared,
    worker_id: usize,
    ctx: &EvalContext<'_>,
    ladder: &mut ResilientBackend,
    req: Request,
) {
    let now = Instant::now();
    let queue_wait = now.saturating_duration_since(req.admitted_at);
    if now >= req.deadline_at {
        // The deadline passed while the request was queued (or being
        // recovered): reply `DeadlineExceeded` without evaluating.
        let err = CoreError::DeadlineExceeded {
            elapsed: queue_wait,
        };
        let outcome = QueryOutcome::lost(QueryFault::of(&err), req.admitted_at);
        finish(shared, Some(worker_id), &req, outcome, queue_wait);
        return;
    }
    // Retune the worker's ladder for this request: the admission-time
    // entry rung and ε, and per-rung budget windows clipped to the
    // remaining deadline. The memoized `W` build survives retuning.
    let remaining = req.deadline_at - now;
    let mut config = shared.config.resilience.clone();
    config.entry = req.entry;
    config.epsilon = req.epsilon;
    config.deadline = Some(config.deadline.map_or(remaining, |d| d.min(remaining)));
    ladder.set_config(config);
    let outcome = ladder.evaluate_with_retries(&req.query, ctx);
    finish(shared, Some(worker_id), &req, outcome, queue_wait);
}

/// Resolves a request exactly once: the first finisher (original worker or
/// recovered duplicate) wins the `answered` flag; later finishers drop
/// their result silently.
fn finish(
    shared: &ServerShared,
    worker: Option<usize>,
    req: &Request,
    outcome: QueryOutcome,
    queue_wait: Duration,
) {
    if req.answered.swap(true, Ordering::SeqCst) {
        return;
    }
    let c = &shared.counters;
    c.completed.fetch_add(1, Ordering::Relaxed);
    if outcome.probability.is_none() {
        c.lost.fetch_add(1, Ordering::Relaxed);
    }
    if outcome.degraded() {
        c.degraded_answers.fetch_add(1, Ordering::Relaxed);
    }
    let service = outcome.elapsed;
    let observed = u64::try_from(service.as_nanos()).unwrap_or(u64::MAX);
    let prev = shared.ewma_service_ns.load(Ordering::Relaxed);
    let next = if prev == 0 {
        observed
    } else {
        prev - prev / 8 + observed / 8
    };
    shared.ewma_service_ns.store(next, Ordering::Relaxed);
    // The caller may have dropped its ticket; a dead receiver is fine.
    let _ = req.reply.send(ServeOutcome {
        id: req.id,
        entry: req.entry,
        queue_wait,
        service,
        total: req.admitted_at.elapsed(),
        requeues: req.requeues,
        worker,
        outcome,
    });
}

/// Requeues a request recovered from a dead or wedged worker, front of
/// the line (it already waited). A request that exhausted its requeue
/// budget — it kills every worker that touches it — is reported lost
/// instead of cycling respawns forever.
fn recover(shared: &ServerShared, mut req: Request) {
    if req.answered.load(Ordering::SeqCst) {
        return; // a quarantined worker finished it after all
    }
    if req.requeues >= shared.config.max_requeues {
        let queue_wait = req.admitted_at.elapsed();
        finish(
            shared,
            None,
            &req,
            QueryOutcome::poisoned(sites::DISPATCH),
            queue_wait,
        );
        return;
    }
    req.requeues += 1;
    shared.counters.requeues.fetch_add(1, Ordering::Relaxed);
    lock(&shared.inbox.queue).push_front(req);
    shared.inbox.cv.notify_one();
}

/// Compacts the worker's query-side arena when it crossed the watermark.
/// An injected fault (or panic) at the `compact` site skips the pass —
/// the arena is append-only, so deferring compaction is always safe.
fn maybe_compact(shared: &ServerShared, ctx: &EvalContext<'_>) {
    let watermark = shared.config.compact_watermark;
    if watermark == usize::MAX {
        return;
    }
    let manager = ctx.query_manager().clone();
    let compacted = catch_unwind(AssertUnwindSafe(|| -> Result<Option<CompactOutcome>> {
        chaos::apply(sites::COMPACT)?;
        Ok(manager.compact_if_above(watermark))
    }));
    if let Ok(Ok(Some(out))) = compacted {
        let c = &shared.counters;
        c.compactions.fetch_add(1, Ordering::Relaxed);
        c.reclaimed_nodes
            .fetch_add(out.reclaimed() as u64, Ordering::Relaxed);
        c.arena_bytes_before
            .store(out.before_bytes, Ordering::Relaxed);
        c.arena_bytes_after
            .store(out.after_bytes, Ordering::Relaxed);
    }
}

fn supervisor_loop(shared: &Arc<ServerShared>) {
    let mut slots: Vec<WorkerSlot> = (0..shared.config.workers.max(1))
        .map(|id| spawn_worker(shared, id))
        .collect();
    loop {
        std::thread::sleep(shared.config.heartbeat_interval);
        let shutdown = shared.shutdown.load(Ordering::SeqCst);
        let now = Instant::now();
        for slot in &mut slots {
            let finished = match slot.handle.as_ref() {
                Some(handle) => handle.is_finished(),
                None => {
                    if !shutdown {
                        // A previously failed (re)spawn: try again.
                        *slot = spawn_worker(shared, slot.worker_id);
                    }
                    continue;
                }
            };
            if finished {
                let crashed = slot
                    .handle
                    .take()
                    .map(|handle| handle.join().is_err())
                    .unwrap_or(false);
                let stranded = lock(&slot.inflight).take();
                let had_stranded = stranded.is_some();
                if let Some(req) = stranded {
                    recover(shared, req);
                }
                if crashed || had_stranded || !shutdown {
                    // A worker died (or exited before the drain was
                    // over): replace it without losing its request.
                    shared.counters.respawns.fetch_add(1, Ordering::Relaxed);
                    *slot = spawn_worker(shared, slot.worker_id);
                }
                // Otherwise: a clean drain exit; the slot stays retired.
                continue;
            }
            // Wedge detection: a live worker whose heartbeat has not
            // moved for a whole timeout window is quarantined, its
            // request recovered, and the slot respawned. The abandoned
            // thread exits at its next quarantine check; if it finishes
            // its request late, the `answered` flag drops the duplicate.
            let beat = slot.beat.load(Ordering::Relaxed);
            if beat != slot.last_beat {
                slot.last_beat = beat;
                slot.last_change = now;
            } else if now.duration_since(slot.last_change) > shared.config.heartbeat_timeout {
                slot.quarantine.store(true, Ordering::SeqCst);
                shared.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                if let Some(req) = lock(&slot.inflight).take() {
                    recover(shared, req);
                }
                drop(slot.handle.take());
                shared.counters.respawns.fetch_add(1, Ordering::Relaxed);
                *slot = spawn_worker(shared, slot.worker_id);
            }
        }
        if shutdown {
            shared.inbox.cv.notify_all();
            let drained = lock(&shared.inbox.queue).is_empty();
            if !drained && slots.iter().all(|s| s.handle.is_none()) {
                // Every worker retired before a recovered request was
                // requeued: bring one back to finish the drain.
                shared.counters.respawns.fetch_add(1, Ordering::Relaxed);
                slots[0] = spawn_worker(shared, slots[0].worker_id);
            }
            let idle = slots.iter().all(|slot| {
                slot.handle
                    .as_ref()
                    .is_none_or(|handle| handle.is_finished())
                    && lock(&slot.inflight).is_none()
            });
            if drained && idle {
                for slot in &mut slots {
                    if let Some(handle) = slot.handle.take() {
                        let _ = handle.join();
                    }
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosConfig, Fault};
    use crate::mvdb::MvdbBuilder;
    use crate::update::UpdateKind;
    use mv_pdb::Value;
    use mv_query::parse_ucq;

    /// The base ten-tuple fixture with `R(a0)`'s weight overridable, so
    /// update tests can compile an independent from-scratch oracle for
    /// any stage of a weight-update sequence.
    fn engine_with_r0(r0: f64) -> Arc<ShardedEngine> {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.relation("S", &["x"]).unwrap();
        for i in 0..10 {
            let v = format!("a{i}");
            let rw = if i == 0 { r0 } else { 1.0 + i as f64 };
            b.weighted_tuple("R", &[v.as_str()], rw).unwrap();
            b.weighted_tuple("S", &[v.as_str()], 2.0 + i as f64)
                .unwrap();
        }
        b.marko_view("V(x)[0.5] :- R(x), S(x)").unwrap();
        Arc::new(ShardedEngine::compile(&b.build().unwrap(), 2).unwrap())
    }

    fn engine() -> Arc<ShardedEngine> {
        engine_with_r0(1.0)
    }

    fn queries() -> Vec<Ucq> {
        vec![
            parse_ucq("Q() :- R(x), S(x)").unwrap(),
            parse_ucq("Q() :- R(x)").unwrap(),
            parse_ucq("Q() :- S(x)").unwrap(),
        ]
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            deadline: Duration::from_secs(10),
            degrade_depth: usize::MAX,
            shed_depth: usize::MAX,
            heartbeat_interval: Duration::from_millis(2),
            heartbeat_timeout: Duration::from_secs(5),
            compact_watermark: usize::MAX,
            ..ServeConfig::default()
        }
    }

    fn resolve(ticket: Ticket) -> ServeOutcome {
        ticket
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|t| panic!("request {} did not resolve in 60s", t.id()))
    }

    #[test]
    fn clean_serving_answers_everything_exactly() {
        let engine = engine();
        let qs = queries();
        let oracle: Vec<f64> = qs
            .iter()
            .map(|q| engine.full().probability(q).unwrap())
            .collect();
        let server = MvdbServer::start(Arc::clone(&engine), quick_config());
        let tickets: Vec<Ticket> = (0..24)
            .map(|i| server.submit(qs[i % qs.len()].clone()).unwrap())
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let out = resolve(ticket);
            assert!(out.answered(), "request {i} lost: {:?}", out.outcome.fault);
            assert_eq!(out.entry, Rung::Exact);
            assert_eq!(out.outcome.rung, Some(Rung::Exact));
            let p = out.outcome.probability.unwrap();
            assert!((p - oracle[i % oracle.len()]).abs() < 1e-9);
        }
        let stats = server.shutdown();
        assert_eq!(stats.admitted, 24);
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.lost, 0);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn a_full_queue_rejects_with_backpressure() {
        let engine = engine();
        let config = ServeConfig {
            queue_capacity: 0,
            ..quick_config()
        };
        let server = MvdbServer::start(engine, config);
        let q = queries().remove(0);
        for _ in 0..5 {
            match server.submit(q.clone()) {
                Err(CoreError::Rejected { retry_after, depth }) => {
                    assert!(retry_after > Duration::ZERO);
                    assert_eq!(depth, 0);
                }
                other => panic!("expected Rejected, got {other:?}"),
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.rejected, 5);
        assert_eq!(stats.admitted, 0);
        assert!((stats.shed_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn queue_pressure_degrades_before_dropping() {
        let engine = engine();
        let qs = queries();
        let oracle: Vec<f64> = qs
            .iter()
            .map(|q| engine.full().probability(q).unwrap())
            .collect();
        // Every admission enters at the bounded-exact rung.
        let config = ServeConfig {
            degrade_depth: 0,
            shed_depth: usize::MAX,
            ..quick_config()
        };
        let server = MvdbServer::start(Arc::clone(&engine), config);
        for (i, q) in qs.iter().enumerate() {
            let out = resolve(server.submit(q.clone()).unwrap());
            assert_eq!(out.entry, Rung::BoundedExact);
            assert!(out.degraded_admission());
            assert_eq!(out.outcome.rung, Some(Rung::BoundedExact));
            // Bounded-exact is still exact on this small database.
            assert!((out.outcome.probability.unwrap() - oracle[i]).abs() < 1e-9);
        }
        let stats = server.shutdown();
        assert_eq!(stats.degraded_admissions, qs.len() as u64);
        assert_eq!(stats.lost, 0);
        // Shedding pressure goes straight to Monte Carlo at widened ε.
        // (On a small database so the sampler's conservative Hoeffding
        // interval actually reaches the widened target.)
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.relation("S", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 3.0).unwrap();
        b.weighted_tuple("S", &["a"], 4.0).unwrap();
        b.marko_view("V(x)[0.5] :- R(x), S(x)").unwrap();
        let tiny = Arc::new(ShardedEngine::compile(&b.build().unwrap(), 1).unwrap());
        let exact = tiny.full().probability(&qs[0]).unwrap();
        let config = ServeConfig {
            degrade_depth: 0,
            shed_depth: 0,
            widened_epsilon: 0.05,
            ..quick_config()
        };
        let server = MvdbServer::start(tiny, config);
        let out = resolve(server.submit(qs[0].clone()).unwrap());
        assert_eq!(out.entry, Rung::MonteCarlo);
        assert_eq!(out.outcome.rung, Some(Rung::MonteCarlo));
        let eps = out.outcome.epsilon.unwrap();
        assert!(eps <= 0.051, "half-width {eps} missed the widened target");
        assert!((out.outcome.probability.unwrap() - exact).abs() < 5.0 * eps + 0.02);
        server.shutdown();
    }

    #[test]
    fn expired_deadlines_reply_without_evaluating() {
        let engine = engine();
        let server = MvdbServer::start(engine, quick_config());
        let q = queries().remove(0);
        let out = resolve(server.submit_with_deadline(q, Duration::ZERO).unwrap());
        assert!(!out.answered());
        assert_eq!(out.outcome.rung, None);
        let fault = out.outcome.fault.as_ref().unwrap();
        assert_eq!(fault.kind, crate::backend::FaultKind::Deadline);
        let stats = server.shutdown();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.lost, 1);
    }

    #[test]
    fn dead_workers_are_respawned_without_losing_queries() {
        let engine = engine();
        let qs = queries();
        let _guard = chaos::install(
            ChaosConfig::new(40)
                .rule(sites::HEARTBEAT, Fault::Panic, 0.05)
                .rule(sites::DISPATCH, Fault::Panic, 0.2),
        );
        let config = ServeConfig {
            max_requeues: 10,
            ..quick_config()
        };
        let server = MvdbServer::start(Arc::clone(&engine), config);
        let tickets: Vec<Ticket> = (0..40)
            .map(|i| server.submit(qs[i % qs.len()].clone()).unwrap())
            .collect();
        let mut answered = 0;
        for ticket in tickets {
            let out = resolve(ticket);
            if out.answered() {
                answered += 1;
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 40);
        assert_eq!(answered, 40, "injected panics must not lose queries");
        assert!(
            stats.respawns >= 1,
            "panics at dispatch/heartbeat must kill workers: {stats:?}"
        );
    }

    #[test]
    fn wedged_workers_are_quarantined_and_replaced() {
        let engine = engine();
        let qs = queries();
        let _guard =
            chaos::install(ChaosConfig::new(41).rule(sites::HEARTBEAT, Fault::Deadline, 0.08));
        let config = ServeConfig {
            workers: 2,
            heartbeat_interval: Duration::from_millis(2),
            heartbeat_timeout: Duration::from_millis(60),
            ..quick_config()
        };
        let server = MvdbServer::start(Arc::clone(&engine), config);
        let tickets: Vec<Ticket> = (0..30)
            .map(|i| server.submit(qs[i % qs.len()].clone()).unwrap())
            .collect();
        for ticket in tickets {
            let out = resolve(ticket);
            assert!(out.answered(), "wedges must not lose queries: {out:?}");
        }
        let stats = server.shutdown();
        assert!(
            stats.quarantined >= 1,
            "injected heartbeat stalls must trip wedge detection: {stats:?}"
        );
        assert_eq!(stats.lost, 0);
    }

    #[test]
    fn cold_start_admission_falls_back_to_depth() {
        // Before any request completes the EWMA is 0; the old code
        // turned that into a zero-wait estimate that admitted any depth
        // regardless of deadline. Cold start must report "unknown".
        assert_eq!(estimated_wait(0, 50, 2), None);
        assert_eq!(
            estimated_wait(1_000_000, 10, 2),
            Some(Duration::from_millis(5))
        );
        // Known estimates compare against the deadline...
        assert!(wait_forecloses(
            Some(Duration::from_secs(1)),
            Duration::from_millis(100),
            0,
            usize::MAX
        ));
        assert!(!wait_forecloses(
            Some(Duration::ZERO),
            Duration::from_millis(100),
            1000,
            0
        ));
        // ...unknown estimates fall back to the shed-depth threshold.
        assert!(wait_forecloses(None, Duration::from_millis(100), 33, 32));
        assert!(!wait_forecloses(None, Duration::from_millis(100), 32, 32));
    }

    #[test]
    fn updates_swap_snapshots_and_readers_see_them() {
        let qs = queries();
        let server = MvdbServer::start(engine(), quick_config());
        let out = resolve(server.submit(qs[0].clone()).unwrap());
        let before = out.outcome.probability.unwrap();
        let base_oracle = engine_with_r0(1.0).full().probability(&qs[0]).unwrap();
        assert!((before - base_oracle).abs() < 1e-9);

        // A weight-only update rides the fast path: no shard rebuilds.
        let batch = UpdateBatch::new().set_weight("R", vec![Value::str("a0")], 9.0);
        let outcome = server.submit_update(&batch).unwrap();
        assert_eq!(outcome.kind, UpdateKind::WeightOnly);
        assert_eq!(outcome.shards_rebuilt, 0);
        assert_eq!(server.snapshot_version(), 1);
        let oracle = engine_with_r0(9.0).full().probability(&qs[0]).unwrap();
        assert!((oracle - base_oracle).abs() > 1e-6, "fixture must move");
        let out = resolve(server.submit(qs[0].clone()).unwrap());
        assert!((out.outcome.probability.unwrap() - oracle).abs() < 1e-9);

        // A structural update (fresh tuples) recompiles and swaps too.
        let batch = UpdateBatch::new()
            .insert("R", vec![Value::str("zz")], 4.0)
            .insert("S", vec![Value::str("zz")], 4.0);
        let outcome = server.submit_update(&batch).unwrap();
        assert_eq!(outcome.kind, UpdateKind::Structural);
        assert_eq!(server.snapshot_version(), 2);
        let structural_oracle = {
            let mut b = MvdbBuilder::new();
            b.relation("R", &["x"]).unwrap();
            b.relation("S", &["x"]).unwrap();
            for i in 0..10 {
                let v = format!("a{i}");
                let rw = if i == 0 { 9.0 } else { 1.0 + i as f64 };
                b.weighted_tuple("R", &[v.as_str()], rw).unwrap();
                b.weighted_tuple("S", &[v.as_str()], 2.0 + i as f64)
                    .unwrap();
            }
            b.weighted_tuple("R", &["zz"], 4.0).unwrap();
            b.weighted_tuple("S", &["zz"], 4.0).unwrap();
            b.marko_view("V(x)[0.5] :- R(x), S(x)").unwrap();
            ShardedEngine::compile(&b.build().unwrap(), 2)
                .unwrap()
                .full()
                .probability(&qs[0])
                .unwrap()
        };
        let out = resolve(server.submit(qs[0].clone()).unwrap());
        assert!((out.outcome.probability.unwrap() - structural_oracle).abs() < 1e-9);

        let stats = server.shutdown();
        assert_eq!(stats.updates_applied, 2);
        assert_eq!(stats.update_failures, 0);
        assert_eq!(stats.lost, 0);
    }

    #[test]
    fn faulted_updates_leave_the_serving_snapshot_unchanged() {
        let qs = queries();
        let server = MvdbServer::start(engine(), quick_config());
        let oracle = engine_with_r0(1.0).full().probability(&qs[0]).unwrap();
        {
            let _guard =
                chaos::install(ChaosConfig::new(42).rule(sites::UPDATE_APPLY, Fault::Panic, 1.0));
            let batch = UpdateBatch::new().set_weight("R", vec![Value::str("a0")], 9.0);
            assert!(server.submit_update(&batch).is_err());
        }
        {
            let _guard =
                chaos::install(ChaosConfig::new(43).rule(sites::UPDATE_SWAP, Fault::Deadline, 1.0));
            let batch = UpdateBatch::new().set_weight("R", vec![Value::str("a0")], 9.0);
            assert!(server.submit_update(&batch).is_err());
        }
        // Neither faulted update published: readers still see the
        // original snapshot, exactly.
        assert_eq!(server.snapshot_version(), 0);
        let out = resolve(server.submit(qs[0].clone()).unwrap());
        assert!((out.outcome.probability.unwrap() - oracle).abs() < 1e-9);
        let stats = server.shutdown();
        assert_eq!(stats.updates_applied, 0);
        assert_eq!(stats.update_failures, 2);
        assert_eq!(stats.lost, 0);
    }

    #[test]
    fn updates_interleave_with_readers_without_losing_queries() {
        let qs = queries();
        let weights = [1.0, 5.0, 9.0, 13.0];
        // Every answer a reader can legally observe is the exact answer
        // of SOME published snapshot — never a torn in-between state.
        let oracles: Vec<Vec<f64>> = weights
            .iter()
            .map(|&w| {
                let e = engine_with_r0(w);
                qs.iter()
                    .map(|q| e.full().probability(q).unwrap())
                    .collect()
            })
            .collect();
        let server = MvdbServer::start(engine(), quick_config());
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for &w in &weights[1..] {
                    let batch = UpdateBatch::new().set_weight("R", vec![Value::str("a0")], w);
                    server.submit_update(&batch).unwrap();
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
            for i in 0..60 {
                let qi = i % qs.len();
                let out = resolve(server.submit(qs[qi].clone()).unwrap());
                assert!(out.answered(), "reader {i} lost during updates");
                let p = out.outcome.probability.unwrap();
                let matched = oracles.iter().any(|o| (p - o[qi]).abs() < 1e-9);
                assert!(matched, "reader {i} saw a torn answer {p}");
            }
            writer.join().unwrap();
        });
        // After the writer finishes, readers converge on the last snapshot.
        assert_eq!(server.snapshot_version(), 3);
        let out = resolve(server.submit(qs[0].clone()).unwrap());
        assert!((out.outcome.probability.unwrap() - oracles[3][0]).abs() < 1e-9);
        let stats = server.shutdown();
        assert_eq!(stats.updates_applied, 3);
        assert_eq!(stats.lost, 0);
    }

    #[test]
    fn arena_compaction_keeps_answers_exact() {
        let engine = engine();
        let qs = queries();
        let oracle: Vec<f64> = qs
            .iter()
            .map(|q| engine.full().probability(q).unwrap())
            .collect();
        // Bounded-exact entry makes every request synthesize into the
        // worker's query arena; a tiny watermark forces compactions
        // between requests, exercising `W`-root registration/rehydration.
        let config = ServeConfig {
            workers: 1,
            degrade_depth: 0,
            shed_depth: usize::MAX,
            compact_watermark: 8,
            ..quick_config()
        };
        let server = MvdbServer::start(Arc::clone(&engine), config);
        for round in 0..10 {
            for (i, q) in qs.iter().enumerate() {
                let out = resolve(server.submit(q.clone()).unwrap());
                assert_eq!(out.outcome.rung, Some(Rung::BoundedExact));
                let p = out.outcome.probability.unwrap();
                assert!(
                    (p - oracle[i]).abs() < 1e-9,
                    "round {round} query {i}: {p} vs {} after compactions",
                    oracle[i]
                );
            }
        }
        let stats = server.shutdown();
        assert!(
            stats.compactions >= 1,
            "the tiny watermark must trigger compactions: {stats:?}"
        );
        assert!(stats.arena_bytes_after <= stats.arena_bytes_before);
        assert_eq!(stats.lost, 0);
    }
}
