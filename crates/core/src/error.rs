//! Error type of the MVDB core.

use std::fmt;
use std::time::Duration;

/// Alias naming the evaluation-facing view of [`CoreError`]: the typed
/// errors a [`Backend`](crate::Backend) returns instead of hanging,
/// aborting, or allocating without bound
/// (`EvalError::{DeadlineExceeded, BudgetExceeded, WorkerPanicked, …}`).
pub type EvalError = CoreError;

/// Errors raised while building, translating or querying an MVDB.
#[derive(Debug)]
pub enum CoreError {
    /// A database-level error.
    Pdb(mv_pdb::PdbError),
    /// A query-level error.
    Query(mv_query::QueryError),
    /// An OBDD-level error.
    Obdd(mv_obdd::ObddError),
    /// An MV-index error.
    Index(mv_index::MvIndexError),
    /// An MLN error.
    Mln(mv_mln::MlnError),
    /// A MarkoView weight annotation could not be interpreted.
    InvalidViewWeight {
        /// Name of the view.
        view: String,
        /// The offending annotation text.
        annotation: String,
    },
    /// A MarkoView produced a negative or NaN weight for one of its tuples.
    InvalidTupleWeight {
        /// Name of the view.
        view: String,
        /// The offending weight.
        weight: f64,
    },
    /// The MVDB is inconsistent: the hard constraints exclude every world
    /// (`P0(¬W) = 0`), so conditional probabilities are undefined.
    InconsistentViews,
    /// The query passed to the engine was not Boolean where a Boolean query
    /// was required.
    NotBoolean(String),
    /// An index-backed backend was invoked with an [`EvalContext`]
    /// (`crate::backend::EvalContext`) that carries no compiled MV-index.
    MissingIndex,
    /// The evaluation's wall-clock deadline passed before an answer was
    /// produced. Degradable: the resilience ladder may still answer the
    /// query on a cheaper rung.
    DeadlineExceeded {
        /// Time spent before the budget tripped.
        elapsed: Duration,
    },
    /// The evaluation's work budget (batch rows, arena nodes, samples)
    /// ran out. Degradable, like [`CoreError::DeadlineExceeded`].
    BudgetExceeded {
        /// Work units charged before the trip.
        steps: u64,
        /// The limit they exceeded.
        limit: u64,
    },
    /// The evaluation was cancelled cooperatively (caller gave up).
    Cancelled,
    /// A worker thread (or an isolated per-query evaluation) panicked; the
    /// panic was caught at the isolation boundary and quarantined to this
    /// error instead of tearing down the batch.
    WorkerPanicked {
        /// The isolation site that caught the panic.
        site: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The serving layer refused to admit the request: the bounded
    /// admission queue is full, or the estimated queue wait already
    /// exceeds the request's deadline so even the cheapest rung could not
    /// answer in time. Explicit backpressure — the caller should back off
    /// for at least `retry_after` and resubmit instead of buffering.
    Rejected {
        /// Suggested back-off before resubmitting.
        retry_after: Duration,
        /// Admission-queue depth observed at rejection time.
        depth: usize,
    },
    /// An [`UpdateBatch`](crate::UpdateBatch) failed validation — e.g. it
    /// targets a deterministic relation, an unknown view, or a row that
    /// does not exist. The whole batch is rejected before any op is
    /// applied, so the engine is unchanged.
    UpdateRejected {
        /// Why the batch was rejected.
        message: String,
    },
}

impl CoreError {
    /// Wraps a panic payload caught at an isolation boundary
    /// (`std::panic::catch_unwind` / a thread-join `Err`) into the typed
    /// [`CoreError::WorkerPanicked`] error.
    pub fn from_panic(site: &'static str, payload: &(dyn std::any::Any + Send)) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        CoreError::WorkerPanicked { site, message }
    }

    /// `true` for errors that mean "this rung of evaluation gave up",
    /// not "the query is unanswerable": deadline/budget trips, caught
    /// panics, and bounded-synthesis refusals. The degradation ladder
    /// escalates past these; semantic errors (unknown relation, arity
    /// mismatch, inconsistent views, …) propagate unchanged because no
    /// cheaper rung can answer them either.
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            CoreError::DeadlineExceeded { .. }
                | CoreError::BudgetExceeded { .. }
                | CoreError::Cancelled
                | CoreError::WorkerPanicked { .. }
                | CoreError::Obdd(mv_obdd::ObddError::NodeBudgetExceeded { .. })
                | CoreError::Obdd(mv_obdd::ObddError::Budget(_))
                | CoreError::Query(mv_query::QueryError::Budget(_))
        )
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Pdb(e) => write!(f, "database error: {e}"),
            CoreError::Query(e) => write!(f, "query error: {e}"),
            CoreError::Obdd(e) => write!(f, "OBDD error: {e}"),
            CoreError::Index(e) => write!(f, "MV-index error: {e}"),
            CoreError::Mln(e) => write!(f, "MLN error: {e}"),
            CoreError::InvalidViewWeight { view, annotation } => write!(
                f,
                "cannot interpret the weight annotation `[{annotation}]` of MarkoView `{view}`: \
                 expected a non-negative constant; use `MarkoView::with_weight_fn` for computed weights"
            ),
            CoreError::InvalidTupleWeight { view, weight } => write!(
                f,
                "MarkoView `{view}` produced the invalid tuple weight {weight}: weights must be in [0, +inf]"
            ),
            CoreError::InconsistentViews => write!(
                f,
                "the MarkoViews are inconsistent: every possible world violates a hard constraint"
            ),
            CoreError::NotBoolean(name) => {
                write!(f, "query `{name}` has head variables; bind them or use `answers`")
            }
            CoreError::MissingIndex => write!(
                f,
                "the MV-index backend needs a compiled index: build the context through \
                 `MvdbEngine` or use an index-free backend"
            ),
            CoreError::DeadlineExceeded { elapsed } => {
                write!(f, "evaluation deadline exceeded after {elapsed:?}")
            }
            CoreError::BudgetExceeded { steps, limit } => {
                write!(f, "evaluation work budget exhausted ({steps} steps, limit {limit})")
            }
            CoreError::Cancelled => write!(f, "evaluation cancelled"),
            CoreError::WorkerPanicked { site, message } => {
                write!(f, "worker panicked at isolation site `{site}`: {message}")
            }
            CoreError::Rejected { retry_after, depth } => write!(
                f,
                "request rejected by admission control (queue depth {depth}); retry after {retry_after:?}"
            ),
            CoreError::UpdateRejected { message } => {
                write!(f, "update batch rejected: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<mv_pdb::PdbError> for CoreError {
    fn from(e: mv_pdb::PdbError) -> Self {
        CoreError::Pdb(e)
    }
}

impl From<mv_query::QueryError> for CoreError {
    fn from(e: mv_query::QueryError) -> Self {
        CoreError::Query(e)
    }
}

impl From<mv_obdd::ObddError> for CoreError {
    fn from(e: mv_obdd::ObddError) -> Self {
        CoreError::Obdd(e)
    }
}

impl From<mv_index::MvIndexError> for CoreError {
    fn from(e: mv_index::MvIndexError) -> Self {
        CoreError::Index(e)
    }
}

impl From<mv_mln::MlnError> for CoreError {
    fn from(e: mv_mln::MlnError) -> Self {
        CoreError::Mln(e)
    }
}

impl From<mv_query::BudgetError> for CoreError {
    fn from(e: mv_query::BudgetError) -> Self {
        match e {
            mv_query::BudgetError::DeadlineExceeded { elapsed } => {
                CoreError::DeadlineExceeded { elapsed }
            }
            mv_query::BudgetError::StepBudgetExceeded { steps, limit } => {
                CoreError::BudgetExceeded { steps, limit }
            }
            mv_query::BudgetError::Cancelled => CoreError::Cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = mv_pdb::PdbError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains('R'));
        let e = CoreError::InvalidViewWeight {
            view: "V1".into(),
            annotation: "count(pid)/2".into(),
        };
        assert!(e.to_string().contains("V1"));
        assert!(CoreError::InconsistentViews
            .to_string()
            .contains("inconsistent"));
    }
}
