//! Batch evaluation sessions: many queries, shared state, optional threads.
//!
//! [`MvdbSession`] (created by [`MvdbEngine::session`]) evaluates a slice of
//! Boolean queries against one compiled engine:
//!
//! * **sequentially** (`threads <= 1`) through a single shared
//!   [`EvalContext`], so every query reuses the same query-side
//!   [`ObddManager`](mv_obdd::ObddManager) shard — nodes, apply-memo entries
//!   and cached probabilities accumulate across the batch;
//! * **in parallel** (`threads >= 2`) with [`std::thread::scope`]: the
//!   immutable engine (translated database + compiled MV-index, whose
//!   manager is behind an `Arc`'d lock) is shared by reference, while each
//!   worker owns a private `EvalContext` — and therefore a private manager
//!   shard — so query-side construction never contends across threads.
//!   Queries are assigned to workers in **stripes** (round-robin: worker `w`
//!   takes queries `w`, `w + workers`, `w + 2·workers`, …) rather than
//!   contiguous chunks, so a run of expensive queries at one end of the
//!   batch — common when callers sort workloads by key or size — is spread
//!   across all workers instead of serialising one of them.
//!
//! Parallel results are **identical** to sequential ones (the same
//! deterministic per-query computation runs either way; only the shard a
//! query's diagram lives in differs, and canonicity makes that
//! unobservable). The agreement suite asserts equality within 1e-9.

use mv_obdd::ManagerStats;
use mv_query::Ucq;

use crate::backend::{Backend, EngineBackend, EvalContext};
use crate::engine::MvdbEngine;
use crate::Result;

/// A batch-evaluation session over a compiled [`MvdbEngine`].
#[derive(Debug)]
pub struct MvdbSession<'e> {
    engine: &'e MvdbEngine,
    threads: usize,
    stats: std::cell::Cell<ManagerStats>,
}

impl<'e> MvdbSession<'e> {
    pub(crate) fn new(engine: &'e MvdbEngine) -> Self {
        MvdbSession {
            engine,
            threads: 1,
            stats: std::cell::Cell::new(ManagerStats::default()),
        }
    }

    /// Sets the number of worker threads (clamped to at least 1). The batch
    /// is striped round-robin over the workers, so neighbouring (often
    /// similarly expensive) queries land on different threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine this session evaluates against.
    pub fn engine(&self) -> &'e MvdbEngine {
        self.engine
    }

    /// Manager counters attributable to the most recent batch alone: the sum
    /// of every worker's (batch-fresh) query-shard stats plus the *delta*
    /// the batch added to the shared index manager — compile-time work and
    /// earlier batches on the same engine are excluded. `peak_nodes` is the
    /// largest single arena touched. Zero before the first batch.
    pub fn last_manager_stats(&self) -> ManagerStats {
        self.stats.get()
    }

    /// Evaluates every query's Boolean probability with the engine's default
    /// backend (the MV-index). Results are positionally aligned with
    /// `queries`.
    pub fn probabilities(&self, queries: &[Ucq]) -> Result<Vec<f64>> {
        self.probabilities_with_backend(
            queries,
            EngineBackend::MvIndex(self.engine.intersect_algorithm()),
        )
    }

    /// Evaluates every query's Boolean probability through an explicit
    /// backend selector.
    pub fn probabilities_with_backend(
        &self,
        queries: &[Ucq],
        selector: EngineBackend,
    ) -> Result<Vec<f64>> {
        let workers = self.threads.min(queries.len()).max(1);
        if workers <= 1 {
            return self.run_sequential(queries, selector);
        }
        self.run_parallel(queries, selector, workers)
    }

    fn run_sequential(&self, queries: &[Ucq], selector: EngineBackend) -> Result<Vec<f64>> {
        let index_before = self.engine.index().manager_stats();
        let backend = selector.instantiate();
        let ctx = self.engine.context();
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            out.push(backend.probability(&q.boolean(), &ctx)?);
        }
        let index_delta = self.engine.index().manager_stats().since(&index_before);
        self.stats.set(ctx.query_manager_stats() + index_delta);
        Ok(out)
    }

    fn run_parallel(
        &self,
        queries: &[Ucq],
        selector: EngineBackend,
        workers: usize,
    ) -> Result<Vec<f64>> {
        let index_before = self.engine.index().manager_stats();
        let mut results: Vec<Option<Result<f64>>> = (0..queries.len()).map(|_| None).collect();
        let mut stats: Vec<ManagerStats> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let engine = self.engine;
            // Striped (round-robin) assignment: worker `w` evaluates queries
            // `w, w + workers, …`, so a contiguous run of heavy queries is
            // spread over all workers instead of serialising one of them.
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        // Per-worker backend and context: the context's lazy
                        // query manager is this worker's private shard.
                        let backend: Box<dyn Backend> = selector.instantiate();
                        let ctx: EvalContext<'_> = engine.context();
                        let stripe: Vec<Result<f64>> = queries
                            .iter()
                            .skip(w)
                            .step_by(workers)
                            .map(|q| backend.probability(&q.boolean(), &ctx))
                            .collect();
                        // Only this worker's shard; the shared index
                        // manager's stats are added once below.
                        (stripe, ctx.query_manager_stats())
                    })
                })
                .collect();
            for (w, handle) in handles.into_iter().enumerate() {
                let (stripe, stat) = handle.join().expect("session worker panicked");
                for (j, value) in stripe.into_iter().enumerate() {
                    results[w + j * workers] = Some(value);
                }
                stats.push(stat);
            }
        });
        let shard_total: ManagerStats = stats.into_iter().sum();
        let index_delta = self.engine.index().manager_stats().since(&index_before);
        self.stats.set(shard_total + index_delta);
        results
            .into_iter()
            .map(|slot| slot.expect("every query slot is filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvdb::{Mvdb, MvdbBuilder};
    use mv_query::parse_ucq;

    fn sample_mvdb() -> Mvdb {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.relation("S", &["x"]).unwrap();
        for (x, (wr, ws)) in [("a", (3.0, 4.0)), ("b", (1.0, 0.5)), ("c", (2.0, 2.0))] {
            b.weighted_tuple("R", &[x], wr).unwrap();
            b.weighted_tuple("S", &[x], ws).unwrap();
        }
        b.marko_view("V(x)[0.5] :- R(x), S(x)").unwrap();
        b.build().unwrap()
    }

    fn workload() -> Vec<Ucq> {
        [
            "Q() :- R(x), S(x)",
            "Q() :- R(x)",
            "Q() :- S(x)",
            "Q() :- R('a')",
            "Q() :- R('b'), S('b')",
            "Q() :- R(x) ; Q() :- S(x)",
            "Q() :- S('c')",
        ]
        .iter()
        .map(|q| parse_ucq(q).unwrap())
        .collect()
    }

    #[test]
    fn parallel_batches_match_sequential_evaluation() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = workload();
        let sequential = engine.session().probabilities(&queries).unwrap();
        // Reference: one-at-a-time evaluation through the plain engine API.
        for (q, p) in queries.iter().zip(&sequential) {
            let reference = engine.probability(q).unwrap();
            assert!((p - reference).abs() < 1e-12);
        }
        for threads in [2, 4, 7, 16] {
            let parallel = engine
                .session()
                .with_threads(threads)
                .probabilities(&queries)
                .unwrap();
            assert_eq!(parallel.len(), sequential.len());
            for (s, p) in sequential.iter().zip(&parallel) {
                assert!((s - p).abs() < 1e-9, "{threads} threads: {p} vs {s}");
            }
        }
    }

    #[test]
    fn sessions_support_every_comparison_backend() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = workload();
        let reference = engine.session().probabilities(&queries).unwrap();
        for selector in EngineBackend::comparison_suite() {
            let batch = engine
                .session()
                .with_threads(3)
                .probabilities_with_backend(&queries, selector)
                .unwrap();
            for (r, p) in reference.iter().zip(&batch) {
                assert!((r - p).abs() < 1e-9, "{selector:?}: {p} vs {r}");
            }
        }
    }

    #[test]
    fn sessions_expose_manager_stats() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = workload();
        let session = engine.session().with_threads(2);
        assert_eq!(session.last_manager_stats(), ManagerStats::default());
        session.probabilities(&queries).unwrap();
        let stats = session.last_manager_stats();
        // Per-batch attribution: the workers' query shards allocated nodes
        // and exercised the unique table; compile-time index work is not
        // counted.
        assert!(stats.nodes_allocated > 0);
        assert!(stats.peak_nodes > 0);
        assert!(stats.unique_hits + stats.unique_misses > 0);
    }

    #[test]
    fn striped_assignment_preserves_positional_alignment() {
        // A workload of queries with pairwise-distinct probabilities: any
        // mix-up between a worker's stripe and the result slots would show
        // up as a permutation. Exercises worker counts that do and do not
        // divide the batch length.
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = workload();
        let reference: Vec<f64> = queries
            .iter()
            .map(|q| engine.probability(q).unwrap())
            .collect();
        let distinct: std::collections::BTreeSet<String> =
            reference.iter().map(|p| format!("{p:.12}")).collect();
        assert!(distinct.len() >= 5, "workload must disambiguate positions");
        for threads in [2, 3, 5, queries.len(), queries.len() + 3] {
            let batch = engine
                .session()
                .with_threads(threads)
                .probabilities(&queries)
                .unwrap();
            for (i, (r, p)) in reference.iter().zip(&batch).enumerate() {
                assert!(
                    (r - p).abs() < 1e-12,
                    "{threads} threads permuted slot {i}: {p} vs {r}"
                );
            }
        }
    }

    #[test]
    fn thread_counts_are_clamped_and_errors_surface() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let session = engine.session().with_threads(0);
        assert_eq!(session.threads(), 1);
        // Queries over unknown relations error out of a batch instead of
        // panicking, sequentially and in parallel.
        let bad = vec![parse_ucq("Q() :- Unknown(x)").unwrap()];
        assert!(session.probabilities(&bad).is_err());
        let parallel_bad: Vec<Ucq> = (0..4)
            .map(|_| parse_ucq("Q() :- Unknown(x)").unwrap())
            .collect();
        assert!(engine
            .session()
            .with_threads(2)
            .probabilities(&parallel_bad)
            .is_err());
    }
}
