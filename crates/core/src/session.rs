//! Batch evaluation sessions: many queries, shared state, optional threads.
//!
//! [`MvdbSession`] (created by [`MvdbEngine::session`]) evaluates a slice of
//! Boolean queries against one compiled engine:
//!
//! * **sequentially** (`threads <= 1`) through a single shared
//!   [`EvalContext`], so every query reuses the same query-side
//!   [`ObddManager`](mv_obdd::ObddManager) shard — nodes, apply-memo entries
//!   and cached probabilities accumulate across the batch;
//! * **in parallel** (`threads >= 2`) with [`std::thread::scope`]: the
//!   immutable engine (translated database + compiled MV-index, whose
//!   manager is behind an `Arc`'d lock) is shared by reference, while each
//!   worker owns a private `EvalContext` — and therefore a private manager
//!   shard — so query-side construction never contends across threads.
//!   Queries are assigned to workers in **stripes** (round-robin: worker `w`
//!   takes queries `w`, `w + workers`, `w + 2·workers`, …) rather than
//!   contiguous chunks, so a run of expensive queries at one end of the
//!   batch — common when callers sort workloads by key or size — is spread
//!   across all workers instead of serialising one of them.
//!
//! Parallel results are **identical** to sequential ones (the same
//! deterministic per-query computation runs either way; only the shard a
//! query's diagram lives in differs, and canonicity makes that
//! unobservable). The agreement suite asserts equality within 1e-9.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mv_obdd::ManagerStats;
use mv_query::approx::{derive_seed, ApproxAccumulator, ApproxAnswer, ApproxConfig};
use mv_query::{ExecStats, PlanStats, Ucq};

use crate::backend::resilient::{QueryFault, QueryOutcome, ResilienceConfig, ResilientBackend};
use crate::backend::{Backend, EngineBackend, EvalContext, MonteCarlo};
use crate::chaos::{self, sites};
use crate::engine::MvdbEngine;
use crate::error::CoreError;
use crate::Result;

/// Query-layer counters of one session batch: the shape of every compiled
/// plan plus the vectorized executor's behaviour (zone-map blocks scanned
/// and skipped, CSR probes, batches). Summed over every worker context, so
/// skipping effectiveness is visible at `threads > 1` too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Shape statistics of the plans compiled by the batch's contexts.
    pub plan: PlanStats,
    /// Vectorized-executor counters accumulated by the batch's contexts.
    pub exec: ExecStats,
}

impl std::ops::Add for QueryStats {
    type Output = QueryStats;
    fn add(self, rhs: QueryStats) -> QueryStats {
        QueryStats {
            plan: self.plan + rhs.plan,
            exec: self.exec + rhs.exec,
        }
    }
}

/// The typed error for a query slot no stripe worker filled. The striping
/// invariant (every index is covered by exactly one worker, and a joined
/// stripe fills all of its slots — on panic, with quarantine errors) makes
/// this unreachable; a supervision bug must still surface as a per-query
/// error, never a batch-wide panic.
fn unfilled_slot() -> CoreError {
    CoreError::WorkerPanicked {
        site: "session_join",
        message: "query slot left unfilled by its stripe worker".to_string(),
    }
}

/// A batch-evaluation session over a compiled [`MvdbEngine`].
#[derive(Debug)]
pub struct MvdbSession<'e> {
    engine: &'e MvdbEngine,
    threads: usize,
    stats: std::cell::Cell<ManagerStats>,
    query_stats: std::cell::Cell<QueryStats>,
}

impl<'e> MvdbSession<'e> {
    pub(crate) fn new(engine: &'e MvdbEngine) -> Self {
        MvdbSession {
            engine,
            threads: 1,
            stats: std::cell::Cell::new(ManagerStats::default()),
            query_stats: std::cell::Cell::new(QueryStats::default()),
        }
    }

    /// Sets the number of worker threads (clamped to at least 1). The batch
    /// is striped round-robin over the workers, so neighbouring (often
    /// similarly expensive) queries land on different threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine this session evaluates against.
    pub fn engine(&self) -> &'e MvdbEngine {
        self.engine
    }

    /// Manager counters attributable to the most recent batch alone: the sum
    /// of every worker's (batch-fresh) query-shard stats plus the *delta*
    /// the batch added to the shared index manager — compile-time work and
    /// earlier batches on the same engine are excluded. `peak_nodes` is the
    /// largest single arena touched. Zero before the first batch.
    pub fn last_manager_stats(&self) -> ManagerStats {
        self.stats.get()
    }

    /// Query-layer counters of the most recent batch: plan shapes plus the
    /// vectorized executor's zone-map skipping and CSR-probe counters,
    /// summed over every worker's context. Zero before the first batch.
    pub fn last_query_stats(&self) -> QueryStats {
        self.query_stats.get()
    }

    /// Evaluates every query's Boolean probability with the engine's default
    /// backend (the MV-index). Results are positionally aligned with
    /// `queries`.
    pub fn probabilities(&self, queries: &[Ucq]) -> Result<Vec<f64>> {
        self.probabilities_with_backend(
            queries,
            EngineBackend::MvIndex(self.engine.intersect_algorithm()),
        )
    }

    /// Evaluates every query's Boolean probability through an explicit
    /// backend selector.
    pub fn probabilities_with_backend(
        &self,
        queries: &[Ucq],
        selector: EngineBackend,
    ) -> Result<Vec<f64>> {
        let workers = self.threads.min(queries.len()).max(1);
        if workers <= 1 {
            return self.run_sequential(queries, selector);
        }
        self.run_parallel(queries, selector, workers)
    }

    fn run_sequential(&self, queries: &[Ucq], selector: EngineBackend) -> Result<Vec<f64>> {
        let index_before = self.engine.index().manager_stats();
        let backend = selector.instantiate();
        let ctx = self.engine.context();
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            out.push(backend.probability(&q.boolean(), &ctx)?);
        }
        let index_delta = self.engine.index().manager_stats().since(&index_before);
        self.stats.set(ctx.query_manager_stats() + index_delta);
        self.query_stats.set(QueryStats {
            plan: ctx.query_plan_stats(),
            exec: ctx.query_exec_stats(),
        });
        Ok(out)
    }

    /// Estimates every query's probability by Monte Carlo sampling,
    /// returning full confidence intervals positionally aligned with
    /// `queries`.
    ///
    /// Each query gets its own decorrelated ChaCha stream derived from
    /// `config.seed` and the query's batch position, so the results are
    /// **bit-identical for every worker-thread count** — parallelism only
    /// re-schedules whole queries (striped, like
    /// [`MvdbSession::probabilities`]); it never splits a query's stream.
    pub fn approx_probabilities(
        &self,
        queries: &[Ucq],
        config: &ApproxConfig,
    ) -> Result<Vec<ApproxAnswer>> {
        let workers = self.threads.min(queries.len()).max(1);
        let estimate_one = |ctx: &EvalContext<'_>, index: usize, q: &Ucq| -> Result<ApproxAnswer> {
            let per_query = ApproxConfig {
                seed: derive_seed(config.seed, index as u64),
                ..*config
            };
            MonteCarlo::new(per_query).approx(&q.boolean(), ctx)
        };
        if workers <= 1 {
            let ctx = self.engine.context();
            return queries
                .iter()
                .enumerate()
                .map(|(i, q)| estimate_one(&ctx, i, q))
                .collect();
        }
        let mut results: Vec<Option<Result<ApproxAnswer>>> =
            (0..queries.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let engine = self.engine;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let ctx = engine.context();
                        queries
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(i, q)| estimate_one(&ctx, i, q))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for (w, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(stripe) => {
                        for (j, value) in stripe.into_iter().enumerate() {
                            results[w + j * workers] = Some(value);
                        }
                    }
                    // A worker-level panic poisons only its own stripe: the
                    // join propagates the outcome as a typed error instead
                    // of aborting the whole batch.
                    Err(payload) => {
                        for i in (w..queries.len()).step_by(workers) {
                            results[i] =
                                Some(Err(CoreError::from_panic("session_join", payload.as_ref())));
                        }
                    }
                }
            }
        });
        results
            .into_iter()
            .map(|slot| slot.unwrap_or_else(|| Err(unfilled_slot())))
            .collect()
    }

    /// Estimates one query's probability with the sample budget **split
    /// across the session's workers**: each worker draws from an
    /// independent ChaCha stream (seeds striped off `config.seed`) and the
    /// partial sums are merged — the weighted average of the per-worker
    /// estimates — before the interval is computed. Deterministic for a
    /// fixed `(seed, threads)` pair.
    ///
    /// Workers early-stop at `target_half_width · √workers` (merging
    /// `k` independent streams shrinks the half-width by about `√k`); the
    /// interval reported here is computed from the *merged* sums, so the
    /// target may be overshot slightly but never trusted blindly.
    pub fn approx_probability(&self, query: &Ucq, config: &ApproxConfig) -> Result<ApproxAnswer> {
        let workers = self.threads.max(1);
        let q = query.boolean();
        // The sampler is compiled once (lineage collection, variable
        // classification, component pruning) and shared by reference: it
        // only borrows the translated database, so worker threads run its
        // tight sampling loop without per-worker recompilation.
        let ctx = self.engine.context();
        let backend = MonteCarlo::new(*config);
        let lin_q = ctx.lineage(&q)?;
        let sampler = backend.sampler(&lin_q, &q, &ctx)?;
        if workers <= 1 {
            return Ok(sampler.estimate(config));
        }
        // Exact split of the hard budget: the first `remainder` workers
        // take one extra sample, so the merged total equals `max_samples`
        // for every (budget, workers) pair.
        let base = config.max_samples / workers as u64;
        let remainder = (config.max_samples % workers as u64) as usize;
        let worker_config = |w: usize| ApproxConfig {
            seed: derive_seed(config.seed, w as u64),
            max_samples: base + u64::from(w < remainder),
            min_samples: (config.min_samples / workers as u64).max(64),
            target_half_width: config.target_half_width * (workers as f64).sqrt(),
            ..*config
        };
        let partials: Result<Vec<ApproxAccumulator>> = std::thread::scope(|scope| {
            let sampler = &sampler;
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || sampler.collect(&worker_config(w))))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|p| CoreError::from_panic("session_split_join", p.as_ref()))
                })
                .collect()
        });
        let partials = partials?;
        let mut merged = ApproxAccumulator::default();
        for partial in &partials {
            merged.merge(partial);
        }
        Ok(sampler.answer_from(&merged, config))
    }

    fn run_parallel(
        &self,
        queries: &[Ucq],
        selector: EngineBackend,
        workers: usize,
    ) -> Result<Vec<f64>> {
        let index_before = self.engine.index().manager_stats();
        let mut results: Vec<Option<Result<f64>>> = (0..queries.len()).map(|_| None).collect();
        let mut stats: Vec<ManagerStats> = Vec::with_capacity(workers);
        let mut query_stats: Vec<QueryStats> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let engine = self.engine;
            // Striped (round-robin) assignment: worker `w` evaluates queries
            // `w, w + workers, …`, so a contiguous run of heavy queries is
            // spread over all workers instead of serialising one of them.
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        // Per-worker backend and context: the context's lazy
                        // query manager is this worker's private shard.
                        let backend: Box<dyn Backend> = selector.instantiate();
                        let ctx: EvalContext<'_> = engine.context();
                        // Per-query panic trap: one pathological query
                        // becomes a typed `WorkerPanicked` error in its own
                        // slot while the rest of the stripe completes.
                        let stripe: Vec<Result<f64>> = queries
                            .iter()
                            .skip(w)
                            .step_by(workers)
                            .map(|q| {
                                catch_unwind(AssertUnwindSafe(|| {
                                    backend.probability(&q.boolean(), &ctx)
                                }))
                                .unwrap_or_else(|p| {
                                    Err(CoreError::from_panic(sites::SESSION_EVAL, p.as_ref()))
                                })
                            })
                            .collect();
                        // Only this worker's shard; the shared index
                        // manager's stats are added once below.
                        let worker_query_stats = QueryStats {
                            plan: ctx.query_plan_stats(),
                            exec: ctx.query_exec_stats(),
                        };
                        (stripe, ctx.query_manager_stats(), worker_query_stats)
                    })
                })
                .collect();
            for (w, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok((stripe, stat, query_stat)) => {
                        for (j, value) in stripe.into_iter().enumerate() {
                            results[w + j * workers] = Some(value);
                        }
                        stats.push(stat);
                        query_stats.push(query_stat);
                    }
                    // Stripe-level quarantine: the panicking worker's
                    // queries surface as typed errors, the other workers'
                    // results (and stats) are kept.
                    Err(payload) => {
                        for i in (w..queries.len()).step_by(workers) {
                            results[i] =
                                Some(Err(CoreError::from_panic("session_join", payload.as_ref())));
                        }
                    }
                }
            }
        });
        let shard_total: ManagerStats = stats.into_iter().sum();
        let index_delta = self.engine.index().manager_stats().since(&index_before);
        self.stats.set(shard_total + index_delta);
        self.query_stats.set(
            query_stats
                .into_iter()
                .fold(QueryStats::default(), |a, b| a + b),
        );
        results
            .into_iter()
            .map(|slot| slot.unwrap_or_else(|| Err(unfilled_slot())))
            .collect()
    }

    /// Evaluates every query through the resilience ladder: each query is
    /// isolated (panics quarantined to its own outcome), degradable
    /// failures escalate exact → bounded-exact → Monte Carlo, and
    /// transient losses are retried with backoff. Never returns an error
    /// and never aborts — the result carries one [`QueryOutcome`] per
    /// query, positionally aligned with `queries`.
    pub fn resilient_probabilities(
        &self,
        queries: &[Ucq],
        config: &ResilienceConfig,
    ) -> Vec<QueryOutcome> {
        let workers = self.threads.min(queries.len()).max(1);
        let index_before = self.engine.index().manager_stats();
        let mut results: Vec<Option<QueryOutcome>> = (0..queries.len()).map(|_| None).collect();
        let mut stats: Vec<ManagerStats> = Vec::with_capacity(workers);
        let mut query_stats: Vec<QueryStats> = Vec::with_capacity(workers);
        if workers <= 1 {
            let ladder = ResilientBackend::new(config.clone());
            let ctx = self.engine.context();
            for (slot, q) in results.iter_mut().zip(queries) {
                *slot = Some(Self::resilient_one(&ladder, q, &ctx));
            }
            stats.push(ctx.query_manager_stats());
            query_stats.push(QueryStats {
                plan: ctx.query_plan_stats(),
                exec: ctx.query_exec_stats(),
            });
        } else {
            std::thread::scope(|scope| {
                let engine = self.engine;
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            let ladder = ResilientBackend::new(config.clone());
                            let ctx = engine.context();
                            let stripe: Vec<QueryOutcome> = queries
                                .iter()
                                .skip(w)
                                .step_by(workers)
                                .map(|q| Self::resilient_one(&ladder, q, &ctx))
                                .collect();
                            let worker_query_stats = QueryStats {
                                plan: ctx.query_plan_stats(),
                                exec: ctx.query_exec_stats(),
                            };
                            (stripe, ctx.query_manager_stats(), worker_query_stats)
                        })
                    })
                    .collect();
                // Safety net for a whole-worker panic (per-query work is
                // already trapped, so this is bookkeeping-bug territory):
                // re-evaluate the lost stripe on a main-thread ladder.
                let mut rescue: Option<(ResilientBackend, EvalContext<'_>)> = None;
                for (w, handle) in handles.into_iter().enumerate() {
                    match handle.join() {
                        Ok((stripe, stat, query_stat)) => {
                            for (j, value) in stripe.into_iter().enumerate() {
                                results[w + j * workers] = Some(value);
                            }
                            stats.push(stat);
                            query_stats.push(query_stat);
                        }
                        Err(_) => {
                            let (ladder, ctx) = rescue.get_or_insert_with(|| {
                                (ResilientBackend::new(config.clone()), engine.context())
                            });
                            for i in (w..queries.len()).step_by(workers) {
                                let mut outcome =
                                    ladder.evaluate_with_retries(&queries[i].boolean(), ctx);
                                outcome.retries = outcome.retries.saturating_add(1);
                                results[i] = Some(outcome);
                            }
                        }
                    }
                }
            });
        }
        let shard_total: ManagerStats = stats.into_iter().sum();
        let index_delta = self.engine.index().manager_stats().since(&index_before);
        self.stats.set(shard_total + index_delta);
        self.query_stats.set(
            query_stats
                .into_iter()
                .fold(QueryStats::default(), |a, b| a + b),
        );
        results
            .into_iter()
            .map(|slot| slot.unwrap_or_else(|| QueryOutcome::poisoned("session_join")))
            .collect()
    }

    /// One isolated resilient evaluation: the `session_eval` chaos site
    /// wraps the whole ladder, so an injected (or genuine) panic above the
    /// rung traps quarantines to a retried ladder pass instead of tearing
    /// down the stripe.
    fn resilient_one(ladder: &ResilientBackend, q: &Ucq, ctx: &EvalContext<'_>) -> QueryOutcome {
        let q = q.boolean();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            chaos::apply(sites::SESSION_EVAL).map(|()| ladder.evaluate(&q, ctx))
        }));
        match caught {
            Ok(Ok(outcome)) if outcome.transient() => {
                // The ladder lost the query to panics; give it the oracle
                // retry treatment before conceding.
                let mut outcome = ladder.evaluate_with_retries(&q, ctx);
                outcome.retries = outcome.retries.saturating_add(1);
                outcome
            }
            Ok(Ok(outcome)) => outcome,
            // Injected deadline/budget pressure at the session site: the
            // evaluation "timed out" above the ladder — run a retried
            // ladder pass and keep the fault on the record.
            Ok(Err(e)) => {
                let mut outcome = ladder.evaluate_with_retries(&q, ctx);
                outcome.fault.get_or_insert_with(|| QueryFault::of(&e));
                outcome
            }
            Err(payload) => {
                let e = CoreError::from_panic(sites::SESSION_EVAL, payload.as_ref());
                let mut outcome = ladder.evaluate_with_retries(&q, ctx);
                outcome.retries = outcome.retries.saturating_add(1);
                outcome.fault.get_or_insert_with(|| QueryFault::of(&e));
                outcome
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvdb::{Mvdb, MvdbBuilder};
    use mv_query::parse_ucq;

    fn sample_mvdb() -> Mvdb {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.relation("S", &["x"]).unwrap();
        for (x, (wr, ws)) in [("a", (3.0, 4.0)), ("b", (1.0, 0.5)), ("c", (2.0, 2.0))] {
            b.weighted_tuple("R", &[x], wr).unwrap();
            b.weighted_tuple("S", &[x], ws).unwrap();
        }
        b.marko_view("V(x)[0.5] :- R(x), S(x)").unwrap();
        b.build().unwrap()
    }

    fn workload() -> Vec<Ucq> {
        [
            "Q() :- R(x), S(x)",
            "Q() :- R(x)",
            "Q() :- S(x)",
            "Q() :- R('a')",
            "Q() :- R('b'), S('b')",
            "Q() :- R(x) ; Q() :- S(x)",
            "Q() :- S('c')",
        ]
        .iter()
        .map(|q| parse_ucq(q).unwrap())
        .collect()
    }

    #[test]
    fn parallel_batches_match_sequential_evaluation() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = workload();
        let sequential = engine.session().probabilities(&queries).unwrap();
        // Reference: one-at-a-time evaluation through the plain engine API.
        for (q, p) in queries.iter().zip(&sequential) {
            let reference = engine.probability(q).unwrap();
            assert!((p - reference).abs() < 1e-12);
        }
        for threads in [2, 4, 7, 16] {
            let parallel = engine
                .session()
                .with_threads(threads)
                .probabilities(&queries)
                .unwrap();
            assert_eq!(parallel.len(), sequential.len());
            for (s, p) in sequential.iter().zip(&parallel) {
                assert!((s - p).abs() < 1e-9, "{threads} threads: {p} vs {s}");
            }
        }
    }

    #[test]
    fn sessions_support_every_comparison_backend() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = workload();
        let reference = engine.session().probabilities(&queries).unwrap();
        for selector in EngineBackend::comparison_suite() {
            let batch = engine
                .session()
                .with_threads(3)
                .probabilities_with_backend(&queries, selector)
                .unwrap();
            for (r, p) in reference.iter().zip(&batch) {
                assert!((r - p).abs() < 1e-9, "{selector:?}: {p} vs {r}");
            }
        }
    }

    #[test]
    fn sessions_expose_manager_stats() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = workload();
        let session = engine.session().with_threads(2);
        assert_eq!(session.last_manager_stats(), ManagerStats::default());
        session.probabilities(&queries).unwrap();
        let stats = session.last_manager_stats();
        // Per-batch attribution: the workers' query shards allocated nodes
        // and exercised the unique table; compile-time index work is not
        // counted.
        assert!(stats.nodes_allocated > 0);
        assert!(stats.peak_nodes > 0);
        assert!(stats.unique_hits + stats.unique_misses > 0);
    }

    #[test]
    fn sessions_expose_query_stats_at_any_thread_count() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = workload();
        for threads in [1, 2, 4] {
            let session = engine.session().with_threads(threads);
            assert_eq!(session.last_query_stats(), QueryStats::default());
            session.probabilities(&queries).unwrap();
            let stats = session.last_query_stats();
            // Every worker compiled plans and drove the vectorized executor:
            // the workload's joins probe CSR indexes and its scans touch
            // zone-map blocks.
            assert!(stats.plan.disjuncts > 0, "{threads} threads");
            assert!(stats.plan.steps > 0, "{threads} threads");
            assert!(stats.exec.csr_probe_steps > 0, "{threads} threads");
            assert!(stats.exec.blocks_scanned > 0, "{threads} threads");
            assert!(stats.exec.batches > 0, "{threads} threads");
        }
    }

    #[test]
    fn striped_assignment_preserves_positional_alignment() {
        // A workload of queries with pairwise-distinct probabilities: any
        // mix-up between a worker's stripe and the result slots would show
        // up as a permutation. Exercises worker counts that do and do not
        // divide the batch length.
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = workload();
        let reference: Vec<f64> = queries
            .iter()
            .map(|q| engine.probability(q).unwrap())
            .collect();
        let distinct: std::collections::BTreeSet<String> =
            reference.iter().map(|p| format!("{p:.12}")).collect();
        assert!(distinct.len() >= 5, "workload must disambiguate positions");
        for threads in [2, 3, 5, queries.len(), queries.len() + 3] {
            let batch = engine
                .session()
                .with_threads(threads)
                .probabilities(&queries)
                .unwrap();
            for (i, (r, p)) in reference.iter().zip(&batch).enumerate() {
                assert!(
                    (r - p).abs() < 1e-12,
                    "{threads} threads permuted slot {i}: {p} vs {r}"
                );
            }
        }
    }

    #[test]
    fn approx_batches_are_bit_identical_across_thread_counts() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = workload();
        let config = ApproxConfig {
            seed: 42,
            target_half_width: 0.0,
            max_samples: 4_096,
            ..ApproxConfig::default()
        };
        let sequential = engine
            .session()
            .approx_probabilities(&queries, &config)
            .unwrap();
        // Every query stream is derived from the seed and batch position,
        // so re-scheduling across workers cannot change a single bit.
        for threads in [2, 3, 16] {
            let parallel = engine
                .session()
                .with_threads(threads)
                .approx_probabilities(&queries, &config)
                .unwrap();
            for (s, p) in sequential.iter().zip(&parallel) {
                assert_eq!(s.estimate.to_bits(), p.estimate.to_bits());
                assert_eq!(s.half_width.to_bits(), p.half_width.to_bits());
                assert_eq!(s.samples, p.samples);
            }
        }
        // And the intervals actually cover the exact probabilities.
        for (q, answer) in queries.iter().zip(&sequential) {
            let exact = engine.probability(q).unwrap();
            assert!(
                answer.contains(exact),
                "{q}: CI [{}, {}] misses exact {exact}",
                answer.lower(),
                answer.upper()
            );
        }
    }

    #[test]
    fn split_budget_estimation_merges_worker_streams() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let q = parse_ucq("Q() :- R(x), S(x)").unwrap();
        let exact = engine.probability(&q).unwrap();
        // A budget that does not divide by the worker count: the split must
        // still land exactly on the hard budget.
        let config = ApproxConfig {
            seed: 7,
            target_half_width: 0.0,
            max_samples: 8_191,
            ..ApproxConfig::default()
        };
        let session = engine.session().with_threads(4);
        let merged = session.approx_probability(&q, &config).unwrap();
        // The full budget is split over the workers.
        assert_eq!(merged.samples, 8_191);
        assert!(merged.contains(exact));
        // Deterministic for a fixed (seed, threads) pair.
        let again = session.approx_probability(&q, &config).unwrap();
        assert_eq!(merged.estimate.to_bits(), again.estimate.to_bits());
        // Single-threaded sessions take the plain sequential path.
        let solo = engine.session().approx_probability(&q, &config).unwrap();
        assert_eq!(solo.samples, 8_191);
        assert!(solo.contains(exact));
    }

    #[test]
    fn thread_counts_are_clamped_and_errors_surface() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let session = engine.session().with_threads(0);
        assert_eq!(session.threads(), 1);
        // Queries over unknown relations error out of a batch instead of
        // panicking, sequentially and in parallel.
        let bad = vec![parse_ucq("Q() :- Unknown(x)").unwrap()];
        assert!(session.probabilities(&bad).is_err());
        let parallel_bad: Vec<Ucq> = (0..4)
            .map(|_| parse_ucq("Q() :- Unknown(x)").unwrap())
            .collect();
        assert!(engine
            .session()
            .with_threads(2)
            .probabilities(&parallel_bad)
            .is_err());
    }

    #[test]
    fn resilient_sessions_match_the_exact_path_without_chaos() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = workload();
        let reference: Vec<f64> = queries
            .iter()
            .map(|q| engine.probability(q).unwrap())
            .collect();
        for threads in [1, 3] {
            let session = engine.session().with_threads(threads);
            let outcomes = session.resilient_probabilities(&queries, &ResilienceConfig::default());
            assert_eq!(outcomes.len(), queries.len());
            for (i, (o, r)) in outcomes.iter().zip(&reference).enumerate() {
                assert!(o.answered(), "{threads} threads, slot {i}: {:?}", o.fault);
                assert!(!o.degraded(), "{threads} threads, slot {i}: {:?}", o.rung);
                assert_eq!(o.retries, 0);
                let p = o.probability.unwrap();
                assert!(
                    (p - r).abs() < 1e-12,
                    "{threads} threads, slot {i}: {p} vs {r}"
                );
            }
        }
    }

    #[test]
    fn resilient_sessions_answer_every_query_under_chaos() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = workload();
        let reference: Vec<f64> = queries
            .iter()
            .map(|q| engine.probability(q).unwrap())
            .collect();
        let config = ResilienceConfig::default();
        for site in [
            crate::chaos::sites::SESSION_EVAL,
            crate::chaos::sites::EXACT_RUNG,
            crate::chaos::sites::BOUNDED_RUNG,
        ] {
            for fault in [crate::chaos::Fault::Panic, crate::chaos::Fault::Deadline] {
                let guard = crate::chaos::install(
                    crate::chaos::ChaosConfig::new(99).rule(site, fault, 0.5),
                );
                for threads in [1, 4] {
                    let session = engine.session().with_threads(threads);
                    let outcomes = session.resilient_probabilities(&queries, &config);
                    for (i, (o, r)) in outcomes.iter().zip(&reference).enumerate() {
                        assert!(
                            o.answered(),
                            "{site}/{fault:?}, {threads} threads, slot {i}: {:?}",
                            o.fault
                        );
                        let p = o.probability.unwrap();
                        let tol = if o.degraded() {
                            o.epsilon.map_or(1e-9, |e| 4.0 * e + 0.02)
                        } else {
                            1e-9
                        };
                        assert!(
                            (p - r).abs() < tol,
                            "{site}/{fault:?}, {threads} threads, slot {i}: {p} vs {r}"
                        );
                    }
                }
                drop(guard);
            }
        }
    }

    #[test]
    fn resilient_sessions_quarantine_semantic_faults_per_query() {
        let mvdb = sample_mvdb();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let queries = vec![
            parse_ucq("Q() :- Unknown(x)").unwrap(),
            parse_ucq("Q() :- R(x)").unwrap(),
        ];
        let outcomes = engine
            .session()
            .resilient_probabilities(&queries, &ResilienceConfig::default());
        assert!(!outcomes[0].answered());
        assert_eq!(
            outcomes[0].fault.as_ref().map(|f| f.kind),
            Some(crate::FaultKind::Semantic)
        );
        assert!(outcomes[1].answered());
        let reference = engine.probability(&queries[1]).unwrap();
        assert!((outcomes[1].probability.unwrap() - reference).abs() < 1e-12);
    }
}
