//! MarkoView definitions (Definition 3).
//!
//! A MarkoView is a rule `V(x̄)[wexpr] :- Q` where `Q` is a UCQ over the
//! probabilistic and deterministic tables and `wexpr` assigns a non-negative
//! weight to every output tuple. A weight `< 1` declares a negative
//! correlation between the contributing tuples, `> 1` a positive one, `= 1`
//! independence, and `= 0` a hard (denial) constraint.

use std::fmt;
use std::sync::Arc;

use mv_pdb::Row;
use mv_query::parser::parse_rule_with_annotation;
use mv_query::Ucq;

use crate::error::CoreError;
use crate::Result;

/// The weight expression of a MarkoView.
#[derive(Clone)]
pub enum WeightExpr {
    /// The same constant weight for every output tuple.
    Constant(f64),
    /// A per-output-tuple weight function (the parameterised weights of
    /// Figure 1, e.g. `count(pid)/2`, computed by the caller against the
    /// deterministic data). The function receives the view's output tuple.
    PerTuple(Arc<dyn Fn(&Row) -> f64 + Send + Sync>),
}

impl fmt::Debug for WeightExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightExpr::Constant(w) => write!(f, "Constant({w})"),
            WeightExpr::PerTuple(_) => write!(f, "PerTuple(<fn>)"),
        }
    }
}

impl WeightExpr {
    /// Evaluates the weight of one output tuple.
    pub fn weight_of(&self, row: &Row) -> f64 {
        match self {
            WeightExpr::Constant(w) => *w,
            WeightExpr::PerTuple(f) => f(row),
        }
    }
}

/// A MarkoView: a weighted view over the probabilistic tables.
#[derive(Debug, Clone)]
pub struct MarkoView {
    /// The view name (`V1`, `V2`, … in Figure 1).
    pub name: String,
    /// The view query; its head variables are the view's output attributes.
    pub query: Ucq,
    /// The weight expression.
    pub weight: WeightExpr,
}

impl MarkoView {
    /// Creates a view with a constant weight.
    pub fn new(name: impl Into<String>, query: Ucq, weight: f64) -> Result<Self> {
        let name = name.into();
        if weight.is_nan() || weight < 0.0 {
            return Err(CoreError::InvalidTupleWeight { view: name, weight });
        }
        Ok(MarkoView {
            name,
            query,
            weight: WeightExpr::Constant(weight),
        })
    }

    /// Creates a view whose weight is computed per output tuple.
    pub fn with_weight_fn(
        name: impl Into<String>,
        query: Ucq,
        weight: impl Fn(&Row) -> f64 + Send + Sync + 'static,
    ) -> Self {
        MarkoView {
            name: name.into(),
            query,
            weight: WeightExpr::PerTuple(Arc::new(weight)),
        }
    }

    /// Parses the textual form `V(x̄)[w] :- body`, where `w` must be a
    /// non-negative constant (use [`MarkoView::with_weight_fn`] for computed
    /// weights). The keyword `inf` denotes a hard requirement.
    pub fn parse(text: &str) -> Result<Self> {
        let (cq, annotation) = parse_rule_with_annotation(text)?;
        let name = cq.name.clone();
        let annotation = annotation.ok_or_else(|| CoreError::InvalidViewWeight {
            view: name.clone(),
            annotation: "<missing>".into(),
        })?;
        let weight =
            parse_weight_constant(&annotation).ok_or_else(|| CoreError::InvalidViewWeight {
                view: name.clone(),
                annotation: annotation.clone(),
            })?;
        MarkoView::new(name, Ucq::from_cq(cq), weight)
    }

    /// Replaces the view's weight expression with a constant — the MLN
    /// weight-change entry point of the update path. Rejects NaN and
    /// negative weights, like [`MarkoView::new`].
    pub fn set_constant_weight(&mut self, weight: f64) -> Result<()> {
        if weight.is_nan() || weight < 0.0 {
            return Err(CoreError::InvalidTupleWeight {
                view: self.name.clone(),
                weight,
            });
        }
        self.weight = WeightExpr::Constant(weight);
        Ok(())
    }

    /// The name of the translated `NV` relation of Definition 5.
    pub fn nv_relation_name(&self) -> String {
        format!("NV_{}", self.name)
    }

    /// The arity of the view's output.
    pub fn arity(&self) -> usize {
        self.query.head_arity()
    }

    /// `true` when every output tuple is a denial constraint (constant
    /// weight `0`).
    pub fn is_denial(&self) -> bool {
        matches!(self.weight, WeightExpr::Constant(w) if w == 0.0)
    }
}

/// Parses a simple constant weight annotation: a float literal, `inf`, or a
/// ratio `a/b` of float literals.
fn parse_weight_constant(text: &str) -> Option<f64> {
    let text = text.trim();
    if text.eq_ignore_ascii_case("inf") {
        return Some(f64::INFINITY);
    }
    if let Ok(w) = text.parse::<f64>() {
        return Some(w);
    }
    if let Some((num, den)) = text.split_once('/') {
        let num = num.trim().parse::<f64>().ok()?;
        let den = den.trim().parse::<f64>().ok()?;
        if den != 0.0 {
            return Some(num / den);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_pdb::Value;

    #[test]
    fn parse_constant_weight_views() {
        let v = MarkoView::parse("V(x)[0.5] :- R(x), S(x)").unwrap();
        assert_eq!(v.name, "V");
        assert_eq!(v.arity(), 1);
        assert!(!v.is_denial());
        assert_eq!(v.weight.weight_of(&vec![Value::str("a")]), 0.5);
        assert_eq!(v.nv_relation_name(), "NV_V");
    }

    #[test]
    fn parse_denial_views_and_ratios() {
        let v = MarkoView::parse("V2(x, y, z)[0] :- Advisor(x, y), Advisor(x, z), y <> z").unwrap();
        assert!(v.is_denial());
        let v = MarkoView::parse("V1(x, y)[3/2] :- Advisor(x, y)").unwrap();
        assert_eq!(v.weight.weight_of(&vec![]), 1.5);
        let v = MarkoView::parse("V3(x)[inf] :- R(x)").unwrap();
        assert!(v.weight.weight_of(&vec![]).is_infinite());
    }

    #[test]
    fn computed_weight_annotations_are_rejected_with_guidance() {
        let err =
            MarkoView::parse("V1(a, b)[count(pid)/2] :- Advisor(a, b), Wrote(a, p)").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("V1"));
        assert!(msg.contains("with_weight_fn"));
    }

    #[test]
    fn missing_annotations_are_rejected() {
        assert!(MarkoView::parse("V(x) :- R(x)").is_err());
    }

    #[test]
    fn negative_constant_weights_are_rejected() {
        let q = mv_query::parse_ucq("V(x) :- R(x)").unwrap();
        assert!(MarkoView::new("V", q, -1.0).is_err());
    }

    #[test]
    fn per_tuple_weight_functions_receive_the_output_row() {
        let q = mv_query::parse_ucq("V(x) :- R(x)").unwrap();
        let v =
            MarkoView::with_weight_fn(
                "V",
                q,
                |row| {
                    if row[0] == Value::str("a") {
                        2.0
                    } else {
                        0.5
                    }
                },
            );
        assert_eq!(v.weight.weight_of(&vec![Value::str("a")]), 2.0);
        assert_eq!(v.weight.weight_of(&vec![Value::str("b")]), 0.5);
        assert!(format!("{:?}", v.weight).contains("PerTuple"));
    }
}
