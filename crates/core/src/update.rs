//! Live updates under snapshot semantics.
//!
//! An [`UpdateBatch`] is an ordered list of [`UpdateOp`]s — weighted-tuple
//! inserts, deletes and weight changes, plus MarkoView (MLN) weight
//! changes — applied atomically to a compiled engine by
//! [`MvdbEngine::apply`](crate::MvdbEngine::apply) or
//! [`ShardedEngine::apply`](crate::ShardedEngine::apply). The engine is
//! mutated *in place*; snapshot semantics come from cloning the engine
//! first (cloning is cheap: the deterministic store is copy-on-write at
//! relation granularity and OBDD arenas are shared) and publishing the
//! mutated clone, which is what
//! [`MvdbServer::submit_update`](crate::MvdbServer::submit_update) does —
//! readers pinned to the old snapshot drain undisturbed.
//!
//! Every batch is classified before anything is touched
//! ([`classify`]), so validation errors (unknown relation or view, arity
//! mismatch, invalid weight, deterministic target) reject the whole batch
//! without applying any of it:
//!
//! * **Weight-only** — every op changes only weights of *existing* possible
//!   tuples (a delete is a weight-0 tombstone; a view weight change whose
//!   old and new constants are both in `(0, ∞) \ {1}` rescales the view's
//!   `NV` tuples by `(1 − w)/w`). The translation, the tuple ids, the OBDD
//!   structure and every derived index survive: the engine bumps the
//!   arena's weight epoch and re-annotates the compiled diagrams
//!   ([`MvIndex::reweight`](mv_index::MvIndex::reweight)) — no
//!   re-translation, no re-synthesis.
//! * **Structural** — some op changes the possible-tuple set (a new row, or
//!   a view weight crossing `0`, `1` or `∞`, which changes the translated
//!   `NV` tuple set or schema). The store is re-translated and the index
//!   recompiled; the deterministic [`Database`](mv_pdb::Database) stays
//!   append-only, so row indices — and content-keyed identities — carry
//!   over to the new version.

use mv_pdb::{Row, TupleId, Weight};

use crate::error::CoreError;
use crate::mvdb::Mvdb;
use crate::translate::TranslatedIndb;
use crate::Result;

/// One update operation, identifying tuples by content (relation name plus
/// row) — tuple ids are snapshot-relative and do not survive structural
/// updates, rows do.
#[derive(Debug, Clone)]
pub enum UpdateOp {
    /// Insert a possible tuple with the given weight (odds, in `[0, +inf]`)
    /// into a probabilistic relation. Inserting an existing row updates its
    /// weight instead (an upsert).
    InsertTuple {
        /// Target probabilistic relation.
        relation: String,
        /// The row of values.
        row: Row,
        /// The tuple's weight (odds).
        weight: f64,
    },
    /// Delete a possible tuple: a weight-0 tombstone, so the store stays
    /// append-only and old snapshots keep their rows. Deleting an absent
    /// row is a no-op.
    DeleteTuple {
        /// Target probabilistic relation.
        relation: String,
        /// The row of values.
        row: Row,
    },
    /// Change the weight of an existing possible tuple. Unlike
    /// [`UpdateOp::InsertTuple`] the row must already exist.
    SetTupleWeight {
        /// Target probabilistic relation.
        relation: String,
        /// The row of values.
        row: Row,
        /// The new weight (odds, in `[0, +inf]`).
        weight: f64,
    },
    /// Change a MarkoView's weight to a new constant (an MLN weight
    /// change). Replaces per-tuple weight functions as well.
    SetViewWeight {
        /// Name of the view.
        view: String,
        /// The new constant weight.
        weight: f64,
    },
}

/// An ordered, atomically-applied batch of [`UpdateOp`]s.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Appends an insert (upsert) of a weighted tuple.
    pub fn insert(mut self, relation: impl Into<String>, row: Row, weight: f64) -> Self {
        self.ops.push(UpdateOp::InsertTuple {
            relation: relation.into(),
            row,
            weight,
        });
        self
    }

    /// Appends a tombstone delete.
    pub fn delete(mut self, relation: impl Into<String>, row: Row) -> Self {
        self.ops.push(UpdateOp::DeleteTuple {
            relation: relation.into(),
            row,
        });
        self
    }

    /// Appends a tuple weight change.
    pub fn set_weight(mut self, relation: impl Into<String>, row: Row, weight: f64) -> Self {
        self.ops.push(UpdateOp::SetTupleWeight {
            relation: relation.into(),
            row,
            weight,
        });
        self
    }

    /// Appends a view (MLN) weight change.
    pub fn set_view_weight(mut self, view: impl Into<String>, weight: f64) -> Self {
        self.ops.push(UpdateOp::SetViewWeight {
            view: view.into(),
            weight,
        });
        self
    }

    /// Appends an already-built op.
    pub fn push(&mut self, op: UpdateOp) {
        self.ops.push(op);
    }

    /// The operations, in application order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// `true` when the batch carries no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }
}

/// How a batch was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Every op was a no-op (empty batch, deletes of absent rows).
    NoOp,
    /// Weights changed in place; translation, tuple ids and compiled
    /// diagrams survived (the `bump_weight_epoch` fast path).
    WeightOnly,
    /// The possible-tuple set changed; the store was re-translated and the
    /// index recompiled.
    Structural,
}

/// What an applied batch did.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// Which path the batch rode.
    pub kind: UpdateKind,
    /// The store version stamp after the update (see
    /// [`Database::version`](mv_pdb::Database::version)). Weight-only
    /// updates keep the stamp — version-keyed structural caches stay warm.
    pub version: u64,
    /// Possible tuples newly inserted.
    pub tuples_inserted: usize,
    /// Tuple weights changed (tombstone deletes included).
    pub weights_changed: usize,
    /// View weights changed.
    pub views_changed: usize,
    /// Shards rebuilt by a sharded apply (0 for unsharded engines).
    pub shards_rebuilt: usize,
    /// Shards that kept their sub-store, manager and compiled diagrams.
    pub shards_reused: usize,
}

/// Validates a batch against the current MVDB and translated store and
/// classifies it, *before* anything is mutated — a batch that fails here
/// leaves the engine untouched.
pub(crate) fn classify(
    mvdb: &Mvdb,
    translated: &TranslatedIndb,
    batch: &UpdateBatch,
) -> Result<UpdateKind> {
    let base = mvdb.base();
    let mut weight_only_ops = 0usize;
    let mut structural = false;
    for op in batch.ops() {
        match op {
            UpdateOp::InsertTuple {
                relation,
                row,
                weight,
            }
            | UpdateOp::SetTupleWeight {
                relation,
                row,
                weight,
            } => {
                let rel = check_tuple_target(mvdb, relation, row)?;
                if weight.is_nan() || *weight < 0.0 {
                    return Err(CoreError::Pdb(mv_pdb::PdbError::InvalidWeight(*weight)));
                }
                match base.tuple_id_by_values(rel, row) {
                    Some(_) => weight_only_ops += 1,
                    None if matches!(op, UpdateOp::InsertTuple { .. }) => structural = true,
                    None => {
                        return Err(CoreError::UpdateRejected {
                            message: format!(
                                "SetTupleWeight targets a row absent from `{relation}`; \
                                 use InsertTuple to create it"
                            ),
                        })
                    }
                }
            }
            UpdateOp::DeleteTuple { relation, row } => {
                let rel = check_tuple_target(mvdb, relation, row)?;
                if base.tuple_id_by_values(rel, row).is_some() {
                    weight_only_ops += 1;
                }
                // Deleting an absent row is a no-op.
            }
            UpdateOp::SetViewWeight { view, weight } => {
                let i = view_index(mvdb, view)?;
                if weight.is_nan() || *weight < 0.0 {
                    return Err(CoreError::InvalidTupleWeight {
                        view: view.clone(),
                        weight: *weight,
                    });
                }
                // The `(1 − w)/w` rescale keeps the translated NV tuple set
                // only while neither endpoint crosses 0 (denial: no NV
                // relation), 1 (zero-weight NV tuples are skipped at
                // translation) or ∞; everything else re-translates.
                let rescalable = |w: f64| w.is_finite() && w > 0.0 && w != 1.0;
                match &mvdb.views()[i].weight {
                    crate::view::WeightExpr::Constant(old)
                        if rescalable(*old) && rescalable(*weight) =>
                    {
                        weight_only_ops += 1
                    }
                    _ => structural = true,
                }
            }
        }
    }
    let _ = translated; // reserved for future structural checks against the store
    Ok(if structural {
        UpdateKind::Structural
    } else if weight_only_ops > 0 {
        UpdateKind::WeightOnly
    } else {
        UpdateKind::NoOp
    })
}

/// Resolves and validates the target relation of a tuple op.
fn check_tuple_target(mvdb: &Mvdb, relation: &str, row: &Row) -> Result<mv_pdb::RelId> {
    let base = mvdb.base();
    let rel = base.schema().require(relation)?;
    if base.is_deterministic(rel) {
        return Err(CoreError::UpdateRejected {
            message: format!(
                "relation `{relation}` is deterministic; only probabilistic tuples can be updated"
            ),
        });
    }
    let arity = base.schema().relation(rel).arity();
    if row.len() != arity {
        return Err(CoreError::Pdb(mv_pdb::PdbError::ArityMismatch {
            relation: relation.to_string(),
            expected: arity,
            actual: row.len(),
        }));
    }
    Ok(rel)
}

/// The index of a view by name.
pub(crate) fn view_index(mvdb: &Mvdb, view: &str) -> Result<usize> {
    mvdb.views()
        .iter()
        .position(|v| v.name == view)
        .ok_or_else(|| CoreError::UpdateRejected {
            message: format!("unknown MarkoView `{view}`"),
        })
}

/// Applies a (pre-validated) batch to the source MVDB: base-tuple upserts,
/// tombstones and view weight changes. Returns
/// `(tuples_inserted, weights_changed, views_changed)`.
pub(crate) fn apply_to_mvdb(mvdb: &mut Mvdb, batch: &UpdateBatch) -> Result<(usize, usize, usize)> {
    let mut inserted = 0usize;
    let mut weights = 0usize;
    let mut views = 0usize;
    for op in batch.ops() {
        match op {
            UpdateOp::InsertTuple {
                relation,
                row,
                weight,
            }
            | UpdateOp::SetTupleWeight {
                relation,
                row,
                weight,
            } => {
                let rel = mvdb.base().schema().require(relation)?;
                let (_, fresh) =
                    mvdb.base_mut()
                        .upsert_weighted(rel, row.clone(), Weight::new(*weight))?;
                if fresh {
                    inserted += 1;
                } else {
                    weights += 1;
                }
            }
            UpdateOp::DeleteTuple { relation, row } => {
                let rel = mvdb.base().schema().require(relation)?;
                if let Some(id) = mvdb.base().tuple_id_by_values(rel, row) {
                    mvdb.base_mut().set_weight(id, Weight::ZERO);
                    weights += 1;
                }
            }
            UpdateOp::SetViewWeight { view, weight } => {
                let i = view_index(mvdb, view)?;
                mvdb.views_mut()[i].set_constant_weight(*weight)?;
                views += 1;
            }
        }
    }
    Ok((inserted, weights, views))
}

/// The ids of the translated `NV` tuples of one view, in the translated
/// store — the tuples a weight-only view change rescales.
pub(crate) fn nv_tuple_ids(translated: &TranslatedIndb, view_index: usize) -> Result<Vec<TupleId>> {
    let name = translated.nv_relation(view_index);
    let rel = translated.indb().schema().require(name)?;
    Ok(translated
        .indb()
        .tuple_id_column(rel)
        .iter()
        .filter(|&&raw| raw != mv_pdb::InDb::NO_TUPLE_ID)
        .map(|&raw| TupleId(raw))
        .collect())
}
