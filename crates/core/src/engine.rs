//! End-to-end query evaluation on MVDBs.
//!
//! [`MvdbEngine::compile`] performs the offline phase: it translates the MVDB
//! into a tuple-independent database (Definition 5) and compiles the helper
//! query `W` into an MV-index (Section 4). Online, [`MvdbEngine::probability`]
//! evaluates a Boolean query `Q` through Theorem 1,
//!
//! ```text
//! P(Q) = (P0(Q ∨ W) − P0(W)) / (1 − P0(W)) = P0(Q ∧ ¬W) / P0(¬W)
//! ```
//!
//! computing `P0(Q ∧ ¬W)` by intersecting the (small) query OBDD with the
//! compiled index. [`MvdbEngine::answers`] does the same for every answer of
//! a non-Boolean query.
//!
//! All evaluation dispatches through the [`Backend`] trait of
//! [`crate::backend`]: the engine's default strategy is the MV-index, and
//! any other implementation — per-query OBDD construction, Shannon
//! expansion, safe plans, brute-force enumeration, or a user-supplied one —
//! can be swapped in per call via [`MvdbEngine::probability_with`] or the
//! [`EngineBackend`] selector.

use mv_index::{IntersectAlgorithm, MvIndex};
use mv_pdb::{Row, Weight};
use mv_query::Ucq;

use crate::backend::{
    ApproxAnswer, ApproxConfig, Backend, EvalContext, MonteCarlo, MvIndexBackend,
};
use crate::error::CoreError;
use crate::mvdb::Mvdb;
use crate::translate::TranslatedIndb;
use crate::update::{self, UpdateBatch, UpdateKind, UpdateOp, UpdateOutcome};
use crate::Result;

pub use crate::backend::EngineBackend;

/// A compiled MVDB ready for query answering.
///
/// The engine retains the source [`Mvdb`] so it can be mutated in place by
/// [`MvdbEngine::apply`]; cloning an engine is cheap (copy-on-write stores,
/// shared OBDD arenas) and yields an independent snapshot.
#[derive(Debug, Clone)]
pub struct MvdbEngine {
    mvdb: Mvdb,
    translated: TranslatedIndb,
    index: MvIndex,
    algorithm: IntersectAlgorithm,
}

impl MvdbEngine {
    /// Translates the MVDB and compiles its MV-index, using the
    /// cache-conscious intersection by default.
    pub fn compile(mvdb: &Mvdb) -> Result<Self> {
        Self::compile_with(mvdb, IntersectAlgorithm::CcMvIntersect)
    }

    /// Like [`MvdbEngine::compile`] with an explicit intersection algorithm.
    pub fn compile_with(mvdb: &Mvdb, algorithm: IntersectAlgorithm) -> Result<Self> {
        let translated = TranslatedIndb::new(mvdb)?;
        let index = match translated.w() {
            Some(w) => MvIndex::compile(translated.indb(), w)?,
            None => MvIndex::empty(translated.indb()),
        };
        if !index.is_consistent() {
            return Err(CoreError::InconsistentViews);
        }
        Ok(MvdbEngine {
            mvdb: mvdb.clone(),
            translated,
            index,
            algorithm,
        })
    }

    /// The source MVDB this engine was compiled from, kept in sync by
    /// [`MvdbEngine::apply`] — the ground truth a rebuilt-from-scratch
    /// engine must agree with.
    pub fn mvdb(&self) -> &Mvdb {
        &self.mvdb
    }

    /// Applies an update batch in place.
    ///
    /// The batch is validated and classified first
    /// ([`crate::update`]): a rejected batch leaves the engine untouched.
    /// Weight-only batches keep the translation, tuple ids and compiled
    /// OBDDs, re-annotating probabilities through
    /// [`MvIndex::reweight`]; structural batches mutate the retained MVDB
    /// and re-translate/recompile (on failure — e.g. a new tuple violating
    /// a hard constraint — the engine keeps its previous state).
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<UpdateOutcome> {
        match update::classify(&self.mvdb, &self.translated, batch)? {
            UpdateKind::NoOp => Ok(UpdateOutcome {
                kind: UpdateKind::NoOp,
                version: self.version(),
                tuples_inserted: 0,
                weights_changed: 0,
                views_changed: 0,
                shards_rebuilt: 0,
                shards_reused: 0,
            }),
            UpdateKind::WeightOnly => self.apply_weight_only(batch),
            UpdateKind::Structural => self.apply_structural(batch),
        }
    }

    /// The version stamp of the translated deterministic store; weight-only
    /// updates preserve it, structural updates produce a fresh one.
    pub fn version(&self) -> u64 {
        self.translated.indb().database().version()
    }

    /// The weight-epoch fast path: weights change in the retained MVDB and
    /// the translated store, then every compiled block is re-annotated.
    fn apply_weight_only(&mut self, batch: &UpdateBatch) -> Result<UpdateOutcome> {
        let mut weights_changed = 0usize;
        let mut views_changed = 0usize;
        for op in batch.ops() {
            match op {
                UpdateOp::InsertTuple {
                    relation,
                    row,
                    weight,
                }
                | UpdateOp::SetTupleWeight {
                    relation,
                    row,
                    weight,
                } => {
                    self.set_tuple_weight(relation, row, Weight::new(*weight))?;
                    weights_changed += 1;
                }
                UpdateOp::DeleteTuple { relation, row } => {
                    let rel = self.mvdb.base().schema().require(relation)?;
                    if self.mvdb.base().tuple_id_by_values(rel, row).is_some() {
                        self.set_tuple_weight(relation, row, Weight::ZERO)?;
                        weights_changed += 1;
                    }
                }
                UpdateOp::SetViewWeight { view, weight } => {
                    let i = update::view_index(&self.mvdb, view)?;
                    self.mvdb.views_mut()[i].set_constant_weight(*weight)?;
                    let nv = Weight::new(*weight).negated_view_weight();
                    for id in update::nv_tuple_ids(&self.translated, i)? {
                        self.translated.indb_mut().set_weight(id, nv);
                    }
                    views_changed += 1;
                }
            }
        }
        let translated = &self.translated;
        self.index.reweight(|t| translated.indb().probability(t));
        if !self.index.is_consistent() {
            return Err(CoreError::InconsistentViews);
        }
        Ok(UpdateOutcome {
            kind: UpdateKind::WeightOnly,
            version: self.version(),
            tuples_inserted: 0,
            weights_changed,
            views_changed,
            shards_rebuilt: 0,
            shards_reused: 0,
        })
    }

    /// Writes one tuple weight into both the retained MVDB and the
    /// translated store (ids resolved by content, not position).
    fn set_tuple_weight(&mut self, relation: &str, row: &Row, weight: Weight) -> Result<()> {
        let rel = self.mvdb.base().schema().require(relation)?;
        let id = self
            .mvdb
            .base()
            .tuple_id_by_values(rel, row)
            .expect("classified as weight-only: the row exists");
        self.mvdb.base_mut().set_weight(id, weight);
        let trel = self.translated.indb().schema().require(relation)?;
        let tid = self
            .translated
            .indb()
            .tuple_id_by_values(trel, row)
            .expect("the translated store mirrors every base row");
        self.translated.indb_mut().set_weight(tid, weight);
        Ok(())
    }

    /// The structural slow path: mutate a copy of the retained MVDB, then
    /// re-translate and recompile. The copy keeps the apply atomic — a
    /// failed recompilation leaves `self` unchanged.
    fn apply_structural(&mut self, batch: &UpdateBatch) -> Result<UpdateOutcome> {
        let mut mvdb = self.mvdb.clone();
        let (tuples_inserted, weights_changed, views_changed) =
            update::apply_to_mvdb(&mut mvdb, batch)?;
        *self = MvdbEngine::compile_with(&mvdb, self.algorithm)?;
        Ok(UpdateOutcome {
            kind: UpdateKind::Structural,
            version: self.version(),
            tuples_inserted,
            weights_changed,
            views_changed,
            shards_rebuilt: 0,
            shards_reused: 0,
        })
    }

    /// The translated tuple-independent database.
    pub fn translated(&self) -> &TranslatedIndb {
        &self.translated
    }

    /// The compiled MV-index.
    pub fn index(&self) -> &MvIndex {
        &self.index
    }

    /// `P0(W)` on the translated database.
    pub fn prob_w(&self) -> f64 {
        self.index.prob_w()
    }

    /// The intersection algorithm chosen at compile time.
    pub fn intersect_algorithm(&self) -> IntersectAlgorithm {
        self.algorithm
    }

    /// A batch-evaluation session over this engine: evaluate a slice of
    /// queries with shared per-session state, optionally across worker
    /// threads (see [`MvdbSession`](crate::MvdbSession)).
    pub fn session(&self) -> crate::MvdbSession<'_> {
        crate::MvdbSession::new(self)
    }

    /// An evaluation context over this engine's translated database and
    /// compiled index, ready to hand to any [`Backend`].
    pub fn context(&self) -> EvalContext<'_> {
        EvalContext::with_index(&self.translated, &self.index)
    }

    /// The engine's default backend: the MV-index with the intersection
    /// algorithm chosen at compile time.
    fn default_backend(&self) -> MvIndexBackend {
        MvIndexBackend::new(self.algorithm)
    }

    /// The probability of a Boolean query under the MVDB semantics, via the
    /// MV-index.
    pub fn probability(&self, query: &Ucq) -> Result<f64> {
        self.probability_with(query, &self.default_backend())
    }

    /// The probability of a Boolean query using an explicit back-end
    /// selector.
    pub fn probability_with_backend(&self, query: &Ucq, backend: EngineBackend) -> Result<f64> {
        self.probability_with(query, backend.instantiate().as_ref())
    }

    /// The probability of a Boolean query through any [`Backend`]
    /// implementation.
    pub fn probability_with(&self, query: &Ucq, backend: &dyn Backend) -> Result<f64> {
        backend.probability(query, &self.context())
    }

    /// Estimates the probability of a Boolean query by Monte Carlo world
    /// sampling, returning the full `(estimate, half_width)` confidence
    /// interval. This is the fallback for queries whose exact OBDD
    /// synthesis is refused or intractable; see
    /// [`MonteCarlo`](crate::backend::MonteCarlo) for the estimator design
    /// and [`MvdbSession`](crate::MvdbSession) for batch and multi-worker
    /// variants.
    pub fn approx_probability(&self, query: &Ucq, config: &ApproxConfig) -> Result<ApproxAnswer> {
        MonteCarlo::new(*config).approx(query, &self.context())
    }

    /// Evaluates a non-Boolean query: returns every answer tuple together
    /// with its probability under the MVDB semantics.
    pub fn answers(&self, query: &Ucq) -> Result<Vec<(Row, f64)>> {
        self.answers_with(query, &self.default_backend())
    }

    /// Evaluates a non-Boolean query through any [`Backend`] implementation.
    pub fn answers_with(&self, query: &Ucq, backend: &dyn Backend) -> Result<Vec<(Row, f64)>> {
        backend.answers(query, &self.context())
    }

    /// Evaluates a non-Boolean query and returns the `k` most probable
    /// answers, sorted by decreasing probability (ties broken by the answer
    /// tuple, so the result is deterministic).
    pub fn top_answers(&self, query: &Ucq, k: usize) -> Result<Vec<(Row, f64)>> {
        let mut answers = self.answers(query)?;
        answers.sort_by(|(row_a, p_a), (row_b, p_b)| {
            p_b.partial_cmp(p_a)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| row_a.cmp(row_b))
        });
        answers.truncate(k);
        Ok(answers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvdb::MvdbBuilder;
    use crate::view::MarkoView;
    use mv_pdb::Value;
    use mv_query::parse_ucq;

    fn example1(view_weight: f64) -> Mvdb {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.relation("S", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 3.0).unwrap();
        b.weighted_tuple("S", &["a"], 4.0).unwrap();
        b.marko_view(&format!("V(x)[{view_weight}] :- R(x), S(x)"))
            .unwrap();
        b.build().unwrap()
    }

    /// A richer MVDB exercising several views, a denial constraint and a
    /// parameterised weight.
    fn advisors() -> Mvdb {
        let mut b = MvdbBuilder::new();
        b.deterministic_relation("Author", &["aid", "name"])
            .unwrap();
        b.relation("Student", &["aid"]).unwrap();
        b.relation("Advisor", &["aid", "aid2"]).unwrap();
        b.fact("Author", &[Value::int(1), Value::str("alice")])
            .unwrap();
        b.fact("Author", &[Value::int(2), Value::str("bob the advisor")])
            .unwrap();
        b.fact("Author", &[Value::int(3), Value::str("carol the advisor")])
            .unwrap();
        b.weighted_tuple("Student", &[Value::int(1)], 2.0).unwrap();
        b.weighted_tuple("Advisor", &[Value::int(1), Value::int(2)], 1.0)
            .unwrap();
        b.weighted_tuple("Advisor", &[Value::int(1), Value::int(3)], 0.5)
            .unwrap();
        // The more likely someone is a student, the more likely they have an
        // advisor (positive correlation), cf. V1.
        b.marko_view("V1(x, y)[3] :- Student(x), Advisor(x, y)")
            .unwrap();
        // A person has at most one advisor, cf. V2.
        b.marko_view("V2(x, y, z)[0] :- Advisor(x, y), Advisor(x, z), y <> z")
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn example1_matches_the_mln_semantics_for_all_backends() {
        for w in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let mvdb = example1(w);
            let engine = MvdbEngine::compile(&mvdb).unwrap();
            for q_text in [
                "Q() :- R(x), S(x)",
                "Q() :- R(x)",
                "Q() :- R(x) ; Q() :- S(x)",
            ] {
                let q = parse_ucq(q_text).unwrap();
                let expected = mvdb.exact_probability(&q).unwrap();
                for selector in EngineBackend::comparison_suite() {
                    let p = engine.probability_with_backend(&q, selector).unwrap();
                    assert!(
                        (p - expected).abs() < 1e-9,
                        "w = {w}, {q_text}, {selector:?}: {p} vs {expected}"
                    );
                }
            }
        }
    }

    #[test]
    fn quickstart_numbers_from_the_crate_docs() {
        let mvdb = example1(0.5);
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let q = parse_ucq("Q() :- R(x), S(x)").unwrap();
        let p = engine.probability(&q).unwrap();
        assert!((p - 0.5 * 12.0 / (1.0 + 3.0 + 4.0 + 0.5 * 12.0)).abs() < 1e-9);
    }

    #[test]
    fn advisors_mvdb_matches_exact_semantics() {
        let mvdb = advisors();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        for q_text in [
            "Q() :- Advisor(1, 2)",
            "Q() :- Advisor(1, 3)",
            "Q() :- Student(1), Advisor(1, y)",
            "Q() :- Advisor(1, 2), Advisor(1, 3)",
            "Q() :- Student(1)",
        ] {
            let q = parse_ucq(q_text).unwrap();
            let expected = mvdb.exact_probability(&q).unwrap();
            let p = engine.probability(&q).unwrap();
            assert!(
                (p - expected).abs() < 1e-9,
                "{q_text}: engine {p} vs exact {expected}"
            );
        }
        // The denial view makes two simultaneous advisors impossible.
        let both = parse_ucq("Q() :- Advisor(1, 2), Advisor(1, 3)").unwrap();
        assert!(engine.probability(&both).unwrap() < 1e-12);
    }

    #[test]
    fn answers_return_per_tuple_probabilities() {
        let mvdb = advisors();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let q = parse_ucq("Q(y) :- Student(x), Advisor(x, y), Author(y, n), n like '%advisor%'")
            .unwrap();
        let answers = engine.answers(&q).unwrap();
        assert_eq!(answers.len(), 2);
        for (row, p) in &answers {
            let bound = q.bind_head(std::slice::from_ref(&row[0]));
            let expected = mvdb.exact_probability(&bound).unwrap();
            assert!((p - expected).abs() < 1e-9, "answer {row:?}");
            assert!((0.0..=1.0).contains(p));
        }
    }

    #[test]
    fn answers_agree_across_backends() {
        let mvdb = advisors();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let q = parse_ucq("Q(y) :- Advisor(1, y)").unwrap();
        let via_index = engine.answers(&q).unwrap();
        for selector in EngineBackend::comparison_suite() {
            let via_backend = engine
                .answers_with(&q, selector.instantiate().as_ref())
                .unwrap();
            assert_eq!(via_index.len(), via_backend.len());
            for ((row_a, p_a), (row_b, p_b)) in via_index.iter().zip(&via_backend) {
                assert_eq!(row_a, row_b);
                assert!((p_a - p_b).abs() < 1e-9, "{selector:?} on {row_a:?}");
            }
        }
    }

    #[test]
    fn safe_plan_backend_works_on_safe_translations() {
        // A single-view MVDB whose W is safe.
        let mvdb = example1(0.5);
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let q = parse_ucq("Q() :- R(x)").unwrap();
        let expected = mvdb.exact_probability(&q).unwrap();
        let p = engine
            .probability_with_backend(&q, EngineBackend::SafePlan)
            .unwrap();
        assert!((p - expected).abs() < 1e-9);
    }

    #[test]
    fn queries_with_head_variables_are_rejected_by_probability() {
        let mvdb = example1(0.5);
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let q = parse_ucq("Q(x) :- R(x)").unwrap();
        for selector in EngineBackend::comparison_suite() {
            assert!(
                matches!(
                    engine.probability_with_backend(&q, selector),
                    Err(CoreError::NotBoolean(_))
                ),
                "{selector:?} accepted a non-Boolean query"
            );
        }
    }

    #[test]
    fn index_backend_without_index_reports_missing_index() {
        let mvdb = example1(0.5);
        let translated = TranslatedIndb::new(&mvdb).unwrap();
        let ctx = EvalContext::new(&translated);
        let q = parse_ucq("Q() :- R(x)").unwrap();
        let backend = MvIndexBackend::default();
        assert!(matches!(
            backend.probability(&q, &ctx),
            Err(CoreError::MissingIndex)
        ));
    }

    #[test]
    fn inconsistent_hard_constraints_are_detected() {
        let mut b = MvdbBuilder::new();
        b.deterministic_relation("D", &["x"]).unwrap();
        b.relation("R", &["x"]).unwrap();
        b.fact("D", &["a"]).unwrap();
        b.weighted_tuple("R", &["a"], 1.0).unwrap();
        // Denial view over a deterministic fact: no world satisfies ¬W.
        b.marko_view("V(x)[0] :- D(x)").unwrap();
        let mvdb = b.build().unwrap();
        assert!(matches!(
            MvdbEngine::compile(&mvdb),
            Err(CoreError::InconsistentViews)
        ));
    }

    #[test]
    fn mvdb_without_views_behaves_like_a_tuple_independent_database() {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 3.0).unwrap();
        b.weighted_tuple("R", &["b"], 1.0).unwrap();
        let mvdb = b.build().unwrap();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        assert_eq!(engine.prob_w(), 0.0);
        let q = parse_ucq("Q() :- R(x)").unwrap();
        let p = engine.probability(&q).unwrap();
        assert!((p - (1.0 - 0.25 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn top_answers_are_sorted_and_truncated() {
        let mvdb = advisors();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        let q = parse_ucq("Q(y) :- Advisor(1, y)").unwrap();
        let all = engine.answers(&q).unwrap();
        let top1 = engine.top_answers(&q, 1).unwrap();
        assert_eq!(top1.len(), 1);
        let max = all
            .iter()
            .map(|(_, p)| *p)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((top1[0].1 - max).abs() < 1e-12);
        let top_all = engine.top_answers(&q, 10).unwrap();
        assert_eq!(top_all.len(), all.len());
        for pair in top_all.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn map_state_respects_the_denial_view() {
        let mvdb = advisors();
        let map = mvdb.map_tuples().unwrap();
        // The most likely world never contains two advisors for the same
        // student (the denial view gives such worlds weight 0).
        let advisors_of_1: Vec<_> = map
            .iter()
            .filter(|(rel, row)| rel == "Advisor" && row[0] == Value::int(1))
            .collect();
        assert!(advisors_of_1.len() <= 1);
        // MAP weight is positive (the MVDB is consistent).
        assert!(mvdb.map_state().unwrap().weight > 0.0);
    }

    #[test]
    fn per_tuple_weight_views_flow_through_the_engine() {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.relation("S", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 1.0).unwrap();
        b.weighted_tuple("R", &["b"], 1.0).unwrap();
        b.weighted_tuple("S", &["a"], 1.0).unwrap();
        b.weighted_tuple("S", &["b"], 1.0).unwrap();
        let q = parse_ucq("V(x) :- R(x), S(x)").unwrap();
        b.add_view(MarkoView::with_weight_fn("V", q, |row| {
            if row[0] == Value::str("a") {
                4.0
            } else {
                0.25
            }
        }));
        let mvdb = b.build().unwrap();
        let engine = MvdbEngine::compile(&mvdb).unwrap();
        for q_text in ["Q() :- R('a'), S('a')", "Q() :- R('b'), S('b')"] {
            let q = parse_ucq(q_text).unwrap();
            let expected = mvdb.exact_probability(&q).unwrap();
            let p = engine.probability(&q).unwrap();
            assert!((p - expected).abs() < 1e-9, "{q_text}");
        }
    }

    /// Differential oracle for the update path: an engine mutated in
    /// place must answer exactly like one compiled from scratch over
    /// its retained database — and like exact world enumeration.
    fn assert_matches_rebuild(engine: &MvdbEngine, queries: &[&str]) {
        let rebuilt = MvdbEngine::compile(engine.mvdb()).unwrap();
        for q_text in queries {
            let q = parse_ucq(q_text).unwrap();
            let p = engine.probability(&q).unwrap();
            let fresh = rebuilt.probability(&q).unwrap();
            assert!((p - fresh).abs() < 1e-9, "{q_text}: {p} vs rebuild {fresh}");
            let exact = engine.mvdb().exact_probability(&q).unwrap();
            assert!((p - exact).abs() < 1e-9, "{q_text}: {p} vs exact {exact}");
        }
    }

    #[test]
    fn weight_only_updates_ride_the_fast_path() {
        let mut engine = MvdbEngine::compile(&example1(0.5)).unwrap();
        let version = engine.version();
        let before = engine
            .probability(&parse_ucq("Q() :- R(x), S(x)").unwrap())
            .unwrap();
        let out = engine
            .apply(&UpdateBatch::new().set_weight("R", vec![Value::str("a")], 7.0))
            .unwrap();
        assert_eq!(out.kind, UpdateKind::WeightOnly);
        assert_eq!(out.weights_changed, 1);
        assert_eq!(out.tuples_inserted, 0);
        // The fast path never re-translates: the store keeps its version.
        assert_eq!(engine.version(), version);
        let after = engine
            .probability(&parse_ucq("Q() :- R(x), S(x)").unwrap())
            .unwrap();
        assert!((after - before).abs() > 1e-6, "the new weight must move P");
        assert_matches_rebuild(&engine, &["Q() :- R(x), S(x)", "Q() :- R(x)"]);
    }

    #[test]
    fn view_weight_changes_rescale_nv_tuples_in_place() {
        let mut engine = MvdbEngine::compile(&example1(0.5)).unwrap();
        let out = engine
            .apply(&UpdateBatch::new().set_view_weight("V", 2.0))
            .unwrap();
        assert_eq!(out.kind, UpdateKind::WeightOnly);
        assert_eq!(out.views_changed, 1);
        // The rescaled engine answers like one compiled at w = 2 directly.
        let reference = MvdbEngine::compile(&example1(2.0)).unwrap();
        for q_text in ["Q() :- R(x), S(x)", "Q() :- R(x)"] {
            let q = parse_ucq(q_text).unwrap();
            let p = engine.probability(&q).unwrap();
            let expected = reference.probability(&q).unwrap();
            assert!((p - expected).abs() < 1e-9, "{q_text}: {p} vs {expected}");
        }
        // Crossing into a denial weight is structural (NV flips to HARD).
        let out = engine
            .apply(&UpdateBatch::new().set_view_weight("V", 0.0))
            .unwrap();
        assert_eq!(out.kind, UpdateKind::Structural);
        assert_matches_rebuild(&engine, &["Q() :- R(x), S(x)", "Q() :- R(x)"]);
    }

    #[test]
    fn structural_inserts_recompile_and_requery_sees_them() {
        let mut engine = MvdbEngine::compile(&example1(0.5)).unwrap();
        let version = engine.version();
        let out = engine
            .apply(
                &UpdateBatch::new()
                    .insert("R", vec![Value::str("b")], 2.0)
                    .insert("S", vec![Value::str("b")], 1.0),
            )
            .unwrap();
        assert_eq!(out.kind, UpdateKind::Structural);
        assert_eq!(out.tuples_inserted, 2);
        assert_ne!(engine.version(), version, "re-translation restamps");
        // The fresh tuples join the view: P(Q) reflects both components.
        assert_matches_rebuild(
            &engine,
            &["Q() :- R(x), S(x)", "Q() :- R('b'), S('b')", "Q() :- R(x)"],
        );
    }

    #[test]
    fn deletes_are_weight_zero_tombstones() {
        let mut engine = MvdbEngine::compile(&example1(0.5)).unwrap();
        let out = engine
            .apply(&UpdateBatch::new().delete("R", vec![Value::str("a")]))
            .unwrap();
        assert_eq!(out.kind, UpdateKind::WeightOnly);
        let q = parse_ucq("Q() :- R(x)").unwrap();
        assert!(engine.probability(&q).unwrap() < 1e-12);
        assert_matches_rebuild(&engine, &["Q() :- R(x), S(x)", "Q() :- S(x)"]);
        // Deleting an absent row is a no-op, not an error.
        let out = engine
            .apply(&UpdateBatch::new().delete("R", vec![Value::str("zz")]))
            .unwrap();
        assert_eq!(out.kind, UpdateKind::NoOp);
    }

    #[test]
    fn invalid_batches_reject_atomically_without_mutating() {
        let mut engine = MvdbEngine::compile(&advisors()).unwrap();
        let version = engine.version();
        let q = parse_ucq("Q() :- Student(1), Advisor(1, y)").unwrap();
        let before = engine.probability(&q).unwrap();
        // Each batch pairs a valid op with an invalid one: the valid op
        // must not be applied when the batch as a whole is rejected.
        let valid = || UpdateBatch::new().set_weight("Student", vec![Value::int(1)], 5.0);
        let bad_batches = [
            valid().insert("NoSuchRelation", vec![Value::int(1)], 1.0),
            valid().insert("Author", vec![Value::int(9), Value::str("eve")], 1.0),
            valid().insert("Student", vec![Value::int(1), Value::int(2)], 1.0),
            valid().insert("Student", vec![Value::int(1)], -3.0),
            valid().insert("Student", vec![Value::int(1)], f64::NAN),
            valid().set_weight("Student", vec![Value::int(99)], 1.0),
            valid().set_view_weight("NoSuchView", 1.0),
        ];
        for (i, batch) in bad_batches.into_iter().enumerate() {
            assert!(engine.apply(&batch).is_err(), "batch {i} must reject");
            assert_eq!(engine.version(), version, "batch {i} mutated the store");
            let p = engine.probability(&q).unwrap();
            assert!((p - before).abs() < 1e-12, "batch {i} changed answers");
        }
    }
}
