//! MVDBs: probabilistic databases with MarkoViews.
//!
//! An [`Mvdb`] is the triple `(Tup, w, V)` of Definition 3: a set of possible
//! tuples with weights (the base tuple-independent tables, plus deterministic
//! tables) and a set of [`MarkoView`]s. Its semantics is the Markov Logic
//! Network of Definition 4, which [`Mvdb::to_ground_mln`] materialises; for
//! small instances [`Mvdb::exact_probability`] evaluates queries directly
//! against that semantics and serves as the ground-truth oracle for
//! Theorem 1.

use mv_mln::GroundMln;
use mv_pdb::{InDb, InDbBuilder, RelId, Row, TupleId, Value, Weight};
use mv_query::lineage::{answer_lineages, lineage};
use mv_query::{ConjunctiveQuery, Ucq};

use crate::error::CoreError;
use crate::view::MarkoView;
use crate::Result;

/// A probabilistic database with MarkoViews.
#[derive(Debug, Clone)]
pub struct Mvdb {
    base: InDb,
    views: Vec<MarkoView>,
}

impl Mvdb {
    /// The base tuple-independent database (deterministic and probabilistic
    /// tables, without the views).
    pub fn base(&self) -> &InDb {
        &self.base
    }

    /// The MarkoViews.
    pub fn views(&self) -> &[MarkoView] {
        &self.views
    }

    /// Mutable access to the base database, for the update subsystem
    /// (tuple inserts and weight changes; deletes are weight-0 tombstones).
    pub(crate) fn base_mut(&mut self) -> &mut InDb {
        &mut self.base
    }

    /// Mutable access to the views, for MLN weight changes.
    pub(crate) fn views_mut(&mut self) -> &mut [MarkoView] {
        &mut self.views
    }

    /// Evaluates a view over the instance of possible tuples, returning every
    /// output tuple together with its weight (`Tup_V` and `w_V` of
    /// Section 2.4).
    pub fn view_output(&self, view: &MarkoView) -> Result<Vec<(Row, f64)>> {
        let answers = mv_query::evaluate_ucq(&view.query, self.base.database())?;
        let mut out = Vec::with_capacity(answers.len());
        for a in answers {
            let w = view.weight.weight_of(&a.row);
            if w.is_nan() || w < 0.0 {
                return Err(CoreError::InvalidTupleWeight {
                    view: view.name.clone(),
                    weight: w,
                });
            }
            out.push((a.row, w));
        }
        Ok(out)
    }

    /// Builds the grounded MLN of Definition 4: one feature per possible
    /// tuple (weight `w(t)`) and one feature per view output tuple (the
    /// Boolean query `Q(t̄)`, i.e. its lineage, with weight `w_V(t)`).
    pub fn to_ground_mln(&self) -> Result<GroundMln> {
        let mut mln = GroundMln::new(self.base.num_tuples());
        for (id, t) in self.base.tuples() {
            mln.add_atom_feature(id, t.weight.value())
                .map_err(CoreError::Mln)?;
        }
        for view in &self.views {
            let lineages = answer_lineages(&view.query, &self.base)?;
            for (row, lin) in lineages {
                let w = view.weight.weight_of(&row);
                if w.is_nan() || w < 0.0 {
                    return Err(CoreError::InvalidTupleWeight {
                        view: view.name.clone(),
                        weight: w,
                    });
                }
                if lin.is_false() {
                    continue;
                }
                mln.add_feature(lin, w).map_err(CoreError::Mln)?;
            }
        }
        Ok(mln)
    }

    /// Exact probability of a Boolean query under the MVDB semantics, by
    /// enumerating the worlds of the grounded MLN. Only feasible for small
    /// databases; this is the reference implementation of Definition 4.
    pub fn exact_probability(&self, query: &Ucq) -> Result<f64> {
        if !query.is_boolean() {
            return Err(CoreError::NotBoolean(query.name.clone()));
        }
        let mln = self.to_ground_mln()?;
        let lin = lineage(query, &self.base)?;
        mln.exact_probability(&lin).map_err(CoreError::Mln)
    }

    /// Exact marginal probability of one possible tuple under the MVDB
    /// semantics.
    pub fn exact_marginal(&self, tuple: TupleId) -> Result<f64> {
        let mln = self.to_ground_mln()?;
        mln.exact_marginal(tuple).map_err(CoreError::Mln)
    }

    /// MAP inference: the most likely possible world of the MVDB
    /// (Section 2.3 — the paper focuses on marginal inference but notes the
    /// techniques generalise to MAP). Uses exact enumeration for small
    /// databases and simulated annealing otherwise.
    pub fn map_state(&self) -> Result<mv_mln::MapState> {
        let mln = self.to_ground_mln()?;
        if self.base.num_tuples() <= mv_mln::GroundMln::MAX_EXACT_ATOMS {
            mln.exact_map().map_err(CoreError::Mln)
        } else {
            Ok(mv_mln::simulated_annealing_map(
                &mln,
                mv_mln::AnnealingConfig::default(),
            ))
        }
    }

    /// The tuples present in the most likely world, as `(relation name, row)`
    /// pairs — a readable form of [`Mvdb::map_state`].
    pub fn map_tuples(&self) -> Result<Vec<(String, Row)>> {
        let map = self.map_state()?;
        let mut out = Vec::new();
        for (id, t) in self.base.tuples() {
            if map.state[id.index()] {
                let name = self.base.schema().relation(t.rel).name().to_string();
                out.push((name, self.base.tuple_row(id).clone()));
            }
        }
        Ok(out)
    }
}

/// Builder for [`Mvdb`].
#[derive(Debug, Default)]
pub struct MvdbBuilder {
    indb: InDbBuilder,
    views: Vec<MarkoView>,
}

fn to_row<V: Into<Value> + Clone>(values: &[V]) -> Row {
    values.iter().cloned().map(Into::into).collect()
}

impl MvdbBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        MvdbBuilder::default()
    }

    /// Declares a probabilistic relation.
    pub fn relation(&mut self, name: &str, attributes: &[&str]) -> Result<RelId> {
        Ok(self.indb.probabilistic_relation(name, attributes)?)
    }

    /// Declares a deterministic relation.
    pub fn deterministic_relation(&mut self, name: &str, attributes: &[&str]) -> Result<RelId> {
        Ok(self.indb.deterministic_relation(name, attributes)?)
    }

    /// Inserts a certain fact into a deterministic relation.
    pub fn fact<V: Into<Value> + Clone>(&mut self, relation: &str, row: &[V]) -> Result<usize> {
        let rel = self.indb.relation_id(relation)?;
        Ok(self.indb.insert_fact(rel, to_row(row))?)
    }

    /// Inserts a possible tuple with the given weight (odds) into a
    /// probabilistic relation.
    pub fn weighted_tuple<V: Into<Value> + Clone>(
        &mut self,
        relation: &str,
        row: &[V],
        weight: f64,
    ) -> Result<TupleId> {
        let rel = self.indb.relation_id(relation)?;
        Ok(self
            .indb
            .insert_weighted(rel, to_row(row), Weight::new(weight))?)
    }

    /// Inserts a possible tuple with the given marginal probability.
    pub fn probabilistic_tuple<V: Into<Value> + Clone>(
        &mut self,
        relation: &str,
        row: &[V],
        probability: f64,
    ) -> Result<TupleId> {
        let rel = self.indb.relation_id(relation)?;
        Ok(self
            .indb
            .insert_probabilistic(rel, to_row(row), probability)?)
    }

    /// Adds a MarkoView from its textual form `V(x̄)[w] :- body` (constant
    /// weight only).
    pub fn marko_view(&mut self, text: &str) -> Result<&mut Self> {
        let view = MarkoView::parse(text)?;
        self.views.push(view);
        Ok(self)
    }

    /// Adds a MarkoView built programmatically (e.g. with a per-tuple weight
    /// function).
    pub fn add_view(&mut self, view: MarkoView) -> &mut Self {
        self.views.push(view);
        self
    }

    /// Read access to the database built so far (e.g. to derive weights from
    /// deterministic tables before adding views).
    pub fn database(&self) -> &mv_pdb::Database {
        self.indb.database()
    }

    /// Finalises the MVDB, validating that every view refers to existing
    /// relations with the right arities.
    pub fn build(self) -> Result<Mvdb> {
        let base = self.indb.build();
        for view in &self.views {
            for disjunct in &view.query.disjuncts {
                validate_atoms(disjunct, &base)?;
            }
        }
        Ok(Mvdb {
            base,
            views: self.views,
        })
    }
}

fn validate_atoms(cq: &ConjunctiveQuery, indb: &InDb) -> Result<()> {
    for atom in &cq.atoms {
        let rel = indb
            .schema()
            .relation_id(&atom.relation)
            .ok_or_else(|| mv_query::QueryError::UnknownRelation(atom.relation.clone()))?;
        let arity = indb.schema().relation(rel).arity();
        if atom.terms.len() != arity {
            return Err(CoreError::Query(mv_query::QueryError::ArityMismatch {
                relation: atom.relation.clone(),
                expected: arity,
                actual: atom.terms.len(),
            }));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_query::parse_ucq;

    /// Example 1 of the paper: R(a), S(a) with weights 3, 4 and
    /// V(x)[0.5] :- R(x), S(x).
    fn example1() -> Mvdb {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.relation("S", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 3.0).unwrap();
        b.weighted_tuple("S", &["a"], 4.0).unwrap();
        b.marko_view("V(x)[0.5] :- R(x), S(x)").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn example1_worlds_have_the_paper_weights() {
        let mvdb = example1();
        let mln = mvdb.to_ground_mln().unwrap();
        // Weights 1, w1, w2, w·w1·w2 = 1, 3, 4, 6; Z = 14.
        assert!((mln.partition_function().unwrap() - 14.0).abs() < 1e-12);
        let p_both = mvdb
            .exact_probability(&parse_ucq("Q() :- R(x), S(x)").unwrap())
            .unwrap();
        assert!((p_both - 6.0 / 14.0).abs() < 1e-12);
        let p_or = mvdb
            .exact_probability(&parse_ucq("Q() :- R(x) ; Q() :- S(x)").unwrap())
            .unwrap();
        assert!((p_or - 13.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn marginals_reflect_the_negative_correlation() {
        let mvdb = example1();
        // Without the view, P(R(a)) would be 3/4; the negative correlation
        // (w = 0.5) lowers it.
        let p_r = mvdb.exact_marginal(TupleId(0)).unwrap();
        assert!((p_r - 9.0 / 14.0).abs() < 1e-12);
        assert!(p_r < 0.75);
    }

    #[test]
    fn view_output_carries_weights() {
        let mvdb = example1();
        let out = mvdb.view_output(&mvdb.views()[0]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 0.5);
    }

    #[test]
    fn independence_weight_changes_nothing() {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.relation("S", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 3.0).unwrap();
        b.weighted_tuple("S", &["a"], 4.0).unwrap();
        b.marko_view("V(x)[1] :- R(x), S(x)").unwrap();
        let mvdb = b.build().unwrap();
        let p_r = mvdb.exact_marginal(TupleId(0)).unwrap();
        assert!((p_r - 0.75).abs() < 1e-12);
    }

    #[test]
    fn denial_views_forbid_their_outputs() {
        let mut b = MvdbBuilder::new();
        b.relation("Advisor", &["student", "advisor"]).unwrap();
        b.weighted_tuple("Advisor", &["s", "a1"], 1.0).unwrap();
        b.weighted_tuple("Advisor", &["s", "a2"], 1.0).unwrap();
        b.marko_view("V2(x, y, z)[0] :- Advisor(x, y), Advisor(x, z), y <> z")
            .unwrap();
        let mvdb = b.build().unwrap();
        let p_both = mvdb
            .exact_probability(&parse_ucq("Q() :- Advisor('s', 'a1'), Advisor('s', 'a2')").unwrap())
            .unwrap();
        assert_eq!(p_both, 0.0);
        // Each advisor individually is still possible.
        let p_one = mvdb
            .exact_probability(&parse_ucq("Q() :- Advisor('s', 'a1')").unwrap())
            .unwrap();
        assert!(p_one > 0.0);
    }

    #[test]
    fn per_tuple_weight_functions_are_used() {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 1.0).unwrap();
        b.weighted_tuple("R", &["b"], 1.0).unwrap();
        let q = parse_ucq("V(x) :- R(x)").unwrap();
        b.add_view(MarkoView::with_weight_fn("V", q, |row| {
            if row[0] == Value::str("a") {
                3.0
            } else {
                1.0
            }
        }));
        let mvdb = b.build().unwrap();
        // R(a) is boosted: P = 3 / (1 + 3) over its own factor.
        let p_a = mvdb.exact_marginal(TupleId(0)).unwrap();
        let p_b = mvdb.exact_marginal(TupleId(1)).unwrap();
        assert!((p_a - 0.75).abs() < 1e-12);
        assert!((p_b - 0.5).abs() < 1e-12);
    }

    #[test]
    fn views_over_unknown_relations_are_rejected_at_build_time() {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.marko_view("V(x)[2] :- Missing(x)").unwrap();
        assert!(b.build().is_err());
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.marko_view("V(x, y)[2] :- R(x, y)").unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn non_boolean_queries_are_rejected_by_exact_probability() {
        let mvdb = example1();
        assert!(matches!(
            mvdb.exact_probability(&parse_ucq("Q(x) :- R(x)").unwrap()),
            Err(CoreError::NotBoolean(_))
        ));
    }

    #[test]
    fn deterministic_tables_participate_in_views() {
        let mut b = MvdbBuilder::new();
        b.deterministic_relation("D", &["x"]).unwrap();
        b.relation("R", &["x"]).unwrap();
        b.fact("D", &["a"]).unwrap();
        b.weighted_tuple("R", &["a"], 1.0).unwrap();
        b.weighted_tuple("R", &["b"], 1.0).unwrap();
        // Boost R tuples that also appear in D.
        b.marko_view("V(x)[4] :- D(x), R(x)").unwrap();
        let mvdb = b.build().unwrap();
        let p_a = mvdb.exact_marginal(TupleId(0)).unwrap();
        let p_b = mvdb.exact_marginal(TupleId(1)).unwrap();
        assert!((p_a - 0.8).abs() < 1e-12);
        assert!((p_b - 0.5).abs() < 1e-12);
    }
}
