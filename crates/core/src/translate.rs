//! The translation from MVDBs to tuple-independent databases
//! (Definition 5 and Theorem 1).
//!
//! Given an MVDB `(Tup, w, V)`, the translated database contains
//!
//! * every base table with unchanged weights,
//! * one new relation `NV_i` per MarkoView `V_i`, holding every possible
//!   output tuple of the view with weight `(1 − w)/w` — negative when the
//!   view weight exceeds 1,
//!
//! together with the Boolean helper query
//! `W = ⋁_i ∃x̄_i. NV_i(x̄_i) ∧ Q_i(x̄_i)`.
//! Theorem 1 then states `P(Q) = (P0(Q ∨ W) − P0(W)) / (1 − P0(W))` for every
//! Boolean query `Q`, where `P0` is the tuple-independent probability on the
//! translated database.
//!
//! Two simplifications from the paper are applied: denial views (`w = 0`)
//! yield deterministic `NV` tuples, so the `NV_i` atom is dropped from `W_i`
//! entirely (end of Section 3.2), and output tuples with weight exactly `1`
//! (independence) are skipped because their translated weight is `0`.

use mv_pdb::{InDb, InDbBuilder, RelId, TupleId, Weight};
use mv_query::{Atom, ConjunctiveQuery, Ucq};

use crate::mvdb::Mvdb;
use crate::Result;

/// The tuple-independent database associated to an MVDB, together with the
/// helper query `W`.
#[derive(Debug, Clone)]
pub struct TranslatedIndb {
    indb: InDb,
    w: Option<Ucq>,
    nv_relations: Vec<String>,
    nv_rel_ids: Vec<RelId>,
}

impl TranslatedIndb {
    /// Performs the translation of Definition 5.
    pub fn new(mvdb: &Mvdb) -> Result<Self> {
        let base = mvdb.base();
        let mut builder = InDbBuilder::new();

        // Copy the base schema and tuples with unchanged weights.
        for (rel_id, schema) in base.schema().relations() {
            let attrs: Vec<&str> = schema.attributes().iter().map(String::as_str).collect();
            if base.is_deterministic(rel_id) {
                let new_rel = builder.deterministic_relation(schema.name(), &attrs)?;
                for row in base.database().rows(rel_id) {
                    builder.insert_fact(new_rel, row.clone())?;
                }
            } else {
                let new_rel = builder.probabilistic_relation(schema.name(), &attrs)?;
                for (row_index, row) in base.database().relation(rel_id).iter() {
                    let id = base
                        .tuple_id(rel_id, row_index)
                        .expect("probabilistic rows have tuple ids");
                    builder.insert_weighted(new_rel, row.clone(), base.weight(id))?;
                }
            }
        }

        // Create one NV relation per (non-denial) view and populate it.
        let mut nv_relations = Vec::with_capacity(mvdb.views().len());
        let mut nv_rel_ids = Vec::new();
        let mut disjuncts: Vec<ConjunctiveQuery> = Vec::new();
        for (i, view) in mvdb.views().iter().enumerate() {
            let nv_name = view.nv_relation_name();
            nv_relations.push(nv_name.clone());
            if view.is_denial() {
                // NV is deterministic and always present: drop it from W_i.
                for disjunct in &view.query.disjuncts {
                    disjuncts.push(w_disjunct(i, disjunct, None));
                }
                continue;
            }
            let attrs: Vec<String> = (0..view.arity()).map(|p| format!("a{p}")).collect();
            let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let nv_rel = builder.probabilistic_relation(&nv_name, &attr_refs)?;
            nv_rel_ids.push(nv_rel);
            let outputs = mvdb.view_output(view)?;
            for (row, weight) in outputs {
                let translated = Weight::new(weight).negated_view_weight();
                if translated.is_zero() {
                    // Weight 1 (independence): the NV tuple would have
                    // probability 0 and can be omitted.
                    continue;
                }
                builder.insert_translated(nv_rel, row, translated)?;
            }
            for disjunct in &view.query.disjuncts {
                disjuncts.push(w_disjunct(i, disjunct, Some(&nv_name)));
            }
        }

        let indb = builder.build();
        let w = if disjuncts.is_empty() {
            None
        } else {
            Some(Ucq::new("W", disjuncts))
        };
        Ok(TranslatedIndb {
            indb,
            w,
            nv_relations,
            nv_rel_ids,
        })
    }

    /// The translated tuple-independent database.
    pub fn indb(&self) -> &InDb {
        &self.indb
    }

    /// Mutable access to the translated store, for the update subsystem's
    /// in-place weight writes (the tuple set itself is only ever changed by
    /// re-translation).
    pub(crate) fn indb_mut(&mut self) -> &mut InDb {
        &mut self.indb
    }

    /// The helper query `W`, or `None` when the MVDB has no MarkoViews.
    pub fn w(&self) -> Option<&Ucq> {
        self.w.as_ref()
    }

    /// Restricts the translated database to the possible tuples selected by
    /// `keep`, returning the sub-store together with the local→global tuple
    /// id map (see [`mv_pdb::InDb::project`]).
    ///
    /// The restriction keeps the full schema (so [`RelId`]s carry over),
    /// every deterministic row, and the *same* helper query `W`: evaluating
    /// `W` syntactically on the sub-store yields exactly the clauses of
    /// `W`'s lineage whose tuples were all kept — which is the whole
    /// per-shard `W_s` when `keep` selects a union of dependency-graph
    /// connected components, the invariant the sharding layer builds on.
    pub fn restrict(&self, keep: impl Fn(TupleId) -> bool) -> (TranslatedIndb, Vec<TupleId>) {
        let (indb, local_to_global) = self.indb.project(keep);
        (
            TranslatedIndb {
                indb,
                w: self.w.clone(),
                nv_relations: self.nv_relations.clone(),
                nv_rel_ids: self.nv_rel_ids.clone(),
            },
            local_to_global,
        )
    }

    /// The name of the `NV` relation of the `i`-th view.
    pub fn nv_relation(&self, view_index: usize) -> &str {
        &self.nv_relations[view_index]
    }

    /// Number of possible tuples in the translated database (base tuples plus
    /// `NV` tuples).
    pub fn num_tuples(&self) -> usize {
        self.indb.num_tuples()
    }

    /// `true` when the possible tuple is an `NV` tuple introduced by the
    /// translation (as opposed to a base tuple of the original MVDB).
    ///
    /// The Monte Carlo backend integrates exactly these variables out of
    /// each sampled world: every clause of `W`'s lineage carries at most one
    /// of them, so their residual probability is a plain product — which is
    /// also what makes sampling sound despite their (possibly negative)
    /// translated weights.
    pub fn is_nv_tuple(&self, id: TupleId) -> bool {
        self.nv_rel_ids.contains(&self.indb.tuple(id).rel)
    }
}

/// Builds the disjunct `W_i` for one disjunct of the view query: the view
/// body joined with the `NV_i` atom over the view's head terms (or just the
/// body, for denial views).
fn w_disjunct(
    view_index: usize,
    disjunct: &ConjunctiveQuery,
    nv_name: Option<&str>,
) -> ConjunctiveQuery {
    let mut atoms = Vec::with_capacity(disjunct.atoms.len() + 1);
    if let Some(nv) = nv_name {
        atoms.push(Atom::new(nv, disjunct.head.clone()));
    }
    atoms.extend(disjunct.atoms.iter().cloned());
    ConjunctiveQuery::new(
        format!("W{}", view_index + 1),
        vec![],
        atoms,
        disjunct.comparisons.clone(),
    )
}

/// Convenience: translate an MVDB (re-exported as a free function, mirroring
/// the paper's notation `MVDB → INDB`).
pub fn translate(mvdb: &Mvdb) -> Result<TranslatedIndb> {
    TranslatedIndb::new(mvdb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvdb::MvdbBuilder;
    use mv_pdb::{TupleId, Value};
    use mv_query::brute::brute_force_lineage_probability;
    use mv_query::lineage::lineage;
    use mv_query::parse_ucq;

    fn example1(view_weight: f64) -> Mvdb {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.relation("S", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 3.0).unwrap();
        b.weighted_tuple("S", &["a"], 4.0).unwrap();
        b.marko_view(&format!("V(x)[{view_weight}] :- R(x), S(x)"))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn translated_database_has_nv_tuples_with_negated_weights() {
        let mvdb = example1(0.5);
        let t = TranslatedIndb::new(&mvdb).unwrap();
        // R(a), S(a) and one NV tuple.
        assert_eq!(t.num_tuples(), 3);
        assert_eq!(t.nv_relation(0), "NV_V");
        let nv_rel = t.indb().schema().relation_id("NV_V").unwrap();
        let id = t
            .indb()
            .tuple_id_by_values(nv_rel, &[Value::str("a")])
            .unwrap();
        // (1 - 0.5) / 0.5 = 1.
        assert!((t.indb().weight(id).value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn positive_correlations_produce_negative_weights() {
        let mvdb = example1(4.0);
        let t = TranslatedIndb::new(&mvdb).unwrap();
        let nv_rel = t.indb().schema().relation_id("NV_V").unwrap();
        let id = t
            .indb()
            .tuple_id_by_values(nv_rel, &[Value::str("a")])
            .unwrap();
        assert!((t.indb().weight(id).value() - (-0.75)).abs() < 1e-12);
        assert!(t.indb().probability(id) < 0.0);
    }

    #[test]
    fn independence_views_produce_no_nv_tuples() {
        let mvdb = example1(1.0);
        let t = TranslatedIndb::new(&mvdb).unwrap();
        assert_eq!(t.num_tuples(), 2);
        // W still exists syntactically but its lineage is false.
        let w = t.w().unwrap();
        let lin = lineage(w, t.indb()).unwrap();
        assert!(lin.is_false());
    }

    #[test]
    fn theorem1_formula_reproduces_the_mln_semantics() {
        for view_weight in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
            let mvdb = example1(view_weight);
            let t = TranslatedIndb::new(&mvdb).unwrap();
            for q_text in [
                "Q() :- R(x), S(x)",
                "Q() :- R(x)",
                "Q() :- R(x) ; Q() :- S(x)",
            ] {
                let q = parse_ucq(q_text).unwrap();
                let expected = mvdb.exact_probability(&q).unwrap();
                // Evaluate the right-hand side of Theorem 1 by brute force on
                // the translated database.
                let lin_q = lineage(&q, t.indb()).unwrap();
                let (p_q_or_w, p_w) = match t.w() {
                    Some(w) => {
                        let lin_w = lineage(w, t.indb()).unwrap();
                        (
                            brute_force_lineage_probability(&lin_q.or(&lin_w), t.indb()),
                            brute_force_lineage_probability(&lin_w, t.indb()),
                        )
                    }
                    None => (brute_force_lineage_probability(&lin_q, t.indb()), 0.0),
                };
                let translated = (p_q_or_w - p_w) / (1.0 - p_w);
                assert!(
                    (translated - expected).abs() < 1e-9,
                    "w = {view_weight}, {q_text}: translated {translated} vs MLN {expected}"
                );
            }
        }
    }

    #[test]
    fn denial_views_drop_the_nv_atom() {
        let mut b = MvdbBuilder::new();
        b.relation("Advisor", &["s", "a"]).unwrap();
        b.weighted_tuple("Advisor", &["s", "a1"], 1.0).unwrap();
        b.weighted_tuple("Advisor", &["s", "a2"], 1.0).unwrap();
        b.marko_view("V2(x, y, z)[0] :- Advisor(x, y), Advisor(x, z), y <> z")
            .unwrap();
        let mvdb = b.build().unwrap();
        let t = TranslatedIndb::new(&mvdb).unwrap();
        // No NV tuples were added (the NV relation is not even created).
        assert_eq!(t.num_tuples(), 2);
        let w = t.w().unwrap();
        assert_eq!(w.disjuncts.len(), 1);
        assert!(w.disjuncts[0].atoms.iter().all(|a| a.relation == "Advisor"));
        // Theorem 1 still holds.
        let q = parse_ucq("Q() :- Advisor('s', 'a1')").unwrap();
        let expected = mvdb.exact_probability(&q).unwrap();
        let lin_q = lineage(&q, t.indb()).unwrap();
        let lin_w = lineage(w, t.indb()).unwrap();
        let p_q_or_w = brute_force_lineage_probability(&lin_q.or(&lin_w), t.indb());
        let p_w = brute_force_lineage_probability(&lin_w, t.indb());
        let translated = (p_q_or_w - p_w) / (1.0 - p_w);
        assert!((translated - expected).abs() < 1e-9);
    }

    #[test]
    fn nv_tuples_are_identified_by_relation() {
        let mvdb = example1(0.5);
        let t = TranslatedIndb::new(&mvdb).unwrap();
        // Tuples 0 and 1 are the base R(a)/S(a) rows; tuple 2 is the NV row.
        assert!(!t.is_nv_tuple(TupleId(0)));
        assert!(!t.is_nv_tuple(TupleId(1)));
        assert!(t.is_nv_tuple(TupleId(2)));
        // Denial views create no NV relation, so nothing is flagged.
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 1.0).unwrap();
        b.marko_view("V(x)[0] :- R(x)").unwrap();
        let t = TranslatedIndb::new(&b.build().unwrap()).unwrap();
        assert!(!t.is_nv_tuple(TupleId(0)));
    }

    #[test]
    fn mvdb_without_views_translates_to_itself() {
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.weighted_tuple("R", &["a"], 3.0).unwrap();
        let mvdb = b.build().unwrap();
        let t = translate(&mvdb).unwrap();
        assert!(t.w().is_none());
        assert_eq!(t.num_tuples(), 1);
        assert_eq!(t.indb().weight(TupleId(0)).value(), 3.0);
    }

    #[test]
    fn example2_style_views_correlate_whole_lineages() {
        // V(x)[w] :- R(x), S(x, y): the view output V(a) correlates R(a) with
        // all S(a, y) tuples (Example 2).
        let mut b = MvdbBuilder::new();
        b.relation("R", &["x"]).unwrap();
        b.relation("S", &["x", "y"]).unwrap();
        b.weighted_tuple("R", &["a"], 1.0).unwrap();
        b.weighted_tuple("S", &["a", "b1"], 1.0).unwrap();
        b.weighted_tuple("S", &["a", "b2"], 1.0).unwrap();
        b.marko_view("V(x)[3] :- R(x), S(x, y)").unwrap();
        let mvdb = b.build().unwrap();
        let t = TranslatedIndb::new(&mvdb).unwrap();
        let q = parse_ucq("Q() :- R(x), S(x, y)").unwrap();
        let expected = mvdb.exact_probability(&q).unwrap();
        let lin_q = lineage(&q, t.indb()).unwrap();
        let w = t.w().unwrap();
        let lin_w = lineage(w, t.indb()).unwrap();
        let p_q_or_w = brute_force_lineage_probability(&lin_q.or(&lin_w), t.indb());
        let p_w = brute_force_lineage_probability(&lin_w, t.indb());
        let translated = (p_q_or_w - p_w) / (1.0 - p_w);
        assert!((translated - expected).abs() < 1e-9);
        // The positive correlation raises the probability above the
        // independent value 0.5 * 0.75.
        assert!(expected > 0.375);
    }
}
